"""Figure 7: CGAN training losses over iterations (with growing data).

The paper: "initially, G's loss is high, whereas D's loss is low.
However, over more iterations and data, the G's loss decreases, making
it difficult for D to know whether the data generated is real or fake,
and hence increasing the loss of D."

This benchmark trains the case-study CGAN with the paper's growing-data
schedule, prints the loss curves as an ASCII plot, and checks the trend.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import BENCH_SEED, shape_check
from repro.gan import ConditionalGAN
from repro.utils.ascii_plot import ascii_line_plot

ITERATIONS = 2000


def _train(dataset):
    cgan = ConditionalGAN(
        dataset.feature_dim, dataset.condition_dim, seed=BENCH_SEED
    )
    cgan.train(
        dataset,
        iterations=ITERATIONS,
        batch_size=32,
        # Paper: data is incorporated incrementally with iterations.
        data_fraction=lambda it: min(1.0, 0.2 + 0.8 * (it + 1) / ITERATIONS),
    )
    return cgan


def _report(history):
    smooth = history.smoothed(window=100)
    print()
    print("=" * 70)
    print("Figure 7 reproduction: CGAN training losses (growing data)")
    print("=" * 70)
    print(
        ascii_line_plot(
            {"G loss (-log D(G(z|c)))": smooth["g_loss"],
             "D loss": smooth["d_loss"]},
            title=f"losses over {ITERATIONS} iterations (smoothed, window=100)",
            xlabel=f"iteration 1 .. {ITERATIONS}",
            ylabel="loss",
        )
    )
    n = len(smooth["g_loss"])
    head = slice(0, n // 5)
    tail = slice(-n // 5, None)
    g_head, g_tail = smooth["g_loss"][head].mean(), smooth["g_loss"][tail].mean()
    d_head, d_tail = smooth["d_loss"][head].mean(), smooth["d_loss"][tail].mean()
    print()
    print(f"G loss: {g_head:.3f} (early) -> {g_tail:.3f} (late)")
    print(f"D loss: {d_head:.3f} (early) -> {d_tail:.3f} (late)")
    print(f"training data grows: {history.n_train[0]} -> {history.n_train[-1]} samples")
    print()
    print("-- paper-shape checks --")
    print(shape_check("G loss decreases over training", g_tail < g_head))
    print(shape_check("D loss increases over training", d_tail > d_head))
    print(
        shape_check(
            "D approaches the fooled regime (loss toward 2 ln 2 = 1.386)",
            abs(d_tail - 2 * np.log(2)) < abs(d_head - 2 * np.log(2)),
        )
    )


def test_fig7_training_curves(benchmark, bench_split):
    train, _test = bench_split
    cgan = benchmark.pedantic(_train, args=(train,), iterations=1, rounds=1)
    _report(cgan.history)
