"""Ablation: CGAN vs direct density estimation vs simple baselines.

The paper's core modeling claim: the CGAN generator "never sees the
real data [and] estimates the distribution without overfitting on the
currently limited data, thus providing better distribution estimation".
This ablation pits the trained CGAN attacker against

* direct empirical resampling of the recorded data (Parzen on real
  samples),
* a per-condition diagonal Gaussian fit,
* a density-free nearest-centroid classifier, and
* an *unconditional* GAN (no conditioning — the control showing the
  conditional structure is what carries the security signal),

in both a data-rich and a data-poor (weak attacker) regime.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import BENCH_SEED, shape_check
from repro.gan import GAN, ConditionalGAN
from repro.security import SideChannelAttacker
from repro.security.baselines import (
    EmpiricalConditionalSampler,
    GaussianConditionalSampler,
    NearestCentroidAttacker,
)
from repro.utils.tables import format_table

ITERATIONS = 1500


def _cgan_attacker_accuracy(train, test):
    cgan = ConditionalGAN(train.feature_dim, train.condition_dim, seed=BENCH_SEED)
    cgan.train(train, iterations=ITERATIONS, batch_size=32)
    attacker = SideChannelAttacker(
        cgan, test.unique_conditions(), h=0.2, g_size=200, seed=BENCH_SEED
    ).fit()
    return attacker.evaluate(test).accuracy


def _sampler_attacker_accuracy(sampler, test):
    attacker = SideChannelAttacker(
        sampler, test.unique_conditions(), h=0.2, g_size=200, seed=BENCH_SEED
    ).fit()
    return attacker.evaluate(test).accuracy


def _uncond_gan_accuracy(train, test):
    gan = GAN(train.feature_dim, seed=BENCH_SEED)
    gan.train(train.features, iterations=ITERATIONS, batch_size=32)

    def sampler(cond, n, rng):
        return gan.generate(n, seed=rng)

    return _sampler_attacker_accuracy(sampler, test)


def _regime(train, test):
    return {
        "conditional GAN (GAN-Sec)": _cgan_attacker_accuracy(train, test),
        "empirical resampling": _sampler_attacker_accuracy(
            EmpiricalConditionalSampler(train, jitter=0.02), test
        ),
        "per-condition Gaussian": _sampler_attacker_accuracy(
            GaussianConditionalSampler(train), test
        ),
        "nearest centroid": NearestCentroidAttacker(train).accuracy(test),
        "unconditional GAN (control)": _uncond_gan_accuracy(train, test),
    }


def test_ablation_baselines(benchmark, bench_split):
    train, test = bench_split
    rich = benchmark.pedantic(_regime, args=(train, test), iterations=1, rounds=1)
    poor_train = train.take(max(9, len(train) // 6), seed=BENCH_SEED)
    poor = _regime(poor_train, test)

    rows = [
        [name, rich[name], poor[name]]
        for name in rich
    ]
    print()
    print("=" * 70)
    print("Ablation: attacker model comparison (accuracy, chance = 0.333)")
    print("=" * 70)
    print(
        format_table(
            rows,
            ["attacker model", f"full data (n={len(train)})",
             f"weak attacker (n={len(poor_train)})"],
            title="side-channel inference accuracy on the held-out test set",
        )
    )
    print()
    print("-- shape checks --")
    print(
        shape_check(
            "conditional structure matters: CGAN beats unconditional GAN",
            rich["conditional GAN (GAN-Sec)"]
            > rich["unconditional GAN (control)"] + 0.1,
        )
    )
    print(
        shape_check(
            "CGAN attacker is competitive with direct estimation (full data)",
            rich["conditional GAN (GAN-Sec)"]
            >= rich["empirical resampling"] - 0.2,
        )
    )
    print(
        shape_check(
            "every conditional model beats the unconditional control",
            min(
                v
                for k, v in rich.items()
                if k != "unconditional GAN (control)"
            )
            > rich["unconditional GAN (control)"],
        )
    )
