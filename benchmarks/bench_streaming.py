"""Streaming detector benchmark: sustained throughput and latency.

Measures the online detection engine end to end — windowing, batched
CWT extraction, Parzen scoring, CUSUM decision layer — over a
fixed-seed synthetic printer trace replayed at maximum rate, across a
sweep of scoring batch sizes.  The acceptance headline is the
real-time factor: seconds of 5 kHz-band audio processed per wall
second on a single core, which must stay >= 1.0 for the monitor to be
deployable against a live microphone.

Also verifies, per configuration, that the streamed scores are bitwise
identical to the offline oracle — a benchmark that drifted numerically
would be measuring the wrong thing.

Emits ``BENCH_streaming.json`` (schema ``gansec-bench-streaming/v1``).
Run with ``--smoke`` for a seconds-scale CI variant of the same schema.

Usage::

    PYTHONPATH=src python benchmarks/bench_streaming.py [--smoke] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

import numpy as np

from repro.streaming import (
    StreamSession,
    calibrate_stream_monitor,
    inject_claim_attack,
    offline_stream_scores,
    synthetic_printer_stream,
)

SCHEMA = "gansec-bench-streaming/v1"
BENCH_SEED = 20190325
WINDOW = 600
HOP = 300

#: (batch_windows, chunk_size) per streaming config.
FULL_CONFIGS = [(1, 512), (8, 1024), (32, 1024), (64, 4096)]
SMOKE_CONFIGS = [(32, 1024)]


def build_workload(moves: int):
    scenario = synthetic_printer_stream(n_moves_per_axis=moves, seed=BENCH_SEED)
    attacked = inject_claim_attack(scenario, n_spans=2, seed=7)
    calibration = calibrate_stream_monitor(
        scenario.samples,
        scenario.sample_rate,
        scenario.claims,
        window_size=WINDOW,
        hop_size=HOP,
        g_size=64,
        root_entropy=BENCH_SEED,
    )
    return attacked, calibration


def run_config(attacked, calibration, batch_windows, chunk_size, repeats):
    offline_scores, _, offline_alarms = offline_stream_scores(
        attacked.samples,
        attacked.claims,
        calibration,
        window_size=WINDOW,
        hop_size=HOP,
    )
    best = None
    for _ in range(repeats):
        session = StreamSession(
            attacked.replay(chunk_size=chunk_size, rate="max"),
            extractor=calibration.extractor,
            scorer=calibration.scorer,
            claims=attacked.claims,
            detector=calibration.make_detector(),
            window_size=WINDOW,
            hop_size=HOP,
            sample_rate=attacked.sample_rate,
            batch_windows=batch_windows,
        )
        metrics = session.run()
        if not metrics.ok or metrics.windows_dropped:
            raise RuntimeError(
                f"benchmark session degraded: error={metrics.error!r}, "
                f"dropped={metrics.windows_dropped}"
            )
        if not np.array_equal(metrics.scores, offline_scores):
            raise RuntimeError(
                "streamed scores diverged from the offline oracle; "
                "the benchmark would be measuring the wrong code"
            )
        if metrics.alarms != offline_alarms:
            raise RuntimeError("streamed alarms diverged from the offline oracle")
        if best is None or metrics.wall_seconds < best.wall_seconds:
            best = metrics
    lat = best.latency_percentiles()
    row = {
        "batch_windows": batch_windows,
        "chunk_size": chunk_size,
        "windows_scored": best.windows_scored,
        "alarms": len(best.alarms),
        "wall_seconds": best.wall_seconds,
        "windows_per_second": best.windows_per_second,
        "realtime_factor": best.realtime_factor,
        "latency_p50_ms": lat["p50_ms"],
        "latency_p95_ms": lat["p95_ms"],
        "latency_max_ms": lat["max_ms"],
    }
    print(
        f"  batch={batch_windows:3d} chunk={chunk_size:5d}: "
        f"{row['windows_per_second']:7.0f} win/s "
        f"({row['realtime_factor']:6.1f}x real time)  "
        f"p50={row['latency_p50_ms']:6.1f}ms p95={row['latency_p95_ms']:6.1f}ms"
    )
    return row


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="seconds-scale CI run (small trace, same JSON schema)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_streaming.json",
        help="output JSON path (default: repo-root BENCH_streaming.json)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        configs, moves, repeats = SMOKE_CONFIGS, 2, 1
    else:
        configs, moves, repeats = FULL_CONFIGS, 6, 3

    print(f"bench_streaming ({'smoke' if args.smoke else 'full'}):")
    t0 = time.perf_counter()
    attacked, calibration = build_workload(moves)
    calibration_seconds = time.perf_counter() - t0
    duration = attacked.duration
    print(
        f"  workload: {len(attacked.samples)} samples "
        f"({duration:.1f}s of audio at {attacked.sample_rate:g} Hz), "
        f"calibrated in {calibration_seconds:.2f}s"
    )

    rows = [
        run_config(attacked, calibration, batch_windows, chunk_size, repeats)
        for batch_windows, chunk_size in configs
    ]
    headline = max(r["realtime_factor"] for r in rows)

    report = {
        "schema": SCHEMA,
        "smoke": bool(args.smoke),
        "cpu_count": os.cpu_count(),
        "seed": BENCH_SEED,
        "sample_rate": attacked.sample_rate,
        "window_size": WINDOW,
        "hop_size": HOP,
        "trace_seconds": duration,
        "calibration_seconds": calibration_seconds,
        # Headline: best sustained real-time factor across configs.
        "realtime_factor": headline,
        "realtime_capable": headline >= 1.0,
        "configs": rows,
        "methodology": (
            "One fixed-seed synthetic printer trace (5 kHz-band audio at "
            "12 kHz sampling) with two forged-claim spans is replayed at "
            "max rate through StreamSession for each (batch_windows, "
            "chunk_size) config; best wall time of N repeats. Every run "
            "is checked bitwise against the offline oracle "
            "(offline_stream_scores) before being timed as valid. "
            "realtime_factor = audio seconds processed per wall second "
            "on one core (>= 1.0 means the monitor keeps up with a live "
            "microphone); latency percentiles are per-batch scoring "
            "times. The headline realtime_factor is the best config's."
        ),
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    print(
        f"headline: {headline:.1f}x real time "
        f"({'meets' if headline >= 1.0 else 'FAILS'} the >= 1.0 target)"
    )
    return 0 if headline >= 1.0 else 1


if __name__ == "__main__":
    raise SystemExit(main())
