"""Ablation: generator objective — paper-literal minimax vs the
non-saturating heuristic.

Algorithm 2's Line 10 descends ``log(1 - D(G(z|c)))``; Goodfellow et
al. recommend ``-log D(G(z|c))`` in practice.  Both are implemented;
this ablation compares their training dynamics and downstream leakage.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import BENCH_SEED, shape_check
from repro.gan import ConditionalGAN, WassersteinConditionalGAN
from repro.security import SideChannelAttacker
from repro.utils.tables import format_table

ITERATIONS = 1500


def _attack_accuracy(model, test):
    attacker = SideChannelAttacker(
        model, test.unique_conditions(), h=0.2, g_size=200, seed=BENCH_SEED
    ).fit()
    return attacker.evaluate(test).accuracy


def _run(train, test, loss_name):
    cgan = ConditionalGAN(
        train.feature_dim,
        train.condition_dim,
        generator_loss=loss_name,
        seed=BENCH_SEED,
    )
    cgan.train(train, iterations=ITERATIONS, batch_size=32)
    final = cgan.history.final()
    acc = _attack_accuracy(cgan, test)
    # Early-phase generator progress: how fast g_loss fell in the first 20%.
    head = np.mean(cgan.history.g_loss[: ITERATIONS // 5])
    tail = np.mean(cgan.history.g_loss[-ITERATIONS // 5 :])
    return final["d_loss"], head, tail, acc


def _run_wgan(train, test):
    wgan = WassersteinConditionalGAN(
        train.feature_dim, train.condition_dim, seed=BENCH_SEED
    )
    wgan.train(train, iterations=ITERATIONS, k_disc=5, batch_size=32)
    final = wgan.history.final()
    head = np.mean(wgan.history.g_loss[: ITERATIONS // 5])
    tail = np.mean(wgan.history.g_loss[-ITERATIONS // 5 :])
    return final["d_loss"], head, tail, _attack_accuracy(wgan, test)


def test_ablation_generator_loss(benchmark, bench_split):
    train, test = bench_split
    res_ns = benchmark.pedantic(
        _run, args=(train, test, "non_saturating"), iterations=1, rounds=1
    )
    res_mm = _run(train, test, "minimax")
    res_wg = _run_wgan(train, test)

    rows = [
        ["non_saturating (default)", *res_ns],
        ["minimax (paper-literal)", *res_mm],
        ["wasserstein (extension)", *res_wg],
    ]
    print()
    print("=" * 70)
    print("Ablation: generator objective (Algorithm 2 Line 10)")
    print("=" * 70)
    print(
        format_table(
            rows,
            ["objective", "final D loss", "early G loss", "late G loss",
             "attack accuracy"],
            title=f"{ITERATIONS} iterations, case-study dataset",
        )
    )
    print()
    print("-- shape checks --")
    print(
        shape_check(
            "all objectives produce usable leakage (above chance)",
            min(res_ns[3], res_mm[3], res_wg[3]) > 1 / 3,
        )
    )
    print(
        shape_check(
            "standard objectives share fixed points: comparable final D loss",
            abs(res_ns[0] - res_mm[0]) < 1.0,
        )
    )
    print(
        "note: the wasserstein row's losses are critic objectives, not"
        "\nBCE values - compare its attack accuracy, not its loss column."
    )
