"""Ablation: attacker capability as training-data volume.

The paper: "The amount of data given for training can also be modified
according to the attacker capability or attack detection model's
resources".  This ablation trains CGANs on growing fractions of the
recording and measures side-channel inference accuracy — the leakage
an attacker with that much data achieves.
"""

from __future__ import annotations

from benchmarks.conftest import BENCH_SEED, shape_check
from repro.gan import ConditionalGAN
from repro.security import leakage_vs_training_data
from repro.utils.tables import format_table

FRACTIONS = (0.2, 0.4, 0.7, 1.0)
ITERATIONS = 1000
N_SEEDS = 3  # GAN training is stochastic; average the accuracy per point.


def _averaged_study(dataset):
    per_seed = []
    for s in range(N_SEEDS):
        def make(_s=s):
            return ConditionalGAN(
                dataset.feature_dim, dataset.condition_dim, seed=BENCH_SEED + _s
            )

        per_seed.append(
            leakage_vs_training_data(
                make,
                dataset,
                fractions=FRACTIONS,
                iterations=ITERATIONS,
                h=0.2,
                seed=BENCH_SEED + s,
            )
        )
    # Average accuracies across seeds, keep fraction/n_train of seed 0.
    out = []
    for i, (frac, n_train, _acc) in enumerate(per_seed[0]):
        mean_acc = sum(run[i][2] for run in per_seed) / N_SEEDS
        out.append((frac, n_train, mean_acc))
    return out


def test_ablation_attacker_data_volume(benchmark, bench_dataset):
    results = benchmark.pedantic(
        _averaged_study, args=(bench_dataset,), iterations=1, rounds=1
    )
    rows = [
        [f"{frac:.0%}", n_train, acc, acc / (1 / 3)]
        for frac, n_train, acc in results
    ]
    print()
    print("=" * 70)
    print("Ablation: leakage accuracy vs attacker training-data volume")
    print("=" * 70)
    print(
        format_table(
            rows,
            ["data fraction", "n_train", "attack accuracy", "x over chance"],
            title=f"CGAN {ITERATIONS} iterations per setting, h=0.2",
        )
    )
    print()
    accs = [acc for _f, _n, acc in results]
    print("-- shape checks --")
    print(shape_check("full-data attacker leaks above chance", accs[-1] > 1 / 3))
    print(
        shape_check(
            "more data does not hurt the attacker (within noise)",
            accs[-1] >= accs[0] - 0.1,
        )
    )
