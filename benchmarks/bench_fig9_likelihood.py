"""Figure 9: average correct vs incorrect likelihood over training
iterations for Cond = [1, 0, 0].

The paper: "over increasing iterations, the positive likelihood averages
improve.  This shows that the generator is able to accurately learn the
conditional distribution of the acoustic emissions."

This benchmark trains a fresh CGAN with generator snapshots, runs
Algorithm 3 against each snapshot for Cond1, and plots both averages
against the snapshot iteration.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import BENCH_SEED, shape_check
from repro.gan import ConditionalGAN
from repro.security import security_likelihood_analysis
from repro.utils.ascii_plot import ascii_line_plot
from repro.utils.tables import format_table

ITERATIONS = 1200
SNAPSHOT_EVERY = 60
H = 0.2
G_SIZE = 300


def _train_with_snapshots(train):
    cgan = ConditionalGAN(
        train.feature_dim, train.condition_dim, seed=BENCH_SEED
    )
    cgan.train(
        train,
        iterations=ITERATIONS,
        batch_size=32,
        snapshot_every=SNAPSHOT_EVERY,
    )
    return cgan


def _likelihood_trajectory(cgan, train, test):
    """Cor/Inc averaged over all 100 features per snapshot.

    The per-feature likelihood of a single snapshot is noisy (one small
    Parzen fit per snapshot); averaging over the full feature set shows
    the learning trend the paper plots.
    """
    cond1 = np.array([1.0, 0.0, 0.0])
    iters, cor, inc = [], [], []
    for iteration, generator in cgan.snapshots:
        def sampler(cond, n, rng, _g=generator, _c=cgan):
            z = _c.noise.sample(n, rng)
            conds = np.tile(np.asarray(cond, dtype=float), (n, 1))
            return _g.predict(np.hstack([z, conds]))

        res = security_likelihood_analysis(
            sampler,
            test,
            conditions=cond1[None, :],
            h=H,
            g_size=G_SIZE,
            seed=BENCH_SEED,
        )
        iters.append(iteration)
        cor.append(float(res.avg_correct[0].mean()))
        inc.append(float(res.avg_incorrect[0].mean()))
    return "all 100 (averaged)", iters, cor, inc


def _report(ft, iters, cor, inc):
    print()
    print("=" * 70)
    print("Figure 9 reproduction: Avg Cor/Inc likelihood vs iteration, "
          "Cond=[1,0,0]")
    print("=" * 70)
    print(
        ascii_line_plot(
            {"AvgCorLike": cor, "AvgIncLike": inc},
            title=f"likelihoods on feature #{ft} (h={H})",
            xlabel=f"snapshot iteration {iters[0]} .. {iters[-1]}",
            ylabel="avg likelihood",
        )
    )
    rows = [[it, c, i, c - i] for it, c, i in zip(iters, cor, inc)]
    print()
    print(
        format_table(
            rows,
            ["iteration", "AvgCorLike", "AvgIncLike", "margin"],
            title="per-snapshot values",
        )
    )
    half = len(cor) // 2
    print()
    print("-- paper-shape checks --")
    print(
        shape_check(
            "correct likelihood improves with training (late > early)",
            np.mean(cor[half:]) > np.mean(cor[:half]),
        )
    )
    print(
        shape_check(
            "late-training margin is positive (Cor > Inc)",
            np.mean(cor[half:]) > np.mean(inc[half:]),
        )
    )


def test_fig9_likelihood_trajectory(benchmark, bench_split):
    train, test = bench_split
    cgan = _train_with_snapshots(train)
    ft, iters, cor, inc = benchmark.pedantic(
        _likelihood_trajectory,
        args=(cgan, train, test),
        iterations=1,
        rounds=1,
    )
    _report(ft, iters, cor, inc)
