"""Extension benchmark: multi-channel side-channel analysis.

The paper's model is channel-agnostic ("various flows ... either in a
single sub-system, or across various sub-systems"); this benchmark
instantiates a second energy flow — the supply-current trace (power
analysis) — next to the acoustic channel, and compares single-channel
CGAN attackers against naive feature-fusion.
"""

from __future__ import annotations

from benchmarks.conftest import BENCH_SEED, shape_check
from repro.gan import ConditionalGAN
from repro.manufacturing import record_multichannel_dataset
from repro.security import SideChannelAttacker
from repro.utils.tables import format_table

ITERATIONS = 1500


def _channel_accuracy(dataset):
    train, test = dataset.split(0.25, seed=BENCH_SEED)
    cgan = ConditionalGAN(
        dataset.feature_dim, dataset.condition_dim, seed=BENCH_SEED
    )
    cgan.train(train, iterations=ITERATIONS, batch_size=32)
    attacker = SideChannelAttacker(
        cgan, test.unique_conditions(), h=0.2, g_size=200, seed=BENCH_SEED
    ).fit()
    return attacker.evaluate(test).accuracy


def test_multichannel_fusion(benchmark):
    recording = record_multichannel_dataset(
        n_moves_per_axis=30, seed=BENCH_SEED
    )
    results = {}
    for i, (label, ds) in enumerate(
        (
            ("acoustic (50-5000 Hz, CWT)", recording.acoustic),
            ("power (10-2375 Hz + stats)", recording.power),
            ("fused (concatenated)", recording.fused),
        )
    ):
        if i == 0:
            results[label] = benchmark.pedantic(
                _channel_accuracy, args=(ds,), iterations=1, rounds=1
            )
        else:
            results[label] = _channel_accuracy(ds)

    rows = [[label, ds_len, acc, acc / (1 / 3)] for (label, acc), ds_len in zip(
        results.items(),
        [recording.acoustic.feature_dim, recording.power.feature_dim,
         recording.fused.feature_dim],
    )]
    print()
    print("=" * 70)
    print("Extension: multi-channel leakage (acoustic vs power vs fusion)")
    print("=" * 70)
    print(
        format_table(
            rows,
            ["channel", "features", "attack accuracy", "x over chance"],
            title="case-study workload; chance = 0.333",
        )
    )
    print()
    print("-- shape checks --")
    print(
        shape_check(
            "both physical channels leak above chance",
            min(results.values()) > 1 / 3,
        )
    )
    print(
        shape_check(
            "fusion is no worse than the weaker channel",
            results["fused (concatenated)"]
            >= min(
                results["acoustic (50-5000 Hz, CWT)"],
                results["power (10-2375 Hz + stats)"],
            ),
        )
    )
