"""Shared benchmark fixtures.

The benchmarks regenerate the paper's tables and figures, so they use a
larger simulated recording and longer CGAN training than the unit tests.
Everything heavyweight is session-scoped and seeded: one printer
recording and one fully trained CGAN serve all benchmark files.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.gan import ConditionalGAN
from repro.manufacturing import record_case_study_dataset

#: One seed for the whole benchmark campaign (reported in EXPERIMENTS.md).
BENCH_SEED = 20190325  # DATE 2019 conference date.

TRAIN_ITERATIONS = 2500


@pytest.fixture(scope="session")
def bench_case_study():
    """The benchmark-scale simulated recording (~120 segments)."""
    return record_case_study_dataset(n_moves_per_axis=40, seed=BENCH_SEED)


@pytest.fixture(scope="session")
def bench_dataset(bench_case_study):
    return bench_case_study[0]


@pytest.fixture(scope="session")
def bench_split(bench_dataset):
    return bench_dataset.split(0.25, seed=BENCH_SEED)


@pytest.fixture(scope="session")
def bench_cgan(bench_split):
    """The case-study CGAN, trained to benchmark scale."""
    train, _test = bench_split
    cgan = ConditionalGAN(
        train.feature_dim, train.condition_dim, seed=BENCH_SEED
    )
    cgan.train(train, iterations=TRAIN_ITERATIONS, batch_size=32)
    return cgan


def shape_check(label: str, condition: bool) -> str:
    """Render a paper-shape assertion as a printable check line."""
    mark = "PASS" if condition else "FAIL"
    return f"  [{mark}] {label}"
