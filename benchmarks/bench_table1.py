"""Table I: average correct/incorrect likelihood of the acoustic energy
flow given each condition, for a single frequency feature, over the
Parzen-width sweep h in {0.2, 0.4, 0.6, 0.8, 1.0}.

Paper shape being reproduced (not absolute values — the substrate is a
simulator):

* Cor > Inc for every condition at every h (the model learned the
  conditional relationship);
* Cond3 (Z motor) is the most identifiable condition;
* Inc rises toward Cor as h grows (over-smoothing erodes the margin).
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import BENCH_SEED, shape_check
from repro.security import (
    choose_analysis_feature,
    likelihood_h_sweep,
    security_likelihood_analysis,
)
from repro.utils.tables import format_grouped_table

H_VALUES = (0.2, 0.4, 0.6, 0.8, 1.0)
G_SIZE = 300


def _run_sweep(cgan, train, test):
    ft = choose_analysis_feature(
        cgan, train, h=H_VALUES[0], objective="peak", seed=BENCH_SEED
    )
    sweep = likelihood_h_sweep(
        cgan,
        test,
        h_values=H_VALUES,
        feature_indices=[ft],
        g_size=G_SIZE,
        seed=BENCH_SEED,
    )
    return ft, sweep


def _report(ft, sweep, conditions):
    n_conds = len(conditions)
    values = []
    for ci in range(n_conds):
        row = []
        for h in H_VALUES:
            res = sweep[h]
            row.append(
                [float(res.avg_correct[ci, 0]), float(res.avg_incorrect[ci, 0])]
            )
        values.append(row)
    print()
    print("=" * 70)
    print("Table I reproduction: Avg Cor/Inc likelihood of acoustic energy")
    print(f"flows given conditions, single feature #{ft}")
    print("=" * 70)
    print(
        format_grouped_table(
            [f"Cond{i + 1}" for i in range(n_conds)],
            [f"h={h:g}" for h in H_VALUES],
            ["Cor", "Inc"],
            values,
            title="(rows: Cond1=X motor, Cond2=Y motor, Cond3=Z motor)",
        )
    )
    print()
    print("-- paper-shape checks --")
    cor = np.array([[v[0] for v in row] for row in values])  # (conds, hs)
    inc = np.array([[v[1] for v in row] for row in values])
    print(
        shape_check(
            "Cor > Inc for every condition at every h",
            bool(np.all(cor > inc)),
        )
    )
    margins = (cor - inc)[:, 0]  # At h=0.2.
    print(
        shape_check(
            "Cond3 (Z motor) is the most identifiable at h=0.2",
            int(np.argmax(margins)) == 2,
        )
    )
    print(
        shape_check(
            "Inc rises with h (over-smoothing) for every condition",
            bool(np.all(inc[:, -1] > inc[:, 0])),
        )
    )
    print(
        shape_check(
            "margin shrinks from h=0.2 to h=1.0 for every condition",
            bool(np.all((cor - inc)[:, -1] < (cor - inc)[:, 0])),
        )
    )
    print()
    print("paper values for reference (physical testbed):")
    print("  Cond1 h=0.2: Cor 0.6000 Inc 0.2245 | h=1: Cor 0.6437 Inc 0.3856")
    print("  Cond2 h=0.2: Cor 0.5750 Inc 0.3887 | h=1: Cor 0.5532 Inc 0.3978")
    print("  Cond3 h=0.2: Cor 0.6556 Inc 0.3876 | h=1: Cor 0.6556 Inc 0.3985")


def test_table1_h_sweep(benchmark, bench_cgan, bench_split):
    train, test = bench_split

    ft, sweep = _run_sweep(bench_cgan, train, test)
    _report(ft, sweep, test.unique_conditions())

    # Benchmark the core Algorithm 3 call at the paper's default h.
    benchmark(
        security_likelihood_analysis,
        bench_cgan,
        test,
        feature_indices=[ft],
        h=0.2,
        g_size=G_SIZE,
        seed=BENCH_SEED,
    )
