"""Ablation: side-channel defenses scored by the GAN-Sec attacker.

GAN-Sec's design-time loop closes here: the CGAN that measured the
leak scores candidate defenses (active acoustic masking, feed-rate
dithering, both) by re-running the attack on the defended system.
"""

from __future__ import annotations

from benchmarks.conftest import BENCH_SEED, shape_check
from repro.security.defenses import (
    AcousticMasking,
    CombinedDefense,
    FeedRateDithering,
    evaluate_defense,
)
from repro.utils.tables import format_table

SETTINGS = (
    ("masking x1", AcousticMasking(level=1.0)),
    ("masking x4", AcousticMasking(level=4.0)),
    ("feed dithering 40%", FeedRateDithering(0.4)),
    (
        "masking x4 + dithering 40%",
        CombinedDefense([FeedRateDithering(0.4), AcousticMasking(level=4.0)]),
    ),
)


def test_ablation_defenses(benchmark):
    reports = {}
    for i, (label, defense) in enumerate(SETTINGS):
        run = lambda d=defense: evaluate_defense(
            d, n_moves_per_axis=25, iterations=1200, seed=BENCH_SEED
        )
        if i == 0:
            reports[label] = benchmark.pedantic(run, iterations=1, rounds=1)
        else:
            reports[label] = run()

    baseline_acc = next(iter(reports.values())).baseline_accuracy
    rows = [["(no defense)", baseline_acc, 0.0,
             next(iter(reports.values())).baseline_mi, 0.0]]
    for label, rep in reports.items():
        rows.append(
            [label, rep.defended_accuracy, rep.accuracy_reduction,
             rep.defended_mi, rep.mi_reduction_bits]
        )
    print()
    print("=" * 70)
    print("Ablation: defenses scored by the GAN-Sec attacker")
    print("=" * 70)
    print(
        format_table(
            rows,
            ["defense", "attack accuracy", "accuracy drop",
             "mean MI (bits)", "MI drop"],
            title="case-study workload; chance accuracy = 0.333",
        )
    )
    print()
    print("-- shape checks --")
    print(
        shape_check(
            "every defense reduces MI leakage",
            all(rep.mi_reduction_bits > 0 for rep in reports.values()),
        )
    )
    print(
        shape_check(
            "stronger masking reduces MI more",
            reports["masking x4"].mi_reduction_bits
            > reports["masking x1"].mi_reduction_bits,
        )
    )
    print(
        shape_check(
            "combined defense is the strongest (accuracy drop)",
            reports["masking x4 + dithering 40%"].accuracy_reduction
            >= max(
                reports["masking x4"].accuracy_reduction,
                reports["feed dithering 40%"].accuracy_reduction,
            )
            - 0.05,
        )
    )
