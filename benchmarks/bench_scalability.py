"""Scalability: Algorithm 1 on growing CPPS architectures.

The paper motivates the "graph search and pruning algorithm to reduce
the complexity of the model": without pruning, the number of candidate
CGANs grows quadratically in the number of flows.  This benchmark runs
Algorithm 1 over synthetic factories of increasing size and reports how
pruning (reachability + data coverage) cuts the modeling workload.
"""

from __future__ import annotations

from benchmarks.conftest import BENCH_SEED, shape_check
from repro.graph.builder import generate
from repro.graph.generators import random_factory
from repro.utils.tables import format_table

SIZES = (2, 4, 8, 16)


def _measure(n_subsystems):
    arch = random_factory(n_subsystems, seed=BENCH_SEED)
    n_flows = len(arch.flows)
    # Historical data exists only for the signal flows into each
    # sub-system and the environment emissions (a realistic monitoring
    # deployment) — pruning has real work to do.
    observed = {
        f.name
        for f in arch.flows.values()
        if f.is_signal or (f.is_energy and not f.intentional)
    }
    result = generate(arch, observed)
    all_ordered_pairs = n_flows * (n_flows - 1)
    return {
        "subsystems": n_subsystems,
        "components": len(arch.component_names()),
        "flows": n_flows,
        "all pairs": all_ordered_pairs,
        "FP_F (reachable)": len(result.candidate_pairs),
        "FP_T (trainable)": len(result.trainable_pairs),
    }


def test_algorithm1_scalability(benchmark):
    rows = [_measure(n) for n in SIZES]
    # Benchmark the largest instance.
    largest = random_factory(SIZES[-1], seed=BENCH_SEED)
    observed = {
        f.name
        for f in largest.flows.values()
        if f.is_signal or (f.is_energy and not f.intentional)
    }
    benchmark(generate, largest, observed)

    print()
    print("=" * 70)
    print("Scalability: Algorithm 1 pruning on synthetic factories")
    print("=" * 70)
    print(
        format_table(
            [list(r.values()) for r in rows],
            list(rows[0].keys()),
            title="candidate-CGAN reduction by reachability + data pruning",
        )
    )
    print()
    print("-- shape checks --")
    print(
        shape_check(
            "reachability pruning always cuts the quadratic pair count",
            all(r["FP_F (reachable)"] < r["all pairs"] for r in rows),
        )
    )
    print(
        shape_check(
            "data pruning cuts further",
            all(r["FP_T (trainable)"] <= r["FP_F (reachable)"] for r in rows)
            and any(r["FP_T (trainable)"] < r["FP_F (reachable)"] for r in rows),
        )
    )
    largest_row = rows[-1]
    reduction = 1 - largest_row["FP_T (trainable)"] / largest_row["all pairs"]
    print(
        f"  [info] at {SIZES[-1]} sub-systems, pruning removes "
        f"{reduction:.1%} of the {largest_row['all pairs']} possible CGANs"
    )
