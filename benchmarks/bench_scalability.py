"""Scalability: Algorithm 1 on growing CPPS architectures, and the
parallel pair-training runtime on multi-pair workloads.

The paper motivates the "graph search and pruning algorithm to reduce
the complexity of the model": without pruning, the number of candidate
CGANs grows quadratically in the number of flows.  This benchmark runs
Algorithm 1 over synthetic factories of increasing size and reports how
pruning (reachability + data coverage) cuts the modeling workload.

The second half benchmarks Algorithm 2 at scale: the surviving pairs
are independent CGANs, so ``GANSec.train_models`` fans them out over
the :mod:`repro.runtime` executors.  The worker sweep reports
wall-clock per worker count and verifies that every schedule produces
bitwise-identical generator weights.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import BENCH_SEED, shape_check
from repro.flows.dataset import FlowPairDataset
from repro.graph.builder import generate
from repro.graph.generators import random_factory
from repro.pipeline import CGANConfig, FlowPairKey, GANSec, GANSecConfig
from repro.utils.tables import format_table

SIZES = (2, 4, 8, 16)

#: Worker counts swept by the parallel-training benchmark.
WORKER_SWEEP = (1, 2, 4)
TRAIN_PAIRS = 4
TRAIN_ITERATIONS = 400


def _measure(n_subsystems):
    arch = random_factory(n_subsystems, seed=BENCH_SEED)
    n_flows = len(arch.flows)
    # Historical data exists only for the signal flows into each
    # sub-system and the environment emissions (a realistic monitoring
    # deployment) — pruning has real work to do.
    observed = {
        f.name
        for f in arch.flows.values()
        if f.is_signal or (f.is_energy and not f.intentional)
    }
    result = generate(arch, observed)
    all_ordered_pairs = n_flows * (n_flows - 1)
    return {
        "subsystems": n_subsystems,
        "components": len(arch.component_names()),
        "flows": n_flows,
        "all pairs": all_ordered_pairs,
        "FP_F (reachable)": len(result.candidate_pairs),
        "FP_T (trainable)": len(result.trainable_pairs),
    }


def test_algorithm1_scalability(benchmark):
    rows = [_measure(n) for n in SIZES]
    # Benchmark the largest instance.
    largest = random_factory(SIZES[-1], seed=BENCH_SEED)
    observed = {
        f.name
        for f in largest.flows.values()
        if f.is_signal or (f.is_energy and not f.intentional)
    }
    benchmark(generate, largest, observed)

    print()
    print("=" * 70)
    print("Scalability: Algorithm 1 pruning on synthetic factories")
    print("=" * 70)
    print(
        format_table(
            [list(r.values()) for r in rows],
            list(rows[0].keys()),
            title="candidate-CGAN reduction by reachability + data pruning",
        )
    )
    print()
    print("-- shape checks --")
    print(
        shape_check(
            "reachability pruning always cuts the quadratic pair count",
            all(r["FP_F (reachable)"] < r["all pairs"] for r in rows),
        )
    )
    print(
        shape_check(
            "data pruning cuts further",
            all(r["FP_T (trainable)"] <= r["FP_F (reachable)"] for r in rows)
            and any(r["FP_T (trainable)"] < r["FP_F (reachable)"] for r in rows),
        )
    )
    largest_row = rows[-1]
    reduction = 1 - largest_row["FP_T (trainable)"] / largest_row["all pairs"]
    print(
        f"  [info] at {SIZES[-1]} sub-systems, pruning removes "
        f"{reduction:.1%} of the {largest_row['all pairs']} possible CGANs"
    )


def _multi_pair_workload(n_pairs: int):
    """A factory architecture plus synthetic datasets for *n_pairs* of
    its trainable flow pairs."""
    arch = random_factory(4, seed=BENCH_SEED)
    observed = {
        f.name
        for f in arch.flows.values()
        if f.is_signal or (f.is_energy and not f.intentional)
    }
    result = generate(arch, observed)
    keys = [FlowPairKey(*fp.names) for fp in result.trainable_pairs[:n_pairs]]
    rng = np.random.default_rng(BENCH_SEED)
    data = {}
    for key in keys:
        features = rng.uniform(size=(96, 16))
        conditions = np.tile(np.eye(3), (32, 1))
        data[key] = FlowPairDataset(features, conditions, name=str(key))
    return arch, data


def _generator_checksums(pipe: GANSec) -> dict:
    return {
        str(key): {
            name: float(np.sum(w))
            for name, w in model.cgan.generator.get_weights().items()
        }
        for key, model in pipe.models.items()
    }


def test_parallel_training_worker_sweep():
    arch, data = _multi_pair_workload(TRAIN_PAIRS)
    assert len(data) >= TRAIN_PAIRS, "factory must yield enough trainable pairs"

    rows = []
    checksums = {}
    for workers in WORKER_SWEEP:
        pipe = GANSec(
            arch,
            GANSecConfig(
                cgan=CGANConfig(iterations=TRAIN_ITERATIONS), seed=BENCH_SEED
            ),
        )
        executor = "serial" if workers == 1 else "process"
        start = time.perf_counter()
        pipe.train_models(data, workers=workers, executor=executor)
        elapsed = time.perf_counter() - start
        rows.append(
            {
                "workers": workers,
                "executor": executor,
                "pairs": len(pipe.models),
                "wall-clock [s]": round(elapsed, 3),
                "speedup": round(rows[0]["wall-clock [s]"] / elapsed, 2)
                if rows
                else 1.0,
            }
        )
        checksums[workers] = _generator_checksums(pipe)

    print()
    print("=" * 70)
    print("Scalability: parallel Algorithm 2 over independent flow pairs")
    print("=" * 70)
    print(
        format_table(
            [list(r.values()) for r in rows],
            list(rows[0].keys()),
            title=(
                f"{TRAIN_PAIRS} CGANs x {TRAIN_ITERATIONS} iterations, "
                "worker sweep"
            ),
        )
    )
    print()
    print("-- shape checks --")
    serial = checksums[WORKER_SWEEP[0]]
    identical = all(checksums[w] == serial for w in WORKER_SWEEP[1:])
    print(
        shape_check(
            "parallel schedules reproduce the serial weights bitwise",
            identical,
        )
    )
    assert identical
    best = min(r["wall-clock [s]"] for r in rows)
    print(
        f"  [info] best wall-clock {best:.3f}s "
        f"(serial {rows[0]['wall-clock [s]']:.3f}s); speedup scales with "
        "physical cores available"
    )
