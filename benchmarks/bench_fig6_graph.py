"""Figure 6: G_CPPS generation for the additive-manufacturing system.

Regenerates the paper's graph decomposition — nodes C1–C4 / P1–P9, the
signal and energy flow edges, and the Algorithm 1 flow-pair extraction —
and benchmarks Algorithm 1 itself.

Run with ``pytest benchmarks/bench_fig6_graph.py --benchmark-only -s``.
"""

from __future__ import annotations

from benchmarks.conftest import shape_check
from repro.graph import adjacency_listing, flow_listing, generate, to_dot
from repro.manufacturing import (
    GCODE_FLOW,
    monitored_flow_names,
    printer_architecture,
)


def _report(result):
    lines = [
        "",
        "=" * 70,
        "Figure 6 reproduction: G_CPPS for the additive-manufacturing system",
        "=" * 70,
        result.summary(),
        "",
        "-- flows --",
        flow_listing(result.graph),
        "",
        "-- adjacency --",
        adjacency_listing(result.graph),
        "",
        "-- Graphviz DOT (paste into dot -Tpng) --",
        to_dot(result.graph),
        "",
        "-- trainable cross-domain pairs (the case study's selection) --",
    ]
    for fp in result.cross_domain_pairs():
        lines.append(f"  {fp}")
    lines += [
        "",
        "-- paper-shape checks --",
        shape_check(
            "13 components (C1-C4, P1-P9)", result.graph.number_of_nodes() == 13
        ),
        shape_check(
            "monitored emissions P2,P3,P4,P5,P8 -> P9 all trainable",
            all(
                any(fp.names == (GCODE_FLOW, f) for fp in result.trainable_pairs)
                for f in ("F14", "F15", "F16", "F17", "F18")
            ),
        ),
        shape_check("graph is acyclic (no feedback removal needed)",
                    result.removed_edges == []),
    ]
    print("\n".join(lines))


def test_fig6_graph_generation(benchmark):
    arch = printer_architecture()
    available = monitored_flow_names()
    result = benchmark(generate, arch, available)
    _report(result)
