"""Ablation: discriminator steps per generator step (Algorithm 2's k).

The paper parameterizes Algorithm 2 by a step size ``k`` and notes the
iteration counts "can be easily modified" per attacker assumptions.
This ablation sweeps k and reports final losses and attack accuracy.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import BENCH_SEED, shape_check
from repro.gan import ConditionalGAN
from repro.security import SideChannelAttacker
from repro.utils.tables import format_table

K_VALUES = (1, 2, 5)
ITERATIONS = 1200


def _train_and_attack(train, test, k):
    cgan = ConditionalGAN(
        train.feature_dim, train.condition_dim, seed=BENCH_SEED
    )
    cgan.train(train, iterations=ITERATIONS, batch_size=32, k_disc=k)
    final = cgan.history.final()
    attacker = SideChannelAttacker(
        cgan, test.unique_conditions(), h=0.2, g_size=200, seed=BENCH_SEED
    ).fit()
    accuracy = attacker.evaluate(test).accuracy
    return final["d_loss"], final["g_loss"], accuracy


def test_ablation_k_disc_steps(benchmark, bench_split):
    train, test = bench_split
    rows = []
    for k in K_VALUES:
        d_loss, g_loss, acc = _train_and_attack(train, test, k)
        rows.append([f"k={k}", d_loss, g_loss, acc])

    print()
    print("=" * 70)
    print("Ablation: discriminator steps per iteration (Algorithm 2 k)")
    print("=" * 70)
    print(
        format_table(
            rows,
            ["setting", "final D loss", "final G loss", "attack accuracy"],
            title=f"{ITERATIONS} iterations, case-study dataset",
        )
    )
    print()
    accs = [row[3] for row in rows]
    print("-- shape checks --")
    print(shape_check("all settings leak above chance (1/3)", min(accs) > 1 / 3))
    print(
        shape_check(
            "larger k strengthens D (final D loss non-increasing in k)",
            rows[-1][1] <= rows[0][1] + 0.2,
        )
    )

    # Benchmark a small fixed-k training burst.
    def burst():
        cgan = ConditionalGAN(
            train.feature_dim, train.condition_dim, seed=BENCH_SEED
        )
        cgan.train(train, iterations=50, batch_size=32, k_disc=1)
        return cgan

    benchmark.pedantic(burst, iterations=1, rounds=3)
