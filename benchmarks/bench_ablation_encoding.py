"""Ablation: one-hot single-motor encoding vs the 2^3 combination
encoding (Section IV-B's proposed extension).

The single-motor encoder can only label one-motor-at-a-time moves; the
combination encoder also labels diagonal (X+Y) infill and idle dwells.
This ablation prints the per-encoder dataset coverage and attacker
accuracy on a realistic layered-object workload.
"""

from __future__ import annotations

from benchmarks.conftest import BENCH_SEED, shape_check
from repro.dsp.features import FrequencyFeatureExtractor
from repro.flows.encoding import CombinationEncoder, SingleMotorEncoder
from repro.gan import ConditionalGAN
from repro.manufacturing import (
    Printer3D,
    build_dataset,
    calibration_suite,
    collect_segments,
    layered_object_program,
)
from repro.security import SideChannelAttacker
from repro.utils.rng import as_rng
from repro.utils.tables import format_table

ITERATIONS = 1200


def _mixed_runs():
    rng = as_rng(BENCH_SEED)
    printer = Printer3D(sample_rate=12000.0, seed=rng)
    programs = calibration_suite(18, seed=rng)
    programs += [layered_object_program(6, name=f"box-{i}") for i in range(3)]
    return printer, [printer.run(p, seed=rng) for p in programs]


def _evaluate(encoder, segments, total_segments):
    extractor = FrequencyFeatureExtractor(12000.0, n_bins=100)
    ds = build_dataset(segments, extractor, encoder)
    train, test = ds.split(0.25, seed=BENCH_SEED)
    cgan = ConditionalGAN(
        ds.feature_dim, ds.condition_dim, seed=BENCH_SEED
    )
    cgan.train(train, iterations=ITERATIONS, batch_size=32)
    attacker = SideChannelAttacker(
        cgan, test.unique_conditions(), h=0.2, g_size=150, seed=BENCH_SEED
    ).fit()
    report = attacker.evaluate(test)
    coverage = len(ds) / total_segments
    return coverage, len(test.unique_conditions()), report


def test_ablation_condition_encoding(benchmark):
    printer, runs = _mixed_runs()
    single_segments = collect_segments(runs)
    combo_segments = collect_segments(runs, include_idle=True)
    total = len(combo_segments)

    cov_s, n_conds_s, rep_s = _evaluate(
        SingleMotorEncoder(), single_segments, total
    )
    cov_c, n_conds_c, rep_c = benchmark.pedantic(
        _evaluate,
        args=(CombinationEncoder(), combo_segments, total),
        iterations=1,
        rounds=1,
    )

    rows = [
        ["single-motor (paper)", 3, n_conds_s, f"{cov_s:.0%}",
         rep_s.accuracy, rep_s.leakage_ratio],
        ["2^3 combination (ext)", 8, n_conds_c, f"{cov_c:.0%}",
         rep_c.accuracy, rep_c.leakage_ratio],
    ]
    print()
    print("=" * 70)
    print("Ablation: condition encoding (Sec IV-B extension)")
    print("=" * 70)
    print(
        format_table(
            rows,
            ["encoder", "slots", "observed conds", "segment coverage",
             "attack accuracy", "x over chance"],
            title="workload: calibration moves + layered boxes (diagonal infill)",
        )
    )
    print()
    print("-- shape checks --")
    print(
        shape_check(
            "combination encoder covers more of the workload",
            cov_c > cov_s,
        )
    )
    print(
        shape_check(
            "both encoders leak above chance",
            rep_s.leakage_ratio > 1.0 and rep_c.leakage_ratio > 1.0,
        )
    )
    print(
        shape_check(
            "harder multi-class problem: combination accuracy below single",
            rep_c.accuracy <= rep_s.accuracy + 0.05,
        )
    )
