"""Ablation: CWT features (paper) vs STFT features, and bin count.

Section IV-B motivates the continuous wavelet transform; this ablation
quantifies what it buys over a plain rFFT/STFT binning, and how leakage
varies with the number of frequency bins.
"""

from __future__ import annotations

from benchmarks.conftest import BENCH_SEED, shape_check
from repro.dsp.features import FrequencyFeatureExtractor
from repro.flows.encoding import SingleMotorEncoder
from repro.gan import ConditionalGAN
from repro.manufacturing import (
    Printer3D,
    build_dataset,
    calibration_suite,
    collect_segments,
)
from repro.security import SideChannelAttacker
from repro.utils.rng import as_rng
from repro.utils.tables import format_table

ITERATIONS = 1200
SETTINGS = (
    ("cwt", 100),
    ("cwt", 30),
    ("stft", 100),
    ("stft", 30),
)


def _segments():
    rng = as_rng(BENCH_SEED)
    printer = Printer3D(sample_rate=12000.0, seed=rng)
    runs = [printer.run(p, seed=rng) for p in calibration_suite(25, seed=rng)]
    return collect_segments(runs)


def _evaluate(segments, method, n_bins):
    extractor = FrequencyFeatureExtractor(
        12000.0, n_bins=n_bins, method=method
    )
    ds = build_dataset(segments, extractor, SingleMotorEncoder())
    train, test = ds.split(0.25, seed=BENCH_SEED)
    cgan = ConditionalGAN(ds.feature_dim, ds.condition_dim, seed=BENCH_SEED)
    cgan.train(train, iterations=ITERATIONS, batch_size=32)
    attacker = SideChannelAttacker(
        cgan, test.unique_conditions(), h=0.2, g_size=150, seed=BENCH_SEED
    ).fit()
    return attacker.evaluate(test).accuracy


def test_ablation_feature_extraction(benchmark):
    segments = _segments()
    results = {}
    for method, n_bins in SETTINGS:
        if (method, n_bins) == SETTINGS[0]:
            results[(method, n_bins)] = benchmark.pedantic(
                _evaluate,
                args=(segments, method, n_bins),
                iterations=1,
                rounds=1,
            )
        else:
            results[(method, n_bins)] = _evaluate(segments, method, n_bins)

    rows = [
        [f"{method} / {n_bins} bins", acc, acc / (1 / 3)]
        for (method, n_bins), acc in results.items()
    ]
    print()
    print("=" * 70)
    print("Ablation: feature extraction (CWT vs STFT, bin count)")
    print("=" * 70)
    print(
        format_table(
            rows,
            ["features", "attack accuracy", "x over chance"],
            title=f"CGAN {ITERATIONS} iterations per setting, h=0.2",
        )
    )
    print()
    print("-- shape checks --")
    print(
        shape_check(
            "every feature pipeline leaks above chance",
            min(results.values()) > 1 / 3,
        )
    )
    best = max(results, key=results.get)
    print(
        f"  [info] best pipeline on this substrate: {best[0]}/{best[1]} bins "
        f"(accuracy {results[best]:.3f} vs cwt/100 {results[('cwt', 100)]:.3f})"
    )
    print(
        "note: the paper does not compare feature pipelines; on this"
        "\nsynthetic substrate (stationary tonal segments) plain STFT binning"
        "\ncan beat the CWT, whose strength is transient-rich physical"
        "\nrecordings where joint time-frequency resolution matters."
    )
