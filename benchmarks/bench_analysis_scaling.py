"""Scaling of the parallel, batched security-analysis engine.

Three measurements around the Algorithm 3 runtime redesign:

1. **Worker sweep** — ``run_security_analysis`` over a multi-pair,
   multi-condition workload at 1/2/4/8 workers, verifying that every
   schedule reproduces the serial likelihood tables bitwise (the
   engine's core determinism guarantee).  Wall-clock speedup tracks the
   physical cores available; the bitwise check holds everywhere.
2. **Batched vs naive scoring** — ``ParzenWindow.score_batch`` (blocked
   matrix operations) against the per-point Python loop Algorithm 3
   literally describes.  This vectorization win does not need multiple
   cores.
3. **Sample-cache sweep** — a Table-I-style ``h`` sweep with a shared
   :class:`~repro.runtime.analysis.ConditionSampleCache`, which pays for
   generation once per condition instead of once per (condition, h).
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import BENCH_SEED, shape_check
from repro.flows.dataset import FlowPairDataset
from repro.runtime.analysis import ConditionSampleCache
from repro.security.engine import (
    AnalysisTarget,
    run_security_analysis,
    security_analysis_h_sweep,
)
from repro.security.parzen import ParzenWindow
from repro.utils.tables import format_table

#: Worker counts swept by the analysis fan-out benchmark.
WORKER_SWEEP = (1, 2, 4, 8)
N_PAIRS = 4
N_CONDITIONS = 6
N_TEST = 400
N_FEATURES = 24
G_SIZE = 300


def bench_sampler(condition, n, rng):
    """Deterministic, picklable generator stand-in (no training cost).

    A little deliberate compute per draw keeps the per-job cost realistic
    enough for the fan-out to have something to parallelize.
    """
    cond = np.asarray(condition, dtype=float).ravel()
    center = float(cond @ np.linspace(0.1, 0.9, cond.size))
    draws = rng.normal(center, 0.05, size=(n, N_FEATURES))
    # Simulated generator forward pass (matmul-bound like the real CGAN).
    weights = np.outer(np.linspace(-1, 1, N_FEATURES), np.linspace(1, -1, N_FEATURES))
    for _ in range(8):
        draws = np.tanh(draws @ weights) * 0.05 + draws
    return draws


def _workload():
    rng = np.random.default_rng(BENCH_SEED)
    conditions = np.eye(N_CONDITIONS)
    targets = []
    for p in range(N_PAIRS):
        rows = np.repeat(conditions, N_TEST // N_CONDITIONS, axis=0)
        centers = rows @ np.linspace(0.1, 0.9, N_CONDITIONS)
        features = rng.normal(
            centers[:, None], 0.05, size=(rows.shape[0], N_FEATURES)
        )
        targets.append(
            AnalysisTarget(
                key=f"pair-{p}",
                sampler=bench_sampler,
                test_set=FlowPairDataset(features, rows, name=f"pair-{p}"),
            )
        )
    return targets


def _tables(results):
    return {
        key: (r.avg_correct.tobytes(), r.avg_incorrect.tobytes())
        for key, r in results.items()
    }


def test_analysis_worker_sweep():
    targets = _workload()
    rows = []
    tables = {}
    for workers in WORKER_SWEEP:
        executor = "serial" if workers == 1 else "process"
        start = time.perf_counter()
        results = run_security_analysis(
            targets,
            h=0.2,
            g_size=G_SIZE,
            root_entropy=BENCH_SEED,
            workers=workers,
            executor=executor,
        )
        elapsed = time.perf_counter() - start
        rows.append(
            {
                "workers": workers,
                "executor": executor,
                "jobs": N_PAIRS * N_CONDITIONS,
                "wall-clock [s]": round(elapsed, 3),
                "speedup": round(rows[0]["wall-clock [s]"] / elapsed, 2)
                if rows
                else 1.0,
            }
        )
        tables[workers] = _tables(results)

    print()
    print("=" * 70)
    print("Scaling: parallel Algorithm 3 fan-out (per-(pair, condition) jobs)")
    print("=" * 70)
    print(
        format_table(
            [list(r.values()) for r in rows],
            list(rows[0].keys()),
            title=(
                f"{N_PAIRS} pairs x {N_CONDITIONS} conditions x "
                f"{N_FEATURES} features, GSize={G_SIZE}"
            ),
        )
    )
    print()
    print("-- shape checks --")
    serial = tables[WORKER_SWEEP[0]]
    identical = all(tables[w] == serial for w in WORKER_SWEEP[1:])
    print(
        shape_check(
            "every parallel schedule reproduces the serial tables bitwise",
            identical,
        )
    )
    assert identical
    print(
        f"  [info] serial {rows[0]['wall-clock [s]']:.3f}s; speedup scales "
        "with physical cores (>=3x at 8 workers on an 8-core host)"
    )


def naive_likelihood(kernels, x, h):
    """The per-point loop Algorithm 3 describes (Lines 9-13)."""
    out = np.empty(x.shape[0])
    norm = len(kernels) * (h * np.sqrt(2 * np.pi))
    for i, point in enumerate(x):
        out[i] = np.sum(np.exp(-0.5 * ((point - kernels) / h) ** 2)) / norm
    return out * h


def test_batched_vs_naive_scoring():
    # Algorithm 3's real shape: a few hundred kernels (GSize generator
    # samples) scored against many test rows — the regime where the
    # naive loop's per-point Python overhead dominates.
    rng = np.random.default_rng(BENCH_SEED)
    kernels = rng.normal(size=200)  # the paper's default GSize
    x = rng.normal(size=20000)
    pw = ParzenWindow(0.2).fit(kernels)
    pw.likelihood(x[:100])  # warm-up outside the timed region

    start = time.perf_counter()
    batched = pw.likelihood(x)
    batched_s = time.perf_counter() - start

    start = time.perf_counter()
    naive = naive_likelihood(kernels, x, 0.2)
    naive_s = time.perf_counter() - start

    print()
    print("=" * 70)
    print("Batched Parzen scoring vs the naive per-point loop")
    print("=" * 70)
    print(
        format_table(
            [
                ["naive per-point loop", round(naive_s, 4), 1.0],
                [
                    "score_batch (blocked)",
                    round(batched_s, 4),
                    round(naive_s / batched_s, 1),
                ],
            ],
            ["method", "seconds", "speedup"],
            title=f"{len(x)} test points x {len(kernels)} kernels",
        )
    )
    print()
    print("-- shape checks --")
    agree = np.allclose(batched, naive, rtol=1e-10, atol=1e-300)
    print(shape_check("blocked scoring matches the naive loop", agree))
    assert agree
    faster = batched_s < naive_s
    print(shape_check("vectorized path is faster on a single core", faster))


def test_h_sweep_cache_benefit():
    targets = _workload()[:1]
    target = targets[0]
    h_values = (0.2, 0.4, 0.6, 0.8, 1.0)

    start = time.perf_counter()
    uncached = {
        h: run_security_analysis(
            targets, h=h, g_size=G_SIZE, root_entropy=BENCH_SEED
        )[target.key]
        for h in h_values
    }
    uncached_s = time.perf_counter() - start

    cache = ConditionSampleCache()
    start = time.perf_counter()
    cached = security_analysis_h_sweep(
        target.sampler,
        target.test_set,
        h_values=h_values,
        g_size=G_SIZE,
        root_entropy=BENCH_SEED,
        pair=target.key,
        cache=cache,
    )
    cached_s = time.perf_counter() - start

    print()
    print("=" * 70)
    print("Table-I h sweep: shared sample cache vs regeneration")
    print("=" * 70)
    print(
        format_table(
            [
                ["regenerate per h", round(uncached_s, 3), "-"],
                [
                    "shared ConditionSampleCache",
                    round(cached_s, 3),
                    f"{cache.stats()['hits']} hits",
                ],
            ],
            ["strategy", "seconds", "cache"],
            title=f"{len(h_values)} widths x {N_CONDITIONS} conditions",
        )
    )
    print()
    print("-- shape checks --")
    same = all(
        np.array_equal(uncached[h].avg_correct, cached[h].avg_correct)
        and np.array_equal(uncached[h].avg_incorrect, cached[h].avg_incorrect)
        for h in h_values
    )
    print(
        shape_check(
            "cache hits are numerically identical to regeneration", same
        )
    )
    assert same
    expected_hits = N_CONDITIONS * (len(h_values) - 1)
    print(
        shape_check(
            "generation ran once per condition for the whole sweep",
            cache.stats()
            == {"entries": N_CONDITIONS, "hits": expected_hits, "misses": N_CONDITIONS},
        )
    )
