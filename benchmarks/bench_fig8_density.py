"""Figure 8: conditional probability distribution of the acoustic signal.

The paper plots the Parzen-estimated (h=0.2) conditional density of the
scaled frequency features learned by the generator.  This benchmark
reproduces the plot as, per condition, the density of the selected
feature evaluated over the [0, 1] grid — rendered as ASCII curves —
and benchmarks the Parzen fit + evaluation step.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import BENCH_SEED, shape_check
from repro.security import ParzenWindow, choose_analysis_feature
from repro.utils.ascii_plot import ascii_line_plot

H = 0.2
G_SIZE = 300
GRID = np.linspace(0.0, 1.0, 101)


def _densities(cgan, train):
    ft = choose_analysis_feature(cgan, train, h=H, objective="peak", seed=BENCH_SEED)
    curves = {}
    for i, cond in enumerate(train.unique_conditions()):
        samples = cgan.generate_for_condition(cond, G_SIZE, seed=BENCH_SEED + i)
        pw = ParzenWindow(H).fit(samples[:, ft])
        curves[f"Cond{i + 1}"] = pw.density(GRID)
    return ft, curves


def _report(ft, curves):
    print()
    print("=" * 70)
    print(f"Figure 8 reproduction: Pr(freq feature #{ft} | Cond), Parzen h={H}")
    print("=" * 70)
    print(
        ascii_line_plot(
            curves,
            title="conditional densities over the scaled feature range [0, 1]",
            xlabel="scaled frequency-feature value 0 .. 1",
            ylabel="density (multiply by h for probability)",
        )
    )
    print()
    peaks = {name: float(GRID[np.argmax(c)]) for name, c in curves.items()}
    for name, peak in peaks.items():
        print(f"{name}: density peak at feature value {peak:.2f}, "
              f"max density {curves[name].max():.3f}")
    print()
    print("-- paper-shape checks --")
    print(
        shape_check(
            "densities are proper (integrate to ~1 over the real line)",
            all(
                0.5 < np.trapezoid(c, GRID) <= 1.05
                for c in curves.values()
            ),
        )
    )
    distinct = len({round(p, 1) for p in peaks.values()}) >= 2
    print(shape_check("conditions produce distinct density peaks", distinct))


def test_fig8_conditional_density(benchmark, bench_cgan, bench_split):
    train, _test = bench_split
    ft, curves = benchmark.pedantic(
        _densities, args=(bench_cgan, train), iterations=1, rounds=1
    )
    _report(ft, curves)
