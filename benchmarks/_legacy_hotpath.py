"""Frozen pre-optimization (seed) hot-path implementations.

``bench_hotpath.py`` needs an honest "before" to measure against after
the optimized code replaces the originals in ``src/``.  This module
vendors the seed implementations verbatim (modulo imports):

* the per-scale, per-segment Morlet CWT loop (full complex ``fft``,
  kernel rebuilt for every scale on every call),
* the per-segment feature-extraction loop and the double-extracting
  ``fit().transform()`` chain the seed ``fit_transform`` performed,
* the allocating Dense/BatchNorm layers and optimizers driving the seed
  CGAN training step.

Nothing here is exported through the library; it exists only so the
benchmark's "looped"/"before" numbers keep meaning something once the
optimized code is the only implementation in ``src/``.
"""

from __future__ import annotations

import numpy as np

from repro.dsp.features import MinMaxScaler
from repro.dsp.wavelet import DEFAULT_OMEGA0, frequency_to_scale
from repro.gan.cgan import ConditionalGAN
from repro.nn.activations import Sigmoid
from repro.nn.layers import BatchNorm, Dense
from repro.nn.optimizers import SGD, Adam, RMSProp


class LegacySigmoid(Sigmoid):
    """Seed sigmoid: sign-masked gather/scatter evaluation."""

    def forward(self, x, out=None):
        out = np.empty_like(x)
        pos = x >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        ex = np.exp(x[~pos])
        out[~pos] = ex / (1.0 + ex)
        return out


# --------------------------------------------------------------------------
# Seed DSP front-end: per-scale kernel rebuild, full complex FFTs.
# --------------------------------------------------------------------------
def legacy_cwt_morlet(x, sample_rate, frequencies, *, omega0=DEFAULT_OMEGA0):
    """Seed ``cwt_morlet``: rebuilds ``psi_hat`` for every scale per call."""
    x = np.asarray(x, dtype=np.float64)
    freqs = np.asarray(frequencies, dtype=np.float64)
    n = len(x)
    scales = frequency_to_scale(freqs, sample_rate, omega0)
    w = 2.0 * np.pi * np.fft.fftfreq(n)
    xf = np.fft.fft(x)
    out = np.empty((len(freqs), n), dtype=np.complex128)
    norm_const = np.pi ** (-0.25)
    for i, s in enumerate(scales):
        sw = s * w
        psi_hat = np.zeros(n, dtype=np.float64)
        pos = w > 0
        psi_hat[pos] = norm_const * np.exp(-0.5 * (sw[pos] - omega0) ** 2)
        psi_hat *= np.sqrt(2.0 * np.pi * s)
        out[i] = np.fft.ifft(xf * psi_hat)
    return out


def legacy_average_band_energy(x, sample_rate, frequencies, *, omega0=DEFAULT_OMEGA0):
    """Seed ``average_band_energy``: full scalogram, then time mean."""
    return np.abs(
        legacy_cwt_morlet(x, sample_rate, frequencies, omega0=omega0)
    ).mean(axis=1)


def legacy_raw_feature_matrix(segments, sample_rate, frequencies):
    """Seed ``raw_feature_matrix``: python loop over segments."""
    return np.vstack(
        [legacy_average_band_energy(seg, sample_rate, frequencies) for seg in segments]
    )


def legacy_fit_transform(segments, sample_rate, frequencies):
    """Seed ``fit_transform`` = ``fit(segments).transform(segments)``.

    The chained form extracted every segment twice — once to fit the
    scaler, once to produce the transformed matrix.  Reproduced here
    faithfully because that doubling is part of the measured "before".
    """
    scaler = MinMaxScaler()
    scaler.fit(legacy_raw_feature_matrix(segments, sample_rate, frequencies))
    return scaler.transform(
        legacy_raw_feature_matrix(segments, sample_rate, frequencies)
    )


# --------------------------------------------------------------------------
# Seed NN hot path: allocating layers and optimizers.
# --------------------------------------------------------------------------
class LegacyDense(Dense):
    """Seed ``Dense``: fresh arrays for pre-activations and gradients."""

    def forward(self, x, training=False):
        x = np.asarray(x, dtype=np.float64)
        self._x = x
        self._ws = None
        pre = x @ self.W
        if self.use_bias:
            pre = pre + self.b
        self._pre = pre
        self._out = self.activation.forward(pre) if self.activation else pre
        return self._out

    def backward(self, grad_out):
        grad_out = np.asarray(grad_out, dtype=np.float64)
        if self.activation:
            grad_pre = grad_out * self.activation.backward(self._pre, self._out)
        else:
            grad_pre = grad_out
        self.dW = self._x.T @ grad_pre
        if self.use_bias:
            self.db = grad_pre.sum(axis=0)
        return grad_pre @ self.W.T


class LegacyBatchNorm(BatchNorm):
    """Seed ``BatchNorm``: rebinds running stats, allocates per step."""

    def forward(self, x, training=False):
        x = np.asarray(x, dtype=np.float64)
        if training:
            mean = x.mean(axis=0)
            var = x.var(axis=0)
            m = self.momentum
            self.running_mean = m * self.running_mean + (1 - m) * mean
            self.running_var = m * self.running_var + (1 - m) * var
        else:
            mean = self.running_mean
            var = self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean) * inv_std
        self._cache = (x_hat, inv_std) if training else None
        return self.gamma * x_hat + self.beta

    def backward(self, grad_out):
        if self._cache is None:
            inv_std = 1.0 / np.sqrt(self.running_var + self.eps)
            return grad_out * self.gamma * inv_std
        x_hat, inv_std = self._cache
        n = grad_out.shape[0]
        self.dgamma = (grad_out * x_hat).sum(axis=0)
        self.dbeta = grad_out.sum(axis=0)
        dxhat = grad_out * self.gamma
        return (
            inv_std
            / n
            * (n * dxhat - dxhat.sum(axis=0) - x_hat * (dxhat * x_hat).sum(axis=0))
        )


class LegacySGD(SGD):
    def update(self, key, param, grad):
        if self.momentum == 0.0:
            param -= self.learning_rate * grad
            return
        buf = self._state.setdefault(key, np.zeros_like(param))
        buf *= self.momentum
        buf -= self.learning_rate * grad
        if self.nesterov:
            param += self.momentum * buf - self.learning_rate * grad
        else:
            param += buf


class LegacyRMSProp(RMSProp):
    def update(self, key, param, grad):
        acc = self._state.setdefault(key, np.zeros_like(param))
        acc *= self.rho
        acc += (1.0 - self.rho) * grad * grad
        param -= self.learning_rate * grad / (np.sqrt(acc) + self.eps)


class LegacyAdam(Adam):
    def update(self, key, param, grad):
        m, v, t = self._state.setdefault(
            key, [np.zeros_like(param), np.zeros_like(param), 0]
        )
        t += 1
        m *= self.beta1
        m += (1.0 - self.beta1) * grad
        v *= self.beta2
        v += (1.0 - self.beta2) * grad * grad
        self._state[key][2] = t
        m_hat = m / (1.0 - self.beta1**t)
        v_hat = v / (1.0 - self.beta2**t)
        param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.eps)


class LegacyConditionalGAN(ConditionalGAN):
    """Seed training steps: hstack/vstack assembly, fresh noise arrays."""

    def _d_step(self, real_x, real_c, *, label_smoothing):
        from repro.nn.losses import discriminator_loss

        n = real_x.shape[0]
        z = self.sample_noise(n)
        fake_x = self.generator.forward(np.hstack([z, real_c]), training=True)
        d_in = np.vstack(
            [np.hstack([real_x, real_c]), np.hstack([fake_x, real_c])]
        )
        targets = np.vstack(
            [np.full((n, 1), 1.0 - label_smoothing), np.zeros((n, 1))]
        )
        preds = self.discriminator.forward(d_in, training=True)
        self.discriminator.backward(self._bce.gradient(preds, targets))
        self._d_opt.step(self.discriminator.layers)
        return discriminator_loss(preds[:n], preds[n:])

    def _g_step(self, cond_batch):
        from repro.nn.losses import (
            GeneratorLossMinimax,
            GeneratorLossNonSaturating,
        )

        n = cond_batch.shape[0]
        z = self.sample_noise(n)
        fake_x = self.generator.forward(np.hstack([z, cond_batch]), training=True)
        d_pred = self.discriminator.forward(
            np.hstack([fake_x, cond_batch]), training=True
        )
        grad_d_in = self.discriminator.backward(self._g_loss.gradient(d_pred))
        grad_fake = grad_d_in[:, : self.feature_dim]
        self.generator.backward(grad_fake)
        self._g_opt.step(self.generator.layers)
        g_objective = GeneratorLossMinimax().value(d_pred)
        g_loss = GeneratorLossNonSaturating().value(d_pred)
        return g_loss, g_objective


def build_legacy_cgan(feature_dim, condition_dim, *, noise_dim=16, seed=None):
    """A CGAN wired entirely from the seed (allocating) components."""
    gen = [
        LegacyDense(64, "relu", kernel_init="he_uniform"),
        LegacyDense(64, "relu", kernel_init="he_uniform"),
        LegacyDense(feature_dim, LegacySigmoid()),
    ]
    disc = [
        LegacyDense(64, "leaky_relu", kernel_init="he_uniform"),
        LegacyDense(32, "leaky_relu", kernel_init="he_uniform"),
        LegacyDense(1, LegacySigmoid()),
    ]
    return LegacyConditionalGAN(
        feature_dim,
        condition_dim,
        noise_dim=noise_dim,
        generator_layers=gen,
        discriminator_layers=disc,
        g_optimizer=LegacyAdam(2e-3),
        d_optimizer=LegacyAdam(2e-3),
        seed=seed,
    )
