"""Hot-path benchmark: CWT feature extraction and CGAN training throughput.

Measures the two optimized inner loops against the vendored seed
implementations (``benchmarks/_legacy_hotpath.py``):

* **extraction** — dataset-level feature extraction (what
  ``build_dataset`` runs): the seed's per-segment, per-scale loop with
  its double-extracting ``fit().transform()`` chain, versus the batched
  cached-filter-bank ``fit_transform``, versus a warm on-disk feature
  cache;
* **training** — Algorithm 2 iterations/sec with the seed allocating
  layers/optimizers versus the preallocated zero-allocation hot path
  (bitwise-identical weights, see ``tests/nn/test_hotpath_identity.py``).

Emits ``BENCH_hotpath.json`` (schema ``gansec-bench-hotpath/v1``) with
per-config detail plus headline geometric-mean speedups.  Run with
``--smoke`` for a seconds-scale CI variant of the same schema.

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpath.py [--smoke] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _legacy_hotpath import build_legacy_cgan, legacy_fit_transform  # noqa: E402

from repro.dsp.cache import FeatureCache  # noqa: E402
from repro.dsp.features import FrequencyFeatureExtractor  # noqa: E402
from repro.dsp.filterbank import clear_filter_bank_cache  # noqa: E402
from repro.flows.dataset import FlowPairDataset  # noqa: E402
from repro.gan.cgan import ConditionalGAN  # noqa: E402

SCHEMA = "gansec-bench-hotpath/v1"
BENCH_SEED = 20190325
SAMPLE_RATE = 12000.0

#: (segment length, segment count, stress) per extraction config.  The
#: paper-scale rows span the case study's segment-length range — 720 to
#: 4800 samples (0.06 s to 0.4 s at 12 kHz) — and feed the headline
#: geomean.  The 8192-sample row stresses a power-of-two FFT length well
#: past any case-study segment; it is reported but flagged ``stress`` and
#: excluded from the headline.
FULL_CONFIGS = [
    (720, 48, False),
    (1200, 36, False),
    (2400, 24, False),
    (4800, 20, False),
    (8192, 12, True),
]
SMOKE_CONFIGS = [(720, 8, False)]


def _best_of(repeats, fn):
    best = math.inf
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _geomean(values):
    values = [v for v in values if v > 0]
    if not values:
        return float("nan")
    return float(np.exp(np.mean(np.log(values))))


def bench_extraction(configs, repeats):
    rng = np.random.default_rng(BENCH_SEED)
    rows = []
    for n_samples, n_segments, stress in configs:
        segments = rng.normal(size=(n_segments, n_samples))
        seg_list = [segments[i] for i in range(n_segments)]
        extractor = FrequencyFeatureExtractor(SAMPLE_RATE)
        frequencies = extractor.frequencies

        looped_s, looped_out = _best_of(
            repeats,
            lambda: legacy_fit_transform(seg_list, SAMPLE_RATE, frequencies),
        )

        clear_filter_bank_cache()
        batched_s, batched_out = _best_of(
            repeats, lambda: extractor.fit_transform(segments)
        )
        max_err = float(np.max(np.abs(batched_out - looped_out)))

        with tempfile.TemporaryDirectory() as tmp:
            cached_extractor = FrequencyFeatureExtractor(
                SAMPLE_RATE, feature_cache=FeatureCache(tmp)
            )
            cached_extractor.fit_transform(segments)  # warm the cache
            cached_s, cached_out = _best_of(
                repeats, lambda: cached_extractor.fit_transform(segments)
            )
        assert np.array_equal(cached_out, batched_out)

        rows.append(
            {
                "n_samples": n_samples,
                "n_segments": n_segments,
                "n_bins": len(frequencies),
                "stress": stress,
                "looped_seconds": looped_s,
                "batched_seconds": batched_s,
                "cached_seconds": cached_s,
                "looped_segments_per_sec": n_segments / looped_s,
                "batched_segments_per_sec": n_segments / batched_s,
                "cached_segments_per_sec": n_segments / cached_s,
                "speedup_batched": looped_s / batched_s,
                "speedup_cached": looped_s / cached_s,
                "max_abs_error_batched_vs_looped": max_err,
            }
        )
        print(
            f"  extract n={n_samples:5d} x{n_segments:3d}"
            f"{' (stress)' if stress else '         '}: "
            f"looped {looped_s:7.3f}s  batched {batched_s:7.3f}s "
            f"({rows[-1]['speedup_batched']:4.2f}x)  cached {cached_s:7.4f}s "
            f"({rows[-1]['speedup_cached']:6.1f}x)  err={max_err:.2e}"
        )
    paper_rows = [r for r in rows if not r["stress"]]
    return {
        "configs": rows,
        # Headline geomeans cover the paper-scale rows (case-study
        # segment lengths); stress rows are reported above but excluded.
        "speedup_batched_vs_looped": _geomean(
            [r["speedup_batched"] for r in paper_rows]
        ),
        "speedup_cached_vs_looped": _geomean(
            [r["speedup_cached"] for r in paper_rows]
        ),
        "speedup_batched_vs_looped_all_configs": _geomean(
            [r["speedup_batched"] for r in rows]
        ),
        "speedup_cached_vs_looped_all_configs": _geomean(
            [r["speedup_cached"] for r in rows]
        ),
    }


def bench_training(iterations, warmup):
    feature_dim, condition_dim, batch_size = 100, 3, 32
    rng = np.random.default_rng(BENCH_SEED)
    features = rng.uniform(size=(256, feature_dim))
    conditions = np.tile(np.eye(condition_dim), (256 // condition_dim + 1, 1))[:256]
    dataset = FlowPairDataset(features, conditions)

    def run(gan):
        gan.train(dataset, iterations=warmup, batch_size=batch_size)
        t0 = time.perf_counter()
        gan.train(dataset, iterations=iterations, batch_size=batch_size)
        return time.perf_counter() - t0

    before_s = run(build_legacy_cgan(feature_dim, condition_dim, seed=BENCH_SEED))
    after_s = run(
        ConditionalGAN(feature_dim, condition_dim, seed=BENCH_SEED)
    )
    result = {
        "iterations": iterations,
        "batch_size": batch_size,
        "feature_dim": feature_dim,
        "condition_dim": condition_dim,
        "before_seconds": before_s,
        "after_seconds": after_s,
        "before_iters_per_sec": iterations / before_s,
        "after_iters_per_sec": iterations / after_s,
        "speedup_training": before_s / after_s,
    }
    print(
        f"  train   {iterations} it: before {before_s:6.2f}s "
        f"({result['before_iters_per_sec']:6.1f} it/s)  after {after_s:6.2f}s "
        f"({result['after_iters_per_sec']:6.1f} it/s)  "
        f"{result['speedup_training']:4.2f}x"
    )
    return result


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="seconds-scale CI run (small configs, same JSON schema)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_hotpath.json",
        help="output JSON path (default: repo-root BENCH_hotpath.json)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        configs, repeats, train_iters, warmup = SMOKE_CONFIGS, 1, 40, 5
    else:
        configs, repeats, train_iters, warmup = FULL_CONFIGS, 3, 800, 50

    print(f"bench_hotpath ({'smoke' if args.smoke else 'full'}):")
    extraction = bench_extraction(configs, repeats)
    training = bench_training(train_iters, warmup)

    report = {
        "schema": SCHEMA,
        "smoke": bool(args.smoke),
        "cpu_count": os.cpu_count(),
        "seed": BENCH_SEED,
        "sample_rate": SAMPLE_RATE,
        # Headline numbers: SPEC-style geometric means across configs.
        "speedup_batched_vs_looped": extraction["speedup_batched_vs_looped"],
        "speedup_cached_vs_looped": extraction["speedup_cached_vs_looped"],
        "speedup_training": training["speedup_training"],
        "extraction": extraction,
        "training": training,
        "methodology": (
            "Extraction compares dataset-level fit_transform: the seed "
            "implementation (vendored in benchmarks/_legacy_hotpath.py; "
            "per-segment, per-scale kernel rebuild, and fit().transform() "
            "double extraction) against the batched cached-filter-bank "
            "path and a warm on-disk feature cache; best of N repeats. "
            "Headline extraction speedups are geometric means over the "
            "paper-scale configs (segment lengths 720-4800, the case "
            "study's 0.06-0.4 s range at 12 kHz); rows flagged 'stress' "
            "are reported in extraction.configs but excluded from the "
            "headline (all-config geomeans are reported alongside). "
            "Training compares Algorithm 2 iterations/sec of the seed "
            "allocating layers/optimizers against the preallocated hot "
            "path after identical warmup; weights are bitwise-identical "
            "between the two (tests/nn/test_hotpath_identity.py)."
        ),
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    print(
        f"headline: batched {report['speedup_batched_vs_looped']:.2f}x, "
        f"cached {report['speedup_cached_vs_looped']:.1f}x, "
        f"training {report['speedup_training']:.2f}x"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
