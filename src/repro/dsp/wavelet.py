"""Continuous wavelet transform with a Morlet mother wavelet.

Section IV-B of the paper converts the time-domain acoustic energy flow
into frequency-domain features with a continuous wavelet transform
("which preserves the high-frequency resolution in time-domain as well")
before binning into 100 non-uniform frequency bins between 50 and
5000 Hz.  This module implements that transform from scratch:

* an analytic (complex) Morlet mother wavelet,
* FFT-based convolution across a precomputed bank of scales
  (:mod:`repro.dsp.filterbank`), batched over segments,
* helpers to map target frequencies to scales.

The implementation follows the standard Torrence & Compo (1998)
formulation.  Single-segment (:func:`cwt_morlet`) and batched
(:func:`cwt_morlet_batch`) entry points share one kernel/FFT code path,
so their outputs are bitwise identical.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.validation import check_array
from repro.dsp.filterbank import (
    DEFAULT_OMEGA0,
    MORLET_NORM,
    get_filter_bank,
    validate_frequencies,
)

__all__ = [
    "DEFAULT_OMEGA0",
    "average_band_energy",
    "average_band_energy_batch",
    "cwt_morlet",
    "cwt_morlet_batch",
    "frequency_to_scale",
    "morlet_center_frequency",
    "morlet_wavelet",
    "scalogram",
    "validate_frequencies",
]


def morlet_center_frequency(omega0: float = DEFAULT_OMEGA0) -> float:
    """Pseudo-frequency (cycles per unit scale) of the Morlet wavelet.

    For scale ``s`` and sampling period ``dt``, the equivalent Fourier
    frequency is ``f = center / (s * dt)``.
    """
    return (omega0 + np.sqrt(2.0 + omega0**2)) / (4.0 * np.pi)


def frequency_to_scale(freq_hz, sample_rate: float, omega0: float = DEFAULT_OMEGA0):
    """Scale(s) whose Morlet pseudo-frequency equals *freq_hz*."""
    freq = np.asarray(freq_hz, dtype=np.float64)
    if np.any(freq <= 0):
        raise ConfigurationError("frequencies must be > 0")
    if sample_rate <= 0:
        raise ConfigurationError(f"sample_rate must be > 0, got {sample_rate}")
    center = morlet_center_frequency(omega0)
    return center * sample_rate / freq


def morlet_wavelet(t: np.ndarray, omega0: float = DEFAULT_OMEGA0) -> np.ndarray:
    """Complex Morlet mother wavelet sampled at times *t* (unit scale)."""
    t = np.asarray(t, dtype=np.float64)
    return MORLET_NORM * np.exp(1j * omega0 * t) * np.exp(-0.5 * t * t)


def cwt_morlet_batch(
    x: np.ndarray,
    sample_rate: float,
    frequencies: np.ndarray,
    *,
    omega0: float = DEFAULT_OMEGA0,
    workers=None,
) -> np.ndarray:
    """Morlet CWT of a batch of equal-length segments.

    Implemented in the Fourier domain with a precomputed, cached
    :class:`~repro.dsp.filterbank.MorletFilterBank`: one ``rfft`` per
    segment, one kernel multiply and inverse FFT per (segment, scale).
    This is O(n log n) per scale and exact up to FFT roundoff for
    periodic extension.

    Parameters
    ----------
    x:
        ``(n_segments, n_samples)`` stacked real segments.
    sample_rate, frequencies, omega0:
        Analysis grid; *frequencies* must be strictly positive, sorted,
        duplicate-free, and <= Nyquist.
    workers:
        Optional ``scipy.fft`` worker count for multi-core hosts.

    Returns
    -------
    ndarray of shape ``(n_segments, len(frequencies), n_samples)`` with
    complex coefficients; take ``np.abs`` for scalograms.
    """
    x = check_array(x, "x", ndim=2)
    bank = get_filter_bank(x.shape[1], sample_rate, frequencies, omega0=omega0)
    return bank.transform(x, workers=workers)


def cwt_morlet(
    x: np.ndarray,
    sample_rate: float,
    frequencies: np.ndarray,
    *,
    omega0: float = DEFAULT_OMEGA0,
) -> np.ndarray:
    """Morlet CWT of one segment at the given *frequencies*.

    Single-segment entry point over the same cached filter bank as
    :func:`cwt_morlet_batch` (batched and looped calls are bitwise
    identical).

    Returns
    -------
    ndarray of shape ``(len(frequencies), len(x))`` with complex
    coefficients; take ``np.abs`` for the scalogram.
    """
    x = check_array(x, "x", ndim=1)
    return cwt_morlet_batch(x[None, :], sample_rate, frequencies, omega0=omega0)[0]


def scalogram(
    x: np.ndarray,
    sample_rate: float,
    frequencies: np.ndarray,
    *,
    omega0: float = DEFAULT_OMEGA0,
) -> np.ndarray:
    """Magnitude of the Morlet CWT: shape ``(n_freqs, n_samples)``."""
    return np.abs(cwt_morlet(x, sample_rate, frequencies, omega0=omega0))


def average_band_energy(
    x: np.ndarray,
    sample_rate: float,
    frequencies: np.ndarray,
    *,
    omega0: float = DEFAULT_OMEGA0,
) -> np.ndarray:
    """Time-averaged CWT magnitude per analysis frequency.

    This is the per-segment feature the case study feeds to the CGAN: one
    magnitude per frequency bin for a window of audio.
    """
    x = check_array(x, "x", ndim=1)
    return average_band_energy_batch(
        x[None, :], sample_rate, frequencies, omega0=omega0
    )[0]


def average_band_energy_batch(
    x: np.ndarray,
    sample_rate: float,
    frequencies: np.ndarray,
    *,
    omega0: float = DEFAULT_OMEGA0,
    workers=None,
) -> np.ndarray:
    """Time-averaged CWT magnitudes for a batch of equal-length segments.

    Equivalent to stacking :func:`average_band_energy` over rows (bitwise
    — both run through the same bank), but blocked so the complex
    coefficient cube never materializes.

    Returns
    -------
    ndarray of shape ``(n_segments, len(frequencies))``.
    """
    x = check_array(x, "x", ndim=2)
    bank = get_filter_bank(x.shape[1], sample_rate, frequencies, omega0=omega0)
    return bank.band_energy(x, workers=workers)
