"""Continuous wavelet transform with a Morlet mother wavelet.

Section IV-B of the paper converts the time-domain acoustic energy flow
into frequency-domain features with a continuous wavelet transform
("which preserves the high-frequency resolution in time-domain as well")
before binning into 100 non-uniform frequency bins between 50 and
5000 Hz.  This module implements that transform from scratch:

* an analytic (complex) Morlet mother wavelet,
* an FFT-based convolution across a bank of scales,
* helpers to map target frequencies to scales.

The implementation follows the standard Torrence & Compo (1998)
formulation.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.validation import check_array

#: Default Morlet center frequency (rad/s, dimensionless omega0).  6.0 is
#: the common choice that satisfies the admissibility condition well.
DEFAULT_OMEGA0 = 6.0


def morlet_center_frequency(omega0: float = DEFAULT_OMEGA0) -> float:
    """Pseudo-frequency (cycles per unit scale) of the Morlet wavelet.

    For scale ``s`` and sampling period ``dt``, the equivalent Fourier
    frequency is ``f = center / (s * dt)``.
    """
    return (omega0 + np.sqrt(2.0 + omega0**2)) / (4.0 * np.pi)


def frequency_to_scale(freq_hz, sample_rate: float, omega0: float = DEFAULT_OMEGA0):
    """Scale(s) whose Morlet pseudo-frequency equals *freq_hz*."""
    freq = np.asarray(freq_hz, dtype=np.float64)
    if np.any(freq <= 0):
        raise ConfigurationError("frequencies must be > 0")
    if sample_rate <= 0:
        raise ConfigurationError(f"sample_rate must be > 0, got {sample_rate}")
    center = morlet_center_frequency(omega0)
    return center * sample_rate / freq


def morlet_wavelet(t: np.ndarray, omega0: float = DEFAULT_OMEGA0) -> np.ndarray:
    """Complex Morlet mother wavelet sampled at times *t* (unit scale)."""
    t = np.asarray(t, dtype=np.float64)
    norm = np.pi ** (-0.25)
    return norm * np.exp(1j * omega0 * t) * np.exp(-0.5 * t * t)


def cwt_morlet(
    x: np.ndarray,
    sample_rate: float,
    frequencies: np.ndarray,
    *,
    omega0: float = DEFAULT_OMEGA0,
) -> np.ndarray:
    """Morlet CWT of *x* evaluated at the given *frequencies*.

    Implemented in the Fourier domain: for each scale ``s`` the transform
    is ``ifft(fft(x) * conj(Psi_hat(s * w)))`` with the scale-normalized
    Morlet spectrum ``Psi_hat``.  This is O(n log n) per scale and exact
    up to FFT roundoff for periodic extension.

    Returns
    -------
    ndarray of shape ``(len(frequencies), len(x))`` with complex
    coefficients; take ``np.abs`` for the scalogram.
    """
    x = check_array(x, "x", ndim=1)
    freqs = check_array(frequencies, "frequencies", ndim=1)
    if np.any(freqs <= 0):
        raise ConfigurationError("all analysis frequencies must be > 0")
    nyquist = sample_rate / 2.0
    if np.any(freqs > nyquist):
        raise ConfigurationError(
            f"analysis frequencies exceed Nyquist ({nyquist} Hz): max={freqs.max()}"
        )
    n = len(x)
    scales = frequency_to_scale(freqs, sample_rate, omega0)
    # Angular frequencies of the DFT bins (per-sample units).
    w = 2.0 * np.pi * np.fft.fftfreq(n)
    xf = np.fft.fft(x)
    out = np.empty((len(freqs), n), dtype=np.complex128)
    norm_const = np.pi ** (-0.25)
    for i, s in enumerate(scales):
        sw = s * w
        # Analytic Morlet: support only on positive frequencies.
        psi_hat = np.zeros(n, dtype=np.float64)
        pos = w > 0
        psi_hat[pos] = norm_const * np.exp(-0.5 * (sw[pos] - omega0) ** 2)
        # sqrt(2 pi s / dt) normalization keeps amplitude comparable
        # across scales (Torrence & Compo Eq. 6); dt = 1 sample here.
        psi_hat *= np.sqrt(2.0 * np.pi * s)
        out[i] = np.fft.ifft(xf * psi_hat)
    return out


def scalogram(
    x: np.ndarray,
    sample_rate: float,
    frequencies: np.ndarray,
    *,
    omega0: float = DEFAULT_OMEGA0,
) -> np.ndarray:
    """Magnitude of the Morlet CWT: shape ``(n_freqs, n_samples)``."""
    return np.abs(cwt_morlet(x, sample_rate, frequencies, omega0=omega0))


def average_band_energy(
    x: np.ndarray,
    sample_rate: float,
    frequencies: np.ndarray,
    *,
    omega0: float = DEFAULT_OMEGA0,
) -> np.ndarray:
    """Time-averaged CWT magnitude per analysis frequency.

    This is the per-segment feature the case study feeds to the CGAN: one
    magnitude per frequency bin for a window of audio.
    """
    return scalogram(x, sample_rate, frequencies, omega0=omega0).mean(axis=1)
