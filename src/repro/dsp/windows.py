"""Window functions for spectral analysis.

Implemented from scratch (small, dependency-free) so the STFT and CWT
modules control their exact numerical behaviour.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def rectangular(n: int) -> np.ndarray:
    """All-ones window of length *n*."""
    _check_len(n)
    return np.ones(n, dtype=np.float64)


def hann(n: int) -> np.ndarray:
    """Periodic Hann window (suitable for overlap-add STFT)."""
    _check_len(n)
    if n == 1:
        return np.ones(1)
    k = np.arange(n)
    return 0.5 - 0.5 * np.cos(2.0 * np.pi * k / n)


def hamming(n: int) -> np.ndarray:
    """Periodic Hamming window."""
    _check_len(n)
    if n == 1:
        return np.ones(1)
    k = np.arange(n)
    return 0.54 - 0.46 * np.cos(2.0 * np.pi * k / n)


def blackman(n: int) -> np.ndarray:
    """Periodic Blackman window."""
    _check_len(n)
    if n == 1:
        return np.ones(1)
    k = np.arange(n)
    phase = 2.0 * np.pi * k / n
    return 0.42 - 0.5 * np.cos(phase) + 0.08 * np.cos(2.0 * phase)


def gaussian(n: int, sigma: float = 0.4) -> np.ndarray:
    """Gaussian window; *sigma* is relative to half the window length."""
    _check_len(n)
    if sigma <= 0:
        raise ConfigurationError(f"sigma must be > 0, got {sigma}")
    half = (n - 1) / 2.0
    k = np.arange(n) - half
    denom = sigma * half if half > 0 else 1.0
    return np.exp(-0.5 * (k / denom) ** 2)


_REGISTRY = {
    "rectangular": rectangular,
    "hann": hann,
    "hamming": hamming,
    "blackman": blackman,
    "gaussian": gaussian,
}


def get_window(name: str, n: int) -> np.ndarray:
    """Look a window up by name and evaluate it at length *n*."""
    try:
        fn = _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown window {name!r}; choose from {sorted(_REGISTRY)}"
        ) from None
    return fn(n)


def _check_len(n: int):
    if n <= 0:
        raise ConfigurationError(f"window length must be > 0, got {n}")
