"""Signal-processing substrate: windows, STFT, Morlet CWT, and the
paper's 100-bin 50–5000 Hz frequency-feature extraction (Section IV-B).
"""

from repro.dsp.windows import (
    blackman,
    gaussian,
    get_window,
    hamming,
    hann,
    rectangular,
)
from repro.dsp.stft import frame_signal, power_spectrum, stft
from repro.dsp.cache import CACHE_SCHEMA, FeatureCache
from repro.dsp.filterbank import (
    MORLET_NORM,
    MorletFilterBank,
    clear_filter_bank_cache,
    filter_bank_cache_info,
    get_filter_bank,
    morlet_kernel_ft,
    validate_frequencies,
)
from repro.dsp.wavelet import (
    DEFAULT_OMEGA0,
    average_band_energy,
    average_band_energy_batch,
    cwt_morlet,
    cwt_morlet_batch,
    frequency_to_scale,
    morlet_center_frequency,
    morlet_wavelet,
    scalogram,
)
from repro.dsp.features import (
    DEFAULT_F_MAX,
    DEFAULT_F_MIN,
    DEFAULT_N_BINS,
    FrequencyFeatureExtractor,
    MinMaxScaler,
    log_spaced_frequencies,
    select_features,
    top_variance_features,
)

__all__ = [
    "CACHE_SCHEMA",
    "DEFAULT_F_MAX",
    "DEFAULT_F_MIN",
    "DEFAULT_N_BINS",
    "DEFAULT_OMEGA0",
    "FeatureCache",
    "FrequencyFeatureExtractor",
    "MORLET_NORM",
    "MinMaxScaler",
    "MorletFilterBank",
    "average_band_energy",
    "average_band_energy_batch",
    "blackman",
    "clear_filter_bank_cache",
    "cwt_morlet",
    "cwt_morlet_batch",
    "filter_bank_cache_info",
    "frame_signal",
    "frequency_to_scale",
    "gaussian",
    "get_filter_bank",
    "get_window",
    "hamming",
    "hann",
    "log_spaced_frequencies",
    "morlet_center_frequency",
    "morlet_kernel_ft",
    "morlet_wavelet",
    "power_spectrum",
    "rectangular",
    "scalogram",
    "select_features",
    "stft",
    "top_variance_features",
    "validate_frequencies",
]
