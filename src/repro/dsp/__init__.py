"""Signal-processing substrate: windows, STFT, Morlet CWT, and the
paper's 100-bin 50–5000 Hz frequency-feature extraction (Section IV-B).
"""

from repro.dsp.windows import (
    blackman,
    gaussian,
    get_window,
    hamming,
    hann,
    rectangular,
)
from repro.dsp.stft import frame_signal, power_spectrum, stft
from repro.dsp.wavelet import (
    DEFAULT_OMEGA0,
    average_band_energy,
    cwt_morlet,
    frequency_to_scale,
    morlet_center_frequency,
    morlet_wavelet,
    scalogram,
)
from repro.dsp.features import (
    DEFAULT_F_MAX,
    DEFAULT_F_MIN,
    DEFAULT_N_BINS,
    FrequencyFeatureExtractor,
    MinMaxScaler,
    log_spaced_frequencies,
    select_features,
    top_variance_features,
)

__all__ = [
    "DEFAULT_F_MAX",
    "DEFAULT_F_MIN",
    "DEFAULT_N_BINS",
    "DEFAULT_OMEGA0",
    "FrequencyFeatureExtractor",
    "MinMaxScaler",
    "average_band_energy",
    "blackman",
    "cwt_morlet",
    "frame_signal",
    "frequency_to_scale",
    "gaussian",
    "get_window",
    "hamming",
    "hann",
    "log_spaced_frequencies",
    "morlet_center_frequency",
    "morlet_wavelet",
    "power_spectrum",
    "rectangular",
    "scalogram",
    "select_features",
    "stft",
    "top_variance_features",
]
