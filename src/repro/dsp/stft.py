"""Short-time Fourier transform (used as the ablation alternative to the
paper's continuous wavelet transform).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.validation import check_array
from repro.dsp.windows import get_window


def frame_signal(x: np.ndarray, frame_len: int, hop: int) -> np.ndarray:
    """Slice *x* into overlapping frames ``(n_frames, frame_len)``.

    The tail that does not fill a whole frame is zero-padded so no samples
    are silently dropped (important when aligning spectra with G-code
    segment boundaries).
    """
    x = check_array(x, "x", ndim=1)
    if frame_len <= 0:
        raise ConfigurationError(f"frame_len must be > 0, got {frame_len}")
    if hop <= 0:
        raise ConfigurationError(f"hop must be > 0, got {hop}")
    n = len(x)
    n_frames = max(1, int(np.ceil(max(n - frame_len, 0) / hop)) + 1)
    padded_len = (n_frames - 1) * hop + frame_len
    padded = np.zeros(padded_len, dtype=np.float64)
    padded[:n] = x
    idx = np.arange(frame_len)[None, :] + hop * np.arange(n_frames)[:, None]
    return padded[idx]


def stft(
    x: np.ndarray,
    sample_rate: float,
    *,
    frame_len: int = 1024,
    hop: int | None = None,
    window: str = "hann",
):
    """Magnitude STFT.

    Returns
    -------
    freqs:
        Frequency axis in Hz, shape ``(frame_len // 2 + 1,)``.
    times:
        Frame-center times in seconds, shape ``(n_frames,)``.
    mags:
        Magnitude spectrogram, shape ``(n_frames, n_freqs)``.
    """
    if sample_rate <= 0:
        raise ConfigurationError(f"sample_rate must be > 0, got {sample_rate}")
    hop = hop if hop is not None else frame_len // 2
    frames = frame_signal(x, frame_len, hop)
    win = get_window(window, frame_len)
    spec = np.fft.rfft(frames * win[None, :], axis=1)
    mags = np.abs(spec)
    freqs = np.fft.rfftfreq(frame_len, d=1.0 / sample_rate)
    times = (np.arange(frames.shape[0]) * hop + frame_len / 2.0) / sample_rate
    return freqs, times, mags


def power_spectrum(x: np.ndarray, sample_rate: float, *, window: str = "hann"):
    """Single-frame power spectrum of the whole signal.

    Returns ``(freqs, power)`` where power is ``|FFT|^2 / n``.
    """
    x = check_array(x, "x", ndim=1)
    win = get_window(window, len(x))
    spec = np.fft.rfft(x * win)
    power = (np.abs(spec) ** 2) / len(x)
    freqs = np.fft.rfftfreq(len(x), d=1.0 / sample_rate)
    return freqs, power
