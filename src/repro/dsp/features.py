"""Frequency-feature extraction for the GAN-Sec case study.

Section IV-B: "We obtain a non-uniformly distributed 100 bins
``Freq = [freq_1 ... freq_100]`` between 50 and 5000 Hz" and the feature
magnitudes "are scaled between 0 and 1".

:class:`FrequencyFeatureExtractor` packages the whole raw-audio → feature
pipeline: analysis-frequency grid (log-spaced = non-uniform), Morlet CWT,
time-averaging per segment, and min-max scaling fitted on training data.
It is the concrete implementation of the paper's ``f_X`` (feature
construction) and ``f_Y`` (feature extraction/selection) for energy flows.

Extraction is batched: segments are grouped by length and each group is
pushed through the cached Morlet filter bank in one blocked pass
(:func:`repro.dsp.wavelet.average_band_energy_batch`), which is several
times faster than the seed per-segment loop and bitwise identical to it
run segment-by-segment.  An optional on-disk
:class:`~repro.dsp.cache.FeatureCache` short-circuits re-extraction of
previously seen audio entirely.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.errors import ConfigurationError, NotFittedError, ShapeError
from repro.utils.validation import check_array
from repro.dsp.cache import FeatureCache
from repro.dsp.filterbank import DEFAULT_OMEGA0, validate_frequencies
from repro.dsp.wavelet import average_band_energy, average_band_energy_batch
from repro.dsp.stft import power_spectrum

DEFAULT_N_BINS = 100
DEFAULT_F_MIN = 50.0
DEFAULT_F_MAX = 5000.0


def log_spaced_frequencies(
    n_bins: int = DEFAULT_N_BINS,
    f_min: float = DEFAULT_F_MIN,
    f_max: float = DEFAULT_F_MAX,
) -> np.ndarray:
    """The paper's non-uniform frequency grid: *n_bins* log-spaced bins.

    Log spacing concentrates resolution at low frequencies where stepper
    fundamentals live, which is the natural reading of "non-uniformly
    distributed 100 bins between 50 and 5000 Hz".
    """
    if n_bins < 2:
        raise ConfigurationError(f"n_bins must be >= 2, got {n_bins}")
    if not 0 < f_min < f_max:
        raise ConfigurationError(f"need 0 < f_min < f_max, got [{f_min}, {f_max}]")
    return np.geomspace(f_min, f_max, n_bins)


class MinMaxScaler:
    """Per-feature min-max scaling onto [0, 1], fitted on training data.

    Constant features (max == min) map to 0.5 so they carry no
    information instead of producing division blow-ups.
    """

    def __init__(self):
        self.data_min = None
        self.data_max = None

    @property
    def fitted(self) -> bool:
        return self.data_min is not None

    def fit(self, x) -> "MinMaxScaler":
        x = check_array(x, "x", ndim=2)
        self.data_min = x.min(axis=0)
        self.data_max = x.max(axis=0)
        return self

    def transform(self, x) -> np.ndarray:
        if not self.fitted:
            raise NotFittedError("MinMaxScaler.transform called before fit")
        x = check_array(x, "x", ndim=(1, 2))
        was_1d = x.ndim == 1
        if was_1d:
            x = x[None, :]
        if x.shape[1] != self.data_min.shape[0]:
            raise ShapeError(
                f"x has {x.shape[1]} features, scaler fitted on {self.data_min.shape[0]}"
            )
        span = self.data_max - self.data_min
        safe = np.where(span > 0, span, 1.0)
        out = (x - self.data_min) / safe
        out = np.where(span > 0, out, 0.5)
        out = np.clip(out, 0.0, 1.0)
        return out[0] if was_1d else out

    def fit_transform(self, x) -> np.ndarray:
        return self.fit(x).transform(x)

    def inverse_transform(self, x) -> np.ndarray:
        if not self.fitted:
            raise NotFittedError("MinMaxScaler.inverse_transform called before fit")
        x = check_array(x, "x", ndim=(1, 2))
        span = self.data_max - self.data_min
        return x * span + self.data_min


class FrequencyFeatureExtractor:
    """Raw audio segment → scaled 100-dim frequency-feature vector.

    Parameters
    ----------
    sample_rate:
        Audio sample rate in Hz.
    n_bins, f_min, f_max:
        Analysis grid (defaults follow the paper: 100 bins, 50–5000 Hz).
    method:
        ``"cwt"`` (paper) or ``"stft"`` (ablation baseline: rFFT power
        aggregated into the same non-uniform bins).
    include_stats:
        Append per-segment time-domain statistics (mean, std, RMS) to
        the spectral features.  Spectral magnitudes are blind to DC
        levels, but e.g. the power side channel carries most of its
        information in the mean current — this flag captures it.
    feature_cache:
        Optional on-disk cache: a :class:`~repro.dsp.cache.FeatureCache`
        or a directory path.  Raw (unscaled) feature matrices are stored
        content-addressed by extractor config + audio bytes, so repeated
        experiments over the same recordings skip extraction entirely.
    fft_workers:
        Optional ``scipy.fft`` worker count for the batched CWT
        (``None`` = serial; useful on multi-core hosts).
    """

    def __init__(
        self,
        sample_rate: float,
        *,
        n_bins: int = DEFAULT_N_BINS,
        f_min: float = DEFAULT_F_MIN,
        f_max: float = DEFAULT_F_MAX,
        method: str = "cwt",
        include_stats: bool = False,
        feature_cache=None,
        fft_workers=None,
    ):
        if sample_rate <= 0:
            raise ConfigurationError(f"sample_rate must be > 0, got {sample_rate}")
        if f_max > sample_rate / 2:
            raise ConfigurationError(
                f"f_max={f_max} exceeds Nyquist {sample_rate / 2}"
            )
        if method not in ("cwt", "stft"):
            raise ConfigurationError(f"method must be 'cwt' or 'stft', got {method!r}")
        self.sample_rate = float(sample_rate)
        self.frequencies = validate_frequencies(
            log_spaced_frequencies(n_bins, f_min, f_max), self.sample_rate
        )
        self.method = method
        self.include_stats = bool(include_stats)
        self.scaler = MinMaxScaler()
        if feature_cache is None or isinstance(feature_cache, FeatureCache):
            self.feature_cache = feature_cache
        else:
            self.feature_cache = FeatureCache(feature_cache)
        self.fft_workers = fft_workers

    @property
    def n_bins(self) -> int:
        return len(self.frequencies)

    @property
    def feature_dim(self) -> int:
        """Width of produced feature vectors (bins + optional stats)."""
        return self.n_bins + (3 if self.include_stats else 0)

    def config_fingerprint(self) -> str:
        """Stable digest of everything that determines raw features.

        Used as the configuration half of the feature-cache key: any
        change to the grid, the method, or the stats flag must miss.
        """
        h = hashlib.sha256()
        h.update(f"sr={self.sample_rate!r}".encode())
        h.update(f"method={self.method}".encode())
        h.update(f"stats={self.include_stats}".encode())
        h.update(f"omega0={DEFAULT_OMEGA0!r}".encode())
        h.update(self.frequencies.tobytes())
        return h.hexdigest()

    # -- raw (unscaled) features ---------------------------------------------
    def raw_features(self, segment) -> np.ndarray:
        """Unscaled feature vector for one audio segment."""
        segment = check_array(segment, "segment", ndim=1)
        if self.method == "cwt":
            spectral = average_band_energy(
                segment, self.sample_rate, self.frequencies
            )
        else:
            spectral = self._stft_features(segment)
        if not self.include_stats:
            return spectral
        stats = np.array(
            [
                float(segment.mean()),
                float(segment.std()),
                float(np.sqrt(np.mean(segment**2))),
            ]
        )
        return np.concatenate([spectral, stats])

    def _stft_features(self, segment: np.ndarray) -> np.ndarray:
        freqs, power = power_spectrum(segment, self.sample_rate)
        # Aggregate FFT power into the non-uniform bins by nearest band
        # edges (geometric midpoints between analysis frequencies).
        edges = np.sqrt(self.frequencies[:-1] * self.frequencies[1:])
        idx = np.searchsorted(edges, freqs)
        out = np.zeros(self.n_bins)
        counts = np.zeros(self.n_bins)
        in_range = (freqs >= self.frequencies[0] / 2) & (
            freqs <= self.frequencies[-1] * 1.5
        )
        np.add.at(out, idx[in_range], power[in_range])
        np.add.at(counts, idx[in_range], 1.0)
        counts[counts == 0] = 1.0
        return np.sqrt(out / counts)  # magnitude-like scale, as with CWT

    @staticmethod
    def _as_segment_list(segments) -> list:
        """Normalize input — 2-D stacked matrix or iterable of 1-D
        segments (possibly ragged) — into a list of 1-D float64 arrays."""
        if isinstance(segments, np.ndarray) and segments.ndim == 2:
            stacked = np.ascontiguousarray(segments, dtype=np.float64)
            return [stacked[i] for i in range(stacked.shape[0])]
        return [
            check_array(seg, f"segments[{i}]", ndim=1)
            for i, seg in enumerate(segments)
        ]

    def _batched_cwt_matrix(self, seg_list) -> np.ndarray:
        """Grouped-by-length batched CWT features in original row order."""
        out = np.empty((len(seg_list), self.feature_dim), dtype=np.float64)
        groups: dict = {}
        for i, seg in enumerate(seg_list):
            groups.setdefault(len(seg), []).append(i)
        for length, indices in groups.items():
            stacked = np.empty((len(indices), length), dtype=np.float64)
            for row, i in enumerate(indices):
                stacked[row] = seg_list[i]
            spectral = average_band_energy_batch(
                stacked,
                self.sample_rate,
                self.frequencies,
                workers=self.fft_workers,
            )
            out[indices, : self.n_bins] = spectral
            if self.include_stats:
                out[indices, self.n_bins] = stacked.mean(axis=1)
                out[indices, self.n_bins + 1] = stacked.std(axis=1)
                out[indices, self.n_bins + 2] = np.sqrt(
                    np.mean(stacked**2, axis=1)
                )
        return out

    def raw_feature_matrix(self, segments) -> np.ndarray:
        """Stack raw features for equal-role segments.

        Accepts a stacked ``(n_segments, n_samples)`` matrix or an
        iterable of (possibly ragged) 1-D segments.  CWT extraction runs
        batched per segment length through the cached filter bank;
        results are bitwise identical to calling :meth:`raw_features`
        per segment.  With a configured feature cache the whole matrix
        is memoized on disk, keyed by config + audio bytes.
        """
        seg_list = self._as_segment_list(segments)
        if not seg_list:
            raise ConfigurationError("no segments given")
        cache_key = None
        if self.feature_cache is not None:
            cache_key = FeatureCache.key(self.config_fingerprint(), seg_list)
            cached = self.feature_cache.get(cache_key)
            if cached is not None and cached.shape == (
                len(seg_list),
                self.feature_dim,
            ):
                return cached
        if self.method == "cwt":
            out = self._batched_cwt_matrix(seg_list)
        else:
            out = np.vstack([self.raw_features(seg) for seg in seg_list])
        if cache_key is not None:
            self.feature_cache.put(cache_key, out)
        return out

    # -- fitted, scaled features ----------------------------------------------
    def fit(self, segments) -> "FrequencyFeatureExtractor":
        """Fit the min-max scaler on the raw features of *segments*."""
        self.scaler.fit(self.raw_feature_matrix(segments))
        return self

    def transform(self, segments) -> np.ndarray:
        """Scaled feature matrix ``(n_segments, n_bins)`` in [0, 1].

        *segments* may be a stacked 2-D matrix or a list of 1-D arrays.
        """
        return self.scaler.transform(self.raw_feature_matrix(segments))

    def fit_transform(self, segments) -> np.ndarray:
        """Fit the scaler and return scaled features, extracting once.

        The seed implementation chained ``fit().transform()`` and
        therefore ran the full CWT extraction twice per dataset; here the
        raw matrix is computed a single time and reused for both.
        """
        raw = self.raw_feature_matrix(segments)
        self.scaler.fit(raw)
        return self.scaler.transform(raw)


def select_features(x: np.ndarray, indices) -> np.ndarray:
    """Feature selection ``f_Y``: keep the feature columns in *indices*.

    Algorithm 3 operates on chosen ``FtIndices``; this helper validates
    them against the matrix width.
    """
    x = check_array(x, "x", ndim=2)
    idx = np.asarray(indices, dtype=int)
    if idx.ndim != 1:
        raise ShapeError("indices must be 1-D")
    if np.any(idx < 0) or np.any(idx >= x.shape[1]):
        raise ConfigurationError(
            f"feature indices out of range [0, {x.shape[1]}): {idx.tolist()}"
        )
    return x[:, idx]


def top_variance_features(x: np.ndarray, k: int) -> np.ndarray:
    """Indices of the *k* highest-variance feature columns.

    A simple automatic choice for Algorithm 3's ``FtIndices`` when the
    analyst does not hand-pick frequency bins.
    """
    x = check_array(x, "x", ndim=2)
    if not 1 <= k <= x.shape[1]:
        raise ConfigurationError(f"k must be in [1, {x.shape[1]}], got {k}")
    variances = x.var(axis=0)
    return np.argsort(variances)[::-1][:k]
