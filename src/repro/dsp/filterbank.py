"""Precomputed Morlet filter banks for single-shot and batched CWT.

The seed implementation of :func:`repro.dsp.wavelet.cwt_morlet` rebuilt
the frequency-domain Morlet kernel ``psi_hat`` for every scale on every
call — 100 ``exp`` evaluations over full-length spectra per audio
segment.  A :class:`MorletFilterBank` computes those kernels once per
``(n, sample_rate, frequencies, omega0)`` and applies them to whole
``(n_segments, n_samples)`` batches in blocked form, which is where the
extraction speedup in ``BENCH_hotpath.json`` comes from.

Numerical contract
------------------
* The batched transform and the single-segment transform run through the
  exact same kernel/FFT code, so their outputs are **bitwise identical**
  (``tests/dsp/test_filterbank.py`` asserts this).
* Versus the seed per-scale loop the only change is computing the
  forward transform with ``rfft`` (real input) instead of a full complex
  ``fft``; results agree to a few ULPs (relative error ``~1e-15``).
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import numpy as np
import scipy.fft as _fft

from repro.errors import ConfigurationError
from repro.utils.validation import check_array

#: Morlet admissibility normalization ``pi ** -0.25`` — the single shared
#: constant used by the time-domain mother wavelet and every
#: frequency-domain kernel (seed code duplicated it in two modules).
MORLET_NORM = np.pi ** (-0.25)

#: Default Morlet center frequency (dimensionless omega0).
DEFAULT_OMEGA0 = 6.0

#: Target size of the complex spectrum workspace per block, chosen to
#: stay cache-resident: larger blocks measurably *lose* throughput on the
#: blocked inverse FFT (memory-bound once the workspace spills to RAM).
_BLOCK_BYTES = 4 * 1024 * 1024

#: Module-level bank cache (LRU): banks are pure functions of their key
#: and ~``n_freqs * n/2`` floats each, so a handful of entries covers a
#: whole experiment (one per distinct segment length).
_BANK_CACHE_SIZE = 32
_bank_cache: OrderedDict = OrderedDict()
_bank_lock = threading.Lock()


def validate_frequencies(frequencies, sample_rate: float, *, name: str = "frequencies") -> np.ndarray:
    """Validate a CWT analysis-frequency grid.

    Requires strictly positive, strictly ascending (sorted, no
    duplicates) frequencies not exceeding Nyquist.  Raises
    :class:`~repro.errors.ConfigurationError` (a :class:`ValueError`)
    naming the offending property instead of silently misbehaving.
    """
    freqs = check_array(frequencies, name, ndim=1)
    if sample_rate <= 0:
        raise ConfigurationError(f"sample_rate must be > 0, got {sample_rate}")
    if np.any(freqs <= 0):
        raise ConfigurationError(
            f"{name} must be strictly positive, got min={freqs.min()}"
        )
    diffs = np.diff(freqs)
    if np.any(diffs < 0):
        raise ConfigurationError(f"{name} must be sorted in ascending order")
    if np.any(diffs == 0):
        raise ConfigurationError(f"{name} must not contain duplicates")
    nyquist = sample_rate / 2.0
    if freqs[-1] > nyquist:
        raise ConfigurationError(
            f"{name} exceed Nyquist ({nyquist} Hz): max={freqs[-1]}"
        )
    return freqs


def morlet_kernel_ft(scaled_w: np.ndarray, omega0: float = DEFAULT_OMEGA0) -> np.ndarray:
    """Frequency-domain analytic Morlet kernel at scaled angular frequencies.

    ``MORLET_NORM * exp(-(s*w - omega0)^2 / 2)`` — the one shared kernel
    expression behind :func:`~repro.dsp.wavelet.morlet_wavelet`,
    :func:`~repro.dsp.wavelet.cwt_morlet`, and the batched bank (the
    support restriction to positive frequencies is applied by the
    caller, which knows the grid).
    """
    scaled_w = np.asarray(scaled_w, dtype=np.float64)
    return MORLET_NORM * np.exp(-0.5 * (scaled_w - omega0) ** 2)


class MorletFilterBank:
    """Precomputed frequency-domain Morlet kernels for fixed-length input.

    Parameters
    ----------
    n:
        Segment length in samples; the bank only applies to inputs of
        exactly this length.
    sample_rate:
        Sampling rate in Hz.
    frequencies:
        Analysis frequencies (validated: positive, sorted, unique,
        <= Nyquist).
    omega0:
        Morlet center frequency.

    The kernels are stored for the non-negative (``rfft``) half-spectrum
    only; the analytic wavelet has no support on negative frequencies,
    and DC / Nyquist bins are zero exactly as in the seed per-scale loop
    (``fftfreq`` treats the even-``n`` Nyquist bin as negative).
    """

    def __init__(
        self,
        n: int,
        sample_rate: float,
        frequencies,
        *,
        omega0: float = DEFAULT_OMEGA0,
    ):
        if n <= 0:
            raise ConfigurationError(f"segment length must be > 0, got {n}")
        freqs = validate_frequencies(frequencies, sample_rate)
        self.n = int(n)
        self.sample_rate = float(sample_rate)
        self.omega0 = float(omega0)
        self.frequencies = freqs.copy()
        self.frequencies.setflags(write=False)

        center = (omega0 + np.sqrt(2.0 + omega0**2)) / (4.0 * np.pi)
        self.scales = center * self.sample_rate / freqs
        self.scales.setflags(write=False)

        n_rfft = self.n // 2 + 1
        w_pos = 2.0 * np.pi * np.fft.rfftfreq(self.n)
        # Strictly-positive, non-Nyquist bins: the seed masks on
        # ``fftfreq(n) > 0``, which excludes DC always and the Nyquist
        # bin when n is even (fftfreq labels it negative).
        if self.n % 2 == 0:
            support = slice(1, n_rfft - 1)
        else:
            support = slice(1, n_rfft)
        kernels = np.zeros((len(freqs), n_rfft), dtype=np.float64)
        kernels[:, support] = morlet_kernel_ft(
            self.scales[:, None] * w_pos[None, support], omega0
        )
        # Torrence & Compo Eq. 6 amplitude normalization per scale.
        kernels *= np.sqrt(2.0 * np.pi * self.scales)[:, None]
        self.kernels = kernels
        self.kernels.setflags(write=False)

    @property
    def n_freqs(self) -> int:
        return len(self.frequencies)

    def _check_batch(self, x) -> np.ndarray:
        x = check_array(x, "x", ndim=2)
        if x.shape[1] != self.n:
            raise ConfigurationError(
                f"bank built for segments of length {self.n}, got {x.shape[1]}"
            )
        return x

    def _block_rows(self, batch: int) -> int:
        rows = _BLOCK_BYTES // (self.n_freqs * self.n * 16)
        return int(max(1, min(batch, rows)))

    def transform(self, x, *, workers=None) -> np.ndarray:
        """Batched complex CWT: ``(batch, n) -> (batch, n_freqs, n)``.

        Materializes the full coefficient cube — prefer
        :meth:`band_energy` when only time-averaged magnitudes are
        needed.  *workers* is forwarded to ``scipy.fft`` (useful on
        multi-core hosts; ``None`` keeps the serial default).
        """
        x = self._check_batch(x)
        xf = _fft.rfft(x, axis=-1, workers=workers)
        n_rfft = self.kernels.shape[1]
        spec = np.zeros((x.shape[0], self.n_freqs, self.n), dtype=np.complex128)
        np.multiply(xf[:, None, :], self.kernels[None, :, :], out=spec[:, :, :n_rfft])
        # Row-wise inverse transform: each (freq, segment) row is an
        # independent length-n ifft, so blocked and single-segment calls
        # agree bitwise.
        return _fft.ifft(spec, axis=-1, workers=workers)

    def band_energy(self, x, *, workers=None) -> np.ndarray:
        """Time-averaged CWT magnitude per band: ``(batch, n_freqs)``.

        Blocked so the complex workspace stays cache-sized regardless of
        batch size; numerically identical (bitwise) to reducing
        :meth:`transform` output, without materializing it.
        """
        x = self._check_batch(x)
        batch = x.shape[0]
        n_rfft = self.kernels.shape[1]
        xf = _fft.rfft(x, axis=-1, workers=workers)
        out = np.empty((batch, self.n_freqs), dtype=np.float64)
        blk = self._block_rows(batch)
        spec = np.zeros((blk, self.n_freqs, self.n), dtype=np.complex128)
        mag = np.empty((blk, self.n_freqs, self.n), dtype=np.float64)
        for start in range(0, batch, blk):
            b = min(blk, batch - start)
            np.multiply(
                xf[start : start + b, None, :],
                self.kernels[None, :, :],
                out=spec[:b, :, :n_rfft],
            )
            coeff = _fft.ifft(spec[:b], axis=-1, workers=workers)
            np.abs(coeff, out=mag[:b])
            np.mean(mag[:b], axis=-1, out=out[start : start + b])
        return out

    def __repr__(self):
        return (
            f"MorletFilterBank(n={self.n}, sample_rate={self.sample_rate}, "
            f"n_freqs={self.n_freqs}, omega0={self.omega0})"
        )


def get_filter_bank(
    n: int,
    sample_rate: float,
    frequencies,
    *,
    omega0: float = DEFAULT_OMEGA0,
) -> MorletFilterBank:
    """Shared LRU-cached :class:`MorletFilterBank` lookup.

    Keyed on ``(n, sample_rate, frequency bytes, omega0)`` so repeated
    transforms — every segment of an experiment, every call into
    :func:`~repro.dsp.wavelet.cwt_morlet` — reuse one precomputed bank
    per distinct segment length.  Thread-safe.
    """
    freqs = check_array(frequencies, "frequencies", ndim=1)
    key = (int(n), float(sample_rate), float(omega0), freqs.tobytes())
    with _bank_lock:
        bank = _bank_cache.get(key)
        if bank is not None:
            _bank_cache.move_to_end(key)
            return bank
    # Build outside the lock (construction is the expensive part).
    bank = MorletFilterBank(n, sample_rate, freqs, omega0=omega0)
    with _bank_lock:
        _bank_cache[key] = bank
        _bank_cache.move_to_end(key)
        while len(_bank_cache) > _BANK_CACHE_SIZE:
            _bank_cache.popitem(last=False)
    return bank


def clear_filter_bank_cache() -> None:
    """Drop all cached banks (mainly for tests and memory control)."""
    with _bank_lock:
        _bank_cache.clear()


def filter_bank_cache_info() -> dict:
    """Introspection for tests/benchmarks: cached keys and capacity."""
    with _bank_lock:
        return {"size": len(_bank_cache), "maxsize": _BANK_CACHE_SIZE}
