"""Opt-in on-disk feature cache: content-addressed raw feature matrices.

Repeated experiments and ablations re-extract CWT features for the same
recorded audio over and over.  :class:`FeatureCache` keys a raw feature
matrix by a SHA-256 digest of (a) the extractor configuration
fingerprint and (b) the exact bytes of every segment, so a cache hit is
guaranteed to be the matrix the extractor would have produced — any
change to the audio, the frequency grid, the method, or the cache schema
changes the key and misses.

Entries are stored as ``.npy`` files written atomically (temp file +
``os.replace``, via :mod:`repro.utils.atomic`), so a crashed or
concurrent writer can never leave a truncated entry behind;
unreadable/corrupt entries are treated as misses and overwritten.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.atomic import atomic_path

#: Bump when the on-disk layout or the feature semantics change: old
#: entries then miss instead of returning stale matrices.
CACHE_SCHEMA = "gansec-feature-cache/v1"


class FeatureCache:
    """Content-addressed store for raw (unscaled) feature matrices.

    Parameters
    ----------
    directory:
        Cache root; created on first use.  Entries are
        ``<directory>/<sha256>.npy``.
    """

    def __init__(self, directory):
        if not directory:
            raise ConfigurationError("feature cache directory must be non-empty")
        self.directory = Path(directory)
        self.hits = 0
        self.misses = 0

    # -- keying ---------------------------------------------------------------
    @staticmethod
    def key(config_fingerprint: str, segments) -> str:
        """SHA-256 key over the extractor config and every segment's bytes."""
        h = hashlib.sha256()
        h.update(CACHE_SCHEMA.encode())
        h.update(b"\x00")
        h.update(str(config_fingerprint).encode())
        for seg in segments:
            arr = np.ascontiguousarray(np.asarray(seg, dtype=np.float64))
            h.update(b"\x00seg\x00")
            h.update(str(arr.shape).encode())
            h.update(arr.tobytes())
        return h.hexdigest()

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.npy"

    # -- storage --------------------------------------------------------------
    def get(self, key: str):
        """Cached matrix for *key*, or ``None`` (corrupt files miss)."""
        path = self._path(key)
        try:
            out = np.load(path, allow_pickle=False)
        except (OSError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return out

    def put(self, key: str, matrix: np.ndarray) -> Path:
        """Atomically store *matrix* under *key*; returns the entry path."""
        matrix = np.asarray(matrix)
        path = self._path(key)
        with atomic_path(path, suffix=".npy") as tmp:
            with open(tmp, "wb") as fh:
                np.save(fh, matrix, allow_pickle=False)
        return path

    # -- introspection --------------------------------------------------------
    def stats(self) -> dict:
        return {"hits": self.hits, "misses": self.misses}

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for p in self.directory.glob("*.npy"))

    def __repr__(self):
        return (
            f"FeatureCache({str(self.directory)!r}, hits={self.hits}, "
            f"misses={self.misses})"
        )
