"""Executor abstraction for fanning work out over flow pairs.

Each CGAN in Algorithm 2 trains on its own data split with its own RNG
streams — the per-pair work is embarrassingly parallel.  The executors
here share one interface, :meth:`Executor.map_pairs`, which applies a
function to a list of jobs and returns the results **in job order**:

* :class:`SerialExecutor` — plain loop; the reference schedule.
* :class:`ThreadExecutor` — ``concurrent.futures`` thread pool; cheap
  to start, shares memory (live event emission works), but the GIL
  limits speedup to the numpy-heavy fraction of the training loop.
* :class:`ProcessExecutor` — process pool; true CPU parallelism.  The
  mapped function and jobs must be picklable (module-level function +
  dataclass payloads).

Determinism does **not** depend on the executor: per-pair RNG streams
are derived from ``(pipeline seed, pair key)`` alone (see
:func:`repro.utils.rng.derive_rngs`), so serial and parallel schedules
produce bitwise-identical models.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

from repro.errors import ConfigurationError


def _default_workers() -> int:
    return max(1, os.cpu_count() or 1)


class Executor:
    """Common interface: apply ``fn`` to jobs, preserving order."""

    #: Executor registry name (also what ``get_executor`` resolves).
    name = "abstract"
    #: True when ``fn`` runs in this interpreter (closures + live event
    #: emission are allowed); False when jobs are shipped to workers.
    in_process = True

    def map_pairs(self, fn, jobs) -> list:
        raise NotImplementedError

    def __repr__(self):
        workers = getattr(self, "workers", 1)
        return f"{type(self).__name__}(workers={workers})"


class SerialExecutor(Executor):
    """Run jobs one after another in the calling thread."""

    name = "serial"
    in_process = True

    def __init__(self, workers: int | None = None):
        self.workers = 1

    def map_pairs(self, fn, jobs) -> list:
        return [fn(job) for job in jobs]


class ThreadExecutor(Executor):
    """Run jobs on a thread pool (shared memory, GIL-bound)."""

    name = "thread"
    in_process = True

    def __init__(self, workers: int | None = None):
        if workers is not None and workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        self.workers = workers or _default_workers()

    def map_pairs(self, fn, jobs) -> list:
        jobs = list(jobs)
        if not jobs:
            return []
        with ThreadPoolExecutor(
            max_workers=min(self.workers, len(jobs))
        ) as pool:
            return list(pool.map(fn, jobs))


class ProcessExecutor(Executor):
    """Run jobs on a process pool (true CPU parallelism).

    Parameters
    ----------
    workers:
        Pool size; defaults to the machine's CPU count.
    start_method:
        ``"fork"`` / ``"spawn"`` / ``"forkserver"`` or ``None`` for the
        platform default.  ``spawn`` children re-import the library, so
        the package must be importable in fresh interpreters.
    """

    name = "process"
    in_process = False

    def __init__(self, workers: int | None = None, *, start_method: str | None = None):
        if workers is not None and workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if start_method is not None:
            valid = multiprocessing.get_all_start_methods()
            if start_method not in valid:
                raise ConfigurationError(
                    f"start_method must be one of {valid}, got {start_method!r}"
                )
        self.workers = workers or _default_workers()
        self.start_method = start_method

    def map_pairs(self, fn, jobs) -> list:
        jobs = list(jobs)
        if not jobs:
            return []
        context = multiprocessing.get_context(self.start_method)
        with ProcessPoolExecutor(
            max_workers=min(self.workers, len(jobs)), mp_context=context
        ) as pool:
            return list(pool.map(fn, jobs))


#: Name -> executor class, for config / CLI resolution.
EXECUTORS = {
    SerialExecutor.name: SerialExecutor,
    ThreadExecutor.name: ThreadExecutor,
    ProcessExecutor.name: ProcessExecutor,
}


def get_executor(executor=None, workers: int | None = None) -> Executor:
    """Resolve an executor spec into an :class:`Executor` instance.

    *executor* may be an existing instance (returned unchanged), a
    registry name (``"serial"`` / ``"thread"`` / ``"process"``), or
    ``None`` — in which case ``workers`` picks the default: serial for
    0/1 workers, process otherwise.
    """
    if isinstance(executor, Executor):
        return executor
    if executor is not None and not isinstance(executor, str):
        # Duck-typed third-party executor: anything with map_pairs.
        if hasattr(executor, "map_pairs"):
            return executor
        raise ConfigurationError(
            f"executor must be a name or expose map_pairs(), got {executor!r}"
        )
    if executor is None:
        executor = "serial" if not workers or workers <= 1 else "process"
    try:
        cls = EXECUTORS[executor]
    except KeyError:
        raise ConfigurationError(
            f"unknown executor {executor!r}; expected one of {sorted(EXECUTORS)}"
        ) from None
    return cls(workers)
