"""Event consumers: console progress lines and JSONL traces.

Both reporters are plain :class:`~repro.runtime.events.EventBus`
subscribers — subscribe their :meth:`handle` method (or the object
itself; both are callable) and every training event is rendered live.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

from repro.runtime.events import (
    AnalysisCompleted,
    AnalysisStarted,
    AttackDetected,
    ConditionScored,
    EpochProgress,
    PairFailed,
    PairTrained,
    RuntimeEvent,
    StageCompleted,
    StageSkipped,
    StageStarted,
    StreamFinished,
    StreamStarted,
    TrainingFinished,
    TrainingStarted,
    WindowBatchFailed,
    WindowsDropped,
)


class ConsoleProgressReporter:
    """Render training events as human-readable progress lines.

    Parameters
    ----------
    stream:
        Output file object (default ``sys.stderr``, keeping stdout free
        for the actual report/table output).
    show_epochs:
        Whether per-iteration :class:`EpochProgress` lines are printed
        (batch-level events always are).
    """

    def __init__(self, stream=None, *, show_epochs: bool = True):
        self.stream = stream if stream is not None else sys.stderr
        self.show_epochs = show_epochs

    def handle(self, event: RuntimeEvent) -> None:
        line = self._format(event)
        if line:
            print(line, file=self.stream, flush=True)

    __call__ = handle

    def _format(self, event: RuntimeEvent) -> str | None:
        if isinstance(event, TrainingStarted):
            return (
                f"training {event.total_pairs} flow pair(s) "
                f"[{event.executor} executor, {event.workers} worker(s)]"
            )
        if isinstance(event, EpochProgress):
            if not self.show_epochs:
                return None
            return (
                f"  {event.pair}: iter {event.iteration}/{event.total_iterations} "
                f"D={event.d_loss:.3f} G={event.g_loss:.3f}"
            )
        if isinstance(event, PairTrained):
            return (
                f"[{event.index + 1}/{event.total_pairs}] trained {event.pair} "
                f"in {event.seconds:.2f}s (train={event.train_size}, "
                f"test={event.test_size}, D={event.final_d_loss:.3f}, "
                f"G={event.final_g_loss:.3f})"
            )
        if isinstance(event, PairFailed):
            reason = event.error.strip().splitlines()[-1] if event.error else "?"
            return (
                f"[{event.index + 1}/{event.total_pairs}] FAILED {event.pair} "
                f"after {event.seconds:.2f}s: {reason}"
            )
        if isinstance(event, TrainingFinished):
            return (
                f"done: {event.trained} trained, {event.failed} failed "
                f"in {event.seconds:.2f}s"
            )
        if isinstance(event, AnalysisStarted):
            return (
                f"analyzing {event.total_pairs} pair(s), "
                f"{event.total_conditions} condition(s) "
                f"[{event.executor} executor, {event.workers} worker(s)]"
            )
        if isinstance(event, ConditionScored):
            cached = " (cached samples)" if event.cache_hit else ""
            return (
                f"  [{event.index + 1}/{event.total}] scored {event.pair} "
                f"condition {list(event.condition)} over {event.n_features} "
                f"feature(s) in {event.seconds:.2f}s{cached}"
            )
        if isinstance(event, AnalysisCompleted):
            return (
                f"analysis done: {event.pairs} pair(s), {event.conditions} "
                f"condition(s) in {event.seconds:.2f}s "
                f"({event.cache_hits} cache hit(s))"
            )
        if isinstance(event, StreamStarted):
            return (
                f"stream {event.stream}: online detection at "
                f"{event.sample_rate:g} Hz (window {event.window_size}, "
                f"hop {event.hop_size}, {event.policy} backpressure)"
            )
        if isinstance(event, AttackDetected):
            return (
                f"  !! {event.stream}: ATTACK at window {event.window_index} "
                f"(t={event.time_seconds:.2f}s, score={event.score:.3f}, "
                f"{event.detector} S={event.statistic:.2f}>"
                f"{event.threshold:g}, claim={list(event.claimed_condition)})"
            )
        if isinstance(event, WindowsDropped):
            return (
                f"  {event.stream}: dropped {event.samples} samples "
                f"(>= {event.est_windows} window(s), {event.policy} policy)"
            )
        if isinstance(event, WindowBatchFailed):
            reason = event.error.strip().splitlines()[-1] if event.error else "?"
            return (
                f"  {event.stream}: scoring FAILED for windows "
                f"{event.first_window}..{event.first_window + event.n_windows - 1}: "
                f"{reason}"
            )
        if isinstance(event, StreamFinished):
            tail = f" [producer error: {event.error.strip().splitlines()[-1]}]" if event.error else ""
            return (
                f"stream {event.stream}: {event.windows_scored} window(s) scored, "
                f"{event.windows_failed} failed, {event.windows_dropped} dropped, "
                f"{event.alarms} alarm(s) in {event.seconds:.2f}s "
                f"({event.windows_per_second:.0f} win/s){tail}"
            )
        if isinstance(event, StageStarted):
            return f"stage {event.stage}: running"
        if isinstance(event, StageSkipped):
            return f"stage {event.stage}: up to date, skipped"
        if isinstance(event, StageCompleted):
            return f"stage {event.stage}: completed in {event.seconds:.2f}s"
        return None


class JsonlTraceWriter:
    """Append every event as one JSON object per line (a JSONL trace).

    Usable as a context manager; the file is opened lazily on the first
    event so constructing the writer never touches the filesystem.

    With ``atomic=True`` the trace is streamed to a ``.partial`` sibling
    and renamed onto the final path on :meth:`close` — so the final path
    only ever holds a complete trace of a finished run (an interrupted
    run leaves its partial trace visible under the ``.partial`` name).
    """

    def __init__(self, path, *, atomic: bool = False):
        self.path = Path(path)
        self.atomic = bool(atomic)
        self._fh = None
        self.events_written = 0

    def _write_path(self) -> Path:
        if self.atomic:
            return self.path.with_name(self.path.name + ".partial")
        return self.path

    def handle(self, event: RuntimeEvent) -> None:
        if self._fh is None:
            target = self._write_path()
            target.parent.mkdir(parents=True, exist_ok=True)
            self._fh = target.open("a", encoding="utf-8")
        self._fh.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")
        self._fh.flush()
        self.events_written += 1

    __call__ = handle

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None
            if self.atomic:
                os.replace(self._write_path(), self.path)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False


def read_trace(path) -> list:
    """Load a JSONL trace back into a list of event dicts."""
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    return [json.loads(line) for line in lines if line.strip()]
