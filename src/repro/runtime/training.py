"""Per-pair training jobs: the unit of work the executors fan out.

A :class:`PairTrainingJob` is a self-contained, picklable description
of "train one CGAN for one flow pair": the pair key, its dataset, the
hyperparameters, and the pipeline's root entropy.  :func:`run_training_job`
executes it — in this interpreter or a worker process — and always
returns a :class:`PairTrainingOutcome` instead of raising, so a single
bad pair cannot abort the batch (failure isolation happens here, and
:class:`~repro.errors.PairTrainingError` is assembled by the caller).

Determinism: the job's three RNG streams (data split, training, weight
init) are derived from ``(root_entropy, pair key)`` only — never from a
shared sequential stream — so results are bitwise-identical no matter
which executor ran the job or in what order.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.flows.dataset import FlowPairDataset
from repro.gan.cgan import ConditionalGAN, default_generator
from repro.nn.layers import Dense
from repro.utils.rng import derive_rngs

if TYPE_CHECKING:  # avoid a runtime ↔ pipeline import cycle
    from repro.pipeline.config import CGANConfig
    from repro.pipeline.pairs import FlowPairKey


def build_pair_cgan(
    cfg: "CGANConfig", feature_dim: int, condition_dim: int, seed
) -> ConditionalGAN:
    """Construct the per-pair CGAN described by *cfg* (Algorithm 2 model)."""
    gen_layers = default_generator(feature_dim, hidden=cfg.generator_hidden)
    # default_discriminator has a fixed head; rebuild with config widths.
    disc_layers = [
        Dense(h, "leaky_relu", kernel_init="he_uniform")
        for h in cfg.discriminator_hidden
    ] + [Dense(1, "sigmoid")]
    return ConditionalGAN(
        feature_dim,
        condition_dim,
        noise_dim=cfg.noise_dim,
        generator_layers=gen_layers,
        discriminator_layers=disc_layers,
        generator_loss=cfg.generator_loss,
        learning_rate=cfg.learning_rate,
        seed=seed,
    )


def pair_rng_streams(root_entropy: int, key: "FlowPairKey"):
    """``(split_rng, train_rng, model_rng)`` for one pair, schedule-free."""
    return derive_rngs(root_entropy, ("pair", key.first, key.second), 3)


@dataclass(frozen=True)
class CheckpointSpec:
    """Where (and how often) one pair's training checkpoints live.

    ``fingerprint`` is an opaque configuration token (typically the
    training stage's run-graph fingerprint): a checkpoint written under
    one fingerprint is never resumed under another.
    """

    directory: str
    every: int
    fingerprint: str = ""


@dataclass
class PairTrainingJob:
    """Everything needed to train one flow pair, picklable."""

    key: "FlowPairKey"
    dataset: FlowPairDataset
    cgan: "CGANConfig"
    test_fraction: float
    root_entropy: int
    index: int = 0
    total: int = 1
    progress_every: int | None = None
    #: Optional crash-recovery checkpointing (see :class:`CheckpointSpec`).
    #: When set, a valid existing checkpoint is resumed from and fresh
    #: checkpoints are written every ``checkpoint.every`` iterations;
    #: results are bitwise-identical either way.
    checkpoint: CheckpointSpec | None = None


@dataclass
class PairTrainingOutcome:
    """Result of one job: a trained model *or* a captured failure."""

    key: "FlowPairKey"
    seconds: float
    cgan: ConditionalGAN | None = None
    train_set: FlowPairDataset | None = None
    test_set: FlowPairDataset | None = None
    #: ``(iteration, total_iterations, d_loss, g_loss)`` rows collected
    #: for deferred EpochProgress replay (process executor).
    progress: list = field(default_factory=list)
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


def run_training_job(job: PairTrainingJob, emit=None) -> PairTrainingOutcome:
    """Execute *job*; never raises.

    *emit*, when given, is called as ``emit(iteration, total, d_loss,
    g_loss)`` every ``job.progress_every`` iterations (live progress for
    in-process executors).  The same rows are always recorded on the
    outcome for after-the-fact replay.
    """
    start = time.perf_counter()
    progress_rows: list = []

    def record(iteration, total, d_loss, g_loss):
        row = (int(iteration), int(total), float(d_loss), float(g_loss))
        progress_rows.append(row)
        if emit is not None:
            emit(*row)

    try:
        def build():
            split_rng, train_rng, model_rng = pair_rng_streams(
                job.root_entropy, job.key
            )
            train_set, test_set = job.dataset.split(
                job.test_fraction, seed=split_rng
            )
            cgan = build_pair_cgan(
                job.cgan,
                job.dataset.feature_dim,
                job.dataset.condition_dim,
                model_rng,
            )
            return train_set, test_set, cgan, train_rng

        train_set, test_set, cgan, train_rng = build()

        resume_state = None
        on_checkpoint = None
        if job.checkpoint is not None:
            from repro.errors import SerializationError
            from repro.gan.serialization import (
                restore_training_checkpoint,
                save_training_checkpoint,
            )

            spec = job.checkpoint
            try:
                resume_state = restore_training_checkpoint(
                    cgan, spec.directory, expected_fingerprint=spec.fingerprint
                )
            except SerializationError:
                # No usable checkpoint (absent, corrupt, or from another
                # configuration).  A failed restore may have partially
                # mutated the model, so rebuild everything from the
                # deterministic streams and train from scratch.
                resume_state = None
                train_set, test_set, cgan, train_rng = build()
            if spec.every > 0:
                def on_checkpoint(state, _cgan=cgan, _spec=spec):
                    save_training_checkpoint(
                        _cgan, state, _spec.directory,
                        fingerprint=_spec.fingerprint,
                    )

        cgan.train(
            train_set,
            iterations=job.cgan.iterations,
            batch_size=job.cgan.batch_size,
            k_disc=job.cgan.k_disc,
            label_smoothing=job.cgan.label_smoothing,
            seed=None if resume_state is not None else train_rng,
            progress=record if job.progress_every else None,
            progress_every=job.progress_every or 0,
            checkpoint_every=job.checkpoint.every if on_checkpoint else 0,
            on_checkpoint=on_checkpoint,
            resume=resume_state,
        )
        return PairTrainingOutcome(
            key=job.key,
            seconds=time.perf_counter() - start,
            cgan=cgan,
            train_set=train_set,
            test_set=test_set,
            progress=progress_rows,
        )
    except Exception:  # noqa: BLE001 - failure isolation is the contract
        return PairTrainingOutcome(
            key=job.key,
            seconds=time.perf_counter() - start,
            progress=progress_rows,
            error=traceback.format_exc(),
        )
