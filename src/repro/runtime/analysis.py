"""Per-(pair, condition) analysis jobs: the unit of work Algorithm 3 fans out.

The security-analysis stage scores every test point against a Parzen
window fitted to generator samples, independently for every analyzed
condition of every flow pair.  :class:`AnalysisJob` packages one such
(pair, condition) cell — picklable, so the :mod:`repro.runtime.executors`
process pool can run it — and :func:`run_analysis_job` executes it with
blocked matrix scoring (:meth:`~repro.security.parzen.ParzenWindow.score_batch`).

Determinism: the generator-noise stream for each job is derived from
``(root_entropy, pair label, condition)`` only (see
:func:`analysis_rng`), never from a shared sequential stream, so any
executor in any schedule produces bitwise-identical likelihood tables.

:class:`ConditionSampleCache` is a thread-safe LRU over generated
condition samples keyed by ``(pair, condition, n, seed)``.  Because the
per-job RNG is a pure function of that key, a cache hit is numerically
indistinguishable from regeneration — it simply skips the generator
forward passes (the dominant cost when one test set is analyzed under
several Parzen widths ``h``, as in the paper's Table I sweep).
"""

from __future__ import annotations

import threading
import time
import traceback
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.rng import derive_rngs


def condition_tokens(condition) -> tuple:
    """Canonical, hashable form of one condition vector.

    ``repr(float)`` round-trips exactly, so two bitwise-equal condition
    vectors always map to the same tokens (and therefore the same
    derived RNG stream and cache slot).
    """
    return tuple(repr(float(v)) for v in np.asarray(condition).ravel())


def analysis_rng(root_entropy: int, pair: str, condition) -> np.random.Generator:
    """The generator-noise stream for one (pair, condition) cell.

    A pure function of its arguments — the fan-out analogue of
    :func:`repro.runtime.training.pair_rng_streams` for Algorithm 3.
    """
    (rng,) = derive_rngs(
        root_entropy, ("analysis", pair, *condition_tokens(condition)), 1
    )
    return rng


class ConditionSampleCache:
    """Thread-safe LRU cache of generated condition samples.

    Keys are ``(pair, condition tokens, n, root_entropy)``; values are
    the ``(n, d)`` sample arrays drawn from ``G(Z | condition)``.
    Entries are copies-on-read-by-reference: callers must not mutate the
    returned arrays.
    """

    def __init__(self, max_entries: int = 64):
        if max_entries < 1:
            raise ConfigurationError(
                f"max_entries must be >= 1, got {max_entries}"
            )
        self.max_entries = int(max_entries)
        self._entries: OrderedDict = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key(pair: str, condition, n: int, root_entropy: int) -> tuple:
        return (str(pair), condition_tokens(condition), int(n), int(root_entropy))

    def get(self, key) -> np.ndarray | None:
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key, samples: np.ndarray) -> None:
        with self._lock:
            self._entries[key] = samples
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self):
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
            }

    def __repr__(self):
        s = self.stats()
        return (
            f"ConditionSampleCache(entries={s['entries']}/{self.max_entries}, "
            f"hits={s['hits']}, misses={s['misses']})"
        )


@dataclass(eq=False)
class AnalysisJob:
    """One (pair, condition) cell of Algorithm 3, picklable.

    ``generated`` is pre-filled by the engine on a sample-cache hit;
    the job then skips the generator entirely.  (``eq=False``: jobs
    carry arrays, so generated equality would be ambiguous — identity
    is the only meaningful comparison.)
    """

    pair: str
    condition: np.ndarray
    cond_index: int
    job_index: int
    total: int
    test_features: np.ndarray
    correct_mask: np.ndarray
    feature_indices: np.ndarray
    h: float
    g_size: int
    root_entropy: int
    sampler: object = None
    generated: np.ndarray | None = None
    chunk_size: int | None = None


@dataclass(eq=False)
class AnalysisOutcome:
    """Result of one job: Cor/Inc likelihood rows *or* a captured failure."""

    pair: str
    cond_index: int
    seconds: float
    avg_correct: np.ndarray | None = None
    avg_incorrect: np.ndarray | None = None
    generated: np.ndarray | None = None
    cache_hit: bool = False
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class _SamplerRef:
    """Deferred, picklable handle used by jobs that carry a CGAN."""

    cgan: object = field(repr=False)

    def __call__(self, condition, n, rng):
        return self.cgan.generate_for_condition(condition, n, seed=rng)


def run_analysis_job(job: AnalysisJob) -> AnalysisOutcome:
    """Execute *job*; never raises.

    Algorithm 3 Lines 6-14 for one condition: draw ``GSize`` generator
    samples (unless a cached draw is attached), fit a 1-D Parzen window
    per analyzed feature, and average the scaled likelihoods of the
    correctly- and incorrectly-labeled test rows via blocked scoring.
    """
    start = time.perf_counter()
    try:
        from repro.security.parzen import ParzenWindow

        cache_hit = job.generated is not None
        if cache_hit:
            generated = job.generated
        else:
            rng = analysis_rng(job.root_entropy, job.pair, job.condition)
            generated = np.asarray(job.sampler(job.condition, job.g_size, rng))
        correct = job.correct_mask
        incorrect = ~correct
        n_feats = len(job.feature_indices)
        avg_cor = np.empty(n_feats)
        avg_inc = np.empty(n_feats)
        for fi, ft in enumerate(job.feature_indices):
            distr = ParzenWindow(job.h).fit(generated[:, ft])
            likes = distr.likelihood(
                job.test_features[:, ft], chunk_size=job.chunk_size
            )
            avg_cor[fi] = likes[correct].mean()
            avg_inc[fi] = likes[incorrect].mean() if incorrect.any() else 0.0
        return AnalysisOutcome(
            pair=job.pair,
            cond_index=job.cond_index,
            seconds=time.perf_counter() - start,
            avg_correct=avg_cor,
            avg_incorrect=avg_inc,
            generated=generated,
            cache_hit=cache_hit,
        )
    except Exception:  # noqa: BLE001 - failure isolation is the contract
        return AnalysisOutcome(
            pair=job.pair,
            cond_index=job.cond_index,
            seconds=time.perf_counter() - start,
            error=traceback.format_exc(),
        )
