"""Parallel runtime for pair training and security analysis.

Algorithm 2 trains one independent CGAN per flow pair and Algorithm 3
scores one independent Parzen table per (pair, condition); this package
supplies the machinery to fan both out (serial / thread / process
executors with a common ``map_pairs`` interface), keep them
deterministic (per-work-item RNG streams derived from the pipeline seed
and work-item identity, independent of worker scheduling), and observe
them (a thread-safe event bus with console and JSONL consumers).
"""

from repro.runtime.analysis import (
    AnalysisJob,
    AnalysisOutcome,
    ConditionSampleCache,
    analysis_rng,
    condition_tokens,
    run_analysis_job,
)
from repro.runtime.events import (
    AnalysisCompleted,
    AnalysisStarted,
    ConditionScored,
    EpochProgress,
    EventBus,
    PairFailed,
    PairTrained,
    RuntimeEvent,
    StageCompleted,
    StageSkipped,
    StageStarted,
    TrainingFinished,
    TrainingStarted,
)
from repro.runtime.executors import (
    EXECUTORS,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    get_executor,
)
from repro.runtime.reporters import (
    ConsoleProgressReporter,
    JsonlTraceWriter,
    read_trace,
)
from repro.runtime.training import (
    CheckpointSpec,
    PairTrainingJob,
    PairTrainingOutcome,
    build_pair_cgan,
    pair_rng_streams,
    run_training_job,
)

__all__ = [
    "EXECUTORS",
    "AnalysisCompleted",
    "AnalysisJob",
    "AnalysisOutcome",
    "AnalysisStarted",
    "CheckpointSpec",
    "ConditionSampleCache",
    "ConditionScored",
    "ConsoleProgressReporter",
    "EpochProgress",
    "EventBus",
    "Executor",
    "JsonlTraceWriter",
    "PairFailed",
    "PairTrained",
    "PairTrainingJob",
    "PairTrainingOutcome",
    "ProcessExecutor",
    "RuntimeEvent",
    "SerialExecutor",
    "StageCompleted",
    "StageSkipped",
    "StageStarted",
    "ThreadExecutor",
    "TrainingFinished",
    "TrainingStarted",
    "analysis_rng",
    "build_pair_cgan",
    "condition_tokens",
    "get_executor",
    "pair_rng_streams",
    "read_trace",
    "run_analysis_job",
    "run_training_job",
]
