"""Parallel pair-training runtime: executors, events, reporters.

Algorithm 2 trains one independent CGAN per flow pair; this package
supplies the machinery to fan that work out (serial / thread / process
executors with a common ``map_pairs`` interface), keep it deterministic
(per-pair RNG streams derived from the pipeline seed and pair key,
independent of worker scheduling), and observe it (a thread-safe event
bus with console and JSONL consumers).
"""

from repro.runtime.events import (
    EpochProgress,
    EventBus,
    PairFailed,
    PairTrained,
    RuntimeEvent,
    TrainingFinished,
    TrainingStarted,
)
from repro.runtime.executors import (
    EXECUTORS,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    get_executor,
)
from repro.runtime.reporters import (
    ConsoleProgressReporter,
    JsonlTraceWriter,
    read_trace,
)
from repro.runtime.training import (
    PairTrainingJob,
    PairTrainingOutcome,
    build_pair_cgan,
    pair_rng_streams,
    run_training_job,
)

__all__ = [
    "EXECUTORS",
    "ConsoleProgressReporter",
    "EpochProgress",
    "EventBus",
    "Executor",
    "JsonlTraceWriter",
    "PairFailed",
    "PairTrained",
    "PairTrainingJob",
    "PairTrainingOutcome",
    "ProcessExecutor",
    "RuntimeEvent",
    "SerialExecutor",
    "ThreadExecutor",
    "TrainingFinished",
    "TrainingStarted",
    "build_pair_cgan",
    "get_executor",
    "pair_rng_streams",
    "read_trace",
    "run_training_job",
]
