"""Structured training events and the in-process event bus.

The pair-training runtime is instrumented through a tiny pub/sub layer:
:class:`EventBus` fans each emitted event out to every subscriber.
Events are frozen dataclasses carrying timings and loss figures, so
consumers (the console progress reporter, the JSONL trace writer,
tests) get structured data rather than log strings.

Lifecycle of one :meth:`GANSec.train_models` batch::

    TrainingStarted                      (once, batch-level)
      EpochProgress*                     (per pair, every progress_every iters)
      PairTrained | PairFailed           (once per pair)
    TrainingFinished                     (once, batch-level)

Lifecycle of one :meth:`GANSec.analyze` batch (Algorithm 3)::

    AnalysisStarted                      (once, batch-level)
      ConditionScored*                   (once per (pair, condition) job)
    AnalysisCompleted                    (once, batch-level)

Lifecycle of one :class:`repro.streaming.StreamSession` run::

    StreamStarted                        (once)
      WindowBatchScored*                 (per scored window batch)
      WindowBatchFailed*                 (per batch whose scoring raised)
      WindowsDropped*                    (per backpressure drop burst)
      AttackDetected*                    (per decision-layer alarm)
    StreamFinished                       (once, also after failures)

A staged pipeline run (:func:`repro.pipeline.experiment.run_experiment`,
:class:`repro.pipeline.rungraph.RunGraph`) wraps each stage in
``StageStarted``/``StageCompleted`` — or emits a single ``StageSkipped``
when the stage's fingerprint matched a prior run and its recorded
outputs verified on disk.

The bus is thread-safe: ``ThreadExecutor`` workers emit concurrently.
Process-executor workers cannot reach the parent's bus, so their
``EpochProgress`` rows are recorded in the job result and replayed by
the parent before ``PairTrained`` is emitted.
"""

from __future__ import annotations

import threading
import time
from dataclasses import asdict, dataclass, field


def _now() -> float:
    return time.time()


@dataclass(frozen=True)
class RuntimeEvent:
    """Base class for all instrumentation events."""

    @property
    def kind(self) -> str:
        return type(self).__name__

    def to_dict(self) -> dict:
        data = {"kind": self.kind}
        data.update(asdict(self))
        return data


@dataclass(frozen=True)
class TrainingStarted(RuntimeEvent):
    """A train_models batch began."""

    total_pairs: int
    executor: str
    workers: int
    timestamp: float = field(default_factory=_now)


@dataclass(frozen=True)
class EpochProgress(RuntimeEvent):
    """Periodic progress inside one pair's Algorithm 2 loop."""

    pair: str
    iteration: int
    total_iterations: int
    d_loss: float
    g_loss: float
    timestamp: float = field(default_factory=_now)


@dataclass(frozen=True)
class PairTrained(RuntimeEvent):
    """One flow pair finished training successfully."""

    pair: str
    index: int
    total_pairs: int
    seconds: float
    train_size: int
    test_size: int
    final_d_loss: float
    final_g_loss: float
    timestamp: float = field(default_factory=_now)


@dataclass(frozen=True)
class PairFailed(RuntimeEvent):
    """One flow pair raised during training (isolated, not fatal)."""

    pair: str
    index: int
    total_pairs: int
    seconds: float
    error: str
    timestamp: float = field(default_factory=_now)


@dataclass(frozen=True)
class TrainingFinished(RuntimeEvent):
    """The batch completed (successfully or with isolated failures)."""

    trained: int
    failed: int
    seconds: float
    timestamp: float = field(default_factory=_now)


@dataclass(frozen=True)
class AnalysisStarted(RuntimeEvent):
    """A security-analysis batch (Algorithm 3) began."""

    total_pairs: int
    total_conditions: int
    executor: str
    workers: int
    timestamp: float = field(default_factory=_now)


@dataclass(frozen=True)
class ConditionScored(RuntimeEvent):
    """One (pair, condition) scoring job of Algorithm 3 finished."""

    pair: str
    condition: tuple
    index: int
    total: int
    n_features: int
    seconds: float
    cache_hit: bool
    timestamp: float = field(default_factory=_now)


@dataclass(frozen=True)
class AnalysisCompleted(RuntimeEvent):
    """The security-analysis batch completed."""

    pairs: int
    conditions: int
    seconds: float
    cache_hits: int
    timestamp: float = field(default_factory=_now)


@dataclass(frozen=True)
class StageStarted(RuntimeEvent):
    """A run-graph stage began executing (its fingerprint missed)."""

    stage: str
    fingerprint: str
    timestamp: float = field(default_factory=_now)


@dataclass(frozen=True)
class StageSkipped(RuntimeEvent):
    """A run-graph stage was skipped: fingerprint matched and every
    recorded output artifact verified on disk."""

    stage: str
    fingerprint: str
    outputs: tuple
    timestamp: float = field(default_factory=_now)


@dataclass(frozen=True)
class StageCompleted(RuntimeEvent):
    """A run-graph stage finished executing and its outputs were
    recorded in the run manifest."""

    stage: str
    fingerprint: str
    seconds: float
    outputs: tuple
    timestamp: float = field(default_factory=_now)


@dataclass(frozen=True)
class StreamStarted(RuntimeEvent):
    """A streaming detection session began consuming samples."""

    stream: str
    sample_rate: float
    window_size: int
    hop_size: int
    policy: str
    timestamp: float = field(default_factory=_now)


@dataclass(frozen=True)
class WindowBatchScored(RuntimeEvent):
    """One batch of stream windows was featureized and scored."""

    stream: str
    first_window: int
    n_windows: int
    seconds: float
    timestamp: float = field(default_factory=_now)


@dataclass(frozen=True)
class WindowBatchFailed(RuntimeEvent):
    """Scoring one batch of windows raised (isolated, not fatal)."""

    stream: str
    first_window: int
    n_windows: int
    error: str
    timestamp: float = field(default_factory=_now)


@dataclass(frozen=True)
class WindowsDropped(RuntimeEvent):
    """Backpressure dropped stream samples before they were windowed.

    ``est_windows`` is a lower bound on complete windows lost — drops
    are never silent."""

    stream: str
    samples: int
    est_windows: int
    policy: str
    timestamp: float = field(default_factory=_now)


@dataclass(frozen=True)
class AttackDetected(RuntimeEvent):
    """The sequential decision layer raised an integrity/availability alarm."""

    stream: str
    window_index: int
    time_seconds: float
    score: float
    statistic: float
    threshold: float
    detector: str
    claimed_condition: tuple
    timestamp: float = field(default_factory=_now)


@dataclass(frozen=True)
class StreamFinished(RuntimeEvent):
    """The streaming session drained and stopped (maybe with an error)."""

    stream: str
    windows_scored: int
    windows_failed: int
    windows_dropped: int
    alarms: int
    seconds: float
    windows_per_second: float
    error: str | None = None
    timestamp: float = field(default_factory=_now)


class EventBus:
    """Synchronous, thread-safe pub/sub for :class:`RuntimeEvent`.

    Subscriber exceptions never abort training: they are captured on
    :attr:`handler_errors` and emission continues.
    """

    def __init__(self):
        self._handlers: list = []
        self._lock = threading.RLock()
        self.handler_errors: list = []

    def subscribe(self, handler) -> None:
        """Register ``handler(event)`` for every subsequent emission."""
        if not callable(handler):
            raise TypeError(f"event handler must be callable, got {handler!r}")
        with self._lock:
            self._handlers.append(handler)

    def unsubscribe(self, handler) -> None:
        with self._lock:
            try:
                self._handlers.remove(handler)
            except ValueError:
                pass

    def emit(self, event: RuntimeEvent) -> None:
        with self._lock:
            handlers = list(self._handlers)
        for handler in handlers:
            try:
                handler(event)
            except Exception as exc:  # noqa: BLE001 - reporters must not kill training
                with self._lock:
                    self.handler_errors.append((event, exc))

    def __len__(self):
        with self._lock:
            return len(self._handlers)
