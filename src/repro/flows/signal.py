"""Discrete signal flows (paper Section I-B, "Signal Flow").

A signal flow is a discrete random variable ``F_S`` over *n* possible
values ``{f_1 .. f_n}`` with events ``E_i = [F_S == f_i]`` whose
probabilities ``Pr(E_i)`` are estimated empirically from observations.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.errors import DataError
from repro.utils.rng import as_rng


class SignalFlowData:
    """Observed samples of a discrete signal flow.

    Parameters
    ----------
    values:
        Sequence of observed symbols (hashable; e.g. one-hot tuples,
        G-code condition labels, integer codes).
    name:
        Flow name this data belongs to.
    """

    def __init__(self, values, *, name: str = "signal"):
        values = list(values)
        if not values:
            raise DataError(f"signal flow {name!r} has no observations")
        self.name = name
        self.values = values
        self._counter = Counter(values)

    def __len__(self):
        return len(self.values)

    @property
    def alphabet(self) -> list:
        """Sorted list of distinct observed symbols."""
        return sorted(self._counter, key=repr)

    @property
    def n_symbols(self) -> int:
        return len(self._counter)

    def event_probability(self, symbol) -> float:
        """Empirical ``Pr(E_i)`` for ``F_S == symbol``."""
        return self._counter.get(symbol, 0) / len(self.values)

    def pmf(self) -> dict:
        """Full empirical probability mass function as symbol -> prob."""
        n = len(self.values)
        return {sym: cnt / n for sym, cnt in self._counter.items()}

    def entropy(self) -> float:
        """Shannon entropy (bits) of the empirical distribution."""
        probs = np.array([c / len(self.values) for c in self._counter.values()])
        return float(-(probs * np.log2(probs)).sum())

    def sample(self, n: int, *, seed=None) -> list:
        """Draw *n* iid symbols from the empirical distribution."""
        rng = as_rng(seed)
        symbols = list(self._counter)
        probs = np.array([self._counter[s] for s in symbols], dtype=float)
        probs /= probs.sum()
        idx = rng.choice(len(symbols), size=n, p=probs)
        return [symbols[i] for i in idx]

    def indices(self, symbol) -> np.ndarray:
        """Positions at which *symbol* was observed (for alignment joins)."""
        return np.array([i for i, v in enumerate(self.values) if v == symbol])

    def __repr__(self):
        return (
            f"SignalFlowData(name={self.name!r}, n={len(self)}, "
            f"symbols={self.n_symbols})"
        )
