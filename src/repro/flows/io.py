"""Persistence for flow-pair datasets (npz archives)."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import SerializationError
from repro.flows.dataset import FlowPairDataset
from repro.utils.atomic import atomic_path

_FORMAT_VERSION = 1


def save_dataset(dataset: FlowPairDataset, path) -> Path:
    """Atomically write *dataset* to ``path`` as an ``.npz`` archive."""
    path = Path(path)
    with atomic_path(path, suffix=".npz") as tmp:
        with open(tmp, "wb") as fh:
            np.savez(
                fh,
                features=dataset.features,
                conditions=dataset.conditions,
                name=np.frombuffer(dataset.name.encode(), dtype=np.uint8),
                version=np.array([_FORMAT_VERSION]),
            )
    return path


def load_dataset(path) -> FlowPairDataset:
    """Read a dataset previously written by :func:`save_dataset`."""
    path = Path(path)
    if not path.exists():
        raise SerializationError(f"no such dataset file: {path}")
    try:
        with np.load(path) as data:
            version = int(data["version"][0])
            if version != _FORMAT_VERSION:
                raise SerializationError(
                    f"unsupported dataset format version {version}"
                )
            name = bytes(data["name"]).decode()
            return FlowPairDataset(
                data["features"], data["conditions"], name=name
            )
    except SerializationError:
        raise
    except Exception as exc:
        raise SerializationError(f"cannot read dataset {path}: {exc}") from exc
