"""Continuous energy flows (paper Section I-B, "Energy Flow").

An energy flow is a continuous time-dependent variable ``F_E``.  Given a
feature-construction function ``f_X`` we build feature vectors
``X = f_X(F_E)``, and a feature extraction/selection function ``f_Y``
reduces them to the relevant set ``Y = f_Y(X)``.  In the case study,
``f_X`` is the CWT + 100-bin reduction and ``f_Y`` is min-max scaling +
optional index selection (:mod:`repro.dsp.features`).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, DataError
from repro.utils.validation import check_array


class EnergyFlowData:
    """A recorded continuous trace for one energy flow.

    Parameters
    ----------
    samples:
        1-D time series (e.g. microphone voltage).
    sample_rate:
        Samples per second.
    name:
        Flow name this trace belongs to.
    """

    def __init__(self, samples, sample_rate: float, *, name: str = "energy"):
        self.samples = check_array(samples, "samples", ndim=1)
        if sample_rate <= 0:
            raise ConfigurationError(f"sample_rate must be > 0, got {sample_rate}")
        self.sample_rate = float(sample_rate)
        self.name = name

    def __len__(self):
        return len(self.samples)

    @property
    def duration(self) -> float:
        """Trace length in seconds."""
        return len(self.samples) / self.sample_rate

    def slice_time(self, t_start: float, t_end: float) -> "EnergyFlowData":
        """Sub-trace between two times (seconds), clamped to bounds."""
        if t_end <= t_start:
            raise ConfigurationError(f"need t_end > t_start, got [{t_start}, {t_end}]")
        i0 = max(0, int(round(t_start * self.sample_rate)))
        i1 = min(len(self.samples), int(round(t_end * self.sample_rate)))
        if i1 <= i0:
            raise DataError(
                f"time slice [{t_start}, {t_end}]s is outside the trace "
                f"(duration {self.duration:.3f}s)"
            )
        return EnergyFlowData(
            self.samples[i0:i1], self.sample_rate, name=self.name
        )

    def segments(self, boundaries) -> list:
        """Split the trace at the given time *boundaries* (seconds).

        ``boundaries`` is an increasing sequence ``[t0, t1, ..., tk]``;
        returns ``k`` sub-traces ``[t0,t1), [t1,t2), ...``.
        """
        boundaries = list(boundaries)
        if len(boundaries) < 2:
            raise ConfigurationError("need at least two boundaries")
        if any(b2 <= b1 for b1, b2 in zip(boundaries, boundaries[1:])):
            raise ConfigurationError("boundaries must be strictly increasing")
        return [
            self.slice_time(t0, t1) for t0, t1 in zip(boundaries, boundaries[1:])
        ]

    def rms(self) -> float:
        """Root-mean-square amplitude of the trace."""
        return float(np.sqrt(np.mean(self.samples**2)))

    def energy(self) -> float:
        """Total signal energy (sum of squares / sample rate)."""
        return float(np.sum(self.samples**2) / self.sample_rate)

    def features(self, f_x, f_y=None) -> np.ndarray:
        """Apply the paper's ``f_X`` (and optional ``f_Y``) to this trace.

        *f_x* maps a 1-D sample array to a feature vector; *f_y* maps a
        feature vector to a reduced feature vector.
        """
        x = np.asarray(f_x(self.samples))
        return x if f_y is None else np.asarray(f_y(x))

    def __repr__(self):
        return (
            f"EnergyFlowData(name={self.name!r}, n={len(self)}, "
            f"sr={self.sample_rate:g}Hz, {self.duration:.3f}s)"
        )
