"""Aligned (feature, condition) datasets for CGAN training.

Algorithm 2 consumes labeled pairs ``(f_1, f_2)`` sampled jointly: a
feature vector of the modeled flow together with the simultaneous value
of the conditioning flow.  :class:`FlowPairDataset` stores these aligned
arrays, provides mini-batch sampling, train/test splitting, and
per-condition slicing (Algorithm 3 iterates conditions).
"""

from __future__ import annotations

import numpy as np

from repro.errors import DataError, ShapeError
from repro.utils.rng import as_rng
from repro.utils.validation import check_array


class FlowPairDataset:
    """Aligned samples of one (modeled flow, conditioning flow) pair.

    Parameters
    ----------
    features:
        Array ``(n, d)`` of modeled-flow feature vectors (e.g. scaled
        100-bin acoustic spectra).
    conditions:
        Array ``(n, c)`` of conditioning vectors (e.g. one-hot motor
        encodings), row-aligned with *features*.
    name:
        Dataset label for reports (usually the flow-pair name).
    """

    def __init__(self, features, conditions, *, name: str = "pair"):
        self.features = check_array(features, "features", ndim=2)
        self.conditions = check_array(conditions, "conditions", ndim=2)
        if self.features.shape[0] != self.conditions.shape[0]:
            raise ShapeError(
                f"features ({self.features.shape[0]} rows) and conditions "
                f"({self.conditions.shape[0]} rows) are misaligned"
            )
        self.name = name

    def __len__(self):
        return self.features.shape[0]

    @property
    def feature_dim(self) -> int:
        return self.features.shape[1]

    @property
    def condition_dim(self) -> int:
        return self.conditions.shape[1]

    # -- condition bookkeeping -----------------------------------------------
    def unique_conditions(self) -> np.ndarray:
        """Distinct condition vectors, ``(k, c)``, in first-seen order."""
        seen = {}
        for row in self.conditions:
            seen.setdefault(tuple(row), row)
        return np.array(list(seen.values()))

    def mask_for_condition(self, condition) -> np.ndarray:
        """Boolean mask of rows whose condition equals *condition*."""
        cond = np.asarray(condition, dtype=float)
        if cond.shape != (self.condition_dim,):
            raise ShapeError(
                f"condition must have shape ({self.condition_dim},), got {cond.shape}"
            )
        return np.all(np.isclose(self.conditions, cond[None, :]), axis=1)

    def subset_for_condition(self, condition) -> "FlowPairDataset":
        """Rows observed under a single condition (Algorithm 3 inner loop)."""
        mask = self.mask_for_condition(condition)
        if not mask.any():
            raise DataError(
                f"dataset {self.name!r} has no rows for condition "
                f"{np.asarray(condition).tolist()}"
            )
        return FlowPairDataset(
            self.features[mask], self.conditions[mask], name=self.name
        )

    def condition_counts(self) -> list:
        """List of (condition_vector, count) pairs."""
        return [
            (cond, int(self.mask_for_condition(cond).sum()))
            for cond in self.unique_conditions()
        ]

    # -- sampling & splitting --------------------------------------------------
    def sample_batch(self, batch_size: int, *, seed=None, out=None):
        """Random mini-batch ``(features, conditions)`` with replacement.

        This is Algorithm 2's "acquire n mini-batch samples from
        Pr_data(F1)" together with the *corresponding* conditioning values
        (Lines 6-7) — alignment is preserved by construction.

        Parameters
        ----------
        out:
            Optional ``(feature_buffer, condition_buffer)`` pair of
            preallocated ``(batch_size, d)`` / ``(batch_size, c)``
            arrays filled in place — the training loop's zero-allocation
            path.  The RNG draw and the gathered rows are identical to
            the allocating call.
        """
        if batch_size <= 0:
            raise DataError(f"batch_size must be > 0, got {batch_size}")
        rng = as_rng(seed)
        idx = rng.integers(0, len(self), size=batch_size)
        if out is not None:
            feat_buf, cond_buf = out
            np.take(self.features, idx, axis=0, out=feat_buf)
            np.take(self.conditions, idx, axis=0, out=cond_buf)
            return feat_buf, cond_buf
        return self.features[idx], self.conditions[idx]

    def shuffled(self, *, seed=None) -> "FlowPairDataset":
        """Row-shuffled copy."""
        rng = as_rng(seed)
        idx = rng.permutation(len(self))
        return FlowPairDataset(
            self.features[idx], self.conditions[idx], name=self.name
        )

    def split(self, test_fraction: float = 0.25, *, seed=None, stratify: bool = True):
        """Train/test split; stratified per condition by default.

        Stratification guarantees each condition appears in both halves —
        Algorithm 3 needs test samples for *every* condition.
        """
        if not 0.0 < test_fraction < 1.0:
            raise DataError(f"test_fraction must be in (0,1), got {test_fraction}")
        rng = as_rng(seed)
        test_mask = np.zeros(len(self), dtype=bool)
        if stratify:
            for cond in self.unique_conditions():
                rows = np.flatnonzero(self.mask_for_condition(cond))
                rng.shuffle(rows)
                n_test = max(1, int(round(len(rows) * test_fraction)))
                if n_test >= len(rows):
                    raise DataError(
                        f"condition {cond.tolist()} has only {len(rows)} rows; "
                        "not enough to split"
                    )
                test_mask[rows[:n_test]] = True
        else:
            rows = rng.permutation(len(self))
            n_test = max(1, int(round(len(self) * test_fraction)))
            test_mask[rows[:n_test]] = True
        train = FlowPairDataset(
            self.features[~test_mask], self.conditions[~test_mask], name=self.name
        )
        test = FlowPairDataset(
            self.features[test_mask], self.conditions[test_mask], name=self.name
        )
        return train, test

    def take(self, n: int, *, seed=None) -> "FlowPairDataset":
        """Random subset of *n* rows without replacement (attacker-capability
        modeling: restrict how much training data is available)."""
        if not 1 <= n <= len(self):
            raise DataError(f"n must be in [1, {len(self)}], got {n}")
        rng = as_rng(seed)
        idx = rng.choice(len(self), size=n, replace=False)
        return FlowPairDataset(
            self.features[idx], self.conditions[idx], name=self.name
        )

    def merge(self, other: "FlowPairDataset") -> "FlowPairDataset":
        """Concatenate two datasets with identical dimensions."""
        if (
            other.feature_dim != self.feature_dim
            or other.condition_dim != self.condition_dim
        ):
            raise ShapeError(
                f"cannot merge: dims ({self.feature_dim},{self.condition_dim}) vs "
                f"({other.feature_dim},{other.condition_dim})"
            )
        return FlowPairDataset(
            np.vstack([self.features, other.features]),
            np.vstack([self.conditions, other.conditions]),
            name=self.name,
        )

    def __repr__(self):
        return (
            f"FlowPairDataset(name={self.name!r}, n={len(self)}, "
            f"feature_dim={self.feature_dim}, condition_dim={self.condition_dim})"
        )
