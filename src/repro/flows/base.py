"""Core flow abstractions (paper Section I-B).

A CPPS is abstracted as a set of *flows* between components:

* **signal flows** — cyber-domain, discrete-valued (G/M-code
  instructions, sensor readings, network packets);
* **energy flows** — physical-domain, continuous time series (acoustic
  emission, vibration, power draw, thermal radiation).

:class:`FlowSpec` is the design-time *declaration* of a flow (identity,
kind, endpoints); the data classes in :mod:`repro.flows.signal` and
:mod:`repro.flows.energy` carry the run-time *observations*.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ConfigurationError


class FlowKind(enum.Enum):
    """Whether a flow lives in the cyber (signal) or physical (energy) domain."""

    SIGNAL = "signal"
    ENERGY = "energy"

    def __str__(self):
        return self.value


class EnergyForm(enum.Enum):
    """Physical modality of an energy flow (used for documentation and for
    matching synthesizers to microphone/sensor models)."""

    ACOUSTIC = "acoustic"
    VIBRATION = "vibration"
    ELECTROMAGNETIC = "electromagnetic"
    THERMAL = "thermal"
    ELECTRICAL = "electrical"
    MECHANICAL = "mechanical"
    MATERIAL = "material"

    def __str__(self):
        return self.value


@dataclass(frozen=True)
class FlowSpec:
    """Design-time declaration of one flow in a CPPS architecture.

    Attributes
    ----------
    name:
        Unique flow identifier, e.g. ``"F1"``.
    kind:
        :class:`FlowKind` — signal (cyber) or energy (physical).
    source, target:
        Component names the flow goes from/to (graph edge endpoints).
    energy_form:
        For energy flows, the physical modality; ``None`` for signals.
    intentional:
        Whether the flow is a designed interaction (True) or an
        unintentional emission/leakage path (False) — e.g. acoustic
        emission to the environment node P9 is unintentional.
    description:
        Free-text note carried into reports.
    """

    name: str
    kind: FlowKind
    source: str
    target: str
    energy_form: EnergyForm | None = None
    intentional: bool = True
    description: str = ""

    def __post_init__(self):
        if not self.name:
            raise ConfigurationError("flow name must be non-empty")
        if self.source == self.target:
            raise ConfigurationError(
                f"flow {self.name!r} is a self-loop on {self.source!r}"
            )
        if self.kind is FlowKind.ENERGY and self.energy_form is None:
            object.__setattr__(self, "energy_form", EnergyForm.MECHANICAL)
        if self.kind is FlowKind.SIGNAL and self.energy_form is not None:
            raise ConfigurationError(
                f"signal flow {self.name!r} must not declare an energy form"
            )

    @property
    def is_signal(self) -> bool:
        return self.kind is FlowKind.SIGNAL

    @property
    def is_energy(self) -> bool:
        return self.kind is FlowKind.ENERGY

    def __str__(self):
        arrow = "=>" if self.is_energy else "->"
        return f"{self.name}: {self.source} {arrow} {self.target} ({self.kind})"


@dataclass(frozen=True)
class FlowPair:
    """An ordered pair of flows ``(F_i, F_j)`` selected by Algorithm 1.

    The CGAN models ``Pr(first | second)``: *second* is the conditioning
    flow (e.g. G-code signal), *first* the modeled flow (e.g. acoustic
    energy).
    """

    first: FlowSpec
    second: FlowSpec

    def __post_init__(self):
        if self.first.name == self.second.name:
            raise ConfigurationError("a flow pair needs two distinct flows")

    @property
    def is_cross_domain(self) -> bool:
        """True when the pair couples the cyber and physical domains —
        the pairs GAN-Sec's case study selects for analysis."""
        return self.first.kind is not self.second.kind

    @property
    def names(self) -> tuple:
        return (self.first.name, self.second.name)

    def __str__(self):
        return f"({self.first.name} | {self.second.name})"
