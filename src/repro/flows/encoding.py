"""Condition encodings for the conditional GAN (paper Section IV-B).

The case study one-hot encodes which stepper motor runs between two
consecutive G-code lines: X → ``[1,0,0]``, Y → ``[0,1,0]``, Z →
``[0,0,1]``.  The paper also proposes an extension: "for three physical
components and their combination, the one-hot encoding can be of size
``2^3 = 8``" — i.e. one slot per *subset* of active motors.

Encoders here operate on ``frozenset`` of active axis names so they stay
independent of the G-code machinery (which computes the active sets).
"""

from __future__ import annotations

from itertools import chain, combinations

import numpy as np

from repro.errors import ConfigurationError, DataError


class ConditionEncoder:
    """Base interface: active-axis set <-> condition vector."""

    #: Length of the produced condition vectors.
    size: int

    def encode(self, active) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def decode(self, vector) -> frozenset:  # pragma: no cover - abstract
        raise NotImplementedError

    def encode_many(self, actives) -> np.ndarray:
        """Stack encodings of an iterable of active-axis sets."""
        rows = [self.encode(a) for a in actives]
        if not rows:
            raise DataError("no active-axis sets to encode")
        return np.vstack(rows)

    def labels(self) -> list:
        """All representable conditions, in slot order."""
        raise NotImplementedError  # pragma: no cover - abstract


class SingleMotorEncoder(ConditionEncoder):
    """The paper's 3-slot encoding: exactly one motor active at a time.

    ``axes`` defaults to ``("X", "Y", "Z")`` giving the paper's
    ``Cond1=[1,0,0]``, ``Cond2=[0,1,0]``, ``Cond3=[0,0,1]``.
    """

    def __init__(self, axes=("X", "Y", "Z")):
        axes = tuple(axes)
        if len(set(axes)) != len(axes) or not axes:
            raise ConfigurationError(f"axes must be distinct and non-empty: {axes}")
        self.axes = axes
        self.size = len(axes)

    def encode(self, active) -> np.ndarray:
        active = frozenset(active)
        if len(active) != 1:
            raise DataError(
                f"SingleMotorEncoder needs exactly one active axis, got {set(active)}"
            )
        (axis,) = active
        if axis not in self.axes:
            raise DataError(f"unknown axis {axis!r}; encoder axes are {self.axes}")
        vec = np.zeros(self.size, dtype=np.float64)
        vec[self.axes.index(axis)] = 1.0
        return vec

    def decode(self, vector) -> frozenset:
        vec = np.asarray(vector, dtype=float)
        if vec.shape != (self.size,):
            raise DataError(f"condition vector must have shape ({self.size},)")
        hot = np.flatnonzero(np.isclose(vec, 1.0))
        if len(hot) != 1 or not np.allclose(np.delete(vec, hot), 0.0):
            raise DataError(f"not a valid one-hot vector: {vec.tolist()}")
        return frozenset({self.axes[int(hot[0])]})

    def labels(self) -> list:
        return [frozenset({axis}) for axis in self.axes]

    def condition_name(self, active) -> str:
        """Paper-style name: Cond1 for X, Cond2 for Y, Cond3 for Z."""
        (axis,) = frozenset(active)
        return f"Cond{self.axes.index(axis) + 1}"

    def __repr__(self):
        return f"SingleMotorEncoder(axes={self.axes})"


class CombinationEncoder(ConditionEncoder):
    """The paper's proposed ``2^n`` extension: one slot per axis subset.

    Slot order enumerates subsets by size then lexicographically, with
    the empty set (no motor running — idle/dwell) first.
    """

    def __init__(self, axes=("X", "Y", "Z")):
        axes = tuple(axes)
        if len(set(axes)) != len(axes) or not axes:
            raise ConfigurationError(f"axes must be distinct and non-empty: {axes}")
        self.axes = axes
        subsets = chain.from_iterable(
            combinations(axes, r) for r in range(len(axes) + 1)
        )
        self._subsets = [frozenset(s) for s in subsets]
        self._index = {s: i for i, s in enumerate(self._subsets)}
        self.size = len(self._subsets)

    def encode(self, active) -> np.ndarray:
        active = frozenset(active)
        if active not in self._index:
            unknown = active - set(self.axes)
            raise DataError(
                f"active set {set(active)} not encodable; unknown axes {set(unknown)}"
            )
        vec = np.zeros(self.size, dtype=np.float64)
        vec[self._index[active]] = 1.0
        return vec

    def decode(self, vector) -> frozenset:
        vec = np.asarray(vector, dtype=float)
        if vec.shape != (self.size,):
            raise DataError(f"condition vector must have shape ({self.size},)")
        hot = np.flatnonzero(np.isclose(vec, 1.0))
        if len(hot) != 1 or not np.allclose(np.delete(vec, hot), 0.0):
            raise DataError(f"not a valid one-hot vector: {vec.tolist()}")
        return self._subsets[int(hot[0])]

    def labels(self) -> list:
        return list(self._subsets)

    def __repr__(self):
        return f"CombinationEncoder(axes={self.axes}, size={self.size})"


def condition_label(active) -> str:
    """Human-readable label for an active-axis set, e.g. ``"X+Y"`` or ``"idle"``."""
    active = sorted(frozenset(active))
    return "+".join(active) if active else "idle"
