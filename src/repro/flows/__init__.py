"""Flow abstractions: signal flows, energy flows, flow pairs, condition
encodings, and aligned datasets (paper Section I-B and IV-B).
"""

from repro.flows.base import EnergyForm, FlowKind, FlowPair, FlowSpec
from repro.flows.signal import SignalFlowData
from repro.flows.energy import EnergyFlowData
from repro.flows.encoding import (
    CombinationEncoder,
    ConditionEncoder,
    SingleMotorEncoder,
    condition_label,
)
from repro.flows.dataset import FlowPairDataset
from repro.flows.io import load_dataset, save_dataset

__all__ = [
    "CombinationEncoder",
    "ConditionEncoder",
    "condition_label",
    "EnergyFlowData",
    "EnergyForm",
    "FlowKind",
    "FlowPair",
    "FlowPairDataset",
    "FlowSpec",
    "load_dataset",
    "save_dataset",
    "SignalFlowData",
    "SingleMotorEncoder",
]
