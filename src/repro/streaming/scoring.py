"""Batched per-window likelihood scoring for the streaming detector.

The offline :class:`~repro.security.detection.EmissionAttackDetector`
scores one sample at a time with per-feature Python loops.  The
streaming engine scores *batches* of windows against the same
per-condition, per-feature Parzen models through
:meth:`~repro.security.parzen.ParzenWindow.score_batch`, with generator
draws routed through the engine's
:class:`~repro.runtime.analysis.ConditionSampleCache` and the
``(root_entropy, pair, condition)``-derived RNG streams — so a
streaming scorer and an offline detector built from the same
``(sampler, conditions, h, g_size, root_entropy)`` are fitting exactly
the same densities.

Scoring is row-independent: ``score_windows`` over any partition of a
window batch is bitwise identical to one call over the whole batch
(enforced by the streaming property tests).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, DataError, NotFittedError
from repro.runtime.analysis import ConditionSampleCache, analysis_rng
from repro.security.engine import as_picklable_sampler
from repro.security.parzen import ParzenWindow


class StreamingScorer:
    """Per-window mean log-likelihood under the *claimed* condition.

    Parameters
    ----------
    sampler:
        Trained CGAN or ``(condition, n, rng) -> samples`` callable
        providing ``G(Z | c)``.
    conditions:
        ``(n_conditions, condition_dim)`` matrix of every condition the
        G-code stream can legitimately claim; windows carry *indices*
        into this matrix.
    h / g_size:
        Parzen window width and generator samples per condition.
    feature_indices:
        Feature columns used for scoring (``None`` = all).
    root_entropy:
        Integer seed root for the per-condition generator streams
        (:func:`~repro.runtime.analysis.analysis_rng`), making fits
        reproducible and cache-addressable.
    pair:
        Flow-pair label; part of the RNG derivation and cache key.
    cache:
        Optional :class:`~repro.runtime.analysis.ConditionSampleCache`
        consulted for generated samples and refilled on miss.
    """

    def __init__(
        self,
        sampler,
        conditions,
        *,
        h: float = 0.2,
        g_size: int = 200,
        feature_indices=None,
        root_entropy: int = 0,
        pair: str = "stream",
        cache: ConditionSampleCache | None = None,
    ):
        if h <= 0:
            raise ConfigurationError(f"h must be > 0, got {h}")
        if g_size <= 0:
            raise ConfigurationError(f"g_size must be > 0, got {g_size}")
        self._sample = as_picklable_sampler(sampler)
        self.conditions = np.atleast_2d(np.asarray(conditions, dtype=float))
        if self.conditions.shape[0] < 1:
            raise ConfigurationError("need at least one condition")
        self.h = float(h)
        self.g_size = int(g_size)
        self.feature_indices = (
            None if feature_indices is None else np.asarray(feature_indices, dtype=int)
        )
        self.root_entropy = int(root_entropy)
        self.pair = str(pair)
        self.cache = cache
        self._models = None  # list (per condition) of per-feature fits

    @property
    def fitted(self) -> bool:
        return self._models is not None

    @property
    def n_conditions(self) -> int:
        return self.conditions.shape[0]

    def fit(self) -> "StreamingScorer":
        """Fit per-condition, per-feature Parzen models from G samples.

        Draws go through the sample cache when one is configured; the
        per-condition RNG is a pure function of
        ``(root_entropy, pair, condition)``, so a cache hit is
        numerically indistinguishable from regeneration.
        """
        models = []
        for cond in self.conditions:
            generated = None
            key = None
            if self.cache is not None:
                key = self.cache.key(self.pair, cond, self.g_size, self.root_entropy)
                generated = self.cache.get(key)
            if generated is None:
                rng = analysis_rng(self.root_entropy, self.pair, cond)
                generated = np.asarray(self._sample(cond, self.g_size, rng), dtype=float)
                if self.cache is not None:
                    self.cache.put(key, generated)
            if generated.ndim != 2 or generated.shape[0] != self.g_size:
                raise DataError(
                    f"sampler returned shape {generated.shape}, expected "
                    f"({self.g_size}, n_features)"
                )
            cols = (
                generated[:, self.feature_indices]
                if self.feature_indices is not None
                else generated
            )
            models.append(
                [ParzenWindow(self.h).fit(cols[:, d]) for d in range(cols.shape[1])]
            )
        self._models = models
        return self

    def score_windows(
        self, features, claim_indices, *, chunk_size: int | None = None
    ) -> np.ndarray:
        """Mean per-feature log density of each window under its claim.

        Parameters
        ----------
        features:
            ``(n_windows, n_features)`` extracted (scaled) window
            features.
        claim_indices:
            Per-window condition *index* into :attr:`conditions` — the
            condition the G-code stream claims was executing.
        chunk_size:
            Optional Parzen scoring block size (does not affect
            results).

        Higher = emission consistent with the claim (normal); lower =
        suspicious.  Rows are scored independently: any batching of
        windows produces bitwise-identical scores.
        """
        if not self.fitted:
            raise NotFittedError("StreamingScorer.fit() not called")
        features = np.atleast_2d(np.asarray(features, dtype=float))
        claims = np.asarray(claim_indices, dtype=int).ravel()
        if features.shape[0] != claims.shape[0]:
            raise DataError(
                f"{features.shape[0]} windows but {claims.shape[0]} claims"
            )
        if claims.size and (claims.min() < 0 or claims.max() >= self.n_conditions):
            raise DataError(
                f"claim indices must be in [0, {self.n_conditions}), got "
                f"range [{claims.min()}, {claims.max()}]"
            )
        if self.feature_indices is not None:
            features = features[:, self.feature_indices]
        n_feats = features.shape[1]
        scores = np.empty(features.shape[0], dtype=float)
        for ci in range(self.n_conditions):
            mask = claims == ci
            if not mask.any():
                continue
            block = features[mask]
            per_feature = self._models[ci]
            if len(per_feature) != n_feats:
                raise DataError(
                    f"windows have {n_feats} features, models fitted on "
                    f"{len(per_feature)}"
                )
            total = np.zeros(block.shape[0], dtype=float)
            for d, distr in enumerate(per_feature):
                total += distr.score_batch(block[:, d], chunk_size=chunk_size)
            scores[mask] = total / n_feats
        return scores

    def __repr__(self):
        return (
            f"StreamingScorer(pair={self.pair!r}, conditions={self.n_conditions}, "
            f"h={self.h}, g_size={self.g_size}, fitted={self.fitted})"
        )
