"""Trace replay sources and claimed-condition tracks for streaming runs.

A streaming monitor sees two inputs: the acoustic samples (from a
microphone, a WAV file, or the simulated printer) and the *claimed*
condition schedule — which motors the controller believes the G-code is
driving at every moment.  :class:`ClaimTrack` represents the schedule;
:class:`TraceReplay` turns a recorded trace into a chunk iterator at
real-time or maximum rate; :func:`synthetic_printer_stream` builds a
fully labeled scenario from the simulated printer, and
:func:`inject_claim_attack` forges the claims of chosen spans — the
G-code-stream integrity attack the detector must catch.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError, DataError
from repro.flows.dataset import FlowPairDataset
from repro.flows.encoding import SingleMotorEncoder
from repro.manufacturing.printer import Printer3D
from repro.manufacturing.programs import calibration_suite
from repro.manufacturing.traces import build_dataset, collect_segments
from repro.dsp.features import FrequencyFeatureExtractor
from repro.utils.rng import as_rng


@dataclass(frozen=True)
class ClaimTrack:
    """Piecewise-constant claimed-condition schedule over the stream.

    ``boundaries[i]`` is the first sample of span *i* (``boundaries[0]``
    must be 0) and ``span_conditions[i]`` the index into *conditions*
    claimed for that span.  The claim of an analysis window is the claim
    in effect at its *start* sample — a fixed, chunking-independent rule
    shared by the offline oracle and the streaming path.
    """

    boundaries: np.ndarray  # (n_spans,) int64 start sample of each span
    span_conditions: np.ndarray  # (n_spans,) int64 indices into `conditions`
    conditions: np.ndarray  # (n_conditions, condition_dim) float

    def __post_init__(self):
        b = np.asarray(self.boundaries, dtype=np.int64)
        s = np.asarray(self.span_conditions, dtype=np.int64)
        c = np.atleast_2d(np.asarray(self.conditions, dtype=float))
        if b.ndim != 1 or s.ndim != 1 or b.shape != s.shape or b.size == 0:
            raise DataError("boundaries and span_conditions must be equal-length 1-D")
        if b[0] != 0:
            raise DataError(f"first span must start at sample 0, got {b[0]}")
        if np.any(np.diff(b) <= 0):
            raise DataError("span boundaries must be strictly increasing")
        if s.size and (s.min() < 0 or s.max() >= c.shape[0]):
            raise DataError(
                f"span condition indices must be in [0, {c.shape[0]})"
            )
        object.__setattr__(self, "boundaries", b)
        object.__setattr__(self, "span_conditions", s)
        object.__setattr__(self, "conditions", c)

    @property
    def n_spans(self) -> int:
        return len(self.boundaries)

    def window_claims(self, window_starts) -> np.ndarray:
        """Condition index claimed at each window start sample."""
        starts = np.asarray(window_starts, dtype=np.int64)
        if starts.size and starts.min() < 0:
            raise DataError("window starts must be >= 0")
        span = np.searchsorted(self.boundaries, starts, side="right") - 1
        return self.span_conditions[span]

    def with_span_conditions(self, span_conditions) -> "ClaimTrack":
        """A copy claiming different conditions for the same spans."""
        return ClaimTrack(self.boundaries.copy(), span_conditions, self.conditions)


class TraceReplay:
    """Iterate a recorded trace as fixed-size chunks.

    Parameters
    ----------
    samples / sample_rate:
        The full trace.
    chunk_size:
        Samples per chunk (the trailing chunk may be shorter).
    rate:
        ``"max"`` yields chunks as fast as the consumer takes them;
        ``"realtime"`` sleeps so the stream advances at *sample_rate*
        (scaled by *speedup*), emulating a live microphone.
    speedup:
        Real-time pacing multiplier (2.0 = twice real time).
    """

    def __init__(
        self,
        samples,
        sample_rate: float,
        *,
        chunk_size: int = 1024,
        rate: str = "max",
        speedup: float = 1.0,
    ):
        self.samples = np.ascontiguousarray(np.asarray(samples, dtype=np.float64))
        if self.samples.ndim != 1:
            raise DataError(f"samples must be 1-D, got shape {self.samples.shape}")
        if sample_rate <= 0:
            raise ConfigurationError(f"sample_rate must be > 0, got {sample_rate}")
        if chunk_size < 1:
            raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
        if rate not in ("max", "realtime"):
            raise ConfigurationError(f"rate must be 'max' or 'realtime', got {rate!r}")
        if speedup <= 0:
            raise ConfigurationError(f"speedup must be > 0, got {speedup}")
        self.sample_rate = float(sample_rate)
        self.chunk_size = int(chunk_size)
        self.rate = rate
        self.speedup = float(speedup)

    def __iter__(self):
        paced = self.rate == "realtime"
        t0 = time.perf_counter() if paced else 0.0
        for start in range(0, len(self.samples), self.chunk_size):
            chunk = self.samples[start : start + self.chunk_size]
            if paced:
                due = t0 + (start + len(chunk)) / (self.sample_rate * self.speedup)
                delay = due - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
            yield chunk


@dataclass
class StreamScenario:
    """A fully labeled streaming workload built from the simulated printer.

    Attributes
    ----------
    samples / sample_rate:
        The continuous acoustic trace (back-to-back labeled motion
        segments, exactly the audio the calibration dataset was
        featureized from).
    claims:
        Ground-truth claimed-condition schedule for the trace.
    calibration:
        The labeled :class:`~repro.flows.dataset.FlowPairDataset`
        recorded from the same printer — fit material for scorer and
        decision-layer calibration.
    extractor:
        The :class:`~repro.dsp.features.FrequencyFeatureExtractor`
        whose scaler was fitted on *calibration*.
    encoder:
        Condition encoder mapping axis sets to one-hot conditions.
    attacked_spans:
        Span indices whose claims were forged (empty until
        :func:`inject_claim_attack` runs).
    """

    samples: np.ndarray
    sample_rate: float
    claims: ClaimTrack
    calibration: FlowPairDataset
    extractor: FrequencyFeatureExtractor
    encoder: object
    attacked_spans: list = field(default_factory=list)

    @property
    def duration(self) -> float:
        return len(self.samples) / self.sample_rate

    def replay(self, *, chunk_size: int = 1024, rate: str = "max", speedup: float = 1.0):
        return TraceReplay(
            self.samples,
            self.sample_rate,
            chunk_size=chunk_size,
            rate=rate,
            speedup=speedup,
        )


def synthetic_printer_stream(
    *,
    n_moves_per_axis: int = 4,
    sample_rate: float = 12000.0,
    n_bins: int = 100,
    seed=None,
    printer: Printer3D | None = None,
) -> StreamScenario:
    """Simulate the printer and package its audio as a streaming scenario.

    Runs the single-motor calibration suite, featureizes the usable
    segments into the calibration dataset (fitting the extractor's
    scaler, exactly like :func:`record_case_study_dataset`), and
    concatenates those same segments into one continuous trace with a
    per-segment :class:`ClaimTrack` — so every streamed window has a
    known true condition and the calibration features live in the same
    scaled space the stream will be scored in.
    """
    rng = as_rng(seed)
    printer = printer or Printer3D(sample_rate=sample_rate, seed=rng)
    encoder = SingleMotorEncoder()
    programs = calibration_suite(n_moves_per_axis, seed=rng)
    runs = [printer.run(p, seed=rng) for p in programs]
    segments = collect_segments(runs)
    extractor = FrequencyFeatureExtractor(printer.sample_rate, n_bins=n_bins)

    usable = []
    span_conditions = []
    for seg in segments:
        try:
            cond = encoder.encode(seg.active_axes)
        except DataError:
            continue
        usable.append(seg)
        span_conditions.append(cond)
    if not usable:
        raise DataError("printer produced no encodable segments")
    calibration = build_dataset(segments, extractor, encoder, name="stream|gcode")

    conditions = calibration.unique_conditions()
    cond_index = {tuple(c): i for i, c in enumerate(conditions)}
    boundaries = np.zeros(len(usable), dtype=np.int64)
    indices = np.empty(len(usable), dtype=np.int64)
    cursor = 0
    for i, (seg, cond) in enumerate(zip(usable, span_conditions)):
        boundaries[i] = cursor
        indices[i] = cond_index[tuple(cond)]
        cursor += len(seg.samples)
    samples = np.concatenate([seg.samples for seg in usable])

    return StreamScenario(
        samples=samples,
        sample_rate=printer.sample_rate,
        claims=ClaimTrack(boundaries, indices, conditions),
        calibration=calibration,
        extractor=extractor,
        encoder=encoder,
    )


def inject_claim_attack(
    scenario: StreamScenario,
    *,
    n_spans: int = 2,
    seed=None,
) -> StreamScenario:
    """Forge the claimed condition of *n_spans* spans (integrity attack).

    Models an attacker modifying the G-code stream: the physical motion
    (and therefore the audio) is unchanged, but the controller's claim
    for the chosen spans is rotated to a different condition.  Returns a
    new scenario sharing the samples, with :attr:`StreamScenario.claims`
    forged and :attr:`StreamScenario.attacked_spans` recording where.
    """
    if n_spans < 1:
        raise ConfigurationError(f"n_spans must be >= 1, got {n_spans}")
    track = scenario.claims
    if track.conditions.shape[0] < 2:
        raise DataError("need >= 2 conditions to forge a claim")
    rng = as_rng(seed)
    n_spans = min(n_spans, track.n_spans)
    chosen = np.sort(rng.choice(track.n_spans, size=n_spans, replace=False))
    forged = track.span_conditions.copy()
    n_conds = track.conditions.shape[0]
    for idx in chosen:
        forged[idx] = (forged[idx] + 1 + rng.integers(0, n_conds - 1)) % n_conds
    return StreamScenario(
        samples=scenario.samples,
        sample_rate=scenario.sample_rate,
        claims=track.with_span_conditions(forged),
        calibration=scenario.calibration,
        extractor=scenario.extractor,
        encoder=scenario.encoder,
        attacked_spans=[int(i) for i in chosen],
    )
