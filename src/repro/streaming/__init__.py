"""Online attack detection over streaming acoustic emissions.

The offline security analysis (:mod:`repro.security`) scores
pre-recorded traces in batch.  This package is the same detector run as
a long-lived service over incrementally arriving samples:

* :mod:`~repro.streaming.windowing` — bounded ring buffer and
  hop-based windowing (any chunking, identical windows);
* :mod:`~repro.streaming.scoring` — batched per-window Parzen
  likelihoods under the claimed condition;
* :mod:`~repro.streaming.calibration` — fitting extractor, scorer, and
  decision layer from a clean labeled trace (CGAN or empirical);
* :mod:`~repro.streaming.session` — the driver: bounded queue with
  backpressure, graceful drain, metrics, typed events;
* :mod:`~repro.streaming.replay` — WAV/synthetic trace sources and
  claimed-condition schedules.

The load-bearing guarantee, enforced by the streaming test harness:
streaming scoring over any chunking of a trace is bitwise identical to
offline batch scoring of the same windows
(:func:`~repro.streaming.calibration.offline_stream_scores`), so every
offline golden fixture doubles as a streaming oracle.
"""

from repro.streaming.calibration import (
    StreamCalibration,
    calibrate_stream_monitor,
    offline_stream_scores,
)
from repro.streaming.replay import (
    ClaimTrack,
    StreamScenario,
    TraceReplay,
    inject_claim_attack,
    synthetic_printer_stream,
)
from repro.streaming.scoring import StreamingScorer
from repro.streaming.session import (
    BACKPRESSURE_POLICIES,
    StreamMetrics,
    StreamSession,
)
from repro.streaming.windowing import RingBuffer, StreamWindower, Window, frame_signal

__all__ = [
    "BACKPRESSURE_POLICIES",
    "ClaimTrack",
    "RingBuffer",
    "StreamCalibration",
    "StreamMetrics",
    "StreamScenario",
    "StreamSession",
    "StreamWindower",
    "StreamingScorer",
    "TraceReplay",
    "Window",
    "calibrate_stream_monitor",
    "frame_signal",
    "inject_claim_attack",
    "offline_stream_scores",
    "synthetic_printer_stream",
]
