"""Monitor calibration: from a labeled clean trace to a ready scorer.

An online monitor needs three fitted artifacts before it can watch a
live stream: a feature extractor whose scaler matches the deployment
window geometry, per-condition Parzen densities to score claims
against, and a decision layer normalized to clean-window score
statistics.  :func:`calibrate_stream_monitor` builds all three from a
clean reference recording with known claims — either around a trained
CGAN sampler (the paper's detection dual: the *model* predicts what
each condition should sound like) or, when no model is given, around
an empirical per-condition resampler of the calibration windows
themselves (:class:`~repro.security.baselines.EmpiricalConditionalSampler`,
the "directly estimate from data" baseline).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, DataError
from repro.dsp.features import FrequencyFeatureExtractor
from repro.flows.dataset import FlowPairDataset
from repro.security.baselines import EmpiricalConditionalSampler
from repro.security.sequence import CusumDetector, EwmaDetector
from repro.streaming.replay import ClaimTrack
from repro.streaming.scoring import StreamingScorer
from repro.streaming.windowing import frame_signal


@dataclass
class StreamCalibration:
    """Fitted monitor components plus the evidence they were fitted on."""

    extractor: FrequencyFeatureExtractor
    scorer: StreamingScorer
    detector: object
    windows: FlowPairDataset  # calibration window features + one-hot claims
    claim_indices: np.ndarray  # per-window condition index
    clean_scores: np.ndarray  # scorer output on the calibration windows

    def make_detector(self) -> object:
        """A fresh decision layer with the calibrated normalization.

        Detectors are stateful; sessions must not share one.
        """
        d = self.detector
        if isinstance(d, CusumDetector):
            return CusumDetector(
                reference=d.reference,
                scale=d.scale,
                drift=d.drift,
                threshold=d.threshold,
                reset_on_alarm=d.reset_on_alarm,
            )
        if isinstance(d, EwmaDetector):
            return EwmaDetector(
                reference=d.reference,
                scale=d.scale,
                alpha=d.alpha,
                threshold=d.threshold,
                reset_on_alarm=d.reset_on_alarm,
            )
        raise ConfigurationError(f"unknown detector type {type(d).__name__}")


def calibrate_stream_monitor(
    samples,
    sample_rate: float,
    claims: ClaimTrack,
    *,
    window_size: int,
    hop_size: int,
    n_bins: int = 100,
    sampler=None,
    h: float = 0.2,
    g_size: int = 200,
    root_entropy: int = 0,
    pair: str = "stream",
    cache=None,
    detector: str = "cusum",
    drift: float = 0.5,
    threshold: float = 10.0,
    extractor: FrequencyFeatureExtractor | None = None,
) -> StreamCalibration:
    """Fit extractor, scorer, and decision layer on a clean labeled trace.

    The trace is windowed exactly as the live stream will be
    (:func:`~repro.streaming.windowing.frame_signal` with the same
    geometry), features are extracted through the cached filter bank,
    and the scaler is fitted on those windows — so calibration and
    deployment features live in the same space.  *sampler* (e.g. a
    trained CGAN) provides ``G(Z | c)``; when ``None`` the per-condition
    calibration windows themselves are resampled.

    Everything downstream of *root_entropy* is deterministic, so two
    monitors calibrated from the same trace score identically.
    """
    if detector not in ("cusum", "ewma"):
        raise ConfigurationError(
            f"detector must be 'cusum' or 'ewma', got {detector!r}"
        )
    windows, starts = frame_signal(samples, window_size, hop_size)
    if windows.shape[0] < 2:
        raise DataError(
            f"calibration trace yields {windows.shape[0]} windows; need >= 2"
        )
    claim_idx = claims.window_claims(starts)
    if extractor is None:
        extractor = FrequencyFeatureExtractor(sample_rate, n_bins=n_bins)
        features = extractor.fit_transform(windows)
    else:
        features = extractor.transform(windows)
    window_set = FlowPairDataset(
        features, claims.conditions[claim_idx], name=f"{pair}|windows"
    )
    if sampler is None:
        sampler = EmpiricalConditionalSampler(window_set)
    scorer = StreamingScorer(
        sampler,
        claims.conditions,
        h=h,
        g_size=g_size,
        root_entropy=root_entropy,
        pair=pair,
        cache=cache,
    ).fit()
    clean_scores = scorer.score_windows(features, claim_idx)
    if detector == "cusum":
        decision = CusumDetector.from_calibration(
            clean_scores, drift=drift, threshold=threshold
        )
    else:
        decision = EwmaDetector.from_calibration(clean_scores, threshold=threshold)
    return StreamCalibration(
        extractor=extractor,
        scorer=scorer,
        detector=decision,
        windows=window_set,
        claim_indices=claim_idx,
        clean_scores=clean_scores,
    )


def offline_stream_scores(
    samples,
    claims: ClaimTrack,
    calibration: StreamCalibration,
    *,
    window_size: int,
    hop_size: int,
) -> tuple:
    """The offline oracle: batch-score a whole trace in one shot.

    Returns ``(scores, starts, alarm_indices)`` computed with the exact
    code path the streaming session uses — full-trace windowing, one
    feature-extraction batch, one scoring batch, and a fresh decision
    layer fed in order.  Streaming the same trace in any chunking must
    reproduce these numbers bitwise; the property tests and golden
    fixtures enforce it.
    """
    windows, starts = frame_signal(samples, window_size, hop_size)
    features = calibration.extractor.transform(windows)
    claim_idx = claims.window_claims(starts)
    scores = calibration.scorer.score_windows(features, claim_idx)
    detector = calibration.make_detector()
    detector.update_many(scores)
    return scores, starts, list(detector.alarms)
