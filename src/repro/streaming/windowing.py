"""Bounded ring buffer and hop-based windowing for streaming traces.

The offline pipeline slices a complete recording into analysis windows
in one shot (:func:`frame_signal`).  The streaming engine receives the
same samples in arbitrary chunks — one sample at a time, one network
packet at a time, or the whole trace at once — and must emit *exactly*
the same windows.  :class:`StreamWindower` guarantees that: for any
partition of a trace into chunks, the concatenation of the windows
returned by successive :meth:`StreamWindower.push` calls is bitwise
identical to ``frame_signal(trace, window_size, hop_size)``.

Memory stays bounded by the ring buffer regardless of stream length:
only the samples that can still contribute to an unemitted window are
retained (at most ``window_size + hop_size`` at any time).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, DataError


def frame_signal(samples, window_size: int, hop_size: int):
    """Offline reference windowing: complete windows of a full trace.

    Returns ``(windows, starts)`` where *windows* is the stacked
    ``(n_windows, window_size)`` float64 matrix of every complete
    window ``samples[k*hop : k*hop + window]`` and *starts* the
    corresponding start sample indices.  A trailing partial window is
    never emitted (there is no padding), matching the streaming path.
    """
    samples = np.ascontiguousarray(np.asarray(samples, dtype=np.float64))
    if samples.ndim != 1:
        raise DataError(f"samples must be 1-D, got shape {samples.shape}")
    _check_geometry(window_size, hop_size)
    n = len(samples)
    if n < window_size:
        return (
            np.empty((0, window_size), dtype=np.float64),
            np.empty(0, dtype=np.int64),
        )
    n_windows = (n - window_size) // hop_size + 1
    starts = np.arange(n_windows, dtype=np.int64) * hop_size
    windows = np.empty((n_windows, window_size), dtype=np.float64)
    for i, s in enumerate(starts):
        windows[i] = samples[s : s + window_size]
    return windows, starts


def _check_geometry(window_size: int, hop_size: int) -> None:
    if window_size < 1:
        raise ConfigurationError(f"window_size must be >= 1, got {window_size}")
    if hop_size < 1:
        raise ConfigurationError(f"hop_size must be >= 1, got {hop_size}")
    if hop_size > window_size:
        raise ConfigurationError(
            f"hop_size {hop_size} > window_size {window_size} would skip "
            "samples; overlapping or abutting windows only"
        )


class RingBuffer:
    """Fixed-capacity float64 ring buffer with absolute sample indexing.

    Samples keep their absolute position in the stream: ``read(i, n)``
    returns stream samples ``[i, i+n)`` as long as they are still
    buffered.  ``discard_before(i)`` releases everything older than
    *i* so the capacity bound is maintained by the caller's protocol,
    not by silent overwrites — :meth:`append` raises if the buffer
    would overflow, which turns protocol bugs into loud errors.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._data = np.empty(self.capacity, dtype=np.float64)
        self._start = 0  # absolute index of the oldest retained sample
        self._length = 0

    def __len__(self):
        return self._length

    @property
    def start_index(self) -> int:
        return self._start

    @property
    def end_index(self) -> int:
        """Absolute index one past the newest retained sample."""
        return self._start + self._length

    @property
    def free(self) -> int:
        return self.capacity - self._length

    def append(self, samples: np.ndarray) -> None:
        """Append *samples* (1-D float64); raises on overflow."""
        n = len(samples)
        if n > self.free:
            raise DataError(
                f"ring buffer overflow: {n} samples offered, {self.free} free "
                f"(capacity {self.capacity})"
            )
        pos = (self._start + self._length) % self.capacity
        first = min(n, self.capacity - pos)
        self._data[pos : pos + first] = samples[:first]
        if first < n:
            self._data[: n - first] = samples[first:]
        self._length += n

    def read(self, abs_start: int, n: int) -> np.ndarray:
        """Copy stream samples ``[abs_start, abs_start + n)`` out."""
        if abs_start < self._start or abs_start + n > self.end_index:
            raise DataError(
                f"read [{abs_start}, {abs_start + n}) outside buffered "
                f"range [{self._start}, {self.end_index})"
            )
        pos = (self._start + (abs_start - self._start)) % self.capacity
        out = np.empty(n, dtype=np.float64)
        first = min(n, self.capacity - pos)
        out[:first] = self._data[pos : pos + first]
        if first < n:
            out[first:] = self._data[: n - first]
        return out

    def discard_before(self, abs_index: int) -> None:
        """Release every sample older than *abs_index*."""
        if abs_index <= self._start:
            return
        drop = min(abs_index - self._start, self._length)
        self._start += drop
        self._length -= drop

    def clear_to(self, abs_index: int) -> None:
        """Empty the buffer and continue the stream at *abs_index*."""
        if abs_index < self.end_index:
            raise DataError(
                f"cannot rewind ring buffer to {abs_index} "
                f"(stream is at {self.end_index})"
            )
        self._start = abs_index
        self._length = 0

    def __repr__(self):
        return (
            f"RingBuffer(capacity={self.capacity}, "
            f"range=[{self._start}, {self.end_index}))"
        )


@dataclass(frozen=True)
class Window:
    """One complete analysis window cut from the stream."""

    index: int  # 0-based window counter (offline row number)
    start: int  # absolute start sample in the stream
    samples: np.ndarray  # (window_size,) float64 copy


class StreamWindower:
    """Incremental hop-based windowing over a bounded ring buffer.

    Push chunks of any size; complete windows come back as
    :class:`Window` objects in stream order.  For any chunking of a
    trace the emitted windows are bitwise identical to
    :func:`frame_signal` of the whole trace — the load-bearing
    guarantee the streaming test harness enforces.
    """

    def __init__(self, window_size: int, hop_size: int):
        _check_geometry(window_size, hop_size)
        self.window_size = int(window_size)
        self.hop_size = int(hop_size)
        # One window plus one hop is the most that must be retained
        # between pushes; +hop also gives append/emit slack within a push.
        self._ring = RingBuffer(self.window_size + 2 * self.hop_size)
        self._next_start = 0  # absolute start of the next window to emit
        self._emitted = 0
        self._consumed = 0  # absolute samples pushed (incl. gaps)

    @property
    def windows_emitted(self) -> int:
        return self._emitted

    @property
    def samples_consumed(self) -> int:
        return self._consumed

    @property
    def pending_samples(self) -> int:
        """Buffered samples not yet part of an emitted window's hop."""
        return self._consumed - self._next_start

    def push(self, chunk) -> list:
        """Feed one chunk; return the windows it completed (maybe [])."""
        chunk = np.asarray(chunk, dtype=np.float64)
        if chunk.ndim != 1:
            raise DataError(f"chunk must be 1-D, got shape {chunk.shape}")
        out = []
        offset = 0
        n = len(chunk)
        while offset < n:
            take = min(n - offset, self._ring.free)
            if take > 0:
                self._ring.append(chunk[offset : offset + take])
                self._consumed += take
                offset += take
            self._drain_ready(out)
            if take == 0 and self._ring.free == 0:  # pragma: no cover
                raise DataError("windower wedged: full ring, no window ready")
        return out

    def _drain_ready(self, out: list) -> None:
        while self._ring.end_index - self._next_start >= self.window_size:
            samples = self._ring.read(self._next_start, self.window_size)
            out.append(
                Window(index=self._emitted, start=self._next_start, samples=samples)
            )
            self._emitted += 1
            self._next_start += self.hop_size
            self._ring.discard_before(self._next_start)

    def skip_gap(self, n_samples: int) -> int:
        """Account for *n_samples* lost from the stream (dropped chunks).

        The carry and the gap cannot form valid windows, so windowing
        realigns at the first sample after the gap.  Returns a lower
        bound on the number of complete windows lost — the caller
        reports it; nothing is lost silently.
        """
        if n_samples < 0:
            raise ConfigurationError(f"n_samples must be >= 0, got {n_samples}")
        if n_samples == 0:
            return 0
        unusable = (self._consumed - self._next_start) + n_samples
        lost = max(0, (unusable - self.window_size) // self.hop_size + 1)
        self._consumed += n_samples
        self._next_start = self._consumed
        self._ring.clear_to(self._consumed)
        self._emitted += lost
        return int(lost)

    def __repr__(self):
        return (
            f"StreamWindower(window={self.window_size}, hop={self.hop_size}, "
            f"emitted={self._emitted}, pending={self.pending_samples})"
        )
