"""Long-running streaming detection sessions.

:class:`StreamSession` wires the whole online pipeline together:

    chunk source → bounded queue (backpressure) → StreamWindower
        → FrequencyFeatureExtractor (cached filter bank, batched)
        → StreamingScorer (batched Parzen scoring)
        → sequential decision layer (CUSUM/EWMA)
        → typed events on the EventBus

A producer thread pulls chunks from the source into a bounded queue;
the caller's thread consumes, so all numerical work runs in one thread
in stream order — which is what keeps streaming output bitwise
identical to the offline oracle.  Backpressure policy decides what
happens when the producer outruns the scorer:

* ``"block"`` — the producer waits (a file replay slows down; nothing
  is ever lost);
* ``"drop_oldest"`` — the oldest queued chunk is discarded (a live
  microphone must not block); every drop is surfaced as a
  :class:`~repro.runtime.events.WindowsDropped` event and counted in
  the session metrics, never silent.

Failures are isolated: a batch whose scoring raises is reported
(:class:`~repro.runtime.events.WindowBatchFailed`) and the session
continues; a producer that dies mid-stream has its error recorded and
everything it delivered is still scored and drained.  ``run()`` always
returns a complete :class:`StreamMetrics`.
"""

from __future__ import annotations

import threading
import time
import traceback
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.runtime.events import (
    AttackDetected,
    EventBus,
    StreamFinished,
    StreamStarted,
    WindowBatchFailed,
    WindowBatchScored,
    WindowsDropped,
)
from repro.streaming.windowing import StreamWindower

BACKPRESSURE_POLICIES = ("block", "drop_oldest")

_EOS = object()  # end-of-stream sentinel


class _ProducerError:
    """Sentinel carrying a dead producer's traceback through the queue."""

    __slots__ = ("error",)

    def __init__(self, error: str):
        self.error = error


class _ChunkQueue:
    """Bounded chunk queue implementing both backpressure policies."""

    def __init__(self, capacity: int, policy: str):
        if capacity < 1:
            raise ConfigurationError(f"queue capacity must be >= 1, got {capacity}")
        if policy not in BACKPRESSURE_POLICIES:
            raise ConfigurationError(
                f"policy must be one of {BACKPRESSURE_POLICIES}, got {policy!r}"
            )
        self.capacity = int(capacity)
        self.policy = policy
        self._items: deque = deque()
        self._cond = threading.Condition()
        self.dropped_chunks = 0
        self.dropped_samples = 0
        self._closed = False

    def put(self, chunk) -> int:
        """Enqueue *chunk*; returns samples dropped to make room (0 or more).

        Control items (sentinels) are always accepted; sample chunks
        honor the policy.
        """
        with self._cond:
            is_samples = isinstance(chunk, np.ndarray)
            if is_samples:
                if self.policy == "block":
                    while len(self._items) >= self.capacity and not self._closed:
                        self._cond.wait(timeout=0.1)
                    if self._closed:
                        return 0
                dropped = 0
                while len(self._items) >= self.capacity:
                    victim = self._items.popleft()
                    if isinstance(victim, np.ndarray):
                        self.dropped_chunks += 1
                        self.dropped_samples += len(victim)
                        dropped += len(victim)
                    else:  # never drop control items; park them in front
                        self._items.appendleft(victim)
                        break
                self._items.append(chunk)
                self._cond.notify_all()
                return dropped
            self._items.append(chunk)
            self._cond.notify_all()
            return 0

    def get(self):
        with self._cond:
            while not self._items:
                self._cond.wait()
            item = self._items.popleft()
            self._cond.notify_all()
            return item

    def close(self) -> None:
        """Unblock any waiting producer (used on consumer-side shutdown)."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()


def _percentile(values, q: float) -> float:
    if not values:
        return 0.0
    return float(np.percentile(np.asarray(values, dtype=float), q))


@dataclass
class StreamMetrics:
    """Everything a finished (or failed) session can report."""

    stream: str = "stream"
    sample_rate: float = 0.0
    windows_scored: int = 0
    windows_failed: int = 0
    windows_dropped: int = 0
    dropped_samples: int = 0
    samples_consumed: int = 0
    chunks_consumed: int = 0
    batches: int = 0
    alarms: list = field(default_factory=list)
    scores: list = field(default_factory=list)
    batch_seconds: list = field(default_factory=list)
    wall_seconds: float = 0.0
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def windows_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.windows_scored / self.wall_seconds

    @property
    def realtime_factor(self) -> float:
        """How many seconds of audio were processed per wall second."""
        if self.wall_seconds <= 0 or self.sample_rate <= 0:
            return 0.0
        return (self.samples_consumed / self.sample_rate) / self.wall_seconds

    def latency_percentiles(self) -> dict:
        return {
            "p50_ms": _percentile(self.batch_seconds, 50) * 1e3,
            "p95_ms": _percentile(self.batch_seconds, 95) * 1e3,
            "max_ms": _percentile(self.batch_seconds, 100) * 1e3,
        }

    def to_dict(self) -> dict:
        return {
            "stream": self.stream,
            "sample_rate": self.sample_rate,
            "windows_scored": self.windows_scored,
            "windows_failed": self.windows_failed,
            "windows_dropped": self.windows_dropped,
            "dropped_samples": self.dropped_samples,
            "samples_consumed": self.samples_consumed,
            "chunks_consumed": self.chunks_consumed,
            "batches": self.batches,
            "alarms": list(self.alarms),
            "n_alarms": len(self.alarms),
            "wall_seconds": self.wall_seconds,
            "windows_per_second": self.windows_per_second,
            "realtime_factor": self.realtime_factor,
            "scoring_latency": self.latency_percentiles(),
            "error": self.error,
        }


class StreamSession:
    """One online detection run over a chunked sample source.

    Parameters
    ----------
    source:
        Iterable of 1-D sample chunks (e.g. a
        :class:`~repro.streaming.replay.TraceReplay`).
    extractor:
        Fitted :class:`~repro.dsp.features.FrequencyFeatureExtractor`.
    scorer:
        Fitted :class:`~repro.streaming.scoring.StreamingScorer`.
    claims:
        :class:`~repro.streaming.replay.ClaimTrack` giving the claimed
        condition at every sample (window claim = claim at its start).
    detector:
        Optional sequential decision layer
        (:class:`~repro.security.sequence.CusumDetector` /
        :class:`~repro.security.sequence.EwmaDetector`); ``None``
        scores without alarming.
    window_size / hop_size:
        Analysis window geometry in samples.
    sample_rate:
        Stream sample rate (alarm timestamps, throughput metrics).
    batch_windows:
        Windows accumulated before one featureize+score call.
    queue_chunks / policy:
        Backpressure: bounded queue capacity and full-queue policy
        (``"block"`` or ``"drop_oldest"``).
    bus:
        Optional :class:`~repro.runtime.events.EventBus` receiving the
        stream events.
    name:
        Stream label used in events and metrics.
    """

    def __init__(
        self,
        source,
        *,
        extractor,
        scorer,
        claims,
        detector=None,
        window_size: int,
        hop_size: int,
        sample_rate: float,
        batch_windows: int = 32,
        queue_chunks: int = 16,
        policy: str = "block",
        chunk_score_size: int | None = None,
        bus: EventBus | None = None,
        name: str = "stream",
    ):
        if batch_windows < 1:
            raise ConfigurationError(f"batch_windows must be >= 1, got {batch_windows}")
        if sample_rate <= 0:
            raise ConfigurationError(f"sample_rate must be > 0, got {sample_rate}")
        self.source = source
        self.extractor = extractor
        self.scorer = scorer
        self.claims = claims
        self.detector = detector
        self.windower = StreamWindower(window_size, hop_size)
        self.sample_rate = float(sample_rate)
        self.batch_windows = int(batch_windows)
        self.chunk_score_size = chunk_score_size
        self.queue = _ChunkQueue(queue_chunks, policy)
        self.bus = bus if bus is not None else EventBus()
        self.name = str(name)
        self.metrics = StreamMetrics(stream=self.name, sample_rate=self.sample_rate)
        self._stop = threading.Event()
        self._pending: list = []
        self._started = False

    # -- producer side -------------------------------------------------------
    def _produce(self) -> None:
        try:
            for chunk in self.source:
                if self._stop.is_set():
                    break
                arr = np.asarray(chunk, dtype=np.float64)
                self.queue.put(arr)
        except Exception:  # noqa: BLE001 - producer death must be survivable
            self.queue.put(_ProducerError(traceback.format_exc()))
        finally:
            self.queue.put(_EOS)

    def stop(self) -> None:
        """Request a graceful shutdown: stop producing, drain, finish."""
        self._stop.set()
        self.queue.close()

    # -- consumer side -------------------------------------------------------
    def _flush_batch(self, final: bool = False) -> None:
        while self._pending and (
            len(self._pending) >= self.batch_windows or final
        ):
            batch = self._pending[: self.batch_windows]
            del self._pending[: len(batch)]
            self._score_batch(batch)

    def _score_batch(self, batch: list) -> None:
        first = batch[0].index
        t0 = time.perf_counter()
        try:
            stacked = np.stack([w.samples for w in batch])
            starts = np.array([w.start for w in batch], dtype=np.int64)
            features = self.extractor.transform(stacked)
            claim_idx = self.claims.window_claims(starts)
            scores = self.scorer.score_windows(
                features, claim_idx, chunk_size=self.chunk_score_size
            )
        except Exception:  # noqa: BLE001 - isolate the batch, keep streaming
            self.metrics.windows_failed += len(batch)
            self.bus.emit(
                WindowBatchFailed(
                    stream=self.name,
                    first_window=first,
                    n_windows=len(batch),
                    error=traceback.format_exc(),
                )
            )
            return
        seconds = time.perf_counter() - t0
        self.metrics.batches += 1
        self.metrics.batch_seconds.append(seconds)
        self.metrics.windows_scored += len(batch)
        self.metrics.scores.extend(float(s) for s in scores)
        self.bus.emit(
            WindowBatchScored(
                stream=self.name,
                first_window=first,
                n_windows=len(batch),
                seconds=seconds,
            )
        )
        if self.detector is None:
            return
        for window, score in zip(batch, scores):
            if self.detector.update(float(score)):
                self.metrics.alarms.append(window.index)
                cond_idx = int(self.claims.window_claims([window.start])[0])
                self.bus.emit(
                    AttackDetected(
                        stream=self.name,
                        window_index=window.index,
                        time_seconds=window.start / self.sample_rate,
                        score=float(score),
                        statistic=float(self.detector.statistic),
                        threshold=float(self.detector.threshold),
                        detector=type(self.detector).__name__,
                        claimed_condition=tuple(
                            float(v) for v in self.claims.conditions[cond_idx]
                        ),
                    )
                )

    def _account_drops(self) -> None:
        new_samples = self.queue.dropped_samples - self.metrics.dropped_samples
        if new_samples <= 0:
            return
        lost = self.windower.skip_gap(new_samples)
        self.metrics.dropped_samples = self.queue.dropped_samples
        self.metrics.windows_dropped += lost
        self.bus.emit(
            WindowsDropped(
                stream=self.name,
                samples=new_samples,
                est_windows=lost,
                policy=self.queue.policy,
            )
        )

    def run(self) -> StreamMetrics:
        """Consume the whole stream (or until :meth:`stop`); never raises.

        Blocks the calling thread; a daemon producer thread feeds the
        queue.  Returns the session metrics, with :attr:`StreamMetrics.error`
        set if the producer died mid-stream.
        """
        if self._started:
            raise ConfigurationError("StreamSession.run() already consumed")
        self._started = True
        self.bus.emit(
            StreamStarted(
                stream=self.name,
                sample_rate=self.sample_rate,
                window_size=self.windower.window_size,
                hop_size=self.windower.hop_size,
                policy=self.queue.policy,
            )
        )
        producer = threading.Thread(
            target=self._produce, name=f"{self.name}-producer", daemon=True
        )
        t0 = time.perf_counter()
        producer.start()
        try:
            while True:
                item = self.queue.get()
                if item is _EOS:
                    break
                if isinstance(item, _ProducerError):
                    self.metrics.error = item.error
                    continue  # keep draining what was delivered before death
                self._account_drops()
                self.metrics.chunks_consumed += 1
                self.metrics.samples_consumed += len(item)
                self._pending.extend(self.windower.push(item))
                self._flush_batch()
            self._account_drops()
            self._flush_batch(final=True)  # drain the trailing partial batch
        finally:
            self._stop.set()
            self.queue.close()
            producer.join(timeout=5.0)
            self.metrics.wall_seconds = time.perf_counter() - t0
            self.bus.emit(
                StreamFinished(
                    stream=self.name,
                    windows_scored=self.metrics.windows_scored,
                    windows_failed=self.metrics.windows_failed,
                    windows_dropped=self.metrics.windows_dropped,
                    alarms=len(self.metrics.alarms),
                    seconds=self.metrics.wall_seconds,
                    windows_per_second=self.metrics.windows_per_second,
                    error=self.metrics.error,
                )
            )
        return self.metrics
