"""Content-addressed artifact persistence for staged pipeline runs.

:class:`~repro.artifacts.store.ArtifactStore` writes every run artifact
atomically and records a SHA-256 digest for it;
:class:`~repro.artifacts.manifest.RunManifest` keeps the per-stage
records (fingerprints, output digests, timings, provenance) that let a
re-run skip completed stages and a resumed run detect — rather than
silently reuse — corrupt or missing artifacts.
"""

from repro.artifacts.manifest import MANIFEST_SCHEMA, RunManifest, StageRecord
from repro.artifacts.store import (
    ArtifactRecord,
    ArtifactStore,
    sha256_bytes,
    sha256_file,
    tree_digest,
)

__all__ = [
    "ArtifactRecord",
    "ArtifactStore",
    "MANIFEST_SCHEMA",
    "RunManifest",
    "StageRecord",
    "sha256_bytes",
    "sha256_file",
    "tree_digest",
]
