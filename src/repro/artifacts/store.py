"""The run-directory artifact store: atomic writes + content digests.

Generalizes the machinery pioneered by
:class:`repro.dsp.cache.FeatureCache` (content addressing, tmp-file +
rename atomicity, corrupt-entry detection) from one cache of feature
matrices to *every* artifact a pipeline run produces.  Artifacts keep
their human-readable paths inside the run directory (``dataset.npz``,
``model/``, ``report.txt``, ...); what the store adds is:

* every write goes through a temporary sibling and an atomic rename,
  so a killed run never leaves a truncated artifact at a final path;
* every write returns an :class:`ArtifactRecord` carrying the SHA-256
  digest and size of what landed on disk, which the run manifest stores
  and :meth:`ArtifactStore.verify` later checks — a stage output that
  was tampered with, truncated, or deleted is *detected* and re-built,
  never silently reused.

Directory-valued artifacts (a serialized model) are digested as a tree:
the digest covers every file's relative path and content, so any change
anywhere inside invalidates the record.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ConfigurationError, SerializationError
from repro.utils.atomic import atomic_path

_CHUNK = 1 << 20


def sha256_bytes(data: bytes) -> str:
    """Hex SHA-256 of *data*."""
    return hashlib.sha256(data).hexdigest()


def sha256_file(path) -> str:
    """Hex SHA-256 of a file's content, streamed in 1 MiB chunks."""
    h = hashlib.sha256()
    with open(path, "rb") as fh:
        while True:
            chunk = fh.read(_CHUNK)
            if not chunk:
                break
            h.update(chunk)
    return h.hexdigest()


def tree_digest(root) -> tuple[str, int]:
    """``(hex digest, total bytes)`` over a directory tree.

    The digest covers each regular file's POSIX relative path and
    content digest, visited in sorted order — two trees digest equal
    iff they contain the same files with the same bytes.
    """
    root = Path(root)
    h = hashlib.sha256()
    total = 0
    for path in sorted(p for p in root.rglob("*") if p.is_file()):
        rel = path.relative_to(root).as_posix()
        h.update(b"\x00file\x00")
        h.update(rel.encode())
        h.update(b"\x00")
        h.update(sha256_file(path).encode())
        total += path.stat().st_size
    return h.hexdigest(), total


@dataclass(frozen=True)
class ArtifactRecord:
    """One persisted artifact: where it lives and what its bytes hash to."""

    path: str  #: POSIX path relative to the store root
    digest: str  #: ``sha256:<hex>`` for files, ``tree:<hex>`` for directories
    size: int  #: content bytes (sum over files for a tree)
    kind: str  #: ``"file"`` or ``"tree"``

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "digest": self.digest,
            "size": self.size,
            "kind": self.kind,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ArtifactRecord":
        try:
            return cls(
                path=str(data["path"]),
                digest=str(data["digest"]),
                size=int(data["size"]),
                kind=str(data["kind"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SerializationError(
                f"malformed artifact record: {data!r}"
            ) from exc


class ArtifactStore:
    """Atomic, digest-tracked artifact writes under one run directory."""

    def __init__(self, root):
        if not root:
            raise ConfigurationError("artifact store root must be non-empty")
        self.root = Path(root)

    # -- paths ---------------------------------------------------------------
    def path(self, rel: str) -> Path:
        """Absolute path of the artifact at *rel* (which must stay inside
        the store root: no absolute paths, no ``..`` traversal)."""
        rel_path = Path(rel)
        if rel_path.is_absolute() or ".." in rel_path.parts:
            raise ConfigurationError(
                f"artifact path must be relative and inside the store: {rel!r}"
            )
        return self.root / rel_path

    def exists(self, rel: str) -> bool:
        return self.path(rel).exists()

    # -- writes --------------------------------------------------------------
    def put_bytes(self, rel: str, data: bytes) -> ArtifactRecord:
        """Atomically write *data* at *rel*."""
        path = self.path(rel)
        with atomic_path(path) as tmp:
            tmp.write_bytes(data)
        return ArtifactRecord(
            path=Path(rel).as_posix(),
            digest=f"sha256:{sha256_bytes(data)}",
            size=len(data),
            kind="file",
        )

    def put_text(self, rel: str, text: str) -> ArtifactRecord:
        return self.put_bytes(rel, text.encode("utf-8"))

    def put_json(self, rel: str, obj) -> ArtifactRecord:
        """Write *obj* as 2-space-indented JSON (trailing newline-free,
        matching ``json.dumps`` — the historical artifact format)."""
        return self.put_text(rel, json.dumps(obj, indent=2))

    def put_file(self, rel: str, writer) -> ArtifactRecord:
        """Have ``writer(tmp_path)`` build the file, then publish it.

        The writer receives a temporary path (same suffix as *rel*, same
        directory); on success the file is digested and atomically
        renamed to its final path.  On failure nothing is published.
        """
        path = self.path(rel)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            prefix=".tmp-", suffix=path.suffix, dir=path.parent
        )
        os.close(fd)
        try:
            writer(Path(tmp))
            digest = sha256_file(tmp)
            size = os.path.getsize(tmp)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return ArtifactRecord(
            path=Path(rel).as_posix(),
            digest=f"sha256:{digest}",
            size=size,
            kind="file",
        )

    def put_tree(self, rel: str, builder) -> ArtifactRecord:
        """Have ``builder(tmp_dir)`` populate a directory, then publish it.

        The tree is built in a temporary sibling directory, digested,
        and swapped into place (replacing any previous version).  The
        swap is rename-based; should a crash land between removing the
        old tree and renaming the new one, the manifest's digest check
        catches the inconsistency on the next run and the stage re-runs.
        """
        path = self.path(rel)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = Path(
            tempfile.mkdtemp(prefix=f".tmp-{path.name}-", dir=path.parent)
        )
        try:
            builder(tmp)
            digest, size = tree_digest(tmp)
            if path.exists():
                shutil.rmtree(path)
            os.rename(tmp, path)
        except BaseException:
            shutil.rmtree(tmp, ignore_errors=True)
            raise
        return ArtifactRecord(
            path=Path(rel).as_posix(),
            digest=f"tree:{digest}",
            size=size,
            kind="tree",
        )

    def snapshot(self, rel: str) -> ArtifactRecord:
        """Digest whatever currently exists at *rel* (file or directory)."""
        path = self.path(rel)
        if path.is_dir():
            digest, size = tree_digest(path)
            return ArtifactRecord(
                path=Path(rel).as_posix(),
                digest=f"tree:{digest}",
                size=size,
                kind="tree",
            )
        if path.is_file():
            return ArtifactRecord(
                path=Path(rel).as_posix(),
                digest=f"sha256:{sha256_file(path)}",
                size=path.stat().st_size,
                kind="file",
            )
        raise SerializationError(f"no artifact on disk at {path}")

    # -- reads ---------------------------------------------------------------
    def read_bytes(self, rel: str) -> bytes:
        path = self.path(rel)
        if not path.is_file():
            raise SerializationError(f"no artifact on disk at {path}")
        return path.read_bytes()

    def read_text(self, rel: str) -> str:
        return self.read_bytes(rel).decode("utf-8")

    def read_json(self, rel: str):
        try:
            return json.loads(self.read_text(rel))
        except json.JSONDecodeError as exc:
            raise SerializationError(
                f"corrupt JSON artifact {self.path(rel)}: {exc}"
            ) from exc

    # -- verification --------------------------------------------------------
    def verify(self, record: ArtifactRecord) -> bool:
        """``True`` iff the artifact on disk matches *record* exactly."""
        path = self.path(record.path)
        try:
            if record.kind == "tree":
                if not path.is_dir():
                    return False
                digest, size = tree_digest(path)
                return f"tree:{digest}" == record.digest and size == record.size
            if not path.is_file():
                return False
            if path.stat().st_size != record.size:
                return False
            return f"sha256:{sha256_file(path)}" == record.digest
        except OSError:
            return False

    def __repr__(self):
        return f"ArtifactStore({str(self.root)!r})"
