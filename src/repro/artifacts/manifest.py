"""The run manifest: per-stage provenance records for a pipeline run.

``manifest.json`` at the root of a run directory records, for every
completed stage, the fingerprint it executed under, digests of every
output artifact, wall-clock timings, and free-form metadata.  A re-run
loads the manifest, recomputes each stage's fingerprint, and skips the
stage iff the fingerprints match *and* every recorded output still
verifies on disk.

Robustness rule: a missing, truncated, or otherwise corrupt manifest is
never an error — it loads as an *empty* manifest, which simply means no
stage can prove it already ran, so everything re-runs.  The store's
atomic writes make a corrupt manifest unlikely, but a run directory is
user-visible state and must never be able to crash the pipeline.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.artifacts.store import ArtifactRecord
from repro.errors import SerializationError
from repro.utils.atomic import atomic_write_text

#: Bump when the manifest layout changes: old manifests then load as
#: empty (full re-run) instead of being misread.
MANIFEST_SCHEMA = "gansec-run-manifest/v1"

MANIFEST_NAME = "manifest.json"


@dataclass
class StageRecord:
    """Provenance of one completed stage execution."""

    name: str
    fingerprint: str
    status: str = "completed"
    seconds: float = 0.0
    started_at: float = 0.0
    finished_at: float = 0.0
    outputs: dict[str, ArtifactRecord] = field(default_factory=dict)
    meta: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "fingerprint": self.fingerprint,
            "status": self.status,
            "seconds": self.seconds,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "outputs": {key: rec.to_dict() for key, rec in self.outputs.items()},
            "meta": self.meta,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StageRecord":
        try:
            return cls(
                name=str(data["name"]),
                fingerprint=str(data["fingerprint"]),
                status=str(data.get("status", "completed")),
                seconds=float(data.get("seconds", 0.0)),
                started_at=float(data.get("started_at", 0.0)),
                finished_at=float(data.get("finished_at", 0.0)),
                outputs={
                    str(key): ArtifactRecord.from_dict(rec)
                    for key, rec in dict(data.get("outputs", {})).items()
                },
                meta=dict(data.get("meta", {})),
            )
        except (KeyError, TypeError, ValueError, SerializationError) as exc:
            raise SerializationError(
                f"malformed stage record: {data!r}"
            ) from exc


class RunManifest:
    """In-memory view of a run directory's ``manifest.json``."""

    def __init__(self, path):
        self.path = Path(path)
        self._stages: dict[str, StageRecord] = {}
        self.recovered = False  #: True if the on-disk manifest was corrupt

    # -- persistence ----------------------------------------------------------
    @classmethod
    def load(cls, run_dir) -> "RunManifest":
        """Load the manifest under *run_dir*; corruption yields empty.

        Any defect — unreadable file, truncated JSON, wrong schema tag,
        malformed stage records — degrades to an empty manifest with
        ``recovered`` set, so the caller re-runs stages instead of
        crashing or trusting bad provenance.
        """
        manifest = cls(Path(run_dir) / MANIFEST_NAME)
        if not manifest.path.is_file():
            return manifest
        try:
            data = json.loads(manifest.path.read_text(encoding="utf-8"))
            if data.get("schema") != MANIFEST_SCHEMA:
                raise SerializationError(
                    f"unknown manifest schema: {data.get('schema')!r}"
                )
            for entry in data.get("stages", []):
                record = StageRecord.from_dict(entry)
                manifest._stages[record.name] = record
        except (OSError, ValueError, AttributeError, SerializationError):
            manifest._stages = {}
            manifest.recovered = True
        return manifest

    def save(self) -> None:
        """Atomically rewrite ``manifest.json``."""
        payload = {
            "schema": MANIFEST_SCHEMA,
            "stages": [self._stages[name].to_dict() for name in self._stages],
        }
        atomic_write_text(self.path, json.dumps(payload, indent=2) + "\n")

    # -- records --------------------------------------------------------------
    def get(self, name: str) -> StageRecord | None:
        return self._stages.get(name)

    def set(self, record: StageRecord) -> None:
        self._stages[record.name] = record

    def remove(self, name: str) -> bool:
        """Drop the record for *name*; True if one existed."""
        return self._stages.pop(name, None) is not None

    def names(self) -> list[str]:
        return list(self._stages)

    def clear(self) -> None:
        self._stages = {}

    def __len__(self) -> int:
        return len(self._stages)

    def __contains__(self, name: str) -> bool:
        return name in self._stages

    def __repr__(self):
        return f"RunManifest({str(self.path)!r}, stages={len(self._stages)})"
