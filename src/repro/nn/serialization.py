"""Saving and loading network weights.

Weights are stored in numpy ``.npz`` archives with a small JSON header
describing the architecture fingerprint, so that loading into a
mismatched network fails loudly instead of silently corrupting a model.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.errors import SerializationError
from repro.nn.network import Sequential

_FORMAT_VERSION = 1


def _fingerprint(net: Sequential) -> dict:
    """Architecture fingerprint: layer reprs plus parameter shapes."""
    return {
        "layers": [repr(layer) for layer in net.layers],
        "input_dim": net.input_dim,
        "output_dim": net.output_dim,
        "param_shapes": {
            f"{li}.{name}": list(arr.shape) for li, name, arr in net.parameters()
        },
    }


def save_weights(net: Sequential, path) -> Path:
    """Serialize *net*'s weights (and fingerprint) to ``path`` (.npz)."""
    if not net.built:
        raise SerializationError("cannot save an unbuilt network")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    header = json.dumps({"version": _FORMAT_VERSION, "fingerprint": _fingerprint(net)})
    arrays = {key.replace(".", "__"): arr for key, arr in net.get_weights().items()}
    np.savez(path, __header__=np.frombuffer(header.encode(), dtype=np.uint8), **arrays)
    return path


def load_weights(net: Sequential, path) -> Sequential:
    """Load weights from ``path`` into *net*, verifying the fingerprint."""
    path = Path(path)
    if not path.exists():
        raise SerializationError(f"no such weights file: {path}")
    try:
        with np.load(path) as data:
            header_bytes = bytes(data["__header__"])
            arrays = {
                key.replace("__", "."): data[key]
                for key in data.files
                if key != "__header__"
            }
    except Exception as exc:  # malformed archive
        raise SerializationError(f"cannot read weights file {path}: {exc}") from exc
    try:
        header = json.loads(header_bytes.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SerializationError(f"corrupt header in {path}: {exc}") from exc
    if header.get("version") != _FORMAT_VERSION:
        raise SerializationError(
            f"weights format version {header.get('version')} not supported"
        )
    want = _fingerprint(net)["param_shapes"]
    have = header["fingerprint"]["param_shapes"]
    if want != have:
        raise SerializationError(
            "architecture mismatch between network and weights file:\n"
            f"  network: {want}\n  file:    {have}"
        )
    net.set_weights(arrays)
    return net
