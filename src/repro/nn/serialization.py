"""Saving and loading network weights and optimizer state.

Weights are stored in numpy ``.npz`` archives with a small JSON header
describing the architecture fingerprint, so that loading into a
mismatched network fails loudly instead of silently corrupting a model.
Optimizer state (momentum buffers, Adam moments, step counters) uses
the same archive format, which is what lets an interrupted training run
resume bitwise-identically from a checkpoint.

All archives are written atomically (tmp file + rename) so a killed
writer never leaves a truncated file at the final path.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.errors import SerializationError
from repro.nn.network import Sequential
from repro.nn.optimizers import Optimizer
from repro.utils.atomic import atomic_path

_FORMAT_VERSION = 1
_OPT_FORMAT_VERSION = 1


def _fingerprint(net: Sequential) -> dict:
    """Architecture fingerprint: layer reprs plus parameter shapes."""
    return {
        "layers": [repr(layer) for layer in net.layers],
        "input_dim": net.input_dim,
        "output_dim": net.output_dim,
        "param_shapes": {
            f"{li}.{name}": list(arr.shape) for li, name, arr in net.parameters()
        },
    }


def save_weights(net: Sequential, path) -> Path:
    """Serialize *net*'s weights (and fingerprint) to ``path`` (.npz)."""
    if not net.built:
        raise SerializationError("cannot save an unbuilt network")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    header = json.dumps({"version": _FORMAT_VERSION, "fingerprint": _fingerprint(net)})
    arrays = {key.replace(".", "__"): arr for key, arr in net.get_weights().items()}
    with atomic_path(path, suffix=".npz") as tmp:
        np.savez(tmp, __header__=np.frombuffer(header.encode(), dtype=np.uint8), **arrays)
    return path


def load_weights(net: Sequential, path) -> Sequential:
    """Load weights from ``path`` into *net*, verifying the fingerprint."""
    path = Path(path)
    if not path.exists():
        raise SerializationError(f"no such weights file: {path}")
    try:
        with np.load(path) as data:
            header_bytes = bytes(data["__header__"])
            arrays = {
                key.replace("__", "."): data[key]
                for key in data.files
                if key != "__header__"
            }
    except Exception as exc:  # malformed archive
        raise SerializationError(f"cannot read weights file {path}: {exc}") from exc
    try:
        header = json.loads(header_bytes.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SerializationError(f"corrupt header in {path}: {exc}") from exc
    if header.get("version") != _FORMAT_VERSION:
        raise SerializationError(
            f"weights format version {header.get('version')} not supported"
        )
    want = _fingerprint(net)["param_shapes"]
    have = header["fingerprint"]["param_shapes"]
    if want != have:
        raise SerializationError(
            "architecture mismatch between network and weights file:\n"
            f"  network: {want}\n  file:    {have}"
        )
    net.set_weights(arrays)
    return net


def _optimizer_slot(li: int, name: str, index: int) -> str:
    return f"s{li}__{name}__{index}"


def save_optimizer_state(opt: Optimizer, path) -> Path:
    """Serialize *opt*'s accumulated state to ``path`` (.npz).

    Captures everything an optimizer carries across steps — the
    per-parameter buffers (SGD momentum, RMSProp accumulators, Adam
    moments and per-tensor step counts) plus the global step counter —
    so that restoring it continues a training trajectory bitwise
    identically to one that was never interrupted.
    """
    path = Path(path)
    entries: dict = {}
    arrays: dict = {}
    for (li, name), value in opt._state.items():
        items = list(value) if isinstance(value, list) else [value]
        kinds = []
        for index, item in enumerate(items):
            slot = _optimizer_slot(li, name, index)
            if isinstance(item, np.ndarray):
                arrays[slot] = item
                kinds.append("array")
            else:
                arrays[slot] = np.asarray(item)
                kinds.append("scalar")
        entries[f"{li}.{name}"] = {
            "kinds": kinds,
            "is_list": isinstance(value, list),
        }
    header = json.dumps(
        {
            "version": _OPT_FORMAT_VERSION,
            "kind": type(opt).__name__,
            "learning_rate": opt.learning_rate,
            "iterations": opt.iterations,
            "entries": entries,
        }
    )
    with atomic_path(path, suffix=".npz") as tmp:
        np.savez(
            tmp,
            __header__=np.frombuffer(header.encode(), dtype=np.uint8),
            **arrays,
        )
    return path


def load_optimizer_state(opt: Optimizer, path) -> Optimizer:
    """Restore state written by :func:`save_optimizer_state` into *opt*.

    The optimizer kind must match the one that was saved (an Adam
    checkpoint cannot be loaded into SGD); the caller is responsible
    for constructing *opt* with the right hyperparameters.
    """
    path = Path(path)
    if not path.exists():
        raise SerializationError(f"no such optimizer state file: {path}")
    try:
        with np.load(path) as data:
            header_bytes = bytes(data["__header__"])
            arrays = {key: data[key] for key in data.files if key != "__header__"}
    except Exception as exc:  # malformed archive
        raise SerializationError(
            f"cannot read optimizer state file {path}: {exc}"
        ) from exc
    try:
        header = json.loads(header_bytes.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SerializationError(f"corrupt header in {path}: {exc}") from exc
    if header.get("version") != _OPT_FORMAT_VERSION:
        raise SerializationError(
            f"optimizer state format version {header.get('version')} not supported"
        )
    if header.get("kind") != type(opt).__name__:
        raise SerializationError(
            f"optimizer kind mismatch: state is for {header.get('kind')!r}, "
            f"loading into {type(opt).__name__}"
        )
    opt.reset()
    opt.iterations = int(header.get("iterations", 0))
    try:
        for key_str, spec in header["entries"].items():
            li_str, name = key_str.split(".", 1)
            items: list = []
            for index, kind in enumerate(spec["kinds"]):
                arr = arrays[_optimizer_slot(int(li_str), name, index)]
                items.append(int(arr) if kind == "scalar" else arr)
            opt._state[(int(li_str), name)] = (
                items if spec["is_list"] else items[0]
            )
    except (KeyError, ValueError) as exc:
        raise SerializationError(
            f"optimizer state file {path} is inconsistent: {exc}"
        ) from exc
    return opt
