"""Weight initializers for :mod:`repro.nn` layers.

Each initializer is a small callable object so that layer configs remain
serializable (the initializer is identified by name).  The library default
is Glorot/Xavier uniform, which keeps the minimax game of Algorithm 2
numerically tame for the small conditional MLPs used by GAN-Sec.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.rng import as_rng


class Initializer:
    """Base class.  Subclasses implement :meth:`sample`."""

    name = "base"

    def __call__(self, shape, rng) -> np.ndarray:
        rng = as_rng(rng)
        return self.sample(tuple(int(s) for s in shape), rng)

    def sample(self, shape, rng) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def __repr__(self):
        return f"{type(self).__name__}()"


def _fans(shape):
    """Return (fan_in, fan_out) for a weight shape.

    For a dense ``(in, out)`` matrix this is simply the two dimensions; for
    a 1-D bias the fan is the length on both sides.
    """
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    receptive = int(np.prod(shape[2:]))
    return shape[1] * receptive, shape[0] * receptive


class Zeros(Initializer):
    """All-zero initialization (the standard choice for biases)."""

    name = "zeros"

    def sample(self, shape, rng):
        return np.zeros(shape, dtype=np.float64)


class Constant(Initializer):
    """Constant-fill initialization."""

    name = "constant"

    def __init__(self, value: float = 0.0):
        self.value = float(value)

    def sample(self, shape, rng):
        return np.full(shape, self.value, dtype=np.float64)

    def __repr__(self):
        return f"Constant(value={self.value})"


class RandomNormal(Initializer):
    """Gaussian initialization with fixed standard deviation."""

    name = "normal"

    def __init__(self, std: float = 0.02, mean: float = 0.0):
        if std <= 0:
            raise ConfigurationError(f"std must be > 0, got {std}")
        self.std = float(std)
        self.mean = float(mean)

    def sample(self, shape, rng):
        return rng.normal(self.mean, self.std, size=shape)

    def __repr__(self):
        return f"RandomNormal(std={self.std}, mean={self.mean})"


class RandomUniform(Initializer):
    """Uniform initialization on ``[low, high)``."""

    name = "uniform"

    def __init__(self, low: float = -0.05, high: float = 0.05):
        if not high > low:
            raise ConfigurationError(f"need high > low, got [{low}, {high})")
        self.low = float(low)
        self.high = float(high)

    def sample(self, shape, rng):
        return rng.uniform(self.low, self.high, size=shape)

    def __repr__(self):
        return f"RandomUniform(low={self.low}, high={self.high})"


class GlorotUniform(Initializer):
    """Xavier/Glorot uniform: ``U(-a, a)`` with ``a = sqrt(6/(fan_in+fan_out))``.

    Keeps activation variance roughly constant across tanh/sigmoid layers —
    appropriate for the tanh-output generator used in the case study.
    """

    name = "glorot_uniform"

    def sample(self, shape, rng):
        fan_in, fan_out = _fans(shape)
        limit = np.sqrt(6.0 / (fan_in + fan_out))
        return rng.uniform(-limit, limit, size=shape)


class GlorotNormal(Initializer):
    """Xavier/Glorot normal: ``N(0, 2/(fan_in+fan_out))``."""

    name = "glorot_normal"

    def sample(self, shape, rng):
        fan_in, fan_out = _fans(shape)
        std = np.sqrt(2.0 / (fan_in + fan_out))
        return rng.normal(0.0, std, size=shape)


class HeUniform(Initializer):
    """He/Kaiming uniform: ``U(-a, a)`` with ``a = sqrt(6/fan_in)``.

    The right scaling for ReLU/LeakyReLU hidden layers (the discriminator).
    """

    name = "he_uniform"

    def sample(self, shape, rng):
        fan_in, _ = _fans(shape)
        limit = np.sqrt(6.0 / fan_in)
        return rng.uniform(-limit, limit, size=shape)


class HeNormal(Initializer):
    """He/Kaiming normal: ``N(0, 2/fan_in)``."""

    name = "he_normal"

    def sample(self, shape, rng):
        fan_in, _ = _fans(shape)
        std = np.sqrt(2.0 / fan_in)
        return rng.normal(0.0, std, size=shape)


_REGISTRY = {
    cls.name: cls
    for cls in (
        Zeros,
        Constant,
        RandomNormal,
        RandomUniform,
        GlorotUniform,
        GlorotNormal,
        HeUniform,
        HeNormal,
    )
}


def get_initializer(spec) -> Initializer:
    """Resolve *spec* (name, class, or instance) to an initializer instance."""
    if isinstance(spec, Initializer):
        return spec
    if isinstance(spec, type) and issubclass(spec, Initializer):
        return spec()
    if isinstance(spec, str):
        try:
            return _REGISTRY[spec]()
        except KeyError:
            raise ConfigurationError(
                f"unknown initializer {spec!r}; choose from {sorted(_REGISTRY)}"
            ) from None
    raise ConfigurationError(f"cannot interpret initializer spec: {spec!r}")
