"""Loss functions with gradients, including the GAN objectives of
Algorithm 2.

Every loss exposes ``value(pred, target)`` (scalar mean over the batch)
and ``gradient(pred, target)`` (d loss / d pred, already divided by the
batch size so optimizer steps are batch-size invariant).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, ShapeError

_EPS = 1e-12


def _align(pred, target):
    pred = np.asarray(pred, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if pred.shape != target.shape:
        raise ShapeError(f"pred shape {pred.shape} != target shape {target.shape}")
    return pred, target


class Loss:
    """Base class for losses."""

    name = "base"

    def value(self, pred, target) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def gradient(self, pred, target) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def __repr__(self):
        return f"{type(self).__name__}()"


class MeanSquaredError(Loss):
    name = "mse"

    def value(self, pred, target):
        pred, target = _align(pred, target)
        return float(np.mean((pred - target) ** 2))

    def gradient(self, pred, target):
        pred, target = _align(pred, target)
        return 2.0 * (pred - target) / pred.size


class MeanAbsoluteError(Loss):
    name = "mae"

    def value(self, pred, target):
        pred, target = _align(pred, target)
        return float(np.mean(np.abs(pred - target)))

    def gradient(self, pred, target):
        pred, target = _align(pred, target)
        return np.sign(pred - target) / pred.size


class BinaryCrossEntropy(Loss):
    """BCE on probabilities in (0, 1) — the discriminator loss of Eq. (2).

    ``value`` clips predictions away from {0,1} to keep logs finite; the
    gradient uses the same clipped values so value/gradient stay consistent
    for gradient checking.
    """

    name = "bce"

    def __init__(self, eps: float = _EPS):
        if eps <= 0:
            raise ConfigurationError(f"eps must be > 0, got {eps}")
        self.eps = float(eps)

    def value(self, pred, target):
        pred, target = _align(pred, target)
        p = np.clip(pred, self.eps, 1.0 - self.eps)
        return float(-np.mean(target * np.log(p) + (1.0 - target) * np.log(1.0 - p)))

    def gradient(self, pred, target):
        pred, target = _align(pred, target)
        p = np.clip(pred, self.eps, 1.0 - self.eps)
        return (p - target) / (p * (1.0 - p)) / pred.size


class GeneratorLossMinimax(Loss):
    """Original minimax generator loss: ``mean(log(1 - D(G(z))))``.

    This is exactly Line 10 of the paper's Algorithm 2 — the generator
    *descends* this quantity.  ``target`` is ignored (kept for interface
    symmetry); *pred* is ``D(G(z|c))``.
    """

    name = "gen_minimax"

    def __init__(self, eps: float = _EPS):
        self.eps = float(eps)

    def value(self, pred, target=None):
        p = np.clip(np.asarray(pred, dtype=np.float64), self.eps, 1.0 - self.eps)
        return float(np.mean(np.log(1.0 - p)))

    def gradient(self, pred, target=None):
        pred = np.asarray(pred, dtype=np.float64)
        p = np.clip(pred, self.eps, 1.0 - self.eps)
        return -1.0 / (1.0 - p) / pred.size


class GeneratorLossNonSaturating(Loss):
    """Non-saturating heuristic: minimize ``-mean(log D(G(z)))``.

    Goodfellow et al. recommend this when D overwhelms G early in
    training; it has the same fixed point as the minimax loss but much
    stronger gradients when ``D(G(z)) ~ 0``.  Exposed as an option on the
    Algorithm 2 trainer (``generator_loss="non_saturating"``).
    """

    name = "gen_non_saturating"

    def __init__(self, eps: float = _EPS):
        self.eps = float(eps)

    def value(self, pred, target=None):
        p = np.clip(np.asarray(pred, dtype=np.float64), self.eps, 1.0 - self.eps)
        return float(-np.mean(np.log(p)))

    def gradient(self, pred, target=None):
        pred = np.asarray(pred, dtype=np.float64)
        p = np.clip(pred, self.eps, 1.0 - self.eps)
        return -1.0 / p / pred.size


def discriminator_loss(d_real: np.ndarray, d_fake: np.ndarray, eps: float = _EPS) -> float:
    """Value of the discriminator objective from Eq. (2) / Algorithm 2 Line 8.

    The discriminator *ascends* ``mean(log D(real)) + mean(log(1 - D(fake)))``;
    we report the negated quantity as a loss (lower = better discriminator)
    so that Figure 7's "D loss rises as G improves" reads naturally.
    """
    d_real = np.clip(np.asarray(d_real, dtype=np.float64), eps, 1.0 - eps)
    d_fake = np.clip(np.asarray(d_fake, dtype=np.float64), eps, 1.0 - eps)
    return float(-(np.mean(np.log(d_real)) + np.mean(np.log(1.0 - d_fake))))


_REGISTRY = {
    cls.name: cls
    for cls in (
        MeanSquaredError,
        MeanAbsoluteError,
        BinaryCrossEntropy,
        GeneratorLossMinimax,
        GeneratorLossNonSaturating,
    )
}


def get_loss(spec) -> Loss:
    """Resolve *spec* (name, class, or instance) to a loss instance."""
    if isinstance(spec, Loss):
        return spec
    if isinstance(spec, type) and issubclass(spec, Loss):
        return spec()
    if isinstance(spec, str):
        try:
            return _REGISTRY[spec]()
        except KeyError:
            raise ConfigurationError(
                f"unknown loss {spec!r}; choose from {sorted(_REGISTRY)}"
            ) from None
    raise ConfigurationError(f"cannot interpret loss spec: {spec!r}")
