"""Trainable layers with explicit forward/backward passes.

The framework is deliberately small: GAN-Sec's generator and discriminator
are conditional MLPs, so dense layers, activations, dropout, and batch
normalization cover the whole paper.  Each layer owns its parameters and
the gradients computed during the last backward pass; optimizers iterate
``layer.parameters()`` / ``layer.gradients()`` pairs.

Conventions
-----------
* Batches are row-major: inputs have shape ``(batch, features)``.
* ``forward(x, training=...)`` caches whatever ``backward`` needs.
* ``backward(grad_out)`` returns the gradient w.r.t. the layer input and
  stores parameter gradients internally.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, ShapeError
from repro.nn.activations import get_activation
from repro.nn.initializers import get_initializer
from repro.utils.rng import as_rng


class Layer:
    """Base class for all layers."""

    def __init__(self):
        self.built = False

    # -- parameter plumbing -------------------------------------------------
    def parameters(self) -> dict:
        """Mapping of parameter name -> ndarray (shared, not copied)."""
        return {}

    def gradients(self) -> dict:
        """Mapping of parameter name -> gradient ndarray from last backward."""
        return {}

    # -- computation --------------------------------------------------------
    def build(self, input_dim: int, rng) -> int:
        """Allocate parameters for a given input width; return output width."""
        self.built = True
        return input_dim

    def forward(self, x, training: bool = False):  # pragma: no cover - abstract
        raise NotImplementedError

    def backward(self, grad_out):  # pragma: no cover - abstract
        raise NotImplementedError

    def __repr__(self):
        return f"{type(self).__name__}()"


class Dense(Layer):
    """Fully connected layer ``y = x @ W + b`` with optional activation.

    Parameters
    ----------
    units:
        Output width.
    activation:
        Activation spec (name / instance / ``None`` for linear).
    kernel_init, bias_init:
        Initializer specs; default Glorot uniform / zeros.
    use_bias:
        Disable the additive bias if false.
    """

    def __init__(
        self,
        units: int,
        activation=None,
        *,
        kernel_init="glorot_uniform",
        bias_init="zeros",
        use_bias: bool = True,
    ):
        super().__init__()
        if units <= 0:
            raise ConfigurationError(f"units must be > 0, got {units}")
        self.units = int(units)
        self.activation = get_activation(activation) if activation else None
        self.kernel_init = get_initializer(kernel_init)
        self.bias_init = get_initializer(bias_init)
        self.use_bias = bool(use_bias)
        self.W = None
        self.b = None
        self.dW = None
        self.db = None
        self._x = None
        self._pre = None
        self._out = None
        # Training workspaces keyed by batch-row count: forward/backward
        # at a fixed batch size reuse the same buffers every iteration
        # instead of allocating fresh arrays (the GAN inner loop runs the
        # same shapes thousands of times).  Inference (``training=False``)
        # keeps the allocating path: predictions may be retained
        # long-term by callers (e.g. the condition sample cache), so they
        # must never alias reused buffers.
        self._workspaces: dict = {}
        self._ws = None

    def build(self, input_dim, rng):
        rng = as_rng(rng)
        self.W = self.kernel_init((input_dim, self.units), rng)
        self.b = self.bias_init((self.units,), rng) if self.use_bias else None
        self.built = True
        self._workspaces.clear()
        self._ws = None
        return self.units

    def _workspace(self, n: int) -> dict:
        ws = self._workspaces.get(n)
        if ws is None:
            in_dim = self.W.shape[0]
            ws = {
                "pre": np.empty((n, self.units), dtype=np.float64),
                "out": np.empty((n, self.units), dtype=np.float64),
                "deriv": np.empty((n, self.units), dtype=np.float64),
                "grad_in": np.empty((n, in_dim), dtype=np.float64),
                "dW": np.empty((in_dim, self.units), dtype=np.float64),
                "db": np.empty(self.units, dtype=np.float64),
            }
            self._workspaces[n] = ws
        return ws

    def parameters(self):
        params = {"W": self.W}
        if self.use_bias:
            params["b"] = self.b
        return params

    def gradients(self):
        grads = {"W": self.dW}
        if self.use_bias:
            grads["b"] = self.db
        return grads

    def forward(self, x, training=False):
        if not self.built:
            raise ConfigurationError("Dense layer used before build()")
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.W.shape[0]:
            raise ShapeError(
                f"Dense expected input (batch, {self.W.shape[0]}), got {x.shape}"
            )
        self._x = x
        if training:
            # Hot path: same elementwise/BLAS operations as the
            # allocating branch below, written through reused buffers —
            # bitwise-identical results (tests/nn/test_hotpath_identity).
            ws = self._workspace(x.shape[0])
            self._ws = ws
            pre = np.matmul(x, self.W, out=ws["pre"])
            if self.use_bias:
                pre += self.b
            self._pre = pre
            self._out = (
                self.activation.forward(pre, out=ws["out"])
                if self.activation
                else pre
            )
            return self._out
        self._ws = None
        pre = x @ self.W
        if self.use_bias:
            pre = pre + self.b
        self._pre = pre
        self._out = self.activation.forward(pre) if self.activation else pre
        return self._out

    def backward(self, grad_out):
        grad_out = np.asarray(grad_out, dtype=np.float64)
        ws = self._ws if self._ws is not None and grad_out.shape == self._pre.shape else None
        if ws is not None:
            if self.activation:
                deriv = self.activation.backward(self._pre, self._out, out=ws["deriv"])
                grad_pre = np.multiply(grad_out, deriv, out=ws["deriv"])
            else:
                grad_pre = grad_out
            self.dW = np.matmul(self._x.T, grad_pre, out=ws["dW"])
            if self.use_bias:
                self.db = grad_pre.sum(axis=0, out=ws["db"])
            return np.matmul(grad_pre, self.W.T, out=ws["grad_in"])
        if self.activation:
            grad_pre = grad_out * self.activation.backward(self._pre, self._out)
        else:
            grad_pre = grad_out
        self.dW = self._x.T @ grad_pre
        if self.use_bias:
            self.db = grad_pre.sum(axis=0)
        return grad_pre @ self.W.T

    def __repr__(self):
        act = self.activation.name if self.activation else "linear"
        return f"Dense(units={self.units}, activation={act!r})"


class ActivationLayer(Layer):
    """Wrap a standalone activation as a layer (no parameters)."""

    def __init__(self, activation):
        super().__init__()
        self.activation = get_activation(activation)
        self._x = None
        self._y = None

    def build(self, input_dim, rng):
        self.built = True
        return input_dim

    def forward(self, x, training=False):
        self._x = np.asarray(x, dtype=np.float64)
        self._y = self.activation.forward(self._x)
        return self._y

    def backward(self, grad_out):
        return grad_out * self.activation.backward(self._x, self._y)

    def __repr__(self):
        return f"ActivationLayer({self.activation.name!r})"


class Dropout(Layer):
    """Inverted dropout: active only when ``training=True``.

    During GAN training, dropout in the discriminator acts as the paper's
    knob for modeling a weaker attacker/detector (fewer effective
    parameters per step).
    """

    def __init__(self, rate: float, *, seed=None):
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ConfigurationError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = float(rate)
        self._rng = as_rng(seed)
        self._mask = None

    def build(self, input_dim, rng):
        self.built = True
        return input_dim

    def forward(self, x, training=False):
        x = np.asarray(x, dtype=np.float64)
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_out):
        if self._mask is None:
            return grad_out
        return grad_out * self._mask

    def __repr__(self):
        return f"Dropout(rate={self.rate})"


class BatchNorm(Layer):
    """Batch normalization over the batch axis with learned scale/shift.

    Uses batch statistics when ``training=True`` and exponential running
    statistics at inference, the standard Ioffe–Szegedy recipe.
    """

    def __init__(self, *, momentum: float = 0.9, eps: float = 1e-5):
        super().__init__()
        if not 0.0 < momentum < 1.0:
            raise ConfigurationError(f"momentum must be in (0,1), got {momentum}")
        self.momentum = float(momentum)
        self.eps = float(eps)
        self.gamma = None
        self.beta = None
        self.dgamma = None
        self.dbeta = None
        self.running_mean = None
        self.running_var = None
        self._cache = None
        # Training workspaces keyed by batch-row count (see Dense): the
        # same statistics/normalization buffers are reused across
        # iterations at a fixed batch size.
        self._workspaces: dict = {}

    def build(self, input_dim, rng):
        self.gamma = np.ones(input_dim, dtype=np.float64)
        self.beta = np.zeros(input_dim, dtype=np.float64)
        self.running_mean = np.zeros(input_dim, dtype=np.float64)
        self.running_var = np.ones(input_dim, dtype=np.float64)
        self.built = True
        self._workspaces.clear()
        return input_dim

    def _workspace(self, n: int) -> dict:
        ws = self._workspaces.get(n)
        if ws is None:
            d = self.gamma.shape[0]
            ws = {
                "mean": np.empty(d, dtype=np.float64),
                "var": np.empty(d, dtype=np.float64),
                "inv_std": np.empty(d, dtype=np.float64),
                "vec": np.empty(d, dtype=np.float64),
                "dgamma": np.empty(d, dtype=np.float64),
                "dbeta": np.empty(d, dtype=np.float64),
                "x_hat": np.empty((n, d), dtype=np.float64),
                "out": np.empty((n, d), dtype=np.float64),
                "tmp": np.empty((n, d), dtype=np.float64),
                "dxhat": np.empty((n, d), dtype=np.float64),
            }
            self._workspaces[n] = ws
        return ws

    def parameters(self):
        return {"gamma": self.gamma, "beta": self.beta}

    def gradients(self):
        return {"gamma": self.dgamma, "beta": self.dbeta}

    def forward(self, x, training=False):
        x = np.asarray(x, dtype=np.float64)
        if training:
            # Hot path: identical operation sequence to the allocating
            # formulation (``m*rm + (1-m)*mean``, ``(x-mean)*inv_std``,
            # ``gamma*x_hat + beta``) through reused buffers — results
            # are bitwise equal; running stats keep their array identity.
            ws = self._ws = self._workspace(x.shape[0])
            mean = x.mean(axis=0, out=ws["mean"])
            var = x.var(axis=0, out=ws["var"])
            m = self.momentum
            self.running_mean *= m
            np.multiply(mean, 1 - m, out=ws["vec"])
            self.running_mean += ws["vec"]
            self.running_var *= m
            np.multiply(var, 1 - m, out=ws["vec"])
            self.running_var += ws["vec"]
            inv_std = ws["inv_std"]
            np.add(var, self.eps, out=inv_std)
            np.sqrt(inv_std, out=inv_std)
            np.divide(1.0, inv_std, out=inv_std)
            x_hat = np.subtract(x, mean, out=ws["x_hat"])
            x_hat *= inv_std
            self._cache = (x_hat, inv_std)
            out = np.multiply(self.gamma, x_hat, out=ws["out"])
            out += self.beta
            return out
        mean = self.running_mean
        var = self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean) * inv_std
        self._cache = None
        return self.gamma * x_hat + self.beta

    def backward(self, grad_out):
        if self._cache is None:
            # Inference-mode backward: statistics are constants.
            inv_std = 1.0 / np.sqrt(self.running_var + self.eps)
            return grad_out * self.gamma * inv_std
        x_hat, inv_std = self._cache
        n = grad_out.shape[0]
        ws = self._workspaces.get(n)
        if ws is not None and x_hat is ws["x_hat"]:
            # In-place mirror of the vectorized batchnorm backward below;
            # every ufunc call matches the allocating expression's
            # operand order, so gradients are bitwise identical.
            tmp = np.multiply(grad_out, x_hat, out=ws["tmp"])
            self.dgamma = tmp.sum(axis=0, out=ws["dgamma"])
            self.dbeta = grad_out.sum(axis=0, out=ws["dbeta"])
            dxhat = np.multiply(grad_out, self.gamma, out=ws["dxhat"])
            out = np.multiply(n, dxhat, out=ws["tmp"])
            out -= dxhat.sum(axis=0, out=ws["vec"])
            np.multiply(dxhat, x_hat, out=ws["dxhat"])
            np.sum(ws["dxhat"], axis=0, out=ws["vec"])
            np.multiply(x_hat, ws["vec"], out=ws["dxhat"])
            out -= ws["dxhat"]
            np.divide(inv_std, n, out=ws["vec"])
            out *= ws["vec"]
            return out
        self.dgamma = (grad_out * x_hat).sum(axis=0)
        self.dbeta = grad_out.sum(axis=0)
        dxhat = grad_out * self.gamma
        # Standard batchnorm backward (vectorized).
        return (
            inv_std
            / n
            * (n * dxhat - dxhat.sum(axis=0) - x_hat * (dxhat * x_hat).sum(axis=0))
        )

    def __repr__(self):
        return f"BatchNorm(momentum={self.momentum}, eps={self.eps})"
