"""Elementwise activation functions with analytic derivatives.

Each activation is a stateless object exposing ``forward(x)`` and
``backward(x, y)`` where *y* is the cached forward output — several
derivatives (sigmoid, tanh) are cheapest in terms of the output, so both
are provided.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


class Activation:
    """Base class for elementwise activations."""

    name = "base"

    def forward(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def backward(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Return dy/dx evaluated elementwise, given input *x* and output *y*."""
        raise NotImplementedError  # pragma: no cover - abstract

    def __repr__(self):
        return f"{type(self).__name__}()"


class Identity(Activation):
    name = "identity"

    def forward(self, x):
        return x

    def backward(self, x, y):
        return np.ones_like(x)


class ReLU(Activation):
    name = "relu"

    def forward(self, x):
        return np.maximum(x, 0.0)

    def backward(self, x, y):
        return (x > 0.0).astype(x.dtype)


class LeakyReLU(Activation):
    """Leaky ReLU — the paper-standard discriminator activation for GANs."""

    name = "leaky_relu"

    def __init__(self, alpha: float = 0.2):
        if alpha < 0:
            raise ConfigurationError(f"alpha must be >= 0, got {alpha}")
        self.alpha = float(alpha)

    def forward(self, x):
        return np.where(x > 0.0, x, self.alpha * x)

    def backward(self, x, y):
        return np.where(x > 0.0, 1.0, self.alpha).astype(x.dtype)

    def __repr__(self):
        return f"LeakyReLU(alpha={self.alpha})"


class Sigmoid(Activation):
    name = "sigmoid"

    def forward(self, x):
        # Numerically stable split over the sign of x.
        out = np.empty_like(x)
        pos = x >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        ex = np.exp(x[~pos])
        out[~pos] = ex / (1.0 + ex)
        return out

    def backward(self, x, y):
        return y * (1.0 - y)


class Tanh(Activation):
    """Tanh — the standard generator output activation for data in [-1, 1].

    GAN-Sec scales acoustic frequency features into [0, 1]; the generator
    in this library therefore typically ends in :class:`Sigmoid` or a tanh
    rescaled by the caller.
    """

    name = "tanh"

    def forward(self, x):
        return np.tanh(x)

    def backward(self, x, y):
        return 1.0 - y * y


class Softplus(Activation):
    name = "softplus"

    def forward(self, x):
        return np.logaddexp(0.0, x)

    def backward(self, x, y):
        return Sigmoid().forward(x)


class ELU(Activation):
    name = "elu"

    def __init__(self, alpha: float = 1.0):
        if alpha <= 0:
            raise ConfigurationError(f"alpha must be > 0, got {alpha}")
        self.alpha = float(alpha)

    def forward(self, x):
        return np.where(x > 0.0, x, self.alpha * np.expm1(x))

    def backward(self, x, y):
        return np.where(x > 0.0, 1.0, y + self.alpha).astype(x.dtype)

    def __repr__(self):
        return f"ELU(alpha={self.alpha})"


_REGISTRY = {
    cls.name: cls
    for cls in (Identity, ReLU, LeakyReLU, Sigmoid, Tanh, Softplus, ELU)
}
_REGISTRY["linear"] = Identity


def get_activation(spec) -> Activation:
    """Resolve *spec* (name, class, or instance) to an activation instance."""
    if isinstance(spec, Activation):
        return spec
    if isinstance(spec, type) and issubclass(spec, Activation):
        return spec()
    if isinstance(spec, str):
        try:
            return _REGISTRY[spec]()
        except KeyError:
            raise ConfigurationError(
                f"unknown activation {spec!r}; choose from {sorted(_REGISTRY)}"
            ) from None
    raise ConfigurationError(f"cannot interpret activation spec: {spec!r}")
