"""Elementwise activation functions with analytic derivatives.

Each activation is a stateless object exposing ``forward(x)`` and
``backward(x, y)`` where *y* is the cached forward output — several
derivatives (sigmoid, tanh) are cheapest in terms of the output, so both
are provided.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


class Activation:
    """Base class for elementwise activations.

    ``forward`` and ``backward`` take an optional preallocated *out*
    buffer; the training hot path passes layer workspaces so no
    per-iteration arrays are allocated.  Writing through *out* changes
    where the result lives, never its bits — every in-place override
    performs the exact same elementwise operations in the same order as
    the allocating expression it replaces.
    """

    name = "base"

    def forward(self, x: np.ndarray, out=None) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def backward(self, x: np.ndarray, y: np.ndarray, out=None) -> np.ndarray:
        """Return dy/dx evaluated elementwise, given input *x* and output *y*."""
        raise NotImplementedError  # pragma: no cover - abstract

    def __repr__(self):
        return f"{type(self).__name__}()"


class Identity(Activation):
    name = "identity"

    def forward(self, x, out=None):
        if out is None:
            return x
        np.copyto(out, x)
        return out

    def backward(self, x, y, out=None):
        if out is None:
            return np.ones_like(x)
        out.fill(1.0)
        return out


class ReLU(Activation):
    name = "relu"

    def forward(self, x, out=None):
        return np.maximum(x, 0.0, out=out)

    def backward(self, x, y, out=None):
        if out is None:
            return (x > 0.0).astype(x.dtype)
        np.greater(x, 0.0, out=out)
        return out


class LeakyReLU(Activation):
    """Leaky ReLU — the paper-standard discriminator activation for GANs."""

    name = "leaky_relu"

    def __init__(self, alpha: float = 0.2):
        if alpha < 0:
            raise ConfigurationError(f"alpha must be >= 0, got {alpha}")
        self.alpha = float(alpha)

    def forward(self, x, out=None):
        if out is None:
            return np.where(x > 0.0, x, self.alpha * x)
        np.multiply(x, self.alpha, out=out)
        np.copyto(out, x, where=x > 0.0)
        return out

    def backward(self, x, y, out=None):
        if out is None:
            return np.where(x > 0.0, 1.0, self.alpha).astype(x.dtype)
        out.fill(self.alpha)
        out[x > 0.0] = 1.0
        return out

    def __repr__(self):
        return f"LeakyReLU(alpha={self.alpha})"


class Sigmoid(Activation):
    name = "sigmoid"

    def forward(self, x, out=None):
        # Numerically stable whole-array evaluation: with e = exp(-|x|),
        # the classic sign-split sigmoid is 1/(1+e) for x >= 0 and
        # e/(1+e) for x < 0 — the same e in both branches, so this is
        # bitwise identical to the masked formulation while avoiding its
        # gather/scatter fancy indexing (several times faster on
        # training-sized batches).
        if out is None:
            out = np.empty_like(x)
        np.abs(x, out=out)
        np.negative(out, out=out)
        np.exp(out, out=out)  # e = exp(-|x|)
        denom = 1.0 + out
        numer = np.where(x >= 0, 1.0, out)
        np.divide(numer, denom, out=out)
        return out

    def backward(self, x, y, out=None):
        if out is None:
            return y * (1.0 - y)
        np.subtract(1.0, y, out=out)
        out *= y
        return out


class Tanh(Activation):
    """Tanh — the standard generator output activation for data in [-1, 1].

    GAN-Sec scales acoustic frequency features into [0, 1]; the generator
    in this library therefore typically ends in :class:`Sigmoid` or a tanh
    rescaled by the caller.
    """

    name = "tanh"

    def forward(self, x, out=None):
        return np.tanh(x, out=out) if out is not None else np.tanh(x)

    def backward(self, x, y, out=None):
        if out is None:
            return 1.0 - y * y
        np.multiply(y, y, out=out)
        np.subtract(1.0, out, out=out)
        return out


class Softplus(Activation):
    name = "softplus"

    def forward(self, x, out=None):
        if out is None:
            return np.logaddexp(0.0, x)
        return np.logaddexp(0.0, x, out=out)

    def backward(self, x, y, out=None):
        return Sigmoid().forward(x, out=out)


class ELU(Activation):
    name = "elu"

    def __init__(self, alpha: float = 1.0):
        if alpha <= 0:
            raise ConfigurationError(f"alpha must be > 0, got {alpha}")
        self.alpha = float(alpha)

    def forward(self, x, out=None):
        result = np.where(x > 0.0, x, self.alpha * np.expm1(x))
        if out is None:
            return result
        np.copyto(out, result)
        return out

    def backward(self, x, y, out=None):
        result = np.where(x > 0.0, 1.0, y + self.alpha).astype(x.dtype)
        if out is None:
            return result
        np.copyto(out, result)
        return out

    def __repr__(self):
        return f"ELU(alpha={self.alpha})"


_REGISTRY = {
    cls.name: cls
    for cls in (Identity, ReLU, LeakyReLU, Sigmoid, Tanh, Softplus, ELU)
}
_REGISTRY["linear"] = Identity


def get_activation(spec) -> Activation:
    """Resolve *spec* (name, class, or instance) to an activation instance."""
    if isinstance(spec, Activation):
        return spec
    if isinstance(spec, type) and issubclass(spec, Activation):
        return spec()
    if isinstance(spec, str):
        try:
            return _REGISTRY[spec]()
        except KeyError:
            raise ConfigurationError(
                f"unknown activation {spec!r}; choose from {sorted(_REGISTRY)}"
            ) from None
    raise ConfigurationError(f"cannot interpret activation spec: {spec!r}")
