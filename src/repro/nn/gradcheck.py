"""Finite-difference gradient checking.

Used by the test suite to verify that every layer's analytic backward
pass matches a central-difference numerical gradient — the property-based
tests run this over random layer configurations.
"""

from __future__ import annotations

import numpy as np

from repro.nn.losses import get_loss
from repro.nn.network import Sequential


def numerical_gradient(f, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar function *f* at *x*."""
    x = np.asarray(x, dtype=np.float64)
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        f_plus = f(x)
        x[idx] = orig - eps
        f_minus = f(x)
        x[idx] = orig
        grad[idx] = (f_plus - f_minus) / (2.0 * eps)
        it.iternext()
    return grad


def check_input_gradient(
    net: Sequential, x: np.ndarray, *, loss="mse", target=None, eps: float = 1e-6
) -> float:
    """Max abs difference between analytic and numeric input gradients.

    Runs the network in training=False mode for determinism (dropout off).
    """
    loss_fn = get_loss(loss)
    x = np.asarray(x, dtype=np.float64)
    if target is None:
        pred0 = net.forward(x, training=False)
        target = np.zeros_like(pred0)

    def objective(xv):
        return loss_fn.value(net.forward(xv, training=False), target)

    pred = net.forward(x, training=False)
    analytic = net.backward(loss_fn.gradient(pred, target))
    numeric = numerical_gradient(objective, x.copy(), eps=eps)
    return float(np.max(np.abs(analytic - numeric)))


def check_parameter_gradients(
    net: Sequential, x: np.ndarray, *, loss="mse", target=None, eps: float = 1e-6
) -> dict:
    """Max abs analytic-vs-numeric difference per parameter tensor."""
    loss_fn = get_loss(loss)
    x = np.asarray(x, dtype=np.float64)
    if target is None:
        pred0 = net.forward(x, training=False)
        target = np.zeros_like(pred0)

    pred = net.forward(x, training=False)
    net.backward(loss_fn.gradient(pred, target))
    analytic = {
        (li, name): np.asarray(layer.gradients()[name]).copy()
        for li, layer in enumerate(net.layers)
        for name in layer.parameters()
        if layer.gradients().get(name) is not None
    }

    errors = {}
    for li, layer in enumerate(net.layers):
        for name, param in layer.parameters().items():
            if (li, name) not in analytic:
                continue

            def objective(p, _param=param):
                backup = _param.copy()
                _param[...] = p
                val = loss_fn.value(net.forward(x, training=False), target)
                _param[...] = backup
                return val

            numeric = numerical_gradient(objective, param.copy(), eps=eps)
            errors[f"{li}.{name}"] = float(np.max(np.abs(analytic[(li, name)] - numeric)))
    return errors
