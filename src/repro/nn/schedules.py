"""Learning-rate schedules for the optimizers.

A schedule maps the optimizer's iteration counter to a learning-rate
multiplier.  :func:`attach_schedule` wraps any
:class:`~repro.nn.optimizers.Optimizer` so its effective learning rate
follows the schedule — useful for the long Algorithm 2 runs, where
decaying the rate late in training stabilizes the minimax equilibrium.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.optimizers import Optimizer


class Schedule:
    """Base class: ``multiplier(iteration) -> float in (0, 1]``-ish."""

    def multiplier(self, iteration: int) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, iteration: int) -> float:
        value = float(self.multiplier(int(iteration)))
        if value <= 0:
            raise ConfigurationError(
                f"schedule produced non-positive multiplier {value} "
                f"at iteration {iteration}"
            )
        return value


class ConstantSchedule(Schedule):
    """No decay (the default behaviour of a bare optimizer)."""

    def multiplier(self, iteration):
        return 1.0


class StepDecay(Schedule):
    """Multiply the rate by *factor* every *every* iterations."""

    def __init__(self, every: int, factor: float = 0.5):
        if every <= 0:
            raise ConfigurationError(f"every must be > 0, got {every}")
        if not 0.0 < factor <= 1.0:
            raise ConfigurationError(f"factor must be in (0,1], got {factor}")
        self.every = int(every)
        self.factor = float(factor)

    def multiplier(self, iteration):
        return self.factor ** (iteration // self.every)

    def __repr__(self):
        return f"StepDecay(every={self.every}, factor={self.factor})"


class ExponentialDecay(Schedule):
    """``multiplier = decay ** iteration`` (smooth geometric decay)."""

    def __init__(self, decay: float = 0.999):
        if not 0.0 < decay <= 1.0:
            raise ConfigurationError(f"decay must be in (0,1], got {decay}")
        self.decay = float(decay)

    def multiplier(self, iteration):
        return self.decay**iteration

    def __repr__(self):
        return f"ExponentialDecay(decay={self.decay})"


class CosineDecay(Schedule):
    """Cosine annealing from 1 to *floor* over *total* iterations."""

    def __init__(self, total: int, floor: float = 0.05):
        if total <= 0:
            raise ConfigurationError(f"total must be > 0, got {total}")
        if not 0.0 < floor <= 1.0:
            raise ConfigurationError(f"floor must be in (0,1], got {floor}")
        self.total = int(total)
        self.floor = float(floor)

    def multiplier(self, iteration):
        progress = min(iteration / self.total, 1.0)
        cos = 0.5 * (1.0 + np.cos(np.pi * progress))
        return self.floor + (1.0 - self.floor) * cos

    def __repr__(self):
        return f"CosineDecay(total={self.total}, floor={self.floor})"


class WarmupSchedule(Schedule):
    """Linear warm-up over *warmup* iterations, then delegate to *base*."""

    def __init__(self, warmup: int, base: Schedule | None = None):
        if warmup <= 0:
            raise ConfigurationError(f"warmup must be > 0, got {warmup}")
        self.warmup = int(warmup)
        self.base = base or ConstantSchedule()

    def multiplier(self, iteration):
        if iteration < self.warmup:
            return (iteration + 1) / self.warmup
        return self.base.multiplier(iteration - self.warmup)

    def __repr__(self):
        return f"WarmupSchedule(warmup={self.warmup}, base={self.base!r})"


class ScheduledOptimizer:
    """Wrap an optimizer so each step uses a scheduled learning rate.

    The wrapper temporarily rescales ``learning_rate`` around every
    :meth:`step`, so the wrapped optimizer's state handling (momentum,
    Adam moments) is untouched.
    """

    def __init__(self, optimizer: Optimizer, schedule: Schedule):
        if not isinstance(optimizer, Optimizer):
            raise ConfigurationError(f"not an Optimizer: {optimizer!r}")
        if not isinstance(schedule, Schedule):
            raise ConfigurationError(f"not a Schedule: {schedule!r}")
        self.optimizer = optimizer
        self.schedule = schedule
        self.base_rate = optimizer.learning_rate

    @property
    def iterations(self) -> int:
        return self.optimizer.iterations

    @property
    def current_rate(self) -> float:
        return self.base_rate * self.schedule(self.optimizer.iterations)

    def step(self, layers) -> None:
        self.optimizer.learning_rate = self.current_rate
        try:
            self.optimizer.step(layers)
        finally:
            self.optimizer.learning_rate = self.base_rate

    def reset(self):
        self.optimizer.reset()

    def __repr__(self):
        return (
            f"ScheduledOptimizer({self.optimizer!r}, {self.schedule!r})"
        )


def attach_schedule(optimizer: Optimizer, schedule: Schedule) -> ScheduledOptimizer:
    """Convenience constructor for :class:`ScheduledOptimizer`."""
    return ScheduledOptimizer(optimizer, schedule)
