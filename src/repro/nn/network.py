"""Sequential network container with explicit training utilities.

:class:`Sequential` chains layers, runs forward/backward, and exposes the
hooks the GAN trainer needs: gradients w.r.t. the *input* (so generator
gradients can flow through a frozen discriminator) and in-place parameter
access for optimizers and serialization.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, NotFittedError
from repro.nn.layers import Layer
from repro.nn.losses import get_loss
from repro.nn.optimizers import get_optimizer, Optimizer
from repro.utils.rng import as_rng


class Sequential:
    """An ordered stack of layers forming a feed-forward network.

    Parameters
    ----------
    layers:
        Iterable of :class:`~repro.nn.layers.Layer` instances.
    input_dim:
        Width of the input; triggers building (parameter allocation)
        immediately when given together with *seed*.
    seed:
        RNG seed for weight initialization.
    """

    def __init__(self, layers, *, input_dim: int | None = None, seed=None):
        self.layers = list(layers)
        if not self.layers:
            raise ConfigurationError("Sequential requires at least one layer")
        for layer in self.layers:
            if not isinstance(layer, Layer):
                raise ConfigurationError(f"not a Layer: {layer!r}")
        self.input_dim = None
        self.output_dim = None
        if input_dim is not None:
            self.build(input_dim, seed)

    # -- lifecycle ----------------------------------------------------------
    def build(self, input_dim: int, seed=None) -> "Sequential":
        """Allocate all layer parameters for a given input width."""
        rng = as_rng(seed)
        dim = int(input_dim)
        self.input_dim = dim
        for layer in self.layers:
            dim = layer.build(dim, rng)
        self.output_dim = dim
        return self

    @property
    def built(self) -> bool:
        return self.input_dim is not None

    def _require_built(self):
        if not self.built:
            raise NotFittedError("network has not been built; call build(input_dim)")

    # -- computation --------------------------------------------------------
    def forward(self, x, training: bool = False) -> np.ndarray:
        """Run the full forward pass; caches activations for backward."""
        self._require_built()
        out = np.asarray(x, dtype=np.float64)
        if out.ndim == 1:
            out = out[None, :]
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    # Alias so networks can be called like functions.
    __call__ = forward

    def predict(self, x) -> np.ndarray:
        """Inference-mode forward pass (dropout off, batchnorm running stats)."""
        return self.forward(x, training=False)

    def backward(self, grad_out) -> np.ndarray:
        """Backpropagate *grad_out* (d loss / d output) through all layers.

        Returns the gradient w.r.t. the network input — the GAN trainer
        feeds this into the generator when the discriminator is the head
        of the composed model.
        """
        grad = np.asarray(grad_out, dtype=np.float64)
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    # -- parameters ---------------------------------------------------------
    def parameters(self) -> list:
        """Flat list of (layer_index, name, array) for all parameters."""
        out = []
        for li, layer in enumerate(self.layers):
            for name, arr in layer.parameters().items():
                out.append((li, name, arr))
        return out

    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return int(sum(arr.size for _, _, arr in self.parameters()))

    def get_weights(self) -> dict:
        """Copy of all parameters keyed ``"{layer}.{name}"``."""
        return {f"{li}.{name}": arr.copy() for li, name, arr in self.parameters()}

    def set_weights(self, weights: dict) -> None:
        """Load parameters previously produced by :meth:`get_weights`."""
        self._require_built()
        own = {f"{li}.{name}": arr for li, name, arr in self.parameters()}
        missing = set(own) - set(weights)
        if missing:
            raise ConfigurationError(f"weights missing keys: {sorted(missing)}")
        for key, arr in own.items():
            new = np.asarray(weights[key], dtype=np.float64)
            if new.shape != arr.shape:
                raise ConfigurationError(
                    f"weight {key!r} has shape {new.shape}, expected {arr.shape}"
                )
            arr[...] = new

    def clone(self) -> "Sequential":
        """Structural copy with independent parameters (same values)."""
        import copy

        twin = copy.deepcopy(self)
        return twin

    # -- simple supervised training (used by tests & baselines) --------------
    def fit(
        self,
        x,
        y,
        *,
        loss="mse",
        optimizer: "Optimizer | str" = "adam",
        epochs: int = 10,
        batch_size: int = 32,
        seed=None,
        learning_rate: float | None = None,
        verbose: bool = False,
    ) -> list:
        """Minimal supervised training loop.

        Exists so the framework can be exercised and benchmarked outside
        the GAN setting (and to train baseline regressors/classifiers for
        the security analysis comparisons).  Returns per-epoch mean loss.
        """
        self._require_built()
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if y.ndim == 1:
            y = y[:, None]
        loss_fn = get_loss(loss)
        opt_kwargs = {"learning_rate": learning_rate} if learning_rate else {}
        opt = get_optimizer(optimizer, **opt_kwargs)
        rng = as_rng(seed)
        history = []
        n = x.shape[0]
        for epoch in range(epochs):
            order = rng.permutation(n)
            losses = []
            for start in range(0, n, batch_size):
                idx = order[start : start + batch_size]
                pred = self.forward(x[idx], training=True)
                losses.append(loss_fn.value(pred, y[idx]))
                self.backward(loss_fn.gradient(pred, y[idx]))
                opt.step(self.layers)
            history.append(float(np.mean(losses)))
            if verbose:
                print(f"epoch {epoch + 1}/{epochs}: loss={history[-1]:.6f}")
        return history

    def __repr__(self):
        inner = ", ".join(repr(layer) for layer in self.layers)
        return f"Sequential([{inner}], input_dim={self.input_dim})"
