"""First-order optimizers operating on (parameter, gradient) dictionaries.

An optimizer holds per-parameter state keyed by ``(layer_index, name)``.
The network calls :meth:`Optimizer.step` with the list of layers after a
backward pass; updates are applied in place so layer parameter arrays keep
their identity (which the serialization code relies on).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


class Optimizer:
    """Base class: subclasses implement :meth:`update` for one tensor."""

    def __init__(self, learning_rate: float):
        if learning_rate <= 0:
            raise ConfigurationError(f"learning_rate must be > 0, got {learning_rate}")
        self.learning_rate = float(learning_rate)
        self._state: dict = {}
        self._scratch: dict = {}
        self.iterations = 0

    def reset(self):
        """Drop accumulated state (momentum buffers, moment estimates)."""
        self._state.clear()
        self._scratch.clear()
        self.iterations = 0

    def _scratch_for(self, param):
        """Two reusable work arrays shaped like *param*.

        Updates run sequentially, so one scratch pair per shape serves
        every parameter; subclasses write their intermediate products
        here instead of allocating per step.  All in-place update
        sequences replicate the allocating formulas operation-for-
        operation, so parameter trajectories are bitwise unchanged.
        """
        pair = self._scratch.get(param.shape)
        if pair is None:
            pair = (
                np.empty_like(param, dtype=np.float64),
                np.empty_like(param, dtype=np.float64),
            )
            self._scratch[param.shape] = pair
        return pair

    def step(self, layers) -> None:
        """Apply one update to every trainable parameter of *layers*."""
        self.iterations += 1
        for li, layer in enumerate(layers):
            params = layer.parameters()
            grads = layer.gradients()
            for name, param in params.items():
                grad = grads.get(name)
                if grad is None:
                    continue
                self.update((li, name), param, np.asarray(grad, dtype=np.float64))

    def update(self, key, param, grad):  # pragma: no cover - abstract
        raise NotImplementedError

    def __repr__(self):
        return f"{type(self).__name__}(lr={self.learning_rate})"


class SGD(Optimizer):
    """Plain stochastic gradient descent, optionally with momentum.

    Algorithm 2 in the paper is stated in terms of raw stochastic
    gradients, so ``SGD(momentum=0)`` is the most literal reproduction;
    Adam (below) is the practical default.
    """

    def __init__(self, learning_rate: float = 0.01, momentum: float = 0.0, nesterov: bool = False):
        super().__init__(learning_rate)
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError(f"momentum must be in [0,1), got {momentum}")
        if nesterov and momentum == 0.0:
            raise ConfigurationError("nesterov requires momentum > 0")
        self.momentum = float(momentum)
        self.nesterov = bool(nesterov)

    def update(self, key, param, grad):
        s1, s2 = self._scratch_for(param)
        np.multiply(grad, self.learning_rate, out=s1)  # lr * grad
        if self.momentum == 0.0:
            param -= s1
            return
        buf = self._state.get(key)
        if buf is None:
            buf = self._state[key] = np.zeros_like(param)
        buf *= self.momentum
        buf -= s1
        if self.nesterov:
            np.multiply(buf, self.momentum, out=s2)
            s2 -= s1  # momentum * buf - lr * grad
            param += s2
        else:
            param += buf


class RMSProp(Optimizer):
    """RMSProp with an exponentially decayed squared-gradient average."""

    def __init__(self, learning_rate: float = 0.001, rho: float = 0.9, eps: float = 1e-8):
        super().__init__(learning_rate)
        if not 0.0 < rho < 1.0:
            raise ConfigurationError(f"rho must be in (0,1), got {rho}")
        self.rho = float(rho)
        self.eps = float(eps)

    def update(self, key, param, grad):
        s1, s2 = self._scratch_for(param)
        acc = self._state.get(key)
        if acc is None:
            acc = self._state[key] = np.zeros_like(param)
        acc *= self.rho
        np.multiply(grad, 1.0 - self.rho, out=s1)
        s1 *= grad  # (1 - rho) * grad * grad
        acc += s1
        np.multiply(grad, self.learning_rate, out=s1)  # lr * grad
        np.sqrt(acc, out=s2)
        s2 += self.eps
        s1 /= s2
        param -= s1


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias-corrected first/second moments.

    The de-facto GAN optimizer; ``beta1=0.5`` is the common GAN setting
    (following DCGAN) and the library default for Algorithm 2.
    """

    def __init__(
        self,
        learning_rate: float = 0.001,
        beta1: float = 0.5,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ):
        super().__init__(learning_rate)
        if not 0.0 <= beta1 < 1.0:
            raise ConfigurationError(f"beta1 must be in [0,1), got {beta1}")
        if not 0.0 <= beta2 < 1.0:
            raise ConfigurationError(f"beta2 must be in [0,1), got {beta2}")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)

    def update(self, key, param, grad):
        s1, s2 = self._scratch_for(param)
        state = self._state.get(key)
        if state is None:
            state = self._state[key] = [
                np.zeros_like(param),
                np.zeros_like(param),
                0,
            ]
        m, v, t = state
        t += 1
        m *= self.beta1
        np.multiply(grad, 1.0 - self.beta1, out=s1)
        m += s1
        v *= self.beta2
        np.multiply(grad, 1.0 - self.beta2, out=s1)
        s1 *= grad  # (1 - beta2) * grad * grad
        v += s1
        self._state[key][2] = t
        np.divide(m, 1.0 - self.beta1**t, out=s1)  # m_hat
        s1 *= self.learning_rate
        np.divide(v, 1.0 - self.beta2**t, out=s2)  # v_hat
        np.sqrt(s2, out=s2)
        s2 += self.eps
        s1 /= s2  # lr * m_hat / (sqrt(v_hat) + eps)
        param -= s1


_REGISTRY = {"sgd": SGD, "rmsprop": RMSProp, "adam": Adam}


def get_optimizer(spec, **kwargs) -> Optimizer:
    """Resolve *spec* (name, class, or instance) to an optimizer instance."""
    if isinstance(spec, Optimizer):
        return spec
    if isinstance(spec, type) and issubclass(spec, Optimizer):
        return spec(**kwargs)
    if isinstance(spec, str):
        try:
            return _REGISTRY[spec.lower()](**kwargs)
        except KeyError:
            raise ConfigurationError(
                f"unknown optimizer {spec!r}; choose from {sorted(_REGISTRY)}"
            ) from None
    raise ConfigurationError(f"cannot interpret optimizer spec: {spec!r}")
