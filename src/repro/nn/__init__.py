"""A small from-scratch neural-network framework (numpy only).

This is the substrate GAN-Sec's Algorithm 2 runs on.  It provides dense
feed-forward networks with manual backprop: layers, activations, losses
(including both GAN generator objectives), first-order optimizers, weight
serialization, and finite-difference gradient checking.

Quick example::

    from repro.nn import Sequential, Dense

    net = Sequential(
        [Dense(64, "relu"), Dense(1, "sigmoid")],
        input_dim=10,
        seed=0,
    )
    y = net.predict(x)
"""

from repro.nn.activations import (
    Activation,
    ELU,
    Identity,
    LeakyReLU,
    ReLU,
    Sigmoid,
    Softplus,
    Tanh,
    get_activation,
)
from repro.nn.initializers import (
    Constant,
    GlorotNormal,
    GlorotUniform,
    HeNormal,
    HeUniform,
    Initializer,
    RandomNormal,
    RandomUniform,
    Zeros,
    get_initializer,
)
from repro.nn.layers import ActivationLayer, BatchNorm, Dense, Dropout, Layer
from repro.nn.losses import (
    BinaryCrossEntropy,
    GeneratorLossMinimax,
    GeneratorLossNonSaturating,
    Loss,
    MeanAbsoluteError,
    MeanSquaredError,
    discriminator_loss,
    get_loss,
)
from repro.nn.network import Sequential
from repro.nn.optimizers import SGD, Adam, Optimizer, RMSProp, get_optimizer
from repro.nn.schedules import (
    ConstantSchedule,
    CosineDecay,
    ExponentialDecay,
    Schedule,
    ScheduledOptimizer,
    StepDecay,
    WarmupSchedule,
    attach_schedule,
)
from repro.nn.serialization import load_weights, save_weights

__all__ = [
    "Activation",
    "ActivationLayer",
    "Adam",
    "BatchNorm",
    "BinaryCrossEntropy",
    "Constant",
    "ConstantSchedule",
    "CosineDecay",
    "Dense",
    "Dropout",
    "ELU",
    "ExponentialDecay",
    "GeneratorLossMinimax",
    "GeneratorLossNonSaturating",
    "GlorotNormal",
    "GlorotUniform",
    "HeNormal",
    "HeUniform",
    "Identity",
    "Initializer",
    "Layer",
    "LeakyReLU",
    "Loss",
    "MeanAbsoluteError",
    "MeanSquaredError",
    "Optimizer",
    "RMSProp",
    "RandomNormal",
    "RandomUniform",
    "ReLU",
    "SGD",
    "Schedule",
    "ScheduledOptimizer",
    "StepDecay",
    "Sequential",
    "Sigmoid",
    "Softplus",
    "Tanh",
    "WarmupSchedule",
    "Zeros",
    "attach_schedule",
    "discriminator_loss",
    "get_activation",
    "get_initializer",
    "get_loss",
    "get_optimizer",
    "load_weights",
    "save_weights",
]
