"""Shared utilities: seeded RNG plumbing, validation helpers, ASCII
rendering of tables and plots for benchmark output, and small I/O helpers.
"""

from repro.utils.rng import as_rng, spawn_rngs
from repro.utils.validation import (
    check_array,
    check_in_range,
    check_positive,
    check_probability_vector,
)
from repro.utils.tables import format_table
from repro.utils.ascii_plot import ascii_line_plot, ascii_histogram

__all__ = [
    "as_rng",
    "spawn_rngs",
    "check_array",
    "check_in_range",
    "check_positive",
    "check_probability_vector",
    "format_table",
    "ascii_line_plot",
    "ascii_histogram",
]
