"""Argument-validation helpers used across the library.

These raise the library's own exception types (:mod:`repro.errors`) with
messages that name the offending argument, so failures deep inside a
pipeline point back at the call site.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError, ConfigurationError, DataError


def check_array(x, name: str, *, ndim=None, dtype=float, allow_empty=False) -> np.ndarray:
    """Coerce *x* to an ndarray and validate its dimensionality.

    Parameters
    ----------
    x:
        Array-like input.
    name:
        Argument name used in error messages.
    ndim:
        Required number of dimensions (int or tuple of acceptable ints),
        or ``None`` to skip the check.
    dtype:
        Target dtype for the coercion.
    allow_empty:
        If false (default), an array with zero elements raises
        :class:`~repro.errors.DataError`.
    """
    arr = np.asarray(x, dtype=dtype)
    if ndim is not None:
        allowed = (ndim,) if isinstance(ndim, int) else tuple(ndim)
        if arr.ndim not in allowed:
            raise ShapeError(
                f"{name} must have ndim in {allowed}, got ndim={arr.ndim} "
                f"(shape {arr.shape})"
            )
    if not allow_empty and arr.size == 0:
        raise DataError(f"{name} is empty")
    if np.issubdtype(arr.dtype, np.floating) and not np.all(np.isfinite(arr)):
        raise DataError(f"{name} contains non-finite values (nan/inf)")
    return arr


def check_positive(value, name: str, *, strict=True):
    """Validate a scalar is positive (``> 0``) or non-negative."""
    if strict and not value > 0:
        raise ConfigurationError(f"{name} must be > 0, got {value!r}")
    if not strict and not value >= 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value!r}")
    return value


def check_in_range(value, name: str, low, high, *, inclusive=True):
    """Validate a scalar lies in ``[low, high]`` (or ``(low, high)``)."""
    ok = (low <= value <= high) if inclusive else (low < value < high)
    if not ok:
        bracket = "[]" if inclusive else "()"
        raise ConfigurationError(
            f"{name} must be in {bracket[0]}{low}, {high}{bracket[1]}, got {value!r}"
        )
    return value


def check_probability_vector(p, name: str, *, atol=1e-8) -> np.ndarray:
    """Validate that *p* is a 1-D vector of probabilities summing to 1."""
    arr = check_array(p, name, ndim=1)
    if np.any(arr < -atol) or np.any(arr > 1 + atol):
        raise DataError(f"{name} has entries outside [0, 1]")
    total = float(arr.sum())
    if abs(total - 1.0) > max(atol, 1e-6 * arr.size):
        raise DataError(f"{name} must sum to 1, sums to {total:.6f}")
    return np.clip(arr, 0.0, 1.0)
