"""Plain-text table rendering for benchmark and report output.

The benchmark harness reproduces the paper's tables as text; this module
renders aligned ASCII tables similar to the paper's layout (e.g. Table I
with a two-level header: one Parzen width ``h`` per column group, and
Cor/Inc sub-columns).
"""

from __future__ import annotations

from typing import Sequence


def _stringify(cell, float_fmt: str) -> str:
    if isinstance(cell, float):
        return format(cell, float_fmt)
    return str(cell)


def format_table(
    rows: Sequence[Sequence],
    headers: Sequence[str],
    *,
    title: str | None = None,
    float_fmt: str = ".4f",
) -> str:
    """Render *rows* as an aligned ASCII table.

    Parameters
    ----------
    rows:
        Sequence of rows; each row is a sequence of cells.  Floats are
        formatted with *float_fmt*, everything else with ``str``.
    headers:
        Column headers; length must match the row width.
    title:
        Optional title line printed above the table.
    float_fmt:
        Format spec applied to float cells (default 4 decimal places,
        matching the paper's Table I).
    """
    str_rows = [[_stringify(c, float_fmt) for c in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells but there are {len(headers)} headers"
            )
    widths = [
        max(len(h), *(len(r[j]) for r in str_rows)) if str_rows else len(h)
        for j, h in enumerate(headers)
    ]
    sep = "+".join("-" * (w + 2) for w in widths)
    sep = f"+{sep}+"

    def fmt_row(cells):
        body = " | ".join(c.rjust(w) for c, w in zip(cells, widths))
        return f"| {body} |"

    lines = []
    if title:
        lines.append(title)
    lines.append(sep)
    lines.append(fmt_row(list(headers)))
    lines.append(sep)
    lines.extend(fmt_row(r) for r in str_rows)
    lines.append(sep)
    return "\n".join(lines)


def format_grouped_table(
    row_labels: Sequence[str],
    group_labels: Sequence[str],
    sub_labels: Sequence[str],
    values,
    *,
    title: str | None = None,
    float_fmt: str = ".4f",
) -> str:
    """Render a table with grouped column headers, like the paper's Table I.

    ``values[i][g][s]`` is the cell for row *i*, group *g*, sub-column *s*.
    For Table I: rows are conditions, groups are Parzen widths
    (``h=0.2 .. h=1``), and sub-columns are ``Cor`` / ``Inc``.
    """
    n_sub = len(sub_labels)
    flat_headers = [""]
    for g in group_labels:
        for s in sub_labels:
            flat_headers.append(f"{g} {s}")
    rows = []
    for label, row_groups in zip(row_labels, values):
        flat = [label]
        for group in row_groups:
            if len(group) != n_sub:
                raise ValueError(
                    f"group for row {label!r} has {len(group)} values, expected {n_sub}"
                )
            flat.extend(group)
        rows.append(flat)
    return format_table(rows, flat_headers, title=title, float_fmt=float_fmt)
