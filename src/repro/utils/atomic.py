"""Atomic filesystem writes: tmp file + ``os.replace``.

Every on-disk artifact in this library (cache entries, experiment
outputs, run manifests, training checkpoints) goes through these
helpers so a crashed or killed writer can never leave a truncated file
at the final path: content is staged in a temporary sibling inside the
same directory (hence the same filesystem) and atomically renamed into
place only once it is complete.

Extracted from the original :class:`repro.dsp.cache.FeatureCache`
implementation, which pioneered the pattern for ``.npy`` cache entries.
"""

from __future__ import annotations

import os
import tempfile
from contextlib import contextmanager
from pathlib import Path


@contextmanager
def atomic_path(path, *, suffix: str = ""):
    """Context manager yielding a temporary path that replaces *path*.

    The temporary file lives next to *path* (``.tmp-*`` prefix) so the
    final ``os.replace`` is atomic.  On any exception the temporary is
    removed and the final path is untouched.

    ::

        with atomic_path(out / "weights.npz", suffix=".npz") as tmp:
            np.savez(tmp, **arrays)
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        prefix=".tmp-", suffix=suffix or path.suffix, dir=path.parent
    )
    os.close(fd)
    try:
        yield Path(tmp)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def atomic_write_bytes(path, data: bytes) -> Path:
    """Atomically write *data* to *path*; returns the final path."""
    path = Path(path)
    with atomic_path(path) as tmp:
        tmp.write_bytes(data)
    return path


def atomic_write_text(path, text: str, *, encoding: str = "utf-8") -> Path:
    """Atomically write *text* to *path*; returns the final path."""
    return atomic_write_bytes(path, text.encode(encoding))


@contextmanager
def atomic_open(path, mode: str = "wb"):
    """Open a temporary sibling of *path* for writing, then rename.

    Like :func:`atomic_path` but yields an open file object (``"wb"``
    or ``"w"`` modes), for writers that stream content.
    """
    if mode not in ("wb", "w"):
        raise ValueError(f"atomic_open only supports 'w'/'wb', got {mode!r}")
    with atomic_path(path) as tmp:
        kwargs = {} if mode == "wb" else {"encoding": "utf-8", "newline": ""}
        with open(tmp, mode, **kwargs) as fh:
            yield fh
