"""Random-number-generator plumbing.

Every stochastic component in the library accepts a ``seed`` argument that
may be ``None`` (fresh entropy), an ``int`` (deterministic), or an existing
:class:`numpy.random.Generator` (shared stream).  :func:`as_rng` normalizes
all three into a ``Generator`` so the rest of the code never has to care.
"""

from __future__ import annotations

import hashlib

import numpy as np

SeedLike = "int | None | np.random.Generator | np.random.SeedSequence"


def as_rng(seed=None) -> np.random.Generator:
    """Coerce *seed* into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` for OS entropy, an ``int`` for a reproducible stream, an
        existing ``Generator`` (returned unchanged), or a ``SeedSequence``.

    Returns
    -------
    numpy.random.Generator
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed, n: int) -> list:
    """Create *n* statistically independent generators from one seed.

    Useful when several components (e.g. the generator and discriminator of
    a GAN, or parallel trace synthesizers) each need their own stream but
    the whole experiment must be reproducible from a single integer.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of rngs: {n}")
    if isinstance(seed, np.random.Generator):
        # Derive children deterministically from the parent stream.
        seeds = seed.integers(0, 2**63 - 1, size=n)
        return [np.random.default_rng(int(s)) for s in seeds]
    seq = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(n)]


def fresh_entropy() -> int:
    """A 128-bit integer drawn from OS entropy (for unseeded pipelines)."""
    return int(np.random.SeedSequence().entropy)


def stable_entropy(*tokens) -> int:
    """Hash *tokens* (stringified) into a stable 128-bit integer.

    Unlike :func:`spawn_rngs` on a shared ``Generator``, the result does
    not depend on call ordering — only on the token values — so it can
    key per-work-item RNG streams that must match between serial and
    parallel execution schedules.
    """
    material = "\x1f".join(str(t) for t in tokens).encode("utf-8")
    return int.from_bytes(hashlib.sha256(material).digest()[:16], "little")


def derive_rngs(root_entropy: int, tokens, n: int) -> list:
    """Derive *n* generators from ``(root_entropy, tokens)`` only.

    The derivation is a pure function of its arguments: any worker, in
    any process, at any time, gets bitwise-identical streams for the
    same ``(root, tokens)`` pair.  This is the seed fan-out used by the
    parallel pair-training runtime (one token set per flow pair).
    """
    if n < 0:
        raise ValueError(f"cannot derive a negative number of rngs: {n}")
    seq = np.random.SeedSequence([int(root_entropy), stable_entropy(*tokens)])
    return [np.random.default_rng(child) for child in seq.spawn(n)]
