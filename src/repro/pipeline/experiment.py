"""Declarative experiment runner: a resumable, staged run graph.

One call reproduces the whole case study and leaves a self-contained
artifact directory behind — the dataset, the trained model, the loss
history, the G_CPPS graph, and the security report — so results can be
inspected, diffed, and re-analyzed without rerunning anything:

::

    experiment/
      config.json          # the exact configuration that ran
      manifest.json        # per-stage fingerprints, digests, timings
      dataset.npz          # recorded (features | conditions)    [record]
      graph.dot            # G_CPPS (Graphviz)                   [graph]
      model/               # trained CGAN                        [train]
      history.csv          # Algorithm 2 loss traces             [train]
      report.txt           # Algorithm 3 + attacker + MI report  [analyze]
      analysis.json        # headline analysis numbers           [analyze]
      summary.json         # machine-readable summary            [report]
      checkpoints/         # transient mid-training checkpoints

The pipeline runs as an explicit :class:`~repro.pipeline.rungraph.RunGraph`
of fingerprinted stages over a content-addressed
:class:`~repro.artifacts.store.ArtifactStore`.  Re-running into the same
directory skips every stage whose configuration and upstream artifacts
are unchanged (warm resume); an interrupted training run continues from
its latest periodic checkpoint, bitwise-identical to a run that was
never interrupted.  Pass ``resume=False`` to force a fresh run.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields
from pathlib import Path

from repro.artifacts.manifest import RunManifest
from repro.artifacts.store import ArtifactStore
from repro.errors import ConfigurationError
from repro.manufacturing.architecture import (
    GCODE_FLOW,
    monitored_flow_names,
    printer_architecture,
)
from repro.pipeline.config import AnalysisConfig, CGANConfig
from repro.pipeline.gansec import GANSec, GANSecConfig
from repro.pipeline.pairs import FlowPairKey
from repro.pipeline.rungraph import RunGraph
from repro.pipeline.stages import ExperimentRunContext, build_experiment_stages
from repro.utils.atomic import atomic_write_text


@dataclass
class ExperimentConfig:
    """Everything needed to reproduce one case-study experiment."""

    name: str = "case-study"
    seed: int = 0
    n_moves_per_axis: int = 30
    sample_rate: float = 12000.0
    n_bins: int = 100
    emission_flow: str = "F18"
    iterations: int = 2000
    batch_size: int = 32
    k_disc: int = 1
    h: float = 0.2
    g_size: int = 200
    test_fraction: float = 0.25
    workers: int = 1
    executor: str | None = None
    analysis_workers: int = 1
    chunk_size: int | None = None
    trace: bool = False
    #: Optional directory for the on-disk raw-feature cache; repeated
    #: experiments over identical recorded audio skip CWT extraction.
    feature_cache: str | None = None
    #: Cadence (in Algorithm 2 iterations) of crash-recovery training
    #: checkpoints; 0 disables them.  Like the other scheduling knobs,
    #: this never affects results — only how much work an interrupted
    #: run can skip when resumed.
    checkpoint_every: int = 500

    def __post_init__(self):
        if not self.name:
            raise ConfigurationError("experiment name must be non-empty")
        if self.workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {self.workers}")
        if self.analysis_workers < 1:
            raise ConfigurationError(
                f"analysis_workers must be >= 1, got {self.analysis_workers}"
            )
        if self.checkpoint_every < 0:
            raise ConfigurationError(
                f"checkpoint_every must be >= 0, got {self.checkpoint_every}"
            )
        if self.emission_flow not in monitored_flow_names():
            raise ConfigurationError(
                f"emission_flow must be one of {monitored_flow_names()[1:]}, "
                f"got {self.emission_flow!r}"
            )

    @classmethod
    def from_json(cls, path) -> "ExperimentConfig":
        """Load a config written as JSON (e.g. a run's ``config.json``).

        Unknown keys are rejected by name instead of exploding inside
        the dataclass constructor, so a typo'd or newer-format config
        fails with an actionable message.
        """
        path = Path(path)
        data = json.loads(path.read_text())
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"experiment config {path} must hold a JSON object, "
                f"got {type(data).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown experiment config key(s) in {path}: "
                + ", ".join(unknown)
            )
        return cls(**data)


@dataclass
class ExperimentResult:
    """Handle to a finished experiment's artifacts and headline numbers."""

    directory: Path
    config: ExperimentConfig
    summary: dict = field(default_factory=dict)

    def report_text(self) -> str:
        return (self.directory / "report.txt").read_text()


def _build_pipeline(config: ExperimentConfig) -> GANSec:
    return GANSec(
        printer_architecture(),
        GANSecConfig(
            cgan=CGANConfig(
                iterations=config.iterations,
                batch_size=config.batch_size,
                k_disc=config.k_disc,
            ),
            analysis=AnalysisConfig(
                h=config.h,
                g_size=config.g_size,
                test_fraction=config.test_fraction,
                chunk_size=config.chunk_size,
            ),
            seed=config.seed,
            workers=config.workers,
            executor=config.executor,
            analysis_workers=config.analysis_workers,
        ),
    )


def run_experiment(
    config: ExperimentConfig, out_dir, *, bus=None, resume: bool = True
) -> ExperimentResult:
    """Execute the experiment described by *config* into *out_dir*.

    The run is a staged graph (record → graph → train → analyze →
    report) over an artifact store: with *resume* (the default), stages
    whose fingerprints match the run directory's manifest — same config
    slice, same upstream artifacts, outputs verified on disk — are
    skipped, and an interrupted training run continues from its latest
    checkpoint.  ``resume=False`` re-runs everything.  Either way the
    artifacts are byte-for-byte what a single uninterrupted run
    produces.

    *bus* is an optional :class:`~repro.runtime.events.EventBus` for
    live instrumentation (training, analysis, and stage lifecycle
    events); when ``config.trace`` is set the events are additionally
    written to ``<out_dir>/trace.jsonl``.
    """
    from repro.runtime.events import EventBus
    from repro.runtime.reporters import JsonlTraceWriter

    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    atomic_write_text(
        out_dir / "config.json", json.dumps(asdict(config), indent=2)
    )

    if bus is None:
        bus = EventBus()
    trace_writer = None
    if config.trace:
        trace_writer = JsonlTraceWriter(out_dir / "trace.jsonl", atomic=True)
        bus.subscribe(trace_writer.handle)

    store = ArtifactStore(out_dir)
    manifest = RunManifest.load(out_dir)
    pair = FlowPairKey(config.emission_flow, GCODE_FLOW)
    stages, group_runners, pair_for_stage = build_experiment_stages(config, pair)
    context = ExperimentRunContext(
        config=config,
        store=store,
        manifest=manifest,
        pipeline=_build_pipeline(config),
        pair=pair,
        bus=bus,
        pair_for_stage=pair_for_stage,
    )
    graph = RunGraph(
        stages,
        store,
        manifest,
        bus=bus,
        resume=resume,
        group_runners=group_runners,
    )
    try:
        graph.execute(context)
    finally:
        if trace_writer is not None:
            bus.unsubscribe(trace_writer.handle)
            trace_writer.close()

    summary = context.values.get("summary")
    if summary is None:  # the report stage was skipped: reuse its artifact
        summary = store.read_json("summary.json")
    return ExperimentResult(directory=out_dir, config=config, summary=summary)


def experiment_status(out_dir) -> list:
    """Per-stage status of a run directory, for ``experiment status``.

    Returns one dict per manifest record: stage name, short
    fingerprint, recorded duration, output paths, and whether every
    output still verifies against its digest on disk.
    """
    out_dir = Path(out_dir)
    store = ArtifactStore(out_dir)
    manifest = RunManifest.load(out_dir)
    rows = []
    for name in manifest.names():
        record = manifest.get(name)
        rows.append(
            {
                "stage": name,
                "fingerprint": record.fingerprint[:12],
                "seconds": record.seconds,
                "outputs": sorted(rec.path for rec in record.outputs.values()),
                "verified": all(
                    store.verify(rec) for rec in record.outputs.values()
                ),
            }
        )
    return rows


def invalidate_stage(out_dir, stage: str) -> bool:
    """Drop *stage*'s manifest record so the next resume re-runs it
    (and, through the fingerprint cascade, everything downstream).
    Returns whether a record existed."""
    manifest = RunManifest.load(Path(out_dir))
    removed = manifest.remove(stage)
    if removed:
        manifest.save()
    return removed
