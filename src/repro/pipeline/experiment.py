"""Declarative experiment runner with on-disk artifacts.

One call reproduces the whole case study and leaves a self-contained
artifact directory behind — the dataset, the trained model, the loss
history, the G_CPPS graph, and the security report — so results can be
inspected, diffed, and re-analyzed without rerunning anything:

::

    experiment/
      config.json          # the exact configuration that ran
      dataset.npz          # recorded (features | conditions)
      graph.dot            # G_CPPS (Graphviz)
      model/               # trained CGAN (generator + discriminator)
      history.csv          # Algorithm 2 loss traces
      report.txt           # Algorithm 3 + attacker + MI report
      summary.json         # headline numbers, machine-readable
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.errors import ConfigurationError
from repro.flows.io import save_dataset
from repro.gan.serialization import save_cgan
from repro.graph.builder import generate
from repro.graph.export import to_dot
from repro.manufacturing.architecture import (
    GCODE_FLOW,
    monitored_flow_names,
    printer_architecture,
)
from repro.manufacturing.traces import record_case_study_dataset
from repro.pipeline.config import AnalysisConfig, CGANConfig
from repro.pipeline.gansec import GANSec, GANSecConfig
from repro.pipeline.pairs import FlowPairKey


@dataclass
class ExperimentConfig:
    """Everything needed to reproduce one case-study experiment."""

    name: str = "case-study"
    seed: int = 0
    n_moves_per_axis: int = 30
    sample_rate: float = 12000.0
    n_bins: int = 100
    emission_flow: str = "F18"
    iterations: int = 2000
    batch_size: int = 32
    k_disc: int = 1
    h: float = 0.2
    g_size: int = 200
    test_fraction: float = 0.25
    workers: int = 1
    executor: str | None = None
    analysis_workers: int = 1
    chunk_size: int | None = None
    trace: bool = False
    #: Optional directory for the on-disk raw-feature cache; repeated
    #: experiments over identical recorded audio skip CWT extraction.
    feature_cache: str | None = None

    def __post_init__(self):
        if not self.name:
            raise ConfigurationError("experiment name must be non-empty")
        if self.workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {self.workers}")
        if self.analysis_workers < 1:
            raise ConfigurationError(
                f"analysis_workers must be >= 1, got {self.analysis_workers}"
            )
        if self.emission_flow not in monitored_flow_names():
            raise ConfigurationError(
                f"emission_flow must be one of {monitored_flow_names()[1:]}, "
                f"got {self.emission_flow!r}"
            )

    @classmethod
    def from_json(cls, path) -> "ExperimentConfig":
        data = json.loads(Path(path).read_text())
        return cls(**data)


@dataclass
class ExperimentResult:
    """Handle to a finished experiment's artifacts and headline numbers."""

    directory: Path
    config: ExperimentConfig
    summary: dict = field(default_factory=dict)

    def report_text(self) -> str:
        return (self.directory / "report.txt").read_text()


def run_experiment(config: ExperimentConfig, out_dir, *, bus=None) -> ExperimentResult:
    """Execute the experiment described by *config* into *out_dir*.

    *bus* is an optional :class:`~repro.runtime.events.EventBus` for
    live training instrumentation; when ``config.trace`` is set the
    events are additionally written to ``<out_dir>/trace.jsonl``.
    """
    from repro.runtime.events import EventBus
    from repro.runtime.reporters import JsonlTraceWriter

    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / "config.json").write_text(json.dumps(asdict(config), indent=2))

    if bus is None:
        bus = EventBus()
    trace_writer = None
    if config.trace:
        trace_writer = JsonlTraceWriter(out_dir / "trace.jsonl")
        bus.subscribe(trace_writer.handle)

    # 1. Record.
    dataset, _extractor, _encoder, _runs = record_case_study_dataset(
        n_moves_per_axis=config.n_moves_per_axis,
        sample_rate=config.sample_rate,
        n_bins=config.n_bins,
        seed=config.seed,
        feature_cache=config.feature_cache,
    )
    save_dataset(dataset, out_dir / "dataset.npz")

    # 2. Graph (Algorithm 1) — export the full monitored architecture.
    architecture = printer_architecture()
    graph_result = generate(architecture, monitored_flow_names())
    (out_dir / "graph.dot").write_text(to_dot(graph_result.graph))

    # 3+4. Train and analyze through the GANSec facade.
    pipeline = GANSec(
        architecture,
        GANSecConfig(
            cgan=CGANConfig(
                iterations=config.iterations,
                batch_size=config.batch_size,
                k_disc=config.k_disc,
            ),
            analysis=AnalysisConfig(
                h=config.h,
                g_size=config.g_size,
                test_fraction=config.test_fraction,
                chunk_size=config.chunk_size,
            ),
            seed=config.seed,
            workers=config.workers,
            executor=config.executor,
            analysis_workers=config.analysis_workers,
        ),
    )
    pair = FlowPairKey(config.emission_flow, GCODE_FLOW)
    try:
        reports = pipeline.run({pair: dataset}, bus=bus)
    finally:
        if trace_writer is not None:
            bus.unsubscribe(trace_writer.handle)
            trace_writer.close()
    report = reports[pair]
    model = pipeline.models[pair]

    # 5. Persist artifacts.
    save_cgan(model.cgan, out_dir / "model")
    model.cgan.history.to_csv(out_dir / "history.csv")
    (out_dir / "report.txt").write_text(
        report.to_text(condition_names=["Cond1 (X)", "Cond2 (Y)", "Cond3 (Z)"])
    )
    summary = {
        "experiment": config.name,
        "seed": config.seed,
        "n_samples": len(dataset),
        "train_samples": len(model.train_set),
        "test_samples": len(model.test_set),
        "iterations": model.cgan.trained_iterations,
        "final_d_loss": model.cgan.history.final()["d_loss"],
        "final_g_loss": model.cgan.history.final()["g_loss"],
        "attack_accuracy": report.leakage.accuracy,
        "leakage_ratio": report.leakage.leakage_ratio,
        "condition_entropy_bits": report.condition_entropy,
        "max_feature_mi_bits": report.leaked_bits_upper_bound,
        "verdict": report.verdict(),
    }
    (out_dir / "summary.json").write_text(json.dumps(summary, indent=2))
    return ExperimentResult(directory=out_dir, config=config, summary=summary)
