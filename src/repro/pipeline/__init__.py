"""End-to-end GAN-Sec pipeline (the Figure 4 automatic model-generation
method): Algorithm 1 → Algorithm 2 per flow pair → Algorithm 3 reports.

Training fans out over the :mod:`repro.runtime` executors; pair
identities are :class:`~repro.pipeline.pairs.FlowPairKey` values (plain
tuples still work everywhere but are deprecated).

Experiments execute as a :class:`~repro.pipeline.rungraph.RunGraph` of
fingerprinted stages over a content-addressed artifact store, which is
what makes :func:`run_experiment` resumable (see
:func:`experiment_status` / :func:`invalidate_stage`).
"""

from repro.pipeline.config import AnalysisConfig, CGANConfig, GANSecConfig
from repro.pipeline.pairs import (
    FlowPairKey,
    PairDataRegistry,
    as_pair_key,
)
from repro.pipeline.gansec import GANSec, PairModel
from repro.pipeline.rungraph import (
    RunGraph,
    Stage,
    StageOutcome,
    stage_fingerprint,
)
from repro.pipeline.stages import ExperimentRunContext, build_experiment_stages
from repro.pipeline.experiment import (
    ExperimentConfig,
    ExperimentResult,
    experiment_status,
    invalidate_stage,
    run_experiment,
)

__all__ = [
    "AnalysisConfig",
    "CGANConfig",
    "ExperimentConfig",
    "ExperimentResult",
    "ExperimentRunContext",
    "FlowPairKey",
    "GANSec",
    "GANSecConfig",
    "PairDataRegistry",
    "PairModel",
    "RunGraph",
    "Stage",
    "StageOutcome",
    "as_pair_key",
    "build_experiment_stages",
    "experiment_status",
    "invalidate_stage",
    "run_experiment",
    "stage_fingerprint",
]
