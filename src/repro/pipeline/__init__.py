"""End-to-end GAN-Sec pipeline (the Figure 4 automatic model-generation
method): Algorithm 1 → Algorithm 2 per flow pair → Algorithm 3 reports.
"""

from repro.pipeline.config import AnalysisConfig, CGANConfig, GANSecConfig
from repro.pipeline.gansec import GANSec, PairModel
from repro.pipeline.experiment import (
    ExperimentConfig,
    ExperimentResult,
    run_experiment,
)

__all__ = [
    "AnalysisConfig",
    "CGANConfig",
    "ExperimentConfig",
    "ExperimentResult",
    "GANSec",
    "GANSecConfig",
    "PairModel",
    "run_experiment",
]
