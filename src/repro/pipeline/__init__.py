"""End-to-end GAN-Sec pipeline (the Figure 4 automatic model-generation
method): Algorithm 1 → Algorithm 2 per flow pair → Algorithm 3 reports.

Training fans out over the :mod:`repro.runtime` executors; pair
identities are :class:`~repro.pipeline.pairs.FlowPairKey` values (plain
tuples still work everywhere but are deprecated).
"""

from repro.pipeline.config import AnalysisConfig, CGANConfig, GANSecConfig
from repro.pipeline.pairs import (
    FlowPairKey,
    PairDataRegistry,
    as_pair_key,
)
from repro.pipeline.gansec import GANSec, PairModel
from repro.pipeline.experiment import (
    ExperimentConfig,
    ExperimentResult,
    run_experiment,
)

__all__ = [
    "AnalysisConfig",
    "CGANConfig",
    "ExperimentConfig",
    "ExperimentResult",
    "FlowPairKey",
    "GANSec",
    "GANSecConfig",
    "PairDataRegistry",
    "PairModel",
    "as_pair_key",
    "run_experiment",
]
