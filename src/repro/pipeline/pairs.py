"""Typed flow-pair keys and the dataset registry.

Historically every pipeline mapping was keyed by a raw ``(str, str)``
tuple of flow names.  :class:`FlowPairKey` replaces that with a frozen,
hashable value object that still *compares and hashes like* the tuple it
replaces — so existing call sites (``models[("F18", "F1")]``,
``("F18", "F1") in reports``) keep working while new code gets
``key.first`` / ``key.second`` / ``key.reversed()`` and string parsing.

:class:`PairDataRegistry` is the typed replacement for the raw
``dict[(str, str), FlowPairDataset]`` threaded through
:meth:`~repro.pipeline.gansec.GANSec.generate_graph` /
:meth:`~repro.pipeline.gansec.GANSec.train_models`.  Plain dicts (and
plain tuples) are still accepted everywhere through :func:`as_pair_key`
/ :meth:`PairDataRegistry.coerce`, which normalize them and emit a
``DeprecationWarning``.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from repro.errors import ConfigurationError, DataError

#: Separator used by ``str(key)`` / ``FlowPairKey.parse``.
PAIR_SEPARATOR = "|"


@dataclass(frozen=True, eq=False)
class FlowPairKey:
    """Identity of one ordered flow pair ``(F_first | F_second)``.

    The key hashes and compares equal to the plain ``(first, second)``
    tuple, supports iteration/indexing like a 2-tuple, and round-trips
    through ``str()`` / :meth:`parse`.
    """

    first: str
    second: str

    def __post_init__(self):
        for label, value in (("first", self.first), ("second", self.second)):
            if not isinstance(value, str) or not value:
                raise ConfigurationError(
                    f"FlowPairKey.{label} must be a non-empty string, got {value!r}"
                )

    # -- construction ---------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "FlowPairKey":
        """Parse ``"F18|F1"`` (whitespace-tolerant) into a key."""
        if not isinstance(text, str):
            raise ConfigurationError(f"cannot parse FlowPairKey from {text!r}")
        parts = [p.strip() for p in text.split(PAIR_SEPARATOR)]
        if len(parts) != 2 or not all(parts):
            raise ConfigurationError(
                f"expected '<first>{PAIR_SEPARATOR}<second>', got {text!r}"
            )
        return cls(parts[0], parts[1])

    def reversed(self) -> "FlowPairKey":
        """The opposite conditioning direction, ``(second | first)``."""
        return FlowPairKey(self.second, self.first)

    # -- tuple interoperability ------------------------------------------------
    def as_tuple(self) -> tuple:
        return (self.first, self.second)

    def __iter__(self):
        yield self.first
        yield self.second

    def __getitem__(self, index):
        return self.as_tuple()[index]

    def __len__(self):
        return 2

    def __eq__(self, other):
        if isinstance(other, FlowPairKey):
            return self.as_tuple() == other.as_tuple()
        if isinstance(other, tuple):
            return self.as_tuple() == other
        return NotImplemented

    def __hash__(self):
        # Must match hash((first, second)) so FlowPairKey-keyed dicts
        # accept plain-tuple lookups (and vice versa).
        return hash(self.as_tuple())

    def __str__(self):
        return f"{self.first}{PAIR_SEPARATOR}{self.second}"

    def label(self) -> str:
        """Human-facing form used in report headers."""
        return f"({self.first} | {self.second})"

    def __repr__(self):
        return f"FlowPairKey({self.first!r}, {self.second!r})"


def as_pair_key(value, *, warn_on_tuple: bool = True) -> FlowPairKey:
    """Normalize *value* into a :class:`FlowPairKey`.

    Accepts an existing key (returned unchanged), a ``"A|B"`` string, or
    — deprecated — a 2-sequence of flow names, in which case a
    ``DeprecationWarning`` is emitted unless *warn_on_tuple* is false.
    """
    if isinstance(value, FlowPairKey):
        return value
    if isinstance(value, str):
        return FlowPairKey.parse(value)
    try:
        first, second = value
    except (TypeError, ValueError):
        raise ConfigurationError(
            f"cannot interpret {value!r} as a flow pair key"
        ) from None
    if warn_on_tuple:
        warnings.warn(
            "passing flow pairs as plain tuples is deprecated; use "
            f"FlowPairKey({first!r}, {second!r})",
            DeprecationWarning,
            stacklevel=3,
        )
    return FlowPairKey(str(first), str(second))


class PairDataRegistry:
    """Typed mapping of :class:`FlowPairKey` -> ``FlowPairDataset``.

    Provides the flow-name bookkeeping Algorithm 1 needs
    (:meth:`flow_names`) plus dict-style access that accepts keys,
    strings, or legacy tuples.
    """

    def __init__(self, datasets=None):
        self._datasets: dict = {}
        if datasets:
            for key, dataset in dict(datasets).items():
                self.add(key, dataset)

    @classmethod
    def coerce(cls, data) -> "PairDataRegistry":
        """Accept a registry (unchanged) or a legacy dict (normalized)."""
        if isinstance(data, cls):
            return data
        if data is None:
            raise DataError("no pair data supplied")
        return cls(data)

    def add(self, key, dataset) -> FlowPairKey:
        key = as_pair_key(key)
        self._datasets[key] = dataset
        return key

    def flow_names(self) -> set:
        """Every flow name that appears in some registered pair."""
        names = set()
        for key in self._datasets:
            names.add(key.first)
            names.add(key.second)
        return names

    def keys(self) -> list:
        return list(self._datasets)

    def items(self):
        return self._datasets.items()

    def __getitem__(self, key):
        return self._datasets[as_pair_key(key, warn_on_tuple=False)]

    def __contains__(self, key):
        try:
            return as_pair_key(key, warn_on_tuple=False) in self._datasets
        except ConfigurationError:
            return False

    def __len__(self):
        return len(self._datasets)

    def __iter__(self):
        return iter(self._datasets)

    def __repr__(self):
        return f"PairDataRegistry({sorted(str(k) for k in self._datasets)})"
