"""Typed stage builders for the case-study experiment run graph.

This module turns the monolithic experiment script into the explicit
Figure 4 pipeline that :class:`~repro.pipeline.rungraph.RunGraph`
executes against a run directory:

========================  =====================================  ==========================
stage                     paper step                             outputs
========================  =====================================  ==========================
``record``                historical data collection             ``dataset.npz``
``graph``                 Algorithm 1 (G_CPPS generation)        ``graph.dot``
``train[<pair>]``         Algorithm 2 (CGAN model generation)    ``model/``, ``history.csv``
``analyze[<pair>]``       Algorithm 3 + attack models            ``report.txt``, ``analysis.json``
``report``                designer-facing summary                ``summary.json``
========================  =====================================  ==========================

Each stage's ``config_slice`` holds exactly the configuration that
affects its result — scheduling knobs (workers, executor, chunk sizes,
tracing, caching, checkpoint cadence) are excluded, so changing them
never re-runs anything.

Every stage can *hydrate* its inputs from the artifact store when its
upstream stages were skipped: ``analyze`` reloads the trained CGAN from
``model/`` and re-derives the train/test split from the pipeline seed
(the split RNG stream depends only on the seed and the pair identity),
and ``report`` reads its numbers from the manifest records and
``analysis.json`` — which is what makes a resumed run byte-identical to
an uninterrupted one.
"""

from __future__ import annotations

import shutil
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING

from repro.artifacts.manifest import RunManifest
from repro.artifacts.store import ArtifactStore
from repro.errors import PairTrainingError
from repro.flows.io import load_dataset, save_dataset
from repro.gan.serialization import load_cgan, save_cgan
from repro.graph.builder import generate
from repro.graph.export import to_dot
from repro.manufacturing.architecture import monitored_flow_names
from repro.manufacturing.traces import record_case_study_dataset
from repro.pipeline.gansec import GANSec, PairModel
from repro.pipeline.pairs import FlowPairKey
from repro.pipeline.rungraph import Stage
from repro.runtime.events import EventBus
from repro.runtime.training import CheckpointSpec, pair_rng_streams

if TYPE_CHECKING:  # avoid a stages ↔ experiment import cycle
    from repro.pipeline.experiment import ExperimentConfig

#: Condition labels used in the case-study report (one-hot motor axes).
CONDITION_NAMES = ["Cond1 (X)", "Cond2 (Y)", "Cond3 (Z)"]

#: Transient per-pair training checkpoints live here; deleted once the
#: pair's final model supersedes them.
CHECKPOINT_ROOT = "checkpoints"


def checkpoint_dirname(key: FlowPairKey) -> str:
    return f"{CHECKPOINT_ROOT}/{key.first}__{key.second}"


@dataclass
class ExperimentRunContext:
    """Shared state the experiment stages execute against.

    ``values`` carries in-memory products (the recorded dataset, the
    final summary) between stages of the *same* run; anything a stage
    needs from a *skipped* upstream stage is rehydrated from the store.
    """

    config: "ExperimentConfig"
    store: ArtifactStore
    manifest: RunManifest
    pipeline: GANSec
    pair: FlowPairKey
    bus: EventBus | None = None
    values: dict = field(default_factory=dict)
    #: stage name -> pair key, for the train/analyze stage families.
    pair_for_stage: dict = field(default_factory=dict)

    def dataset(self):
        """The recorded dataset — in-memory if this run recorded it,
        reloaded from ``dataset.npz`` if the record stage was skipped."""
        dataset = self.values.get("dataset")
        if dataset is None:
            dataset = load_dataset(self.store.path("dataset.npz"))
            self.values["dataset"] = dataset
        return dataset

    def registry(self) -> dict:
        return {self.pair: self.dataset()}


# -- stage bodies -------------------------------------------------------------
def _run_record(ctx: ExperimentRunContext):
    cfg = ctx.config
    dataset, _extractor, _encoder, _runs = record_case_study_dataset(
        n_moves_per_axis=cfg.n_moves_per_axis,
        sample_rate=cfg.sample_rate,
        n_bins=cfg.n_bins,
        seed=cfg.seed,
        feature_cache=cfg.feature_cache,
    )
    ctx.values["dataset"] = dataset
    record = ctx.store.put_file(
        "dataset.npz", lambda path: save_dataset(dataset, path)
    )
    return {"dataset": record}, {"n_samples": len(dataset)}


def _run_graph(ctx: ExperimentRunContext):
    result = generate(ctx.pipeline.architecture, monitored_flow_names())
    record = ctx.store.put_text("graph.dot", to_dot(result.graph))
    return {"graph": record}, {"trainable_pairs": len(result.trainable_pairs)}


def _hydrate_pair_model(ctx: ExperimentRunContext, key: FlowPairKey) -> None:
    """Rebuild ``pipeline.models[key]`` from the persisted ``model/``.

    The train/test split is re-derived, not stored: its RNG stream
    depends only on the pipeline seed and the pair identity, so the
    recomputed split is bitwise-identical to the one training used.
    """
    cgan = load_cgan(ctx.store.path("model"))
    split_rng, _train_rng, _model_rng = pair_rng_streams(
        ctx.pipeline.root_entropy, key
    )
    train_set, test_set = ctx.dataset().split(
        ctx.pipeline.config.analysis.test_fraction, seed=split_rng
    )
    ctx.pipeline.models[key] = PairModel(
        pair_names=key, cgan=cgan, train_set=train_set, test_set=test_set
    )


def _make_analyze_run(stage_name: str):
    def _run_analyze(ctx: ExperimentRunContext):
        key = ctx.pair_for_stage[stage_name]
        if key not in ctx.pipeline.models:
            _hydrate_pair_model(ctx, key)
        report = ctx.pipeline.analyze(key, bus=ctx.bus)[key]
        analysis = {
            "attack_accuracy": report.leakage.accuracy,
            "leakage_ratio": report.leakage.leakage_ratio,
            "condition_entropy_bits": report.condition_entropy,
            "max_feature_mi_bits": report.leaked_bits_upper_bound,
            "verdict": report.verdict(),
        }
        outputs = {
            "report": ctx.store.put_text(
                "report.txt", report.to_text(condition_names=CONDITION_NAMES)
            ),
            "analysis": ctx.store.put_json("analysis.json", analysis),
        }
        return outputs, {}

    return _run_analyze


def _make_report_run(train_name: str):
    def _run_report(ctx: ExperimentRunContext):
        cfg = ctx.config
        record_meta = ctx.manifest.get("record").meta
        train_meta = ctx.manifest.get(train_name).meta
        analysis = ctx.store.read_json("analysis.json")
        summary = {
            "experiment": cfg.name,
            "seed": cfg.seed,
            "n_samples": record_meta["n_samples"],
            "train_samples": train_meta["train_samples"],
            "test_samples": train_meta["test_samples"],
            "iterations": train_meta["iterations"],
            "final_d_loss": train_meta["final_d_loss"],
            "final_g_loss": train_meta["final_g_loss"],
            "attack_accuracy": analysis["attack_accuracy"],
            "leakage_ratio": analysis["leakage_ratio"],
            "condition_entropy_bits": analysis["condition_entropy_bits"],
            "max_feature_mi_bits": analysis["max_feature_mi_bits"],
            "verdict": analysis["verdict"],
        }
        ctx.values["summary"] = summary
        return {"summary": ctx.store.put_json("summary.json", summary)}, {}

    return _run_report


def train_group_runner(group: str, batch, ctx: ExperimentRunContext):
    """Run one batch of ``train[*]`` stages through the parallel runtime.

    All stages in the batch go to a single
    :meth:`~repro.pipeline.gansec.GANSec.train_models` call, preserving
    the executor fan-out and the one
    ``TrainingStarted``/``TrainingFinished`` event envelope per batch.
    Completed pairs are persisted (and their transient checkpoints
    deleted) even when other pairs failed; the aggregated
    :class:`~repro.errors.PairTrainingError` is returned as the abort so
    the engine records the successes first.
    """
    cfg = ctx.config
    stage_for_key: dict = {}
    plan: dict = {}
    for stage, fingerprint in batch:
        key = ctx.pair_for_stage[stage.name]
        stage_for_key[key] = (stage, fingerprint)
        if cfg.checkpoint_every:
            plan[key] = CheckpointSpec(
                directory=str(ctx.store.path(checkpoint_dirname(key))),
                every=cfg.checkpoint_every,
                fingerprint=fingerprint,
            )
    abort = None
    try:
        ctx.pipeline.train_models(
            ctx.registry(),
            pairs=list(stage_for_key),
            bus=ctx.bus,
            checkpoint_plan=plan or None,
        )
    except PairTrainingError as exc:
        abort = exc

    results: dict = {}
    for key, (stage, _fingerprint) in stage_for_key.items():
        model = ctx.pipeline.models.get(key)
        if model is None:  # this pair failed; abort carries the details
            continue
        outputs = {
            "model": ctx.store.put_tree(
                "model", lambda d, m=model: save_cgan(m.cgan, d)
            ),
            "history": ctx.store.put_file(
                "history.csv", lambda p, m=model: m.cgan.history.to_csv(p)
            ),
        }
        shutil.rmtree(
            ctx.store.path(checkpoint_dirname(key)), ignore_errors=True
        )
        final = model.cgan.history.final()
        meta = {
            "train_samples": len(model.train_set),
            "test_samples": len(model.test_set),
            "iterations": model.cgan.trained_iterations,
            "final_d_loss": final["d_loss"],
            "final_g_loss": final["g_loss"],
        }
        results[stage.name] = (outputs, meta)
    return results, abort


def build_experiment_stages(config: "ExperimentConfig", pair: FlowPairKey):
    """The experiment's run graph for one flow pair.

    Returns ``(stages, group_runners, pair_for_stage)``; the caller puts
    *pair_for_stage* on the :class:`ExperimentRunContext`.
    """
    from repro.pipeline.config import CGANConfig

    cgan_cfg = CGANConfig(
        iterations=config.iterations,
        batch_size=config.batch_size,
        k_disc=config.k_disc,
    )
    train_name = f"train[{pair}]"
    analyze_name = f"analyze[{pair}]"
    stages = [
        Stage(
            "record",
            run=_run_record,
            config_slice={
                "n_moves_per_axis": config.n_moves_per_axis,
                "sample_rate": config.sample_rate,
                "n_bins": config.n_bins,
                "seed": config.seed,
            },
            outputs=("dataset",),
        ),
        Stage(
            "graph",
            run=_run_graph,
            config_slice={"flows": list(monitored_flow_names())},
            outputs=("graph",),
        ),
        Stage(
            train_name,
            run=None,
            deps=("record", "graph"),
            config_slice={
                "pair": str(pair),
                "seed": config.seed,
                "cgan": asdict(cgan_cfg),
                "test_fraction": config.test_fraction,
            },
            outputs=("model", "history"),
            group="train",
        ),
        Stage(
            analyze_name,
            run=_make_analyze_run(analyze_name),
            deps=(train_name,),
            config_slice={
                "pair": str(pair),
                "seed": config.seed,
                "h": config.h,
                "g_size": config.g_size,
                "test_fraction": config.test_fraction,
                "feature_indices": None,
            },
            outputs=("report", "analysis"),
        ),
        Stage(
            "report",
            run=_make_report_run(train_name),
            deps=("record", train_name, analyze_name),
            config_slice={"name": config.name, "seed": config.seed},
            outputs=("summary",),
        ),
    ]
    group_runners = {"train": train_group_runner}
    pair_for_stage = {train_name: pair, analyze_name: pair}
    return stages, group_runners, pair_for_stage
