"""Configuration dataclasses for the end-to-end GAN-Sec pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError


@dataclass
class CGANConfig:
    """Hyperparameters for each flow pair's CGAN (Algorithm 2)."""

    noise_dim: int = 16
    generator_hidden: tuple = (64, 64)
    discriminator_hidden: tuple = (64, 32)
    learning_rate: float = 2e-3
    iterations: int = 2000
    batch_size: int = 32
    k_disc: int = 1
    label_smoothing: float = 0.0
    generator_loss: str = "non_saturating"

    def __post_init__(self):
        if self.noise_dim <= 0:
            raise ConfigurationError("noise_dim must be > 0")
        if self.iterations <= 0:
            raise ConfigurationError("iterations must be > 0")
        if self.batch_size <= 0:
            raise ConfigurationError("batch_size must be > 0")
        if self.k_disc <= 0:
            raise ConfigurationError("k_disc must be > 0")
        if self.learning_rate <= 0:
            raise ConfigurationError("learning_rate must be > 0")


@dataclass
class AnalysisConfig:
    """Parameters for the Algorithm 3 security analysis.

    ``chunk_size`` bounds how many test rows each blocked Parzen
    scoring pass materializes (``None`` = derived from the default
    memory budget); it never changes the numbers, only the footprint.
    """

    h: float = 0.2
    g_size: int = 200
    test_fraction: float = 0.25
    feature_indices: tuple | None = None
    chunk_size: int | None = None

    def __post_init__(self):
        if self.h <= 0:
            raise ConfigurationError("h must be > 0")
        if self.g_size <= 0:
            raise ConfigurationError("g_size must be > 0")
        if not 0.0 < self.test_fraction < 1.0:
            raise ConfigurationError("test_fraction must be in (0, 1)")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be >= 1 or None, got {self.chunk_size}"
            )


@dataclass
class GANSecConfig:
    """Top-level pipeline configuration.

    ``workers`` / ``executor`` select the pair-training runtime (see
    :mod:`repro.runtime`): 1 worker runs serially; more workers default
    to the process executor unless *executor* names another one
    (``"serial"`` / ``"thread"`` / ``"process"``).  ``analysis_workers``
    does the same for the Algorithm 3 security-analysis fan-out
    (per-(pair, condition) jobs); both stages produce results that are
    bitwise-independent of the worker count.  ``progress_every``
    sets the cadence (in Algorithm 2 iterations) of
    :class:`~repro.runtime.events.EpochProgress` events; 0 disables
    them.  ``sample_cache_entries`` bounds the LRU cache of generated
    condition samples shared across repeated ``analyze()`` calls (e.g.
    h sweeps); eviction never changes the numbers because every entry
    is re-derivable from the pipeline seed and the (pair, condition)
    identity alone.
    """

    cgan: CGANConfig = field(default_factory=CGANConfig)
    analysis: AnalysisConfig = field(default_factory=AnalysisConfig)
    seed: int | None = None
    workers: int = 1
    executor: str | None = None
    analysis_workers: int = 1
    progress_every: int = 0
    sample_cache_entries: int = 64

    def __post_init__(self):
        if self.workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {self.workers}")
        if self.sample_cache_entries < 1:
            raise ConfigurationError(
                "sample_cache_entries must be >= 1, got "
                f"{self.sample_cache_entries}"
            )
        if self.analysis_workers < 1:
            raise ConfigurationError(
                f"analysis_workers must be >= 1, got {self.analysis_workers}"
            )
        if self.progress_every < 0:
            raise ConfigurationError(
                f"progress_every must be >= 0, got {self.progress_every}"
            )
        if self.executor is not None and self.executor not in (
            "serial",
            "thread",
            "process",
        ):
            raise ConfigurationError(
                "executor must be None, 'serial', 'thread', or 'process', "
                f"got {self.executor!r}"
            )
