"""The GAN-Sec methodology end to end (paper Figure 4).

:class:`GANSec` chains the two model-generation steps and the analysis:

1. **Graph generation** (Algorithm 1): the design-time architecture is
   turned into ``G_CPPS``, candidate flow pairs are extracted by DFS
   reachability, and pruned to the pairs covered by historical data.
2. **CGAN model generation** (Algorithm 2): one conditional GAN is
   trained per trainable flow pair from its aligned dataset.
3. **Security analysis** (Algorithm 3 + attack models): likelihood
   metrics, side-channel leakage, and a designer-facing report per pair.

The historical data is supplied as a mapping ``(F_i name, F_j name) ->
FlowPairDataset`` — in the case study that single entry is the
(acoustic features | G-code condition) dataset recorded from the
simulated printer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError, DataError, NotFittedError
from repro.flows.dataset import FlowPairDataset
from repro.gan.cgan import ConditionalGAN, default_generator
from repro.graph.architecture import CPPSArchitecture
from repro.graph.builder import GraphGenerationResult, generate
from repro.nn.layers import Dense
from repro.pipeline.config import GANSecConfig
from repro.security.report import SecurityReport, build_security_report
from repro.utils.rng import as_rng, spawn_rngs


@dataclass
class PairModel:
    """A trained model + split data for one flow pair."""

    pair_names: tuple
    cgan: ConditionalGAN
    train_set: FlowPairDataset
    test_set: FlowPairDataset
    report: SecurityReport | None = None


class GANSec:
    """End-to-end GAN-Sec analysis driver.

    Parameters
    ----------
    architecture:
        The design-time CPPS description.
    config:
        :class:`~repro.pipeline.config.GANSecConfig` (defaults are the
        case-study settings).
    """

    def __init__(
        self,
        architecture: CPPSArchitecture,
        config: GANSecConfig | None = None,
    ):
        self.architecture = architecture
        self.config = config or GANSecConfig()
        self.graph_result: GraphGenerationResult | None = None
        self.models: dict = {}
        self._rng = as_rng(self.config.seed)

    # -- step 1: Algorithm 1 -----------------------------------------------------
    def generate_graph(self, data: dict) -> GraphGenerationResult:
        """Run Algorithm 1 against the flows covered by *data*.

        *data* maps ``(first_flow, second_flow)`` name tuples to
        :class:`FlowPairDataset`; its keys define which flows have
        historical observations.
        """
        available = set()
        for first, second in data:
            available.add(first)
            available.add(second)
        self.graph_result = generate(self.architecture, available)
        return self.graph_result

    # -- step 2: Algorithm 2 -----------------------------------------------------
    def _build_cgan(self, feature_dim: int, condition_dim: int, seed) -> ConditionalGAN:
        cfg = self.config.cgan
        gen_layers = default_generator(feature_dim, hidden=cfg.generator_hidden)
        # default_discriminator has a fixed head; rebuild with config widths.
        disc_layers = [
            Dense(h, "leaky_relu", kernel_init="he_uniform")
            for h in cfg.discriminator_hidden
        ] + [Dense(1, "sigmoid")]
        return ConditionalGAN(
            feature_dim,
            condition_dim,
            noise_dim=cfg.noise_dim,
            generator_layers=gen_layers,
            discriminator_layers=disc_layers,
            generator_loss=cfg.generator_loss,
            learning_rate=cfg.learning_rate,
            seed=seed,
        )

    def train_models(self, data: dict, *, pairs=None) -> dict:
        """Train one CGAN per covered flow pair (Algorithm 2).

        Parameters
        ----------
        data:
            ``(F_i, F_j) name tuple -> FlowPairDataset``.
        pairs:
            Optional subset of name tuples to train; defaults to every
            key of *data* that survived Algorithm 1's pruning.

        Returns the mapping of pair names to :class:`PairModel`.
        """
        if self.graph_result is None:
            self.generate_graph(data)
        # The paper: "Each pair is then supplied to the CGAN to model
        # Pr(F_i|F_j) or Pr(F_j|F_i)" — Algorithm 1 orders pairs causally,
        # but either conditioning direction may be trained.
        trainable_names = set()
        for fp in self.graph_result.trainable_pairs:
            trainable_names.add(fp.names)
            trainable_names.add(fp.names[::-1])
        selected = pairs if pairs is not None else list(data.keys())
        cfg = self.config
        for names in selected:
            names = tuple(names)
            if names not in data:
                raise DataError(f"no dataset supplied for pair {names}")
            if names not in trainable_names:
                raise ConfigurationError(
                    f"pair {names} was pruned by Algorithm 1 (not reachable "
                    "or not covered by data); cannot train"
                )
            dataset = data[names]
            split_rng, train_rng, model_rng = spawn_rngs(self._rng, 3)
            train_set, test_set = dataset.split(
                cfg.analysis.test_fraction, seed=split_rng
            )
            cgan = self._build_cgan(
                dataset.feature_dim, dataset.condition_dim, model_rng
            )
            cgan.train(
                train_set,
                iterations=cfg.cgan.iterations,
                batch_size=cfg.cgan.batch_size,
                k_disc=cfg.cgan.k_disc,
                label_smoothing=cfg.cgan.label_smoothing,
                seed=train_rng,
            )
            self.models[names] = PairModel(
                pair_names=names,
                cgan=cgan,
                train_set=train_set,
                test_set=test_set,
            )
        return self.models

    # -- step 3: Algorithm 3 + reporting ------------------------------------------
    def analyze(self, pair_names=None) -> dict:
        """Run the security analysis for trained pairs.

        Returns ``pair names -> SecurityReport`` and caches each report
        on its :class:`PairModel`.
        """
        if not self.models:
            raise NotFittedError("train_models() must run before analyze()")
        targets = (
            [tuple(pair_names)] if pair_names is not None else list(self.models)
        )
        cfg = self.config.analysis
        reports = {}
        for names in targets:
            if names not in self.models:
                raise DataError(f"pair {names} has no trained model")
            model = self.models[names]
            report = build_security_report(
                model.cgan,
                model.test_set,
                pair_name=f"({names[0]} | {names[1]})",
                h=cfg.h,
                g_size=cfg.g_size,
                feature_indices=cfg.feature_indices,
                seed=self._rng,
            )
            model.report = report
            reports[names] = report
        return reports

    def run(self, data: dict) -> dict:
        """Convenience: graph → training → analysis in one call."""
        self.generate_graph(data)
        self.train_models(data)
        return self.analyze()

    # -- persistence ----------------------------------------------------------
    def save(self, directory) -> "Path":
        """Persist all trained pair models (CGAN + splits) to *directory*.

        Layout: one subdirectory per pair named ``<first>__<second>``
        holding the CGAN (see :func:`repro.gan.serialization.save_cgan`)
        and the train/test datasets.
        """
        from pathlib import Path

        from repro.flows.io import save_dataset
        from repro.gan.serialization import save_cgan

        if not self.models:
            raise NotFittedError("nothing to save: train_models() first")
        directory = Path(directory)
        for names, model in self.models.items():
            pair_dir = directory / f"{names[0]}__{names[1]}"
            save_cgan(model.cgan, pair_dir / "cgan")
            save_dataset(model.train_set, pair_dir / "train.npz")
            save_dataset(model.test_set, pair_dir / "test.npz")
        return directory

    def load(self, directory) -> dict:
        """Restore pair models saved by :meth:`save` into this pipeline."""
        from pathlib import Path

        from repro.errors import SerializationError
        from repro.flows.io import load_dataset
        from repro.gan.serialization import load_cgan

        directory = Path(directory)
        if not directory.is_dir():
            raise SerializationError(f"no such model directory: {directory}")
        loaded = {}
        for pair_dir in sorted(p for p in directory.iterdir() if p.is_dir()):
            if "__" not in pair_dir.name:
                continue
            first, second = pair_dir.name.split("__", 1)
            names = (first, second)
            loaded[names] = PairModel(
                pair_names=names,
                cgan=load_cgan(pair_dir / "cgan"),
                train_set=load_dataset(pair_dir / "train.npz"),
                test_set=load_dataset(pair_dir / "test.npz"),
            )
        if not loaded:
            raise SerializationError(f"no pair models found under {directory}")
        self.models.update(loaded)
        return loaded

    def summary(self) -> str:
        """Short textual overview of the whole pipeline state."""
        lines = [f"GANSec pipeline for architecture {self.architecture.name!r}"]
        if self.graph_result is not None:
            lines.append("  " + self.graph_result.summary())
        lines.append(f"  trained pairs: {len(self.models)}")
        for names, model in self.models.items():
            status = "analyzed" if model.report else "trained"
            lines.append(
                f"    {names}: {status}, train={len(model.train_set)}, "
                f"test={len(model.test_set)}"
            )
        return "\n".join(lines)
