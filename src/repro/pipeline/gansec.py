"""The GAN-Sec methodology end to end (paper Figure 4).

:class:`GANSec` chains the two model-generation steps and the analysis:

1. **Graph generation** (Algorithm 1): the design-time architecture is
   turned into ``G_CPPS``, candidate flow pairs are extracted by DFS
   reachability, and pruned to the pairs covered by historical data.
2. **CGAN model generation** (Algorithm 2): one conditional GAN is
   trained per trainable flow pair from its aligned dataset.  Pairs are
   independent, so training fans out over the :mod:`repro.runtime`
   executors (``workers=`` / ``executor=``) with per-pair RNG streams
   derived from the pipeline seed and pair key alone — parallel runs
   are bitwise-identical to serial ones.  Per-pair failures are
   isolated: every pair is attempted, successes are kept, and a single
   :class:`~repro.errors.PairTrainingError` aggregates the failures.
3. **Security analysis** (Algorithm 3 + attack models): likelihood
   metrics, side-channel leakage, and a designer-facing report per pair.

The historical data is supplied as a
:class:`~repro.pipeline.pairs.PairDataRegistry` (or, deprecated, a
plain ``(F_i name, F_j name) -> FlowPairDataset`` dict) — in the case
study that single entry is the (acoustic features | G-code condition)
dataset recorded from the simulated printer.
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass

from repro.errors import (
    ConfigurationError,
    DataError,
    NotFittedError,
    PairTrainingError,
)
from repro.flows.dataset import FlowPairDataset
from repro.gan.cgan import ConditionalGAN
from repro.graph.architecture import CPPSArchitecture
from repro.graph.builder import GraphGenerationResult, generate
from repro.pipeline.config import GANSecConfig
from repro.pipeline.pairs import FlowPairKey, PairDataRegistry, as_pair_key
from repro.runtime.events import (
    EpochProgress,
    EventBus,
    PairFailed,
    PairTrained,
    TrainingFinished,
    TrainingStarted,
)
from repro.runtime.analysis import ConditionSampleCache
from repro.runtime.executors import get_executor
from repro.runtime.training import (
    PairTrainingJob,
    build_pair_cgan,
    run_training_job,
)
from repro.security.report import SecurityReport, build_security_report
from repro.utils.rng import as_rng, derive_rngs, fresh_entropy

#: Pair-directory names that are safe to build from raw flow names; any
#: other name goes through the indexed layout + manifest.json.
_SAFE_NAME = re.compile(r"^[A-Za-z0-9][A-Za-z0-9 .\-]*$")
_MANIFEST_NAME = "manifest.json"


@dataclass
class PairModel:
    """A trained model + split data for one flow pair."""

    pair_names: FlowPairKey
    cgan: ConditionalGAN
    train_set: FlowPairDataset
    test_set: FlowPairDataset
    report: SecurityReport | None = None

    @property
    def key(self) -> FlowPairKey:
        return self.pair_names


class GANSec:
    """End-to-end GAN-Sec analysis driver.

    Parameters
    ----------
    architecture:
        The design-time CPPS description.
    config:
        :class:`~repro.pipeline.config.GANSecConfig` (defaults are the
        case-study settings).
    """

    def __init__(
        self,
        architecture: CPPSArchitecture,
        config: GANSecConfig | None = None,
    ):
        self.architecture = architecture
        self.config = config or GANSecConfig()
        self.graph_result: GraphGenerationResult | None = None
        self.models: dict[FlowPairKey, PairModel] = {}
        self._rng = as_rng(self.config.seed)
        # Root entropy for the schedule-independent per-pair seed
        # fan-out (see repro.utils.rng.derive_rngs).
        if isinstance(self.config.seed, int):
            self._root_entropy = int(self.config.seed)
        else:
            self._root_entropy = fresh_entropy()
        # Generated-sample LRU shared across analyze() calls: repeated
        # analyses (e.g. h sweeps) reuse each condition's draw because
        # the cache key excludes the Parzen bandwidth.
        self._sample_cache = ConditionSampleCache(
            max_entries=self.config.sample_cache_entries
        )

    @property
    def root_entropy(self) -> int:
        """Root of the schedule-independent per-pair/per-job RNG fan-out.

        Equals the configured seed when that is an int, so external
        consumers (e.g. the staged experiment's split re-derivation)
        can reproduce any derived stream.
        """
        return self._root_entropy

    # -- step 1: Algorithm 1 -----------------------------------------------------
    def generate_graph(self, data) -> GraphGenerationResult:
        """Run Algorithm 1 against the flows covered by *data*.

        *data* is a :class:`~repro.pipeline.pairs.PairDataRegistry`
        (or legacy tuple-keyed dict); its keys define which flows have
        historical observations.
        """
        registry = PairDataRegistry.coerce(data)
        self.graph_result = generate(self.architecture, registry.flow_names())
        return self.graph_result

    # -- step 2: Algorithm 2 -----------------------------------------------------
    def _build_cgan(self, feature_dim: int, condition_dim: int, seed) -> ConditionalGAN:
        return build_pair_cgan(self.config.cgan, feature_dim, condition_dim, seed)

    def _trainable_name_pairs(self) -> set:
        # The paper: "Each pair is then supplied to the CGAN to model
        # Pr(F_i|F_j) or Pr(F_j|F_i)" — Algorithm 1 orders pairs causally,
        # but either conditioning direction may be trained.
        trainable = set()
        for fp in self.graph_result.trainable_pairs:
            trainable.add(fp.names)
            trainable.add(fp.names[::-1])
        return trainable

    def train_models(
        self,
        data,
        *,
        pairs=None,
        workers: int | None = None,
        executor=None,
        bus: EventBus | None = None,
        checkpoint_plan: dict | None = None,
    ) -> dict[FlowPairKey, PairModel]:
        """Train one CGAN per covered flow pair (Algorithm 2).

        Parameters
        ----------
        data:
            :class:`~repro.pipeline.pairs.PairDataRegistry` (or legacy
            ``(F_i, F_j) name tuple -> FlowPairDataset`` dict).
        pairs:
            Optional subset of pair keys to train; defaults to every
            registered pair that survived Algorithm 1's pruning.
        workers:
            Worker count for the pair fan-out; defaults to
            ``config.workers``.  Results are identical for any value.
        executor:
            ``"serial"`` / ``"thread"`` / ``"process"``, an
            :class:`~repro.runtime.executors.Executor` instance, or
            ``None`` to pick from ``config.executor`` / *workers*.
        bus:
            Optional :class:`~repro.runtime.events.EventBus` receiving
            the structured training events.
        checkpoint_plan:
            Optional ``pair key ->``
            :class:`~repro.runtime.training.CheckpointSpec` mapping
            enabling periodic crash-recovery checkpoints for those
            pairs: a valid existing checkpoint is resumed from, and the
            continued run is bitwise-identical to an uninterrupted one.

        Returns the mapping of pair keys to :class:`PairModel`.

        Raises
        ------
        PairTrainingError
            If one or more pairs failed during training.  Raised only
            after every pair was attempted; successful models are kept
            on :attr:`models`.
        """
        registry = PairDataRegistry.coerce(data)
        if self.graph_result is None:
            self.generate_graph(registry)
        trainable_names = self._trainable_name_pairs()
        if pairs is not None:
            selected = [as_pair_key(p) for p in pairs]
        else:
            selected = registry.keys()
        for key in selected:
            if key not in registry:
                raise DataError(f"no dataset supplied for pair {key.as_tuple()}")
            if key not in trainable_names:
                raise ConfigurationError(
                    f"pair {key.as_tuple()} was pruned by Algorithm 1 (not "
                    "reachable or not covered by data); cannot train"
                )

        cfg = self.config
        if workers is None:
            workers = cfg.workers
        exec_obj = get_executor(
            executor if executor is not None else cfg.executor, workers
        )
        bus = bus if bus is not None else EventBus()
        checkpoint_plan = checkpoint_plan or {}
        jobs = [
            PairTrainingJob(
                key=key,
                dataset=registry[key],
                cgan=cfg.cgan,
                test_fraction=cfg.analysis.test_fraction,
                root_entropy=self._root_entropy,
                index=i,
                total=len(selected),
                progress_every=cfg.progress_every or None,
                checkpoint=checkpoint_plan.get(key),
            )
            for i, key in enumerate(selected)
        ]

        start = time.perf_counter()
        bus.emit(
            TrainingStarted(
                total_pairs=len(jobs),
                executor=getattr(exec_obj, "name", type(exec_obj).__name__),
                workers=getattr(exec_obj, "workers", 1),
            )
        )

        def _emit_progress(pair, iteration, total, d_loss, g_loss):
            bus.emit(
                EpochProgress(
                    pair=pair,
                    iteration=iteration,
                    total_iterations=total,
                    d_loss=d_loss,
                    g_loss=g_loss,
                )
            )

        if exec_obj.in_process:
            def fn(job):
                pair = str(job.key)
                return run_training_job(
                    job,
                    emit=lambda it, tot, d, g: _emit_progress(pair, it, tot, d, g),
                )
        else:
            # Jobs are shipped to worker processes: the mapped function
            # must be picklable, and progress is replayed afterwards.
            fn = run_training_job

        outcomes = exec_obj.map_pairs(fn, jobs)

        failures: dict = {}
        completed: list = []
        for job, outcome in zip(jobs, outcomes):
            if not exec_obj.in_process:
                for it, tot, d_loss, g_loss in outcome.progress:
                    _emit_progress(str(job.key), it, tot, d_loss, g_loss)
            if outcome.ok:
                self.models[job.key] = PairModel(
                    pair_names=job.key,
                    cgan=outcome.cgan,
                    train_set=outcome.train_set,
                    test_set=outcome.test_set,
                )
                completed.append(job.key)
                final = outcome.cgan.history.final()
                bus.emit(
                    PairTrained(
                        pair=str(job.key),
                        index=job.index,
                        total_pairs=job.total,
                        seconds=outcome.seconds,
                        train_size=len(outcome.train_set),
                        test_size=len(outcome.test_set),
                        final_d_loss=float(final["d_loss"]),
                        final_g_loss=float(final["g_loss"]),
                    )
                )
            else:
                failures[job.key] = outcome.error
                bus.emit(
                    PairFailed(
                        pair=str(job.key),
                        index=job.index,
                        total_pairs=job.total,
                        seconds=outcome.seconds,
                        error=outcome.error,
                    )
                )
        bus.emit(
            TrainingFinished(
                trained=len(completed),
                failed=len(failures),
                seconds=time.perf_counter() - start,
            )
        )
        if failures:
            raise PairTrainingError(failures, completed=completed)
        return self.models

    # -- step 3: Algorithm 3 + reporting ------------------------------------------
    def analyze(
        self,
        pair_names=None,
        *,
        workers: int | None = None,
        executor=None,
        bus: EventBus | None = None,
        chunk_size: int | None = None,
    ) -> dict[FlowPairKey, SecurityReport]:
        """Run the security analysis for trained pairs.

        The Algorithm 3 likelihood tables for every selected pair are
        computed by the parallel engine
        (:func:`repro.security.engine.run_security_analysis`): one job
        per (pair, condition), fanned out over the same executors as
        training, with blocked Parzen scoring and a generated-sample
        cache that persists across repeated ``analyze()`` calls.  The
        per-job RNG streams derive from the pipeline seed and the
        (pair, condition) identity alone, so any *workers* / *executor*
        choice yields bitwise-identical reports.

        Parameters
        ----------
        workers:
            Worker count for the analysis fan-out; defaults to
            ``config.analysis_workers``.
        executor:
            ``"serial"`` / ``"thread"`` / ``"process"``, an executor
            instance, or ``None`` to pick from *workers*.
        bus:
            Optional :class:`~repro.runtime.events.EventBus` receiving
            ``AnalysisStarted`` / ``ConditionScored`` /
            ``AnalysisCompleted`` events.
        chunk_size:
            Test rows per scoring block; defaults to
            ``config.analysis.chunk_size`` (``None`` = memory-budget
            derived).

        Returns ``pair key -> SecurityReport`` and caches each report
        on its :class:`PairModel`.
        """
        from repro.security.engine import AnalysisTarget, run_security_analysis

        if not self.models:
            raise NotFittedError("train_models() must run before analyze()")
        if pair_names is not None:
            targets = [as_pair_key(pair_names)]
        else:
            targets = list(self.models)
        cfg = self.config.analysis
        for key in targets:
            if key not in self.models:
                raise DataError(f"pair {key.as_tuple()} has no trained model")
        if workers is None:
            workers = self.config.analysis_workers
        if chunk_size is None:
            chunk_size = cfg.chunk_size
        likelihoods = run_security_analysis(
            [
                AnalysisTarget(
                    key=key,
                    sampler=self.models[key].cgan,
                    test_set=self.models[key].test_set,
                    feature_indices=cfg.feature_indices,
                    label=str(key),
                )
                for key in targets
            ],
            h=cfg.h,
            g_size=cfg.g_size,
            root_entropy=self._root_entropy,
            executor=executor,
            workers=workers,
            bus=bus,
            chunk_size=chunk_size,
            cache=self._sample_cache,
        )
        reports: dict[FlowPairKey, SecurityReport] = {}
        for key in targets:
            model = self.models[key]
            # One schedule-independent stream per pair, like training.
            (report_rng,) = derive_rngs(
                self._root_entropy, ("analyze", key.first, key.second), 1
            )
            report = build_security_report(
                model.cgan,
                model.test_set,
                pair_name=key.label(),
                h=cfg.h,
                g_size=cfg.g_size,
                feature_indices=cfg.feature_indices,
                seed=report_rng,
                likelihood=likelihoods[key],
            )
            model.report = report
            reports[key] = report
        return reports

    def run(
        self,
        data,
        *,
        workers: int | None = None,
        executor=None,
        bus: EventBus | None = None,
        analysis_workers: int | None = None,
    ) -> dict[FlowPairKey, SecurityReport]:
        """Convenience: graph → training → analysis in one call.

        *workers* / *executor* drive the Algorithm 2 training fan-out;
        *analysis_workers* (defaulting to ``config.analysis_workers``)
        drives the Algorithm 3 fan-out.  The shared *bus* receives both
        stages' events — including the ``StageStarted`` /
        ``StageCompleted`` lifecycle of the three Figure 4 steps, which
        run as an ephemeral (in-memory, never-skipping)
        :class:`~repro.pipeline.rungraph.RunGraph`.  The persistent,
        resumable variant of this graph is
        :func:`repro.pipeline.experiment.run_experiment`.
        """
        from repro.pipeline.rungraph import RunGraph, Stage

        registry = PairDataRegistry.coerce(data)
        reports: dict[FlowPairKey, SecurityReport] = {}

        def run_graph_stage(_ctx):
            self.generate_graph(registry)
            return {}, {"trainable_pairs": len(self.graph_result.trainable_pairs)}

        def run_train_stage(_ctx):
            self.train_models(registry, workers=workers, executor=executor, bus=bus)
            return {}, {"trained": len(self.models)}

        def run_analyze_stage(_ctx):
            reports.update(
                self.analyze(workers=analysis_workers, executor=executor, bus=bus)
            )
            return {}, {"analyzed": len(reports)}

        graph = RunGraph(
            [
                Stage("graph", run=run_graph_stage),
                Stage("train", run=run_train_stage, deps=("graph",)),
                Stage("analyze", run=run_analyze_stage, deps=("train",)),
            ],
            store=None,
            manifest=None,
            bus=bus,
            resume=False,
        )
        graph.execute(None)
        return reports

    # -- persistence ----------------------------------------------------------
    @staticmethod
    def _pair_dirname(index: int, key: FlowPairKey) -> str:
        """Directory name for one pair: readable when safe, indexed otherwise.

        Flow names containing ``__`` (the legacy separator), path
        metacharacters, or anything else hostile get a neutral
        ``pair_NNNN`` directory; identity always lives in the manifest.
        """
        if _SAFE_NAME.match(key.first) and _SAFE_NAME.match(key.second):
            return f"{key.first}__{key.second}"
        return f"pair_{index:04d}"

    def save(self, directory) -> "Path":
        """Persist all trained pair models (CGAN + splits) to *directory*.

        Layout: one subdirectory per pair holding a ``manifest.json``
        (the authoritative pair identity), the CGAN (see
        :func:`repro.gan.serialization.save_cgan`), and the train/test
        datasets.  Directory names are only cosmetic: hostile flow
        names (e.g. containing ``__``) fall back to ``pair_NNNN``.
        """
        import json
        from pathlib import Path

        from repro.flows.io import save_dataset
        from repro.gan.serialization import save_cgan

        if not self.models:
            raise NotFittedError("nothing to save: train_models() first")
        directory = Path(directory)
        for index, (key, model) in enumerate(self.models.items()):
            pair_dir = directory / self._pair_dirname(index, key)
            pair_dir.mkdir(parents=True, exist_ok=True)
            (pair_dir / _MANIFEST_NAME).write_text(
                json.dumps(
                    {"version": 1, "first": key.first, "second": key.second},
                    indent=2,
                )
            )
            save_cgan(model.cgan, pair_dir / "cgan")
            save_dataset(model.train_set, pair_dir / "train.npz")
            save_dataset(model.test_set, pair_dir / "test.npz")
        return directory

    def load(self, directory) -> dict[FlowPairKey, PairModel]:
        """Restore pair models saved by :meth:`save` into this pipeline.

        Pair identity is read from each subdirectory's ``manifest.json``;
        directories written by older versions (no manifest, names
        encoded as ``<first>__<second>``) are still understood.
        """
        import json
        from pathlib import Path

        from repro.errors import SerializationError
        from repro.flows.io import load_dataset
        from repro.gan.serialization import load_cgan

        directory = Path(directory)
        if not directory.is_dir():
            raise SerializationError(f"no such model directory: {directory}")
        loaded: dict[FlowPairKey, PairModel] = {}
        for pair_dir in sorted(p for p in directory.iterdir() if p.is_dir()):
            manifest_path = pair_dir / _MANIFEST_NAME
            if manifest_path.exists():
                try:
                    manifest = json.loads(manifest_path.read_text())
                    key = FlowPairKey(manifest["first"], manifest["second"])
                except (json.JSONDecodeError, KeyError, TypeError) as exc:
                    raise SerializationError(
                        f"corrupt pair manifest at {manifest_path}: {exc}"
                    ) from exc
            elif "__" in pair_dir.name:
                # Legacy layout: identity encoded in the directory name.
                first, second = pair_dir.name.split("__", 1)
                key = FlowPairKey(first, second)
            else:
                continue
            loaded[key] = PairModel(
                pair_names=key,
                cgan=load_cgan(pair_dir / "cgan"),
                train_set=load_dataset(pair_dir / "train.npz"),
                test_set=load_dataset(pair_dir / "test.npz"),
            )
        if not loaded:
            raise SerializationError(f"no pair models found under {directory}")
        self.models.update(loaded)
        return loaded

    def summary(self) -> str:
        """Short textual overview of the whole pipeline state."""
        lines = [f"GANSec pipeline for architecture {self.architecture.name!r}"]
        if self.graph_result is not None:
            lines.append("  " + self.graph_result.summary())
        lines.append(f"  trained pairs: {len(self.models)}")
        for key, model in self.models.items():
            status = "analyzed" if model.report else "trained"
            lines.append(
                f"    {key}: {status}, train={len(model.train_set)}, "
                f"test={len(model.test_set)}"
            )
        return "\n".join(lines)
