"""Algorithm 1: CPPS graph and flow-pair generation.

Given the design-time architecture (sub-systems, components, flows) and
the available historical data, this module

1. builds the directed graph ``G_CPPS`` whose nodes are components and
   whose edges are the declared flows (paper Lines 1–10),
2. removes feedback loops so flows are causally ordered (Line 3),
3. extracts candidate flow pairs ``FP_F``: ``(F_1, F_2)`` such that the
   head of ``F_2`` is DFS-reachable from the tail of ``F_1``
   (Lines 11–14), and
4. prunes to ``FP_T``, the pairs covered by historical data
   (Lines 15–17) — only those can be modeled by the CGAN.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.errors import ArchitectureError
from repro.flows.base import FlowPair
from repro.graph.architecture import CPPSArchitecture
from repro.graph.reachability import dfs_reachable, remove_feedback_edges

#: Edge attribute under which the flow spec is stored in G_CPPS.
FLOW_ATTR = "flow"


@dataclass
class GraphGenerationResult:
    """Everything Algorithm 1 produces.

    Attributes
    ----------
    graph:
        ``G_CPPS`` as a :class:`networkx.MultiDiGraph` (components may be
        linked by both a signal and an energy flow, so parallel edges are
        required); every edge carries its :class:`FlowSpec` under
        :data:`FLOW_ATTR`.
    dag:
        The acyclic reduction used for reachability.
    removed_edges:
        Feedback edges removed in Line 3, as (source, target) tuples.
    candidate_pairs:
        ``FP_F`` — reachability-filtered flow pairs.
    trainable_pairs:
        ``FP_T`` — pairs also covered by historical data.
    """

    graph: nx.MultiDiGraph
    dag: nx.DiGraph
    removed_edges: list
    candidate_pairs: list = field(default_factory=list)
    trainable_pairs: list = field(default_factory=list)

    def pair(self, first_name: str, second_name: str) -> FlowPair:
        """Look up a trainable pair by flow names."""
        for fp in self.trainable_pairs:
            if fp.names == (first_name, second_name):
                return fp
        raise ArchitectureError(
            f"no trainable pair ({first_name!r} | {second_name!r})"
        )

    def cross_domain_pairs(self) -> list:
        """The cross-domain subset of FP_T (the case study's selection)."""
        return [fp for fp in self.trainable_pairs if fp.is_cross_domain]

    def summary(self) -> str:
        """One-paragraph textual summary (used by benches and reports)."""
        return (
            f"G_CPPS: {self.graph.number_of_nodes()} nodes, "
            f"{self.graph.number_of_edges()} flow edges; "
            f"{len(self.removed_edges)} feedback edge(s) removed; "
            f"{len(self.candidate_pairs)} candidate pair(s) (FP_F), "
            f"{len(self.trainable_pairs)} trainable pair(s) (FP_T)"
        )


def build_graph(architecture: CPPSArchitecture) -> nx.MultiDiGraph:
    """Lines 1–10 of Algorithm 1: components become nodes, flows edges."""
    architecture.validate()
    graph = nx.MultiDiGraph(name=architecture.name)
    for sub in architecture.subsystems.values():
        for comp in sub.components:
            graph.add_node(
                comp.name,
                domain=comp.domain.value,
                label=comp.label,
                subsystem=sub.name,
                external=comp.external,
            )
    for flow in architecture.flows.values():
        graph.add_edge(flow.source, flow.target, key=flow.name, **{FLOW_ATTR: flow})
    return graph


def _collapse_to_digraph(graph: nx.MultiDiGraph) -> nx.DiGraph:
    """Simple digraph with the same node set and edge directions."""
    simple = nx.DiGraph()
    simple.add_nodes_from(graph.nodes(data=True))
    simple.add_edges_from((u, v) for u, v, _k in graph.edges(keys=True))
    return simple


def extract_flow_pairs(
    graph: nx.MultiDiGraph,
    *,
    dag: nx.DiGraph | None = None,
) -> list:
    """Lines 11–14: all ordered pairs ``(F_1, F_2)`` of distinct flows
    where the head (target) of ``F_2`` is reachable from the tail
    (source) of ``F_1`` in the feedback-free graph."""
    if dag is None:
        dag, _removed = remove_feedback_edges(_collapse_to_digraph(graph))
    flows = [data[FLOW_ATTR] for _u, _v, data in graph.edges(data=True)]
    reach_cache = {}
    pairs = []
    for f1 in flows:
        if f1.source not in reach_cache:
            reach_cache[f1.source] = dfs_reachable(dag, f1.source)
        reachable = reach_cache[f1.source]
        for f2 in flows:
            if f2.name == f1.name:
                continue
            if f2.target in reachable:
                pairs.append(FlowPair(first=f1, second=f2))
    return pairs


def prune_pairs_by_data(pairs, available_flows) -> list:
    """Lines 15–17: keep pairs whose *both* flows have historical data.

    *available_flows* is a set of flow names (or anything supporting
    ``in``) describing which flows were actually observed.
    """
    out = []
    for fp in pairs:
        if fp.first.name in available_flows and fp.second.name in available_flows:
            out.append(fp)
    return out


def generate(
    architecture: CPPSArchitecture,
    available_flows=(),
) -> GraphGenerationResult:
    """Run the full Algorithm 1 and return a :class:`GraphGenerationResult`.

    Parameters
    ----------
    architecture:
        The design-time CPPS description.
    available_flows:
        Names of flows with historical data; pairs not covered are pruned
        from ``FP_T`` (``FP_F`` keeps all reachable pairs).
    """
    graph = build_graph(architecture)
    dag, removed = remove_feedback_edges(_collapse_to_digraph(graph))
    candidate = extract_flow_pairs(graph, dag=dag)
    trainable = prune_pairs_by_data(candidate, set(available_flows))
    return GraphGenerationResult(
        graph=graph,
        dag=dag,
        removed_edges=removed,
        candidate_pairs=candidate,
        trainable_pairs=trainable,
    )
