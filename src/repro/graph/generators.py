"""Synthetic CPPS architecture generators.

For scalability experiments and property-based testing, these build
random-but-plausible factory architectures: layered sub-systems with
cyber controllers driving physical actuators, intra- and inter-subsystem
signal/energy flows, and unintentional emissions into a shared
environment — the Figure 1 topology at arbitrary scale.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.flows.base import EnergyForm
from repro.graph.architecture import CPPSArchitecture
from repro.graph.components import SubSystem, cyber, physical
from repro.utils.rng import as_rng


def random_factory(
    n_subsystems: int = 4,
    *,
    cyber_per_subsystem: int = 2,
    physical_per_subsystem: int = 3,
    emission_probability: float = 0.6,
    cross_link_probability: float = 0.5,
    seed=None,
) -> CPPSArchitecture:
    """Generate a layered random factory architecture.

    Every sub-system gets a chain of cyber controllers feeding its
    physical actuators; consecutive sub-systems are linked by a signal
    flow (scheduling) and, with *cross_link_probability*, a material
    flow; each physical component emits into the environment with
    *emission_probability*.  The result always validates and is always
    connected, so Algorithm 1 runs on it without special-casing.
    """
    if n_subsystems < 1:
        raise ConfigurationError(f"n_subsystems must be >= 1, got {n_subsystems}")
    if cyber_per_subsystem < 1 or physical_per_subsystem < 1:
        raise ConfigurationError("need >= 1 cyber and physical component each")
    if not 0.0 <= emission_probability <= 1.0:
        raise ConfigurationError("emission_probability must be in [0, 1]")
    if not 0.0 <= cross_link_probability <= 1.0:
        raise ConfigurationError("cross_link_probability must be in [0, 1]")
    rng = as_rng(seed)
    arch = CPPSArchitecture(f"factory-{n_subsystems}")

    env = SubSystem("environment")
    env.add(physical("ENV", "shared environment", external=True))
    arch.add_subsystem(env)

    flow_id = 0

    def next_flow() -> str:
        nonlocal flow_id
        flow_id += 1
        return f"F{flow_id}"

    first_cyber = []
    last_physical = []
    for si in range(n_subsystems):
        sub = SubSystem(f"sub{si}")
        cy = [cyber(f"S{si}C{ci}") for ci in range(cyber_per_subsystem)]
        ph = [physical(f"S{si}P{pi}") for pi in range(physical_per_subsystem)]
        for comp in cy + ph:
            sub.add(comp)
        arch.add_subsystem(sub)
        first_cyber.append(cy[0].name)
        last_physical.append(ph[-1].name)
        # Cyber chain.
        for a, b in zip(cy, cy[1:]):
            arch.add_signal_flow(next_flow(), a.name, b.name)
        # Last controller drives every actuator.
        for p in ph:
            arch.add_energy_flow(
                next_flow(), cy[-1].name, p.name, form=EnergyForm.ELECTRICAL
            )
        # Emissions.
        for p in ph:
            if rng.random() < emission_probability:
                arch.add_energy_flow(
                    next_flow(),
                    p.name,
                    "ENV",
                    form=EnergyForm.ACOUSTIC,
                    intentional=False,
                )
    # Inter-subsystem links.
    for si in range(n_subsystems - 1):
        arch.add_signal_flow(
            next_flow(), first_cyber[si], first_cyber[si + 1]
        )
        if rng.random() < cross_link_probability:
            arch.add_energy_flow(
                next_flow(),
                last_physical[si],
                last_physical[si + 1],
                form=EnergyForm.MATERIAL,
            )
    # Guarantee the environment is never isolated.
    if not any(f.target == "ENV" for f in arch.flows.values()):
        arch.add_energy_flow(
            next_flow(),
            last_physical[-1],
            "ENV",
            form=EnergyForm.ACOUSTIC,
            intentional=False,
        )
    return arch
