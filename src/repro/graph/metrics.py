"""Graph-level security metrics on ``G_CPPS``.

Section II poses questions like "Can F9 be used to monitor any attacks
in the integrity of the flow path from node C1 to P5?".  These metrics
answer the *structural* half of such questions straight from the graph,
before any CGAN is trained:

* **attack surface** — which components an external cyber node can
  influence through directed flows (the kinetic-cyber reach);
* **emission exposure** — which components leak, directly or
  transitively, into unintentional emission flows (the side-channel
  reach);
* **monitoring coverage** — which flow paths are observable by a given
  set of monitored emission flows, i.e. whether a detector built on
  those emissions *can* see an integrity attack on a path at all.

The CGAN then quantifies *how much* each structurally-possible leak or
detection opportunity actually carries; these metrics tell the designer
where to point it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.errors import ArchitectureError
from repro.graph.builder import FLOW_ATTR
from repro.graph.reachability import dfs_reachable


def _flows(graph: nx.MultiDiGraph):
    return [data[FLOW_ATTR] for _u, _v, data in graph.edges(data=True)]


def attack_surface(graph: nx.MultiDiGraph, entry: str) -> set:
    """Components reachable from the *entry* node via directed flows.

    For the printer, ``attack_surface(G, "C4")`` is every component a
    malicious G-code stream can influence — the kinetic-cyber blast
    radius of the external interface.
    """
    if entry not in graph:
        raise ArchitectureError(f"unknown entry node {entry!r}")
    reach = dfs_reachable(graph, entry)
    reach.discard(entry)
    return reach


def emission_exposure(graph: nx.MultiDiGraph) -> dict:
    """Map each component to the unintentional emission flows it feeds.

    A component is *exposed* through emission flow ``F`` if ``F``'s
    source is reachable from the component (its activity propagates into
    the emission).  Exposed components are side-channel observable.
    """
    emissions = [
        f for f in _flows(graph) if f.is_energy and not f.intentional
    ]
    exposure = {node: [] for node in graph.nodes}
    for node in graph.nodes:
        reach = dfs_reachable(graph, node)
        for flow in emissions:
            if flow.source in reach:
                exposure[node].append(flow.name)
    return exposure


def path_flows(graph: nx.MultiDiGraph, source: str, target: str) -> list:
    """All flows lying on any simple directed path ``source -> target``.

    These are the flows whose integrity matters for that path — the
    candidates an attacker would tamper with.
    """
    for node in (source, target):
        if node not in graph:
            raise ArchitectureError(f"unknown node {node!r}")
    simple = nx.DiGraph()
    simple.add_nodes_from(graph.nodes)
    simple.add_edges_from((u, v) for u, v, _k in graph.edges(keys=True))
    on_path_edges = set()
    for path in nx.all_simple_paths(simple, source, target):
        on_path_edges.update(zip(path, path[1:]))
    out = []
    for u, v, data in graph.edges(data=True):
        if (u, v) in on_path_edges:
            out.append(data[FLOW_ATTR])
    return out


@dataclass
class MonitoringReport:
    """Observability of a path by a set of monitored emissions.

    Attributes
    ----------
    path_source, path_target:
        Endpoints of the analyzed flow path.
    monitored:
        Names of the monitored emission flows.
    observable_nodes:
        Path-relevant components whose activity reaches some monitored
        emission.
    blind_nodes:
        Path-relevant components invisible to every monitored emission.
    """

    path_source: str
    path_target: str
    monitored: list
    observable_nodes: list = field(default_factory=list)
    blind_nodes: list = field(default_factory=list)

    @property
    def coverage(self) -> float:
        total = len(self.observable_nodes) + len(self.blind_nodes)
        return len(self.observable_nodes) / total if total else 0.0

    def summary(self) -> str:
        return (
            f"path {self.path_source}->{self.path_target}: "
            f"{self.coverage:.0%} of path components observable via "
            f"{self.monitored} (blind: {self.blind_nodes or 'none'})"
        )


def monitoring_coverage(
    graph: nx.MultiDiGraph,
    source: str,
    target: str,
    monitored_flows,
) -> MonitoringReport:
    """Can the *monitored_flows* observe an attack on ``source->target``?

    A path component is observable if its activity reaches the source of
    a monitored emission flow (so tampering with it perturbs what the
    monitor hears).  This answers the paper's "Can F9 be used to monitor
    any attacks in the integrity of the flow path from C1 to P5?" at the
    structural level.
    """
    monitored = set(monitored_flows)
    flow_by_name = {f.name: f for f in _flows(graph)}
    unknown = monitored - set(flow_by_name)
    if unknown:
        raise ArchitectureError(f"unknown monitored flows: {sorted(unknown)}")

    flows_on_path = path_flows(graph, source, target)
    if not flows_on_path:
        raise ArchitectureError(f"no directed path {source!r} -> {target!r}")
    path_nodes = {f.source for f in flows_on_path} | {
        f.target for f in flows_on_path
    }

    observable, blind = [], []
    for node in sorted(path_nodes):
        reach = dfs_reachable(graph, node)
        seen = any(
            flow_by_name[name].source in reach for name in monitored
        )
        (observable if seen else blind).append(node)
    return MonitoringReport(
        path_source=source,
        path_target=target,
        monitored=sorted(monitored),
        observable_nodes=observable,
        blind_nodes=blind,
    )


def cross_domain_cut(graph: nx.MultiDiGraph) -> list:
    """Flows crossing the cyber/physical boundary.

    These edges are the CPPS's cross-domain interface — every
    kinetic-cyber attack and every side channel traverses at least one
    of them, so they are the natural place for monitors and guards.
    """
    out = []
    for u, v, data in graph.edges(data=True):
        if graph.nodes[u].get("domain") != graph.nodes[v].get("domain"):
            out.append(data[FLOW_ATTR])
    return out
