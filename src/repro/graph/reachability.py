"""Graph algorithms supporting Algorithm 1: DFS reachability and
feedback-loop removal.

Algorithm 1 Line 3 "removes feedback loops to make signal/energy flows
directed": G_CPPS must be a DAG before flow-pair extraction so that
"head of F2 reachable from tail of F1" expresses causal ordering.  We
break cycles with a deterministic greedy heuristic (remove the last edge
closing each cycle found in DFS order), which matches the paper's
intent without needing the (NP-hard) minimum feedback arc set.
"""

from __future__ import annotations

import networkx as nx

from repro.errors import ArchitectureError


def dfs_reachable(graph: nx.DiGraph, source: str) -> set:
    """All nodes reachable from *source* by directed paths (including it)."""
    if source not in graph:
        raise ArchitectureError(f"node {source!r} not in graph")
    seen = {source}
    stack = [source]
    while stack:
        node = stack.pop()
        for nxt in graph.successors(node):
            if nxt not in seen:
                seen.add(nxt)
                stack.append(nxt)
    return seen


def is_reachable(graph: nx.DiGraph, source: str, target: str) -> bool:
    """True if *target* is reachable from *source* (DFS, as Algorithm 1)."""
    if target not in graph:
        raise ArchitectureError(f"node {target!r} not in graph")
    return target in dfs_reachable(graph, source)


def remove_feedback_edges(graph: nx.DiGraph) -> tuple:
    """Return ``(dag, removed_edges)`` with cycles broken deterministically.

    Iteratively finds a cycle and removes its final edge until the graph
    is acyclic.  The input graph is not modified.
    """
    dag = graph.copy()
    removed = []
    while True:
        try:
            cycle = nx.find_cycle(dag, orientation="original")
        except nx.NetworkXNoCycle:
            break
        # Remove the lexicographically largest edge of the cycle so the
        # result does not depend on networkx's internal iteration order.
        edge = max((u, v) for u, v, _dir in cycle)
        dag.remove_edge(*edge)
        removed.append(edge)
    return dag, removed


def assert_dag(graph: nx.DiGraph) -> None:
    """Raise :class:`ArchitectureError` if *graph* still has a cycle."""
    if not nx.is_directed_acyclic_graph(graph):
        cycle = nx.find_cycle(graph, orientation="original")
        raise ArchitectureError(f"graph contains a cycle: {cycle}")
