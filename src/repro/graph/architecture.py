"""Design-time CPPS architecture description.

:class:`CPPSArchitecture` is the input to Algorithm 1: the sub-systems,
their cyber/physical components, and the declared signal and energy
flows among them.  It performs referential-integrity checks (every flow
endpoint must be a declared component; flow names are unique) so that
graph construction downstream can assume a well-formed description.
"""

from __future__ import annotations

from repro.errors import ArchitectureError
from repro.flows.base import EnergyForm, FlowKind, FlowSpec
from repro.graph.components import Component, SubSystem


class CPPSArchitecture:
    """Sub-systems + components + declared flows of one CPPS."""

    def __init__(self, name: str = "cpps"):
        if not name:
            raise ArchitectureError("architecture name must be non-empty")
        self.name = name
        self.subsystems: dict = {}
        self.flows: dict = {}

    # -- construction ---------------------------------------------------------
    def add_subsystem(self, subsystem: SubSystem) -> "CPPSArchitecture":
        """Register a sub-system; component names must be globally unique."""
        if subsystem.name in self.subsystems:
            raise ArchitectureError(f"duplicate sub-system {subsystem.name!r}")
        existing = self.component_names()
        clash = existing & subsystem.component_names()
        if clash:
            raise ArchitectureError(
                f"components {sorted(clash)} already exist in another sub-system"
            )
        self.subsystems[subsystem.name] = subsystem
        return self

    def add_flow(self, flow: FlowSpec) -> "CPPSArchitecture":
        """Register a flow; endpoints must already be declared components."""
        if flow.name in self.flows:
            raise ArchitectureError(f"duplicate flow {flow.name!r}")
        names = self.component_names()
        for endpoint in (flow.source, flow.target):
            if endpoint not in names:
                raise ArchitectureError(
                    f"flow {flow.name!r} references unknown component {endpoint!r}"
                )
        self.flows[flow.name] = flow
        return self

    def add_signal_flow(
        self, name: str, source: str, target: str, *, description: str = ""
    ) -> "CPPSArchitecture":
        """Shorthand for declaring a signal (cyber) flow."""
        return self.add_flow(
            FlowSpec(name, FlowKind.SIGNAL, source, target, description=description)
        )

    def add_energy_flow(
        self,
        name: str,
        source: str,
        target: str,
        *,
        form: EnergyForm = EnergyForm.MECHANICAL,
        intentional: bool = True,
        description: str = "",
    ) -> "CPPSArchitecture":
        """Shorthand for declaring an energy (physical) flow."""
        return self.add_flow(
            FlowSpec(
                name,
                FlowKind.ENERGY,
                source,
                target,
                energy_form=form,
                intentional=intentional,
                description=description,
            )
        )

    # -- queries ----------------------------------------------------------------
    def component_names(self) -> set:
        return {
            c.name for sub in self.subsystems.values() for c in sub.components
        }

    def components(self) -> list:
        return [c for sub in self.subsystems.values() for c in sub.components]

    def component(self, name: str) -> Component:
        for sub in self.subsystems.values():
            for c in sub.components:
                if c.name == name:
                    return c
        raise ArchitectureError(f"unknown component {name!r}")

    def subsystem_of(self, component_name: str) -> SubSystem:
        for sub in self.subsystems.values():
            if component_name in sub.component_names():
                return sub
        raise ArchitectureError(f"unknown component {component_name!r}")

    def signal_flows(self) -> list:
        return [f for f in self.flows.values() if f.is_signal]

    def energy_flows(self) -> list:
        return [f for f in self.flows.values() if f.is_energy]

    def flow(self, name: str) -> FlowSpec:
        try:
            return self.flows[name]
        except KeyError:
            raise ArchitectureError(f"unknown flow {name!r}") from None

    def cross_subsystem_flows(self) -> list:
        """Flows whose endpoints belong to different sub-systems."""
        out = []
        for f in self.flows.values():
            if self.subsystem_of(f.source).name != self.subsystem_of(f.target).name:
                out.append(f)
        return out

    def validate(self) -> None:
        """Raise :class:`ArchitectureError` on structural problems.

        Checks: at least one sub-system, at least one flow, and no
        component that is completely disconnected (no flow touches it —
        usually a description bug).
        """
        if not self.subsystems:
            raise ArchitectureError(f"architecture {self.name!r} has no sub-systems")
        if not self.flows:
            raise ArchitectureError(f"architecture {self.name!r} declares no flows")
        touched = set()
        for f in self.flows.values():
            touched.add(f.source)
            touched.add(f.target)
        isolated = sorted(self.component_names() - touched)
        if isolated:
            raise ArchitectureError(
                f"components with no flows (disconnected): {isolated}"
            )

    def __repr__(self):
        return (
            f"CPPSArchitecture(name={self.name!r}, "
            f"subsystems={len(self.subsystems)}, "
            f"components={len(self.component_names())}, flows={len(self.flows)})"
        )
