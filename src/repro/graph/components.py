"""CPPS components and sub-systems (paper Figures 1 and 3).

A CPPS decomposes into sub-systems, each containing *cyber* components
(controllers, firmware, network endpoints) and *physical* components
(motors, heaters, frames, the environment).  Components are the graph
nodes of ``G_CPPS``; flows are its edges.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ArchitectureError


class Domain(enum.Enum):
    """Which side of the cyber-physical boundary a component lives on."""

    CYBER = "cyber"
    PHYSICAL = "physical"

    def __str__(self):
        return self.value


@dataclass(frozen=True)
class Component:
    """One node of the CPPS graph.

    Attributes
    ----------
    name:
        Unique identifier, e.g. ``"C1"`` or ``"P5"`` (paper naming).
    domain:
        :class:`Domain` — cyber or physical.
    label:
        Human-readable role, e.g. ``"Microcontroller"`` / ``"X stepper"``.
    external:
        True for nodes that are not part of the sub-system proper —
        the paper's ``C4`` (external signal source) and ``P9``
        (physical environment) are external.
    """

    name: str
    domain: Domain
    label: str = ""
    external: bool = False

    def __post_init__(self):
        if not self.name:
            raise ArchitectureError("component name must be non-empty")

    @property
    def is_cyber(self) -> bool:
        return self.domain is Domain.CYBER

    @property
    def is_physical(self) -> bool:
        return self.domain is Domain.PHYSICAL

    def __str__(self):
        tag = f" ({self.label})" if self.label else ""
        return f"{self.name}[{self.domain}]{tag}"


def cyber(name: str, label: str = "", *, external: bool = False) -> Component:
    """Convenience constructor for a cyber-domain component."""
    return Component(name, Domain.CYBER, label, external)


def physical(name: str, label: str = "", *, external: bool = False) -> Component:
    """Convenience constructor for a physical-domain component."""
    return Component(name, Domain.PHYSICAL, label, external)


@dataclass
class SubSystem:
    """A named group of components (paper: ``Sub_1 .. Sub_n``)."""

    name: str
    components: list = field(default_factory=list)
    description: str = ""

    def __post_init__(self):
        if not self.name:
            raise ArchitectureError("sub-system name must be non-empty")
        names = [c.name for c in self.components]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ArchitectureError(
                f"sub-system {self.name!r} has duplicate components: {dupes}"
            )

    def add(self, component: Component) -> "SubSystem":
        """Add a component, rejecting duplicates."""
        if any(c.name == component.name for c in self.components):
            raise ArchitectureError(
                f"component {component.name!r} already in sub-system {self.name!r}"
            )
        self.components.append(component)
        return self

    @property
    def cyber_components(self) -> list:
        return [c for c in self.components if c.is_cyber]

    @property
    def physical_components(self) -> list:
        return [c for c in self.components if c.is_physical]

    def component_names(self) -> set:
        return {c.name for c in self.components}

    def __iter__(self):
        return iter(self.components)

    def __len__(self):
        return len(self.components)

    def __repr__(self):
        return (
            f"SubSystem(name={self.name!r}, cyber={len(self.cyber_components)}, "
            f"physical={len(self.physical_components)})"
        )
