"""Textual exports of ``G_CPPS``: DOT (Graphviz) and adjacency listings.

The benchmark for Figure 6 prints these so the generated graph can be
compared against the paper's drawing without a display server.
"""

from __future__ import annotations

import networkx as nx

from repro.flows.base import FlowKind
from repro.graph.builder import FLOW_ATTR


def to_dot(graph: nx.MultiDiGraph) -> str:
    """Render G_CPPS as Graphviz DOT.

    Cyber components are boxes, physical components ellipses; signal
    flows solid edges, energy flows dashed — mirroring the paper's
    Figure 3/6 notation.
    """
    lines = [f'digraph "{graph.name or "G_CPPS"}" {{', "  rankdir=LR;"]
    for node, data in sorted(graph.nodes(data=True)):
        shape = "box" if data.get("domain") == "cyber" else "ellipse"
        style = ', style="dotted"' if data.get("external") else ""
        label = data.get("label") or node
        lines.append(f'  "{node}" [shape={shape}, label="{node}\\n{label}"{style}];')
    for u, v, key, data in sorted(graph.edges(keys=True, data=True)):
        flow = data.get(FLOW_ATTR)
        style = "dashed" if flow is not None and flow.is_energy else "solid"
        lines.append(f'  "{u}" -> "{v}" [label="{key}", style={style}];')
    lines.append("}")
    return "\n".join(lines)


def adjacency_listing(graph: nx.MultiDiGraph) -> str:
    """Per-node adjacency text: ``node -> successors (via flows)``."""
    lines = []
    for node in sorted(graph.nodes):
        outs = []
        for _u, v, key in sorted(graph.out_edges(node, keys=True)):
            outs.append(f"{v} (via {key})")
        lines.append(f"{node}: " + (", ".join(outs) if outs else "-"))
    return "\n".join(lines)


def flow_listing(graph: nx.MultiDiGraph) -> str:
    """One line per flow: name, kind, endpoints, intent."""
    lines = []
    for _u, _v, data in sorted(
        graph.edges(data=True), key=lambda e: e[2][FLOW_ATTR].name
    ):
        flow = data[FLOW_ATTR]
        intent = "intentional" if flow.intentional else "UNINTENTIONAL"
        kind = "signal" if flow.kind is FlowKind.SIGNAL else f"energy/{flow.energy_form}"
        lines.append(
            f"{flow.name}: {flow.source} -> {flow.target}  [{kind}, {intent}]"
            + (f"  # {flow.description}" if flow.description else "")
        )
    return "\n".join(lines)
