"""CPPS architecture graphs and Algorithm 1 (graph + flow-pair generation)."""

from repro.graph.components import Component, Domain, SubSystem, cyber, physical
from repro.graph.architecture import CPPSArchitecture
from repro.graph.builder import (
    FLOW_ATTR,
    GraphGenerationResult,
    build_graph,
    extract_flow_pairs,
    generate,
    prune_pairs_by_data,
)
from repro.graph.reachability import (
    assert_dag,
    dfs_reachable,
    is_reachable,
    remove_feedback_edges,
)
from repro.graph.export import adjacency_listing, flow_listing, to_dot
from repro.graph.generators import random_factory
from repro.graph.metrics import (
    MonitoringReport,
    attack_surface,
    cross_domain_cut,
    emission_exposure,
    monitoring_coverage,
    path_flows,
)

__all__ = [
    "FLOW_ATTR",
    "CPPSArchitecture",
    "Component",
    "Domain",
    "GraphGenerationResult",
    "MonitoringReport",
    "SubSystem",
    "adjacency_listing",
    "assert_dag",
    "attack_surface",
    "cross_domain_cut",
    "build_graph",
    "cyber",
    "dfs_reachable",
    "emission_exposure",
    "extract_flow_pairs",
    "flow_listing",
    "generate",
    "is_reachable",
    "monitoring_coverage",
    "path_flows",
    "physical",
    "prune_pairs_by_data",
    "random_factory",
    "remove_feedback_edges",
    "to_dot",
]
