"""Aligned trace recording: print runs → CGAN-ready datasets.

This is the experimental-data-collection step of Section IV-B: run
programs on the (simulated) printer, slice the microphone trace at
motion-segment boundaries, extract the scaled 100-bin frequency features
per segment, and pair each feature vector with the one-hot condition of
the motors that were running — producing a
:class:`~repro.flows.dataset.FlowPairDataset`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DataError
from repro.dsp.features import FrequencyFeatureExtractor
from repro.flows.dataset import FlowPairDataset
from repro.flows.encoding import ConditionEncoder, SingleMotorEncoder
from repro.manufacturing.printer import Printer3D
from repro.manufacturing.programs import calibration_suite
from repro.utils.rng import as_rng

#: Segments shorter than this (seconds) are skipped: the CWT cannot
#: resolve 50 Hz content in a shorter window.
MIN_SEGMENT_DURATION = 0.06

#: Longer segments are center-cropped to this analysis window (seconds).
#: A fixed window keeps the CWT cost bounded and, like the paper's fixed
#: feature construction, makes features comparable across segments.
MAX_SEGMENT_DURATION = 0.4


def _center_crop(samples: np.ndarray, sample_rate: float, max_duration: float) -> np.ndarray:
    """Middle *max_duration* seconds of a segment (skips spin-up/stop edges)."""
    max_n = int(round(max_duration * sample_rate))
    if len(samples) <= max_n:
        return samples
    start = (len(samples) - max_n) // 2
    return samples[start : start + max_n]


@dataclass
class RecordedSegment:
    """One usable (audio, condition) observation prior to featureization."""

    samples: np.ndarray
    active_axes: frozenset
    program_name: str
    segment_index: int


def collect_segments(
    runs,
    *,
    motion_axes=("X", "Y", "Z"),
    include_idle: bool = False,
    min_duration: float = MIN_SEGMENT_DURATION,
    max_duration: float = MAX_SEGMENT_DURATION,
) -> list:
    """Harvest labeled audio segments from print runs.

    Parameters
    ----------
    runs:
        Iterable of :class:`PrintRun`.
    motion_axes:
        Axes considered for the condition label; activity on other axes
        (e.g. the extruder E) is ignored for labeling purposes.
    include_idle:
        Keep dwell segments (empty active set) — needed only for the
        combination encoder, which has an "idle" slot.
    min_duration:
        Skip segments shorter than this many seconds.
    max_duration:
        Center-crop longer segments to this analysis window.
    """
    out = []
    for run in runs:
        for i, segment in enumerate(run.segments):
            if segment.duration < min_duration:
                continue
            active = frozenset(a for a in segment.active_axes if a in motion_axes)
            if not active and not include_idle:
                continue
            audio = run.segment_audio(i)
            samples = _center_crop(audio.samples, audio.sample_rate, max_duration)
            out.append(
                RecordedSegment(
                    samples=samples,
                    active_axes=active,
                    program_name=run.program.name,
                    segment_index=i,
                )
            )
    if not out:
        raise DataError("no usable segments collected from the given runs")
    return out


def build_dataset(
    segments,
    extractor: FrequencyFeatureExtractor,
    encoder: ConditionEncoder | None = None,
    *,
    fit_extractor: bool = True,
    name: str = "acoustic|gcode",
) -> FlowPairDataset:
    """Featureize recorded segments into an aligned dataset.

    Segments whose active set the encoder cannot represent (e.g. an X+Y
    diagonal under the single-motor encoder) are dropped, mirroring the
    paper's restriction to one-motor-at-a-time objects.
    """
    encoder = encoder or SingleMotorEncoder()
    encodable = []
    conditions = []
    for seg in segments:
        try:
            cond = encoder.encode(seg.active_axes)
        except DataError:
            continue
        encodable.append(seg)
        conditions.append(cond)
    if not encodable:
        raise DataError("no segments representable under the given encoder")
    waves = [seg.samples for seg in encodable]
    if fit_extractor:
        features = extractor.fit_transform(waves)
    else:
        features = extractor.transform(waves)
    return FlowPairDataset(features, np.vstack(conditions), name=name)


def record_case_study_dataset(
    *,
    n_moves_per_axis: int = 40,
    sample_rate: float = 12000.0,
    n_bins: int = 100,
    seed=None,
    printer: Printer3D | None = None,
    encoder: ConditionEncoder | None = None,
    method: str = "cwt",
    feature_cache=None,
):
    """One-call reproduction of the paper's data collection.

    Generates single-motor calibration programs for X/Y/Z, "prints" them
    on the simulated machine, extracts scaled CWT features, and returns
    ``(dataset, extractor, encoder, runs)``.

    The returned extractor has its scaler fitted on this dataset, so it
    can consistently featureize held-out traces (attacker test data).

    *feature_cache* (a directory path or
    :class:`~repro.dsp.cache.FeatureCache`) enables the on-disk raw
    feature cache, so repeated recordings of identical audio skip CWT
    extraction entirely.
    """
    rng = as_rng(seed)
    printer = printer or Printer3D(sample_rate=sample_rate, seed=rng)
    encoder = encoder or SingleMotorEncoder()
    programs = calibration_suite(n_moves_per_axis, seed=rng)
    runs = [printer.run(p, seed=rng) for p in programs]
    segments = collect_segments(runs)
    extractor = FrequencyFeatureExtractor(
        printer.sample_rate,
        n_bins=n_bins,
        method=method,
        feature_cache=feature_cache,
    )
    dataset = build_dataset(segments, extractor, encoder)
    return dataset, extractor, encoder, runs
