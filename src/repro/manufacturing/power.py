"""Power side channel: supply-current traces of the printer.

The paper's model is not acoustic-specific — any energy flow works.
This module adds the classic second channel: the printer's power draw,
as a smart meter or a compromised PSU would see it (architecture flow
``F21``: power supply P1 ↔ controller).  Per motion segment the trace
contains:

* a per-motor DC holding/running current,
* current ripple at each motor's step frequency (chopper drive),
* slow heater duty cycling (hotend + bed), and
* measurement noise.

The sample rate is much lower than the microphone's (current clamps are
slow); step-frequency ripple above Nyquist simply vanishes — one of the
honest physical differences between the two channels that the
multi-channel benchmark surfaces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.manufacturing.kinematics import MotionSegment
from repro.utils.rng import as_rng


@dataclass(frozen=True)
class PowerSignature:
    """Electrical signature of one motor on the shared supply rail.

    Attributes
    ----------
    running_current:
        Mean current (A) while the motor runs.
    ripple_gain:
        Amplitude of the step-frequency ripple relative to the running
        current.
    harmonic_gains:
        Relative amplitudes of the ripple harmonics.
    """

    running_current: float = 0.8
    ripple_gain: float = 0.25
    harmonic_gains: tuple = (1.0, 0.35)

    def __post_init__(self):
        if self.running_current <= 0:
            raise ConfigurationError("running_current must be > 0")
        if self.ripple_gain < 0:
            raise ConfigurationError("ripple_gain must be >= 0")
        if not self.harmonic_gains or any(g < 0 for g in self.harmonic_gains):
            raise ConfigurationError("harmonic_gains must be non-empty, >= 0")


def default_power_signatures() -> dict:
    """Per-axis electrical signatures (distinct but overlapping, like the
    acoustic ones): X/Y similar belt-drive currents, Z a geared
    lead-screw with higher torque (more current, stronger ripple), E a
    lighter extruder motor."""
    return {
        "X": PowerSignature(running_current=0.80, ripple_gain=0.22,
                            harmonic_gains=(1.0, 0.35)),
        "Y": PowerSignature(running_current=0.90, ripple_gain=0.25,
                            harmonic_gains=(1.0, 0.30)),
        "Z": PowerSignature(running_current=1.25, ripple_gain=0.40,
                            harmonic_gains=(1.0, 0.20)),
        "E": PowerSignature(running_current=0.55, ripple_gain=0.18,
                            harmonic_gains=(1.0, 0.40)),
    }


class PowerTraceSynthesizer:
    """Render motion segments to supply-current traces.

    Parameters
    ----------
    signatures:
        Axis -> :class:`PowerSignature`.
    sample_rate:
        Current-sensor sample rate in Hz (default 2 kHz).
    idle_current:
        Electronics baseline draw (A).
    heater_current / heater_period:
        Amplitude (A) and period (s) of the slow heater duty cycle.
    noise_level:
        Measurement-noise RMS (A).
    """

    def __init__(
        self,
        signatures: dict | None = None,
        *,
        sample_rate: float = 2000.0,
        idle_current: float = 0.35,
        heater_current: float = 0.6,
        heater_period: float = 2.5,
        noise_level: float = 0.02,
    ):
        if sample_rate <= 0:
            raise ConfigurationError("sample_rate must be > 0")
        if idle_current < 0 or heater_current < 0 or noise_level < 0:
            raise ConfigurationError("currents/noise must be >= 0")
        if heater_period <= 0:
            raise ConfigurationError("heater_period must be > 0")
        self.signatures = signatures or default_power_signatures()
        self.sample_rate = float(sample_rate)
        self.idle_current = float(idle_current)
        self.heater_current = float(heater_current)
        self.heater_period = float(heater_period)
        self.noise_level = float(noise_level)

    def segment_samples(self, segment: MotionSegment) -> int:
        return max(1, int(round(segment.duration * self.sample_rate)))

    def synthesize_segment(
        self, segment: MotionSegment, *, t_start: float = 0.0, seed=None
    ) -> np.ndarray:
        """Current trace (A) for one segment, starting at wall time *t_start*
        (the heater duty cycle is phase-continuous across segments)."""
        rng = as_rng(seed)
        n = self.segment_samples(segment)
        t = t_start + np.arange(n) / self.sample_rate
        nyquist = self.sample_rate / 2.0
        current = np.full(n, self.idle_current)
        # Heater duty cycle: the supply rail's RC filtering smooths the
        # bang-bang control into a near-sinusoidal ripple.
        duty = 0.5 * (1.0 + np.sin(2.0 * np.pi * t / self.heater_period))
        current += self.heater_current * duty
        for axis in sorted(segment.active_axes):
            sig = self.signatures.get(axis)
            if sig is None:
                continue
            current += sig.running_current
            base = segment.step_frequencies.get(axis, 0.0)
            if base <= 0:
                continue
            for k, gain in enumerate(sig.harmonic_gains, start=1):
                f = base * k
                if f >= nyquist or gain <= 0:
                    continue  # The slow sensor cannot see this ripple.
                phase = rng.uniform(0.0, 2.0 * np.pi)
                current += (
                    sig.running_current * sig.ripple_gain * gain
                    * np.sin(2.0 * np.pi * f * t + phase)
                )
        if self.noise_level > 0:
            current = current + rng.normal(0.0, self.noise_level, n)
        return current

    def render(self, segments, *, seed=None):
        """Current trace for a whole plan; returns ``(trace, boundaries)``."""
        rng = as_rng(seed)
        chunks = []
        boundaries = [0.0]
        for segment in segments:
            chunk = self.synthesize_segment(
                segment, t_start=boundaries[-1], seed=rng
            )
            chunks.append(chunk)
            boundaries.append(boundaries[-1] + len(chunk) / self.sample_rate)
        trace = np.concatenate(chunks) if chunks else np.zeros(0)
        return trace, boundaries
