"""Multi-channel recording: acoustic + power side channels, aligned.

The paper's model covers any number of energy flows; this module records
the two simulated channels for the same print runs, producing row-
aligned datasets so analyses can compare single channels against fusion
(feature concatenation) — "information leakage ... needs to be
performed across multiple sub-systems" generalizes naturally to
multiple channels of one sub-system.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DataError
from repro.dsp.features import FrequencyFeatureExtractor
from repro.flows.dataset import FlowPairDataset
from repro.flows.encoding import ConditionEncoder, SingleMotorEncoder
from repro.manufacturing.power import PowerTraceSynthesizer
from repro.manufacturing.printer import Printer3D
from repro.manufacturing.programs import calibration_suite
from repro.manufacturing.traces import (
    MAX_SEGMENT_DURATION,
    MIN_SEGMENT_DURATION,
    _center_crop,
)


@dataclass
class MultiChannelRecording:
    """Aligned per-segment observations over both channels.

    ``acoustic``, ``power``, and ``fused`` are row-aligned
    :class:`FlowPairDataset` objects; ``extractors`` holds the fitted
    per-channel feature extractors (for featureizing held-out traces).
    """

    acoustic: FlowPairDataset
    power: FlowPairDataset
    fused: FlowPairDataset
    extractors: dict


def record_multichannel_dataset(
    *,
    n_moves_per_axis: int = 30,
    acoustic_sample_rate: float = 12000.0,
    power_sample_rate: float = 5000.0,
    acoustic_bins: int = 100,
    power_bins: int = 50,
    seed=None,
    printer: Printer3D | None = None,
    power_synth: PowerTraceSynthesizer | None = None,
    encoder: ConditionEncoder | None = None,
) -> MultiChannelRecording:
    """Record the case-study workload over both channels.

    Power analysis frequencies span 10 Hz up to just below the current
    sensor's Nyquist; acoustic follows the paper's 50–5000 Hz band.
    Each channel gets its own RNG stream, so changing one channel's
    configuration never perturbs the other's traces.
    """
    from repro.utils.rng import spawn_rngs

    program_rng, printer_rng, power_rng = spawn_rngs(seed, 3)
    printer = printer or Printer3D(
        sample_rate=acoustic_sample_rate, seed=printer_rng
    )
    power_synth = power_synth or PowerTraceSynthesizer(
        sample_rate=power_sample_rate
    )
    encoder = encoder or SingleMotorEncoder()
    programs = calibration_suite(n_moves_per_axis, seed=program_rng)

    acoustic_segments = []
    power_segments = []
    conditions = []
    for program in programs:
        run = printer.run(program, seed=printer_rng)
        power_trace, power_bounds = power_synth.render(
            run.segments, seed=power_rng
        )
        for i, segment in enumerate(run.segments):
            if segment.duration < MIN_SEGMENT_DURATION:
                continue
            active = frozenset(a for a in segment.active_axes if a in "XYZ")
            try:
                cond = encoder.encode(active)
            except DataError:
                continue
            audio = run.segment_audio(i).samples
            p0 = int(round(power_bounds[i] * power_synth.sample_rate))
            p1 = int(round(power_bounds[i + 1] * power_synth.sample_rate))
            power_chunk = power_trace[p0:p1]
            if len(power_chunk) < int(
                MIN_SEGMENT_DURATION * power_synth.sample_rate
            ):
                continue
            acoustic_segments.append(
                _center_crop(audio, printer.sample_rate, MAX_SEGMENT_DURATION)
            )
            power_segments.append(
                _center_crop(
                    power_chunk, power_synth.sample_rate, MAX_SEGMENT_DURATION
                )
            )
            conditions.append(cond)
    if not conditions:
        raise DataError("no usable multi-channel segments recorded")

    acoustic_extractor = FrequencyFeatureExtractor(
        printer.sample_rate, n_bins=acoustic_bins
    )
    power_extractor = FrequencyFeatureExtractor(
        power_synth.sample_rate,
        n_bins=power_bins,
        f_min=10.0,
        f_max=power_synth.sample_rate / 2.0 * 0.95,
        # Power analysis leans on the mean current level, which spectral
        # magnitudes cannot see.
        include_stats=True,
    )
    acoustic_features = acoustic_extractor.fit_transform(acoustic_segments)
    power_features = power_extractor.fit_transform(power_segments)
    cond_matrix = np.vstack(conditions)

    acoustic_ds = FlowPairDataset(
        acoustic_features, cond_matrix, name="acoustic|gcode"
    )
    power_ds = FlowPairDataset(power_features, cond_matrix, name="power|gcode")
    fused_ds = FlowPairDataset(
        np.hstack([acoustic_features, power_features]),
        cond_matrix,
        name="acoustic+power|gcode",
    )
    return MultiChannelRecording(
        acoustic=acoustic_ds,
        power=power_ds,
        fused=fused_ds,
        extractors={
            "acoustic": acoustic_extractor,
            "power": power_extractor,
        },
    )
