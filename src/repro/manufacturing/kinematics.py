"""Motion planning: G-code programs → timed motion segments.

The planner walks a program maintaining modal state (position, feed
rate, absolute/relative mode) and emits one :class:`MotionSegment` per
kinematically active command.  Segments carry everything the acoustic
synthesizer needs: duration, per-axis travel, per-axis speed, and the
set of *active* axes — which is also exactly the condition label of the
case study ("which stepper motor runs between ``G_{t-1}`` and ``G_t``").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError, GCodeError
from repro.manufacturing.gcode import AXIS_LETTERS, GCodeCommand, GCodeProgram
from repro.manufacturing.steppers import StepperMotor, default_motors

#: Travel below this (mm) is treated as "axis did not move".
MOTION_EPSILON = 1e-9


@dataclass
class MachineConfig:
    """Kinematic configuration of the machine.

    Attributes
    ----------
    motors:
        Mapping of axis letter to :class:`StepperMotor`.
    default_feed_rate:
        Feed (mm/min) assumed before any ``F`` word is seen.
    rapid_feed_rate:
        Feed (mm/min) used for ``G0`` rapids.
    home_position:
        Position set by ``G28``.
    """

    motors: dict = field(default_factory=default_motors)
    default_feed_rate: float = 1200.0
    rapid_feed_rate: float = 6000.0
    home_position: dict = field(
        default_factory=lambda: {a: 0.0 for a in AXIS_LETTERS}
    )

    def __post_init__(self):
        if self.default_feed_rate <= 0 or self.rapid_feed_rate <= 0:
            raise ConfigurationError("feed rates must be > 0")
        for axis, motor in self.motors.items():
            if not isinstance(motor, StepperMotor):
                raise ConfigurationError(f"motor for {axis!r} is not a StepperMotor")
            if motor.axis != axis:
                raise ConfigurationError(
                    f"motor registered under {axis!r} drives axis {motor.axis!r}"
                )

    def motor(self, axis: str) -> StepperMotor:
        try:
            return self.motors[axis]
        except KeyError:
            raise ConfigurationError(f"no motor configured for axis {axis!r}") from None


@dataclass(frozen=True)
class MotionSegment:
    """One planned, timed piece of machine activity.

    Attributes
    ----------
    index:
        Ordinal of the generating command within the program.
    command:
        The :class:`GCodeCommand` that produced this segment.
    start, end:
        Positions (axis -> mm) before and after the segment.
    duration:
        Seconds.
    feed_rate:
        Commanded feed in mm/min (None for dwells).
    active_axes:
        Frozenset of axes that actually move (excluding E by default at
        the dataset layer — E handling is the caller's choice).
    axis_speeds:
        Axis -> linear speed in mm/s (only active axes present).
    step_frequencies:
        Axis -> stepper step frequency in Hz (only active axes present).
    """

    index: int
    command: GCodeCommand
    start: dict
    end: dict
    duration: float
    feed_rate: float | None
    active_axes: frozenset
    axis_speeds: dict
    step_frequencies: dict

    @property
    def is_dwell(self) -> bool:
        return not self.active_axes

    @property
    def travel(self) -> dict:
        """Signed per-axis displacement in mm."""
        return {a: self.end[a] - self.start[a] for a in self.end}

    def __str__(self):
        axes = "+".join(sorted(self.active_axes)) or "dwell"
        return (
            f"seg#{self.index} [{axes}] {self.duration:.3f}s "
            f"{self.command.to_line()}"
        )


class MotionPlanner:
    """Walks a program and produces :class:`MotionSegment` objects.

    Simplifications relative to real firmware (documented, deliberate):
    constant-velocity moves (no acceleration ramps) and exact feed-rate
    tracking.  These do not affect the security analysis, which uses
    per-segment averaged spectra.
    """

    def __init__(self, config: MachineConfig | None = None):
        self.config = config or MachineConfig()

    def plan(self, program: GCodeProgram) -> list:
        """Plan the whole program; returns the list of segments."""
        position = dict(self.config.home_position)
        feed_rate = self.config.default_feed_rate
        absolute = True
        segments = []
        for idx, cmd in enumerate(program):
            if cmd.code == "G90":
                absolute = True
            elif cmd.code == "G91":
                absolute = False
            elif cmd.code == "G28":
                segment, position = self._plan_home(idx, cmd, position)
                if segment is not None:
                    segments.append(segment)
            elif cmd.code == "G4":
                segments.append(self._plan_dwell(idx, cmd, position))
            elif cmd.is_motion:
                if "F" in cmd.params:
                    feed_rate = self._check_feed(cmd.params["F"], cmd)
                rate = self.config.rapid_feed_rate if cmd.code == "G0" else feed_rate
                segment, position = self._plan_move(idx, cmd, position, rate, absolute)
                if segment is not None:
                    segments.append(segment)
            elif cmd.code in ("G2", "G3"):
                if "F" in cmd.params:
                    feed_rate = self._check_feed(cmd.params["F"], cmd)
                arc_segments, position = self._plan_arc(
                    idx, cmd, position, feed_rate, absolute
                )
                segments.extend(arc_segments)
            # All other codes (G21, M-codes...) are kinematically inert.
        return segments

    #: Maximum chord deviation (mm) when tessellating arcs into moves.
    ARC_TOLERANCE = 0.05

    def _plan_arc(self, idx, cmd, position, feed_rate, absolute):
        """Plan a G2 (clockwise) / G3 (counter-clockwise) XY arc.

        Arcs are tessellated into straight chords whose sagitta stays
        below :attr:`ARC_TOLERANCE` — the standard firmware approach —
        so every downstream consumer keeps seeing plain MotionSegments.
        The center is given by I/J offsets (relative to the start point,
        the RepRap convention); R-form arcs are unsupported.
        """
        if "R" in cmd.params:
            raise GCodeError(f"R-form arcs are not supported: {cmd.to_line()!r}")
        if "I" not in cmd.params and "J" not in cmd.params:
            raise GCodeError(f"arc without I/J center: {cmd.to_line()!r}")
        cx = position["X"] + cmd.params.get("I", 0.0)
        cy = position["Y"] + cmd.params.get("J", 0.0)
        x0, y0 = position["X"], position["Y"]
        if "X" in cmd.params:
            x1 = cmd.params["X"] if absolute else x0 + cmd.params["X"]
        else:
            x1 = x0
        if "Y" in cmd.params:
            y1 = cmd.params["Y"] if absolute else y0 + cmd.params["Y"]
        else:
            y1 = y0
        radius = float(np.hypot(x0 - cx, y0 - cy))
        if radius <= MOTION_EPSILON:
            raise GCodeError(f"zero-radius arc: {cmd.to_line()!r}")
        end_radius = float(np.hypot(x1 - cx, y1 - cy))
        if abs(end_radius - radius) > 0.01 * max(radius, 1.0):
            raise GCodeError(
                f"arc endpoint off the circle (r0={radius:.4f}, "
                f"r1={end_radius:.4f}): {cmd.to_line()!r}"
            )
        theta0 = float(np.arctan2(y0 - cy, x0 - cx))
        theta1 = float(np.arctan2(y1 - cy, x1 - cx))
        clockwise = cmd.code == "G2"
        sweep = theta1 - theta0
        if clockwise:
            while sweep >= -MOTION_EPSILON:
                sweep -= 2.0 * np.pi
        else:
            while sweep <= MOTION_EPSILON:
                sweep += 2.0 * np.pi
        # Chord count so the sagitta r(1-cos(dtheta/2)) <= tolerance.
        tol = min(self.ARC_TOLERANCE, radius)
        dtheta_max = 2.0 * np.arccos(max(1.0 - tol / radius, 0.0))
        n_chords = max(1, int(np.ceil(abs(sweep) / max(dtheta_max, 1e-6))))
        segments = []
        current = dict(position)
        for k in range(1, n_chords + 1):
            theta = theta0 + sweep * k / n_chords
            target_cmd = cmd.replace_params(
                X=cx + radius * float(np.cos(theta)),
                Y=cy + radius * float(np.sin(theta)),
                I=None,
                J=None,
            )
            segment, current = self._plan_move(
                idx, target_cmd, current, feed_rate, True
            )
            if segment is not None:
                segments.append(segment)
        return segments, current

    # -- internals -------------------------------------------------------------
    @staticmethod
    def _check_feed(value: float, cmd: GCodeCommand) -> float:
        if value <= 0:
            raise GCodeError(f"non-positive feed rate in {cmd.to_line()!r}")
        return float(value)

    def _plan_move(self, idx, cmd, position, feed_rate, absolute):
        target = dict(position)
        for axis in cmd.axes_present():
            value = cmd.params[axis]
            target[axis] = value if absolute else position[axis] + value
        deltas = {a: target[a] - position[a] for a in target}
        active = frozenset(
            a for a, d in deltas.items() if abs(d) > MOTION_EPSILON
        )
        if not active:
            return None, position  # No actual motion (e.g. F-only line).
        distance = float(np.sqrt(sum(deltas[a] ** 2 for a in active)))
        speed = feed_rate / 60.0  # mm/min -> mm/s
        # Clamp the *path* speed so no axis exceeds its motor limit.
        for axis in active:
            motor = self.config.motor(axis)
            axis_fraction = abs(deltas[axis]) / distance
            if axis_fraction > 0:
                speed = min(speed, motor.max_speed / axis_fraction)
        duration = distance / speed
        axis_speeds = {a: abs(deltas[a]) / duration for a in active}
        step_freqs = {
            a: self.config.motor(a).step_frequency(axis_speeds[a]) for a in active
        }
        segment = MotionSegment(
            index=idx,
            command=cmd,
            start=dict(position),
            end=target,
            duration=duration,
            feed_rate=feed_rate,
            active_axes=active,
            axis_speeds=axis_speeds,
            step_frequencies=step_freqs,
        )
        return segment, target

    def _plan_dwell(self, idx, cmd, position):
        # G4: P = milliseconds, S = seconds (RepRap convention).
        if "P" in cmd.params:
            duration = cmd.params["P"] / 1000.0
        elif "S" in cmd.params:
            duration = cmd.params["S"]
        else:
            raise GCodeError(f"G4 without P or S: {cmd.to_line()!r}")
        if duration <= 0:
            raise GCodeError(f"non-positive dwell in {cmd.to_line()!r}")
        return MotionSegment(
            index=idx,
            command=cmd,
            start=dict(position),
            end=dict(position),
            duration=float(duration),
            feed_rate=None,
            active_axes=frozenset(),
            axis_speeds={},
            step_frequencies={},
        )

    def _plan_home(self, idx, cmd, position):
        axes = cmd.axes_present() or tuple(
            a for a in AXIS_LETTERS if a in self.config.motors and a != "E"
        )
        target = dict(position)
        for axis in axes:
            target[axis] = self.config.home_position.get(axis, 0.0)
        deltas = {a: target[a] - position[a] for a in target}
        active = frozenset(a for a, d in deltas.items() if abs(d) > MOTION_EPSILON)
        if not active:
            return None, target
        # Home at rapid speed, clamped per motor.
        distance = float(np.sqrt(sum(deltas[a] ** 2 for a in active)))
        speed = self.config.rapid_feed_rate / 60.0
        for axis in active:
            motor = self.config.motor(axis)
            frac = abs(deltas[axis]) / distance
            if frac > 0:
                speed = min(speed, motor.max_speed / frac)
        duration = distance / speed
        axis_speeds = {a: abs(deltas[a]) / duration for a in active}
        step_freqs = {
            a: self.config.motor(a).step_frequency(axis_speeds[a]) for a in active
        }
        segment = MotionSegment(
            index=idx,
            command=cmd,
            start=dict(position),
            end=target,
            duration=duration,
            feed_rate=self.config.rapid_feed_rate,
            active_axes=active,
            axis_speeds=axis_speeds,
            step_frequencies=step_freqs,
        )
        return segment, target
