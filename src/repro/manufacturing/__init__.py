"""Simulated additive-manufacturing testbed (substitute for the paper's
physical 3D printer, contact microphone, and anechoic chamber).
"""

from repro.manufacturing.gcode import (
    AXIS_LETTERS,
    GCodeCommand,
    GCodeProgram,
    parse_line,
)
from repro.manufacturing.steppers import (
    AcousticSignature,
    StepperMotor,
    default_motors,
)
from repro.manufacturing.kinematics import (
    MachineConfig,
    MotionPlanner,
    MotionSegment,
)
from repro.manufacturing.acoustics import (
    AcousticSynthesizer,
    AnechoicChamber,
    ContactMicrophone,
)
from repro.manufacturing.printer import Printer3D, PrintRun
from repro.manufacturing.programs import (
    calibration_suite,
    circle_program,
    layered_object_program,
    random_single_motor_sequence,
    rectangle_program,
    single_motor_program,
    staircase_program,
)
from repro.manufacturing.traces import (
    MIN_SEGMENT_DURATION,
    RecordedSegment,
    build_dataset,
    collect_segments,
    record_case_study_dataset,
)
from repro.manufacturing.power import (
    PowerSignature,
    PowerTraceSynthesizer,
    default_power_signatures,
)
from repro.manufacturing.multichannel import (
    MultiChannelRecording,
    record_multichannel_dataset,
)
from repro.manufacturing.multimic import (
    EMISSION_AXES,
    microphone_gains,
    record_per_emission_datasets,
)
from repro.manufacturing.wav import read_wav, write_wav
from repro.manufacturing.quality import (
    geometric_damage_report,
    hausdorff_distance,
    mean_deviation,
    path_length,
    toolpath_points,
)
from repro.manufacturing.architecture import (
    GCODE_FLOW,
    MONITORED_EMISSIONS,
    monitored_flow_names,
    printer_architecture,
)

__all__ = [
    "AXIS_LETTERS",
    "AcousticSignature",
    "AcousticSynthesizer",
    "AnechoicChamber",
    "ContactMicrophone",
    "GCODE_FLOW",
    "GCodeCommand",
    "GCodeProgram",
    "MIN_SEGMENT_DURATION",
    "MONITORED_EMISSIONS",
    "MachineConfig",
    "MotionPlanner",
    "MotionSegment",
    "MultiChannelRecording",
    "PowerSignature",
    "PowerTraceSynthesizer",
    "Printer3D",
    "PrintRun",
    "RecordedSegment",
    "StepperMotor",
    "build_dataset",
    "calibration_suite",
    "circle_program",
    "collect_segments",
    "default_motors",
    "EMISSION_AXES",
    "default_power_signatures",
    "geometric_damage_report",
    "hausdorff_distance",
    "layered_object_program",
    "mean_deviation",
    "monitored_flow_names",
    "path_length",
    "parse_line",
    "printer_architecture",
    "random_single_motor_sequence",
    "record_case_study_dataset",
    "record_multichannel_dataset",
    "microphone_gains",
    "record_per_emission_datasets",
    "read_wav",
    "rectangle_program",
    "single_motor_program",
    "staircase_program",
    "toolpath_points",
    "write_wav",
]
