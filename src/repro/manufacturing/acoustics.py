"""Acoustic-emission synthesis: motion segments → microphone waveforms.

This is the substitute for the paper's physical measurement chain
(3D printer + C411L contact microphone + makeshift anechoic chamber).
The synthesis is physics-inspired rather than a full mechanical model:

* each running stepper contributes a tonal stack at its step frequency
  (fundamental + decaying harmonics) — the dominant, information-bearing
  component of real stepper noise;
* motor/mount resonances add band-limited noise humps at
  motor-specific center frequencies;
* running motors also add broadband hiss;
* the chamber contributes a small ambient noise floor and the contact
  microphone a white measurement-noise floor and a gentle band-pass
  response.

Every stochastic element draws from an injected RNG, so traces are
reproducible given a seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.manufacturing.kinematics import MotionSegment
from repro.utils.rng import as_rng


@dataclass(frozen=True)
class AnechoicChamber:
    """Environmental model: how much outside noise reaches the sensor.

    The paper's setup is "enclosed in a makeshift anechoic chamber to
    isolate the noise from the environment", i.e. small but nonzero
    ambient leakage.
    """

    ambient_noise_level: float = 0.002

    def __post_init__(self):
        if self.ambient_noise_level < 0:
            raise ConfigurationError("ambient_noise_level must be >= 0")


@dataclass(frozen=True)
class ContactMicrophone:
    """Sensor model: gain, noise floor, and band-pass response.

    Attributes
    ----------
    gain:
        Overall sensitivity multiplier.
    noise_level:
        White measurement-noise RMS.
    low_cut_hz / high_cut_hz:
        Gaussian-edge band-pass corner frequencies applied in the
        Fourier domain (a contact mic rolls off at both extremes).
    """

    gain: float = 1.0
    noise_level: float = 0.003
    low_cut_hz: float = 30.0
    high_cut_hz: float = 5500.0

    def __post_init__(self):
        if self.gain <= 0:
            raise ConfigurationError("gain must be > 0")
        if self.noise_level < 0:
            raise ConfigurationError("noise_level must be >= 0")
        if not 0 < self.low_cut_hz < self.high_cut_hz:
            raise ConfigurationError("need 0 < low_cut_hz < high_cut_hz")

    def apply(self, x: np.ndarray, sample_rate: float, rng) -> np.ndarray:
        """Filter *x* through the microphone response and add sensor noise."""
        n = len(x)
        if n == 0:
            return x
        spectrum = np.fft.rfft(x)
        freqs = np.fft.rfftfreq(n, d=1.0 / sample_rate)
        response = np.ones_like(freqs)
        # Soft high-pass below low_cut and low-pass above high_cut.
        below = freqs < self.low_cut_hz
        response[below] = np.exp(
            -0.5 * ((freqs[below] - self.low_cut_hz) / (self.low_cut_hz / 2.0)) ** 2
        )
        above = freqs > self.high_cut_hz
        response[above] = np.exp(
            -0.5 * ((freqs[above] - self.high_cut_hz) / (self.high_cut_hz / 4.0)) ** 2
        )
        out = np.fft.irfft(spectrum * response, n=n) * self.gain
        if self.noise_level > 0:
            out = out + rng.normal(0.0, self.noise_level, size=n)
        return out


def _band_noise(
    n: int, sample_rate: float, center_hz: float, bw_hz: float, rng
) -> np.ndarray:
    """Gaussian-band-filtered white noise, unit RMS."""
    white = rng.normal(0.0, 1.0, size=n)
    spectrum = np.fft.rfft(white)
    freqs = np.fft.rfftfreq(n, d=1.0 / sample_rate)
    shape = np.exp(-0.5 * ((freqs - center_hz) / (bw_hz / 2.0)) ** 2)
    band = np.fft.irfft(spectrum * shape, n=n)
    rms = np.sqrt(np.mean(band**2))
    return band / rms if rms > 0 else band


def _raised_cosine_ramp(n: int, ramp: int) -> np.ndarray:
    """Envelope with raised-cosine fade-in/out to avoid segment clicks."""
    env = np.ones(n)
    ramp = min(ramp, n // 2)
    if ramp > 0:
        t = np.linspace(0, np.pi / 2, ramp)
        env[:ramp] = np.sin(t) ** 2
        env[-ramp:] = np.sin(t[::-1]) ** 2
    return env


class AcousticSynthesizer:
    """Render motion segments to contact-microphone waveforms.

    Parameters
    ----------
    motors:
        Axis -> :class:`StepperMotor` (provides acoustic signatures).
    sample_rate:
        Output sample rate in Hz (default 12 kHz: cheap, and Nyquist
        6 kHz comfortably covers the paper's 50–5000 Hz analysis band).
    microphone, chamber:
        Sensor and environment models.
    jitter:
        Relative std-dev of per-segment random detuning of motor tones
        (manufacturing variation / firmware timing noise).
    """

    def __init__(
        self,
        motors: dict,
        *,
        sample_rate: float = 12000.0,
        microphone: ContactMicrophone | None = None,
        chamber: AnechoicChamber | None = None,
        jitter: float = 0.01,
    ):
        if sample_rate <= 0:
            raise ConfigurationError(f"sample_rate must be > 0, got {sample_rate}")
        if jitter < 0:
            raise ConfigurationError(f"jitter must be >= 0, got {jitter}")
        self.motors = dict(motors)
        self.sample_rate = float(sample_rate)
        self.microphone = microphone or ContactMicrophone()
        self.chamber = chamber or AnechoicChamber()
        self.jitter = float(jitter)

    def segment_samples(self, segment: MotionSegment) -> int:
        """Number of audio samples a segment spans (at least 1)."""
        return max(1, int(round(segment.duration * self.sample_rate)))

    def synthesize_segment(
        self, segment: MotionSegment, *, seed=None, axis_gains=None
    ) -> np.ndarray:
        """Waveform for one motion segment (before environment/sensor).

        Parameters
        ----------
        axis_gains:
            Optional mapping of axis -> coupling gain.  Models where the
            sensor sits: a microphone on the X motor hears X at gain 1
            and the others attenuated.  Axes absent from the mapping get
            gain 1.0.
        """
        rng = as_rng(seed)
        axis_gains = axis_gains or {}
        n = self.segment_samples(segment)
        t = np.arange(n) / self.sample_rate
        out = np.zeros(n)
        nyquist = self.sample_rate / 2.0
        for axis in sorted(segment.active_axes):
            motor = self.motors.get(axis)
            if motor is None:
                continue  # Axis without a motor model contributes nothing.
            gain_scale = float(axis_gains.get(axis, 1.0))
            if gain_scale <= 0:
                continue
            sig = motor.signature
            base = segment.step_frequencies[axis]
            if base <= 0:
                continue
            detune = 1.0 + rng.normal(0.0, self.jitter)
            # Tonal stack.
            for k, gain in enumerate(sig.harmonic_gains, start=1):
                f = base * k * detune
                if f >= nyquist or gain <= 0:
                    continue
                phase = rng.uniform(0.0, 2.0 * np.pi)
                # Slow random amplitude modulation (mechanical load wobble).
                am = 1.0 + 0.1 * np.sin(
                    2.0 * np.pi * rng.uniform(0.5, 3.0) * t + rng.uniform(0, 2 * np.pi)
                )
                out += (
                    gain_scale * sig.amplitude * gain * am
                    * np.sin(2.0 * np.pi * f * t + phase)
                )
            # Resonance hump + broadband hiss.
            if sig.resonance_gain > 0:
                out += (
                    gain_scale
                    * sig.amplitude
                    * sig.resonance_gain
                    * _band_noise(n, self.sample_rate, sig.resonance_hz,
                                  sig.resonance_bw_hz, rng)
                )
            if sig.broadband_gain > 0:
                out += (
                    gain_scale * sig.amplitude * sig.broadband_gain
                    * rng.normal(0.0, 1.0, n)
                )
        # Fade edges (5 ms) so concatenated segments do not click.
        out *= _raised_cosine_ramp(n, int(0.005 * self.sample_rate))
        return out

    def render(self, segments, *, seed=None, axis_gains=None):
        """Render a whole plan.

        Parameters
        ----------
        axis_gains:
            Optional axis -> coupling gain mapping (see
            :meth:`synthesize_segment`) describing the sensor placement.

        Returns
        -------
        audio:
            Concatenated waveform including chamber ambient noise and
            microphone response/noise.
        boundaries:
            Segment boundary times (seconds), ``len(segments) + 1``
            entries, aligned with *audio*.
        """
        rng = as_rng(seed)
        chunks = []
        boundaries = [0.0]
        for segment in segments:
            chunk = self.synthesize_segment(
                segment, seed=rng, axis_gains=axis_gains
            )
            chunks.append(chunk)
            boundaries.append(boundaries[-1] + len(chunk) / self.sample_rate)
        if chunks:
            audio = np.concatenate(chunks)
        else:
            audio = np.zeros(0)
        if self.chamber.ambient_noise_level > 0 and len(audio):
            audio = audio + rng.normal(0.0, self.chamber.ambient_noise_level, len(audio))
        if len(audio):
            audio = self.microphone.apply(audio, self.sample_rate, rng)
        return audio, boundaries
