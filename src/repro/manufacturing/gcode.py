"""G/M-code parsing, representation, and serialization.

The case study's signal flow is the stream of G/M-code instructions sent
to the printer (node C4 → C1 in Figure 6).  This module implements a
practical subset of RepRap-flavor G-code:

* motion: ``G0`` (rapid), ``G1`` (linear move), ``G2``/``G3``
  (clockwise / counter-clockwise XY arcs with I/J centers), ``G4``
  (dwell), ``G28`` (home);
* modes: ``G90``/``G91`` (absolute/relative), ``G21`` (millimeters);
* auxiliary M-codes: ``M104``/``M140`` (set temperatures), ``M106``/
  ``M107`` (fan), ``M84`` (motors off) — parsed and carried through but
  kinematically inert.

Comments (``;`` to end of line and parenthesized), line numbers (``N``)
and ``*`` checksums are handled.  Parsing is strict about malformed
words so that corrupted (attacked) programs are *detectable* rather than
silently misread — important for the integrity-attack experiments.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.errors import GCodeError

#: Axis letters the kinematics understands (E is the extruder).
AXIS_LETTERS = ("X", "Y", "Z", "E")

#: Parameter letters accepted in command words.
PARAM_LETTERS = AXIS_LETTERS + ("F", "S", "P", "T", "R", "I", "J")

_WORD_RE = re.compile(r"([A-Za-z])\s*([-+]?\d*\.?\d+)")
_PAREN_COMMENT_RE = re.compile(r"\([^)]*\)")


@dataclass(frozen=True)
class GCodeCommand:
    """One parsed G/M-code command.

    Attributes
    ----------
    code:
        Normalized command word, e.g. ``"G1"`` or ``"M104"``.
    params:
        Mapping of parameter letter to float value, e.g. ``{"X": 10.0,
        "F": 1200.0}``.
    comment:
        Comment text stripped from the line ('' when none).
    line_number:
        The ``N`` word if present, else ``None``.
    """

    code: str
    params: dict = field(default_factory=dict)
    comment: str = ""
    line_number: int | None = None

    def __post_init__(self):
        if not re.fullmatch(r"[GM]\d+(\.\d+)?", self.code):
            raise GCodeError(f"invalid command code {self.code!r}")
        for letter in self.params:
            if letter not in PARAM_LETTERS:
                raise GCodeError(
                    f"unsupported parameter letter {letter!r} in {self.code}"
                )

    @property
    def is_motion(self) -> bool:
        """True for commands that can move axes (G0/G1)."""
        return self.code in ("G0", "G1")

    @property
    def is_dwell(self) -> bool:
        return self.code == "G4"

    def get(self, letter: str, default=None):
        """Parameter value by letter, or *default*."""
        return self.params.get(letter, default)

    def axes_present(self) -> tuple:
        """Axis letters that appear in this command's parameters."""
        return tuple(a for a in AXIS_LETTERS if a in self.params)

    def to_line(self) -> str:
        """Serialize back to a G-code text line (canonical formatting)."""
        parts = [self.code]
        for letter in ("F",) + AXIS_LETTERS + ("I", "J", "S", "P", "T", "R"):
            if letter in self.params:
                value = self.params[letter]
                text = f"{value:.6f}".rstrip("0").rstrip(".")
                parts.append(f"{letter}{text}")
        line = " ".join(parts)
        if self.comment:
            line += f" ; {self.comment}"
        return line

    def replace_params(self, **updates) -> "GCodeCommand":
        """Copy with some parameters changed/added (attack-injection helper)."""
        params = dict(self.params)
        for k, v in updates.items():
            if v is None:
                params.pop(k, None)
            else:
                params[k] = float(v)
        return GCodeCommand(self.code, params, self.comment, self.line_number)

    def __str__(self):
        return self.to_line()


def parse_line(line: str) -> GCodeCommand | None:
    """Parse one text line into a command, or ``None`` for blank/comment lines."""
    raw = line
    # Strip parenthesized comments, then ';' comments.
    line = _PAREN_COMMENT_RE.sub(" ", line)
    comment = ""
    if ";" in line:
        line, comment = line.split(";", 1)
        comment = comment.strip()
    # Strip checksum.
    if "*" in line:
        line = line.split("*", 1)[0]
    line = line.strip()
    if not line:
        return None
    words = _WORD_RE.findall(line)
    if not words:
        raise GCodeError(f"unparseable G-code line: {raw!r}")
    consumed = _WORD_RE.sub("", line).strip()
    if consumed:
        raise GCodeError(f"trailing junk {consumed!r} in line: {raw!r}")
    line_number = None
    code = None
    params = {}
    for letter, value in words:
        letter = letter.upper()
        if letter == "N":
            line_number = int(float(value))
        elif letter in ("G", "M"):
            if code is not None:
                raise GCodeError(f"multiple command words in line: {raw!r}")
            num = float(value)
            code = f"{letter}{int(num)}" if num == int(num) else f"{letter}{num}"
        elif letter in PARAM_LETTERS:
            if letter in params:
                raise GCodeError(f"duplicate parameter {letter!r} in line: {raw!r}")
            params[letter] = float(value)
        else:
            raise GCodeError(f"unknown word letter {letter!r} in line: {raw!r}")
    if code is None:
        raise GCodeError(f"line has parameters but no G/M command: {raw!r}")
    return GCodeCommand(code, params, comment, line_number)


class GCodeProgram:
    """An ordered list of parsed commands."""

    def __init__(self, commands=(), *, name: str = "program"):
        self.commands = list(commands)
        self.name = name
        for cmd in self.commands:
            if not isinstance(cmd, GCodeCommand):
                raise GCodeError(f"not a GCodeCommand: {cmd!r}")

    @classmethod
    def from_text(cls, text: str, *, name: str = "program") -> "GCodeProgram":
        """Parse a multi-line G-code string, skipping blanks/comments."""
        commands = []
        for i, line in enumerate(text.splitlines(), start=1):
            try:
                cmd = parse_line(line)
            except GCodeError as exc:
                raise GCodeError(f"{name}, line {i}: {exc}") from exc
            if cmd is not None:
                commands.append(cmd)
        return cls(commands, name=name)

    def to_text(self) -> str:
        """Serialize the program to G-code text."""
        return "\n".join(cmd.to_line() for cmd in self.commands)

    def motion_commands(self) -> list:
        return [c for c in self.commands if c.is_motion]

    def append(self, command: GCodeCommand) -> "GCodeProgram":
        self.commands.append(command)
        return self

    def extend(self, commands) -> "GCodeProgram":
        for cmd in commands:
            self.append(cmd)
        return self

    def __len__(self):
        return len(self.commands)

    def __iter__(self):
        return iter(self.commands)

    def __getitem__(self, idx):
        return self.commands[idx]

    def __repr__(self):
        return f"GCodeProgram(name={self.name!r}, commands={len(self)})"
