"""The case study's CPPS architecture (paper Figures 5 and 6).

Builds the additive-manufacturing sub-system as a
:class:`~repro.graph.architecture.CPPSArchitecture`:

* cyber components ``C1``–``C3`` (controller, stepper driver stage,
  heater control) plus the *external* node ``C4`` — "the external signal
  flows from other sub-systems into the 3D printer";
* physical components ``P1``–``P8`` (power supply, X/Y/Z steppers,
  extruder motor, hotend, heated bed, frame) plus the *environment*
  node ``P9`` — "various energy flows that are either intentional or
  unintentional passing to the environment are encompassed by the edges
  going towards the node P9";
* the signal and energy flows connecting them.  The acoustic emissions
  monitored in the experiment are the flows from ``P2, P3, P4, P5, P8``
  to ``P9``, and the analyzed signal flow is ``F1`` (G/M-code from
  ``C4`` to ``C1``) — matching Section IV-B.
"""

from __future__ import annotations

from repro.flows.base import EnergyForm
from repro.graph.architecture import CPPSArchitecture
from repro.graph.components import SubSystem, cyber, physical

#: Names of the acoustic emission flows the case study monitors
#: (P2, P3, P4, P5, P8 -> P9), keyed by emitting component.
MONITORED_EMISSIONS = {
    "P2": "F14",
    "P3": "F15",
    "P4": "F16",
    "P5": "F17",
    "P8": "F18",
}

#: The analyzed signal flow: G/M-code entering the sub-system (C4 -> C1).
GCODE_FLOW = "F1"


def printer_architecture(name: str = "additive-manufacturing") -> CPPSArchitecture:
    """Construct the Figure 5/6 printer architecture."""
    arch = CPPSArchitecture(name)

    printer = SubSystem("printer", description="FDM 3D printer sub-system")
    printer.add(cyber("C1", "Main controller"))
    printer.add(cyber("C2", "Stepper driver stage"))
    printer.add(cyber("C3", "Heater control"))
    printer.add(physical("P1", "Power supply"))
    printer.add(physical("P2", "X stepper motor"))
    printer.add(physical("P3", "Y stepper motor"))
    printer.add(physical("P4", "Z stepper motor"))
    printer.add(physical("P5", "Extruder stepper motor"))
    printer.add(physical("P6", "Hotend heater"))
    printer.add(physical("P7", "Heated bed"))
    printer.add(physical("P8", "Frame / chassis"))
    arch.add_subsystem(printer)

    externals = SubSystem(
        "externals", description="External signal source and physical environment"
    )
    externals.add(cyber("C4", "External G/M-code source", external=True))
    externals.add(physical("P9", "Physical environment", external=True))
    arch.add_subsystem(externals)

    # Signal flows (cyber domain).
    arch.add_signal_flow(GCODE_FLOW, "C4", "C1", description="G/M-code instructions")
    arch.add_signal_flow("F2", "C1", "C2", description="Step/direction commands")
    arch.add_signal_flow("F3", "C1", "C3", description="Temperature set-points")

    # Electrical energy into the actuators.
    arch.add_energy_flow("F4", "C2", "P2", form=EnergyForm.ELECTRICAL)
    arch.add_energy_flow("F5", "C2", "P3", form=EnergyForm.ELECTRICAL)
    arch.add_energy_flow("F6", "C2", "P4", form=EnergyForm.ELECTRICAL)
    arch.add_energy_flow("F7", "C2", "P5", form=EnergyForm.ELECTRICAL)
    arch.add_energy_flow("F8", "C3", "P6", form=EnergyForm.ELECTRICAL)
    arch.add_energy_flow("F9", "C3", "P7", form=EnergyForm.ELECTRICAL)

    # Mechanical coupling of motors into the frame.
    arch.add_energy_flow("F10", "P2", "P8", form=EnergyForm.VIBRATION)
    arch.add_energy_flow("F11", "P3", "P8", form=EnergyForm.VIBRATION)
    arch.add_energy_flow("F12", "P4", "P8", form=EnergyForm.VIBRATION)
    arch.add_energy_flow("F13", "P5", "P8", form=EnergyForm.VIBRATION)

    # Unintentional acoustic emissions to the environment (monitored).
    for src, flow_name in MONITORED_EMISSIONS.items():
        arch.add_energy_flow(
            flow_name,
            src,
            "P9",
            form=EnergyForm.ACOUSTIC,
            intentional=False,
            description="acoustic emission (side channel)",
        )

    # Unintentional thermal emissions.
    arch.add_energy_flow(
        "F19", "P6", "P9", form=EnergyForm.THERMAL, intentional=False
    )
    arch.add_energy_flow(
        "F20", "P7", "P9", form=EnergyForm.THERMAL, intentional=False
    )

    # Power distribution.
    arch.add_energy_flow("F21", "P1", "C1", form=EnergyForm.ELECTRICAL)

    return arch


def monitored_flow_names() -> list:
    """The flow names the case study trains CGANs for: the G-code signal
    flow plus all monitored acoustic emissions."""
    return [GCODE_FLOW] + sorted(MONITORED_EMISSIONS.values())
