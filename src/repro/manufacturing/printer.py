"""The simulated 3D printer: G-code in, acoustic traces out.

:class:`Printer3D` composes the planner and the acoustic synthesizer
into the facade the rest of the library uses: run a program, get back a
:class:`PrintRun` holding the planned segments, the microphone trace,
and the segment boundaries needed to align cyber (G-code) and physical
(audio) observations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.flows.energy import EnergyFlowData
from repro.manufacturing.acoustics import (
    AcousticSynthesizer,
    AnechoicChamber,
    ContactMicrophone,
)
from repro.manufacturing.gcode import GCodeProgram
from repro.manufacturing.kinematics import MachineConfig, MotionPlanner
from repro.utils.rng import as_rng


@dataclass
class PrintRun:
    """Everything recorded while "printing" one program.

    Attributes
    ----------
    program:
        The executed :class:`GCodeProgram`.
    segments:
        Planned :class:`~repro.manufacturing.kinematics.MotionSegment`
        list, in execution order.
    audio:
        The microphone trace as :class:`~repro.flows.energy.EnergyFlowData`.
    boundaries:
        Segment boundary times (seconds) aligned with *audio*;
        ``len(segments) + 1`` entries.
    """

    program: GCodeProgram
    segments: list
    audio: EnergyFlowData
    boundaries: list = field(default_factory=list)

    def segment_audio(self, i: int) -> EnergyFlowData:
        """The audio slice corresponding to segment *i*."""
        if not 0 <= i < len(self.segments):
            raise ConfigurationError(
                f"segment index {i} out of range [0, {len(self.segments)})"
            )
        return self.audio.slice_time(self.boundaries[i], self.boundaries[i + 1])

    @property
    def duration(self) -> float:
        return self.audio.duration

    def __repr__(self):
        return (
            f"PrintRun(program={self.program.name!r}, "
            f"segments={len(self.segments)}, duration={self.duration:.2f}s)"
        )


class Printer3D:
    """Simulated fused-deposition 3D printer with a contact microphone.

    Parameters
    ----------
    machine:
        Kinematic configuration (motors, feed defaults).
    sample_rate:
        Microphone sample rate in Hz.
    microphone, chamber:
        Sensor/environment models forwarded to the synthesizer.
    seed:
        Base RNG seed; every :meth:`run` derives its own stream, so runs
        are independent but the whole experiment is reproducible.
    """

    def __init__(
        self,
        machine: MachineConfig | None = None,
        *,
        sample_rate: float = 12000.0,
        microphone: ContactMicrophone | None = None,
        chamber: AnechoicChamber | None = None,
        seed=None,
    ):
        self.machine = machine or MachineConfig()
        self.planner = MotionPlanner(self.machine)
        self.synthesizer = AcousticSynthesizer(
            self.machine.motors,
            sample_rate=sample_rate,
            microphone=microphone,
            chamber=chamber,
        )
        self._rng = as_rng(seed)

    @property
    def sample_rate(self) -> float:
        return self.synthesizer.sample_rate

    def plan(self, program: GCodeProgram) -> list:
        """Kinematic plan only (no audio)."""
        return self.planner.plan(program)

    def run(self, program: GCodeProgram, *, seed=None) -> PrintRun:
        """Execute *program*: plan motion and record the acoustic trace."""
        segments = self.planner.plan(program)
        rng = as_rng(seed) if seed is not None else self._rng
        audio, boundaries = self.synthesizer.render(segments, seed=rng)
        return PrintRun(
            program=program,
            segments=segments,
            audio=EnergyFlowData(
                audio, self.sample_rate, name=f"acoustic:{program.name}"
            ),
            boundaries=boundaries,
        )
