"""Toolpath geometry and kinetic-cyber damage quantification.

Kinetic-cyber attacks "directly impact the physical domain" — for a 3D
printer, the damage is a wrong part.  This module turns planned motion
into XY(Z) toolpath polylines and measures how far an attacked
execution deviates from the claimed geometry:

* :func:`toolpath_points` — the polyline a plan traces;
* :func:`path_length` / :func:`bounding_box` — basic geometry;
* :func:`hausdorff_distance` / :func:`mean_deviation` — symmetric
  deviation metrics between claimed and executed toolpaths (computed on
  densely resampled polylines, so differing waypoint counts compare
  fairly).

Used by the integrity-attack experiments to connect a cyber-domain
tamper (axis swap, feed change) to physical-domain damage in
millimeters.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, DataError

#: Axes that define part geometry (the extruder E does not move the tool).
GEOMETRY_AXES = ("X", "Y", "Z")


def toolpath_points(segments) -> np.ndarray:
    """Waypoints ``(n+1, 3)`` visited by a motion plan (XYZ, mm).

    Dwells contribute no new waypoint.  The first row is the plan's
    starting position.
    """
    segments = list(segments)
    if not segments:
        raise DataError("no segments in plan")
    points = [[segments[0].start.get(a, 0.0) for a in GEOMETRY_AXES]]
    for seg in segments:
        if seg.is_dwell:
            continue
        points.append([seg.end.get(a, 0.0) for a in GEOMETRY_AXES])
    return np.asarray(points, dtype=np.float64)


def path_length(points: np.ndarray) -> float:
    """Total polyline length in mm."""
    points = np.atleast_2d(np.asarray(points, dtype=float))
    if points.shape[0] < 2:
        return 0.0
    return float(np.linalg.norm(np.diff(points, axis=0), axis=1).sum())


def bounding_box(points: np.ndarray):
    """(min_corner, max_corner) of the toolpath."""
    points = np.atleast_2d(np.asarray(points, dtype=float))
    return points.min(axis=0), points.max(axis=0)


def resample_polyline(points: np.ndarray, n_samples: int = 256) -> np.ndarray:
    """Resample a polyline to *n_samples* points equally spaced by arc length."""
    points = np.atleast_2d(np.asarray(points, dtype=float))
    if n_samples < 2:
        raise ConfigurationError(f"n_samples must be >= 2, got {n_samples}")
    if points.shape[0] == 1:
        return np.tile(points, (n_samples, 1))
    deltas = np.linalg.norm(np.diff(points, axis=0), axis=1)
    cum = np.concatenate([[0.0], np.cumsum(deltas)])
    total = cum[-1]
    if total == 0.0:
        return np.tile(points[:1], (n_samples, 1))
    targets = np.linspace(0.0, total, n_samples)
    out = np.empty((n_samples, points.shape[1]))
    for d in range(points.shape[1]):
        out[:, d] = np.interp(targets, cum, points[:, d])
    return out


def hausdorff_distance(
    path_a: np.ndarray, path_b: np.ndarray, *, n_samples: int = 256
) -> float:
    """Symmetric Hausdorff distance (mm) between two toolpaths.

    The worst-case distance from any point of one path to the other —
    the headline "how wrong is the part" number.
    """
    a = resample_polyline(path_a, n_samples)
    b = resample_polyline(path_b, n_samples)
    d = np.linalg.norm(a[:, None, :] - b[None, :, :], axis=2)
    return float(max(d.min(axis=1).max(), d.min(axis=0).max()))


def mean_deviation(
    path_a: np.ndarray, path_b: np.ndarray, *, n_samples: int = 256
) -> float:
    """Mean nearest-point distance (mm) between two toolpaths."""
    a = resample_polyline(path_a, n_samples)
    b = resample_polyline(path_b, n_samples)
    d = np.linalg.norm(a[:, None, :] - b[None, :, :], axis=2)
    return float((d.min(axis=1).mean() + d.min(axis=0).mean()) / 2.0)


def geometric_damage_report(claimed_segments, executed_segments) -> dict:
    """Compare a claimed plan with the executed plan.

    Returns a dict with the deviation metrics plus length/bbox changes —
    the physical-damage summary of a kinetic-cyber attack.
    """
    claimed = toolpath_points(claimed_segments)
    executed = toolpath_points(executed_segments)
    c_min, c_max = bounding_box(claimed)
    e_min, e_max = bounding_box(executed)
    return {
        "hausdorff_mm": hausdorff_distance(claimed, executed),
        "mean_deviation_mm": mean_deviation(claimed, executed),
        "claimed_length_mm": path_length(claimed),
        "executed_length_mm": path_length(executed),
        "bbox_growth_mm": float(
            np.max(np.abs(e_max - c_max) + np.abs(e_min - c_min))
        ),
    }
