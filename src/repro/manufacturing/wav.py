"""WAV export/import for simulated microphone traces.

Useful for listening to the synthetic printer (sanity-checking the
acoustic model by ear) and for interchanging traces with external
signal-processing tools.  Uses only the standard-library ``wave``
module; traces are stored as 16-bit mono PCM.
"""

from __future__ import annotations

import wave
from pathlib import Path

import numpy as np

from repro.errors import DataError
from repro.flows.energy import EnergyFlowData

_PCM_MAX = 32767


def write_wav(trace: EnergyFlowData, path, *, normalize: bool = True) -> Path:
    """Write an energy-flow trace to a 16-bit mono WAV file.

    Parameters
    ----------
    trace:
        The microphone trace.
    normalize:
        If true (default), peak-normalize to 90% full scale; otherwise
        samples are clipped to [-1, 1] before quantization.
    """
    samples = trace.samples
    if normalize:
        peak = float(np.max(np.abs(samples)))
        if peak > 0:
            samples = samples / peak * 0.9
    samples = np.clip(samples, -1.0, 1.0)
    pcm = (samples * _PCM_MAX).astype("<i2")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with wave.open(str(path), "wb") as out:
        out.setnchannels(1)
        out.setsampwidth(2)
        out.setframerate(int(round(trace.sample_rate)))
        out.writeframes(pcm.tobytes())
    return path


def read_wav(path, *, name: str = "wav") -> EnergyFlowData:
    """Read a mono 16-bit WAV file back into an :class:`EnergyFlowData`."""
    path = Path(path)
    if not path.exists():
        raise DataError(f"no such wav file: {path}")
    with wave.open(str(path), "rb") as src:
        if src.getnchannels() != 1:
            raise DataError(f"{path} is not mono ({src.getnchannels()} channels)")
        if src.getsampwidth() != 2:
            raise DataError(f"{path} is not 16-bit PCM")
        rate = src.getframerate()
        raw = src.readframes(src.getnframes())
    pcm = np.frombuffer(raw, dtype="<i2")
    if pcm.size == 0:
        raise DataError(f"{path} contains no samples")
    return EnergyFlowData(pcm.astype(np.float64) / _PCM_MAX, float(rate), name=name)
