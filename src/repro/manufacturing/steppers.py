"""Stepper-motor models with acoustic signatures.

A stepper advances in discrete steps; driving it at linear speed ``v``
(mm/s) with ``steps_per_mm`` microsteps produces a dominant acoustic
tone at the *step frequency* ``f = v * steps_per_mm`` plus harmonics,
and excites the motor's mechanical resonance.  These tonal signatures
are what leaks G-code information through the acoustic side channel
(Chhetri et al. 2016/2018 — the authors' prior work this paper builds
on).

Each axis motor gets a distinct signature so the conditional
distributions ``Pr(Freq | motor)`` are separable-but-overlapping, like
the physical testbed:

* X and Y drive similar belt gantries — close parameters, most mutual
  confusion;
* Z drives a lead screw — much higher steps/mm, lower travel speeds,
  a distinct resonance; the paper found Z most identifiable (Table I),
  and this model preserves that.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class AcousticSignature:
    """Tonal/noise recipe for one motor.

    Attributes
    ----------
    harmonic_gains:
        Relative amplitudes of the step-frequency harmonics
        (fundamental first).
    resonance_hz:
        Center of the motor/mount mechanical resonance.
    resonance_bw_hz:
        Resonance bandwidth (wider = flatter hump).
    resonance_gain:
        Amplitude of resonance-band noise relative to the fundamental.
    broadband_gain:
        Wideband hiss level while the motor runs.
    amplitude:
        Overall emission level coupled into the frame.
    """

    harmonic_gains: tuple = (1.0, 0.5, 0.25, 0.12)
    resonance_hz: float = 1200.0
    resonance_bw_hz: float = 300.0
    resonance_gain: float = 0.3
    broadband_gain: float = 0.05
    amplitude: float = 1.0

    def __post_init__(self):
        if not self.harmonic_gains:
            raise ConfigurationError("harmonic_gains must be non-empty")
        if any(g < 0 for g in self.harmonic_gains):
            raise ConfigurationError("harmonic gains must be >= 0")
        for name in ("resonance_hz", "resonance_bw_hz", "amplitude"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be > 0")
        for name in ("resonance_gain", "broadband_gain"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be >= 0")


@dataclass(frozen=True)
class StepperMotor:
    """One axis motor: kinematic limits plus acoustic signature.

    Attributes
    ----------
    axis:
        Axis letter this motor drives (``"X"``, ``"Y"``, ``"Z"``, ``"E"``).
    steps_per_mm:
        Microsteps per millimeter of travel.
    max_speed:
        Maximum linear speed in mm/s.
    signature:
        The motor's :class:`AcousticSignature`.
    """

    axis: str
    steps_per_mm: float
    max_speed: float
    signature: AcousticSignature = field(default_factory=AcousticSignature)

    def __post_init__(self):
        if self.steps_per_mm <= 0:
            raise ConfigurationError(f"steps_per_mm must be > 0, got {self.steps_per_mm}")
        if self.max_speed <= 0:
            raise ConfigurationError(f"max_speed must be > 0, got {self.max_speed}")

    def step_frequency(self, speed_mm_s: float) -> float:
        """Step (and fundamental acoustic) frequency at a linear speed."""
        if speed_mm_s < 0:
            raise ConfigurationError(f"speed must be >= 0, got {speed_mm_s}")
        return speed_mm_s * self.steps_per_mm

    def clamp_speed(self, speed_mm_s: float) -> float:
        """Limit a requested speed to the motor's capability."""
        return float(min(abs(speed_mm_s), self.max_speed))


def default_motors() -> dict:
    """The case-study motor set, tuned to echo the physical testbed.

    Signature choices and their consequences for the experiments:

    * **X** — 80 steps/mm belt drive, resonance at 900 Hz.
    * **Y** — 80 steps/mm belt drive moving the heavier bed: resonance
      at 1350 Hz, slightly stronger broadband.  X and Y overlap most,
      so the CGAN confuses them most (paper: Cond2 lowest Cor).
    * **Z** — 400 steps/mm lead screw: step frequencies ~5x higher at
      the same feed, sharp resonance at 2600 Hz.  Most distinctive ⇒
      highest correct likelihood (paper: Cond3 best).
    * **E** — extruder, 95 steps/mm, mid resonance.
    """
    return {
        "X": StepperMotor(
            axis="X",
            steps_per_mm=80.0,
            max_speed=200.0,
            signature=AcousticSignature(
                harmonic_gains=(1.0, 0.55, 0.28, 0.12),
                resonance_hz=900.0,
                resonance_bw_hz=250.0,
                resonance_gain=0.35,
                broadband_gain=0.05,
                amplitude=1.0,
            ),
        ),
        "Y": StepperMotor(
            axis="Y",
            steps_per_mm=80.0,
            max_speed=200.0,
            signature=AcousticSignature(
                harmonic_gains=(1.0, 0.5, 0.3, 0.15),
                resonance_hz=1350.0,
                resonance_bw_hz=250.0,
                resonance_gain=0.45,
                broadband_gain=0.055,
                amplitude=0.95,
            ),
        ),
        "Z": StepperMotor(
            axis="Z",
            steps_per_mm=400.0,
            max_speed=25.0,
            signature=AcousticSignature(
                harmonic_gains=(1.0, 0.4, 0.15, 0.05),
                resonance_hz=2600.0,
                resonance_bw_hz=180.0,
                resonance_gain=0.9,
                broadband_gain=0.04,
                amplitude=1.2,
            ),
        ),
        "E": StepperMotor(
            axis="E",
            steps_per_mm=95.0,
            max_speed=60.0,
            signature=AcousticSignature(
                harmonic_gains=(1.0, 0.45, 0.2, 0.08),
                resonance_hz=1500.0,
                resonance_bw_hz=350.0,
                resonance_gain=0.3,
                broadband_gain=0.06,
                amplitude=0.8,
            ),
        ),
    }
