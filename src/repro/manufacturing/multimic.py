"""Per-emission virtual microphones: one dataset per monitored flow.

Figure 6 monitors five acoustic emissions — one per physical component
(P2=X, P3=Y, P4=Z, P5=extruder) plus the frame (P8), which couples all
motors.  The single-microphone recording of
:func:`~repro.manufacturing.traces.record_case_study_dataset` models
only the frame flow F18; this module simulates a sensor *per emission*
by re-rendering each run with placement-specific coupling gains:

* the microphone on motor M hears M at full gain and the other motors
  attenuated by a crosstalk factor (structure-borne leakage);
* the frame microphone hears every motor (the original mix).

The result is one aligned :class:`FlowPairDataset` per emission flow
name — exactly the ``{(F_signal, F_emission): dataset}`` mapping the
:class:`~repro.pipeline.gansec.GANSec` pipeline consumes for a true
multi-pair run.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, DataError
from repro.dsp.features import FrequencyFeatureExtractor
from repro.flows.dataset import FlowPairDataset
from repro.flows.encoding import ConditionEncoder, SingleMotorEncoder
from repro.manufacturing.architecture import GCODE_FLOW, MONITORED_EMISSIONS
from repro.manufacturing.printer import Printer3D
from repro.manufacturing.programs import calibration_suite
from repro.manufacturing.traces import (
    MAX_SEGMENT_DURATION,
    MIN_SEGMENT_DURATION,
    _center_crop,
)
from repro.utils.rng import spawn_rngs

#: Component -> axis whose motor the emission belongs to (Figure 6).
EMISSION_AXES = {"P2": "X", "P3": "Y", "P4": "Z", "P5": "E"}


def microphone_gains(crosstalk: float = 0.15) -> dict:
    """Coupling gains per monitored emission flow.

    ``crosstalk`` is how strongly a motor's sound bleeds into another
    component's sensor through the shared structure.
    """
    if not 0.0 <= crosstalk < 1.0:
        raise ConfigurationError(
            f"crosstalk must be in [0, 1), got {crosstalk}"
        )
    gains = {}
    axes = ("X", "Y", "Z", "E")
    for component, flow_name in MONITORED_EMISSIONS.items():
        if component == "P8":
            # The frame couples everything at full strength.
            gains[flow_name] = {a: 1.0 for a in axes}
        else:
            own = EMISSION_AXES[component]
            gains[flow_name] = {
                a: (1.0 if a == own else crosstalk) for a in axes
            }
    return gains


def record_per_emission_datasets(
    *,
    n_moves_per_axis: int = 25,
    sample_rate: float = 12000.0,
    n_bins: int = 100,
    crosstalk: float = 0.15,
    seed=None,
    encoder: ConditionEncoder | None = None,
):
    """Record the case-study workload through every monitored emission.

    Returns ``(data, extractors)`` where ``data`` maps
    ``(emission_flow, GCODE_FLOW)`` name tuples to row-aligned
    :class:`FlowPairDataset` objects (ready for
    :meth:`GANSec.train_models`), and ``extractors`` maps emission flow
    names to their fitted feature extractors.
    """
    program_rng, render_rng = spawn_rngs(seed, 2)
    printer = Printer3D(sample_rate=sample_rate, seed=0)
    encoder = encoder or SingleMotorEncoder()
    programs = calibration_suite(n_moves_per_axis, seed=program_rng)
    gains = microphone_gains(crosstalk)

    # Render each program once per microphone with a *shared* seed per
    # program so every sensor hears the same physical event, only with
    # different coupling.
    per_flow_segments = {flow: [] for flow in gains}
    conditions = []
    for program in programs:
        segments = printer.plan(program)
        program_seed = int(render_rng.integers(0, 2**31 - 1))
        flow_audio = {}
        flow_bounds = {}
        for flow_name, axis_gains in gains.items():
            audio, bounds = printer.synthesizer.render(
                segments,
                seed=np.random.default_rng(program_seed),
                axis_gains=axis_gains,
            )
            flow_audio[flow_name] = audio
            flow_bounds[flow_name] = bounds
        for i, segment in enumerate(segments):
            if segment.duration < MIN_SEGMENT_DURATION:
                continue
            active = frozenset(a for a in segment.active_axes if a in "XYZ")
            try:
                cond = encoder.encode(active)
            except DataError:
                continue
            for flow_name in gains:
                bounds = flow_bounds[flow_name]
                s0 = int(round(bounds[i] * sample_rate))
                s1 = int(round(bounds[i + 1] * sample_rate))
                chunk = flow_audio[flow_name][s0:s1]
                per_flow_segments[flow_name].append(
                    _center_crop(chunk, sample_rate, MAX_SEGMENT_DURATION)
                )
            conditions.append(cond)
    if not conditions:
        raise DataError("no usable segments recorded")
    cond_matrix = np.vstack(conditions)

    data = {}
    extractors = {}
    for flow_name, segs in per_flow_segments.items():
        extractor = FrequencyFeatureExtractor(sample_rate, n_bins=n_bins)
        features = extractor.fit_transform(segs)
        data[(flow_name, GCODE_FLOW)] = FlowPairDataset(
            features, cond_matrix, name=f"{flow_name}|{GCODE_FLOW}"
        )
        extractors[flow_name] = extractor
    return data, extractors
