"""G-code program generators for the case study's workloads.

Section IV-B: "for simplicity, we extract G/M-codes from 3D objects that
only move one stepper motor at a time" — :func:`single_motor_program`
and :func:`calibration_suite` generate exactly those.  The richer
generators (:func:`rectangle_program`, :func:`layered_object_program`)
exercise multi-motor moves for the ``2^3`` combination-encoding
extension and the attack scenarios.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.manufacturing.gcode import GCodeCommand, GCodeProgram
from repro.utils.rng import as_rng


def _preamble() -> list:
    """Standard program header: millimeters, absolute mode, home."""
    return [
        GCodeCommand("G21"),
        GCodeCommand("G90"),
        GCodeCommand("G28"),
    ]


def single_motor_program(
    axis: str,
    n_moves: int = 20,
    *,
    feed_range=(600.0, 2400.0),
    travel_range=(2.0, 20.0),
    seed=None,
    name: str | None = None,
) -> GCodeProgram:
    """Program whose every move drives exactly one stepper motor.

    Moves alternate direction along *axis* with randomized travel and
    feed so the resulting acoustic dataset covers the motor's operating
    envelope (as varied test objects would on the real printer).
    """
    if axis not in ("X", "Y", "Z", "E"):
        raise ConfigurationError(f"unsupported axis {axis!r}")
    if n_moves < 1:
        raise ConfigurationError(f"n_moves must be >= 1, got {n_moves}")
    lo_f, hi_f = feed_range
    lo_t, hi_t = travel_range
    if not 0 < lo_f <= hi_f or not 0 < lo_t <= hi_t:
        raise ConfigurationError("feed_range/travel_range must be positive and ordered")
    rng = as_rng(seed)
    # Z moves at lead-screw speeds: scale feeds down so the planner's
    # per-motor clamp is not the only thing shaping them.
    feed_scale = 0.12 if axis == "Z" else 1.0
    commands = _preamble()
    position = 0.0
    direction = 1.0
    for _ in range(n_moves):
        travel = float(rng.uniform(lo_t, hi_t))
        feed = float(rng.uniform(lo_f, hi_f)) * feed_scale
        position += direction * travel
        if position < 0:
            position = abs(position)
            direction = 1.0
        commands.append(
            GCodeCommand("G1", {axis: round(position, 4), "F": round(feed, 2)})
        )
        direction *= -1.0
    return GCodeProgram(
        commands, name=name or f"single-{axis.lower()}-{n_moves}"
    )


def calibration_suite(
    n_moves_per_axis: int = 20,
    *,
    axes=("X", "Y", "Z"),
    seed=None,
) -> list:
    """One single-motor program per axis (the paper's training workload)."""
    rng = as_rng(seed)
    programs = []
    for axis in axes:
        programs.append(
            single_motor_program(
                axis,
                n_moves_per_axis,
                seed=rng,
                name=f"calib-{axis.lower()}",
            )
        )
    return programs


def rectangle_program(
    width: float = 30.0,
    height: float = 20.0,
    *,
    feed: float = 1200.0,
    n_loops: int = 3,
    name: str = "rectangle",
) -> GCodeProgram:
    """Trace a rectangle perimeter *n_loops* times (single-axis moves only).

    A realistic part outline that nonetheless keeps the one-motor-at-a-
    time property — useful as held-out "secret object" for the attacker
    experiments.
    """
    if width <= 0 or height <= 0:
        raise ConfigurationError("width/height must be > 0")
    if n_loops < 1:
        raise ConfigurationError("n_loops must be >= 1")
    commands = _preamble()
    commands.append(GCodeCommand("G1", {"X": 0.0, "Y": 0.0, "F": feed}))
    for _ in range(n_loops):
        commands.append(GCodeCommand("G1", {"X": width, "F": feed}))
        commands.append(GCodeCommand("G1", {"Y": height, "F": feed}))
        commands.append(GCodeCommand("G1", {"X": 0.0, "F": feed}))
        commands.append(GCodeCommand("G1", {"Y": 0.0, "F": feed}))
    return GCodeProgram(commands, name=name)


def staircase_program(
    n_layers: int = 5,
    *,
    step: float = 10.0,
    layer_height: float = 0.3,
    feed: float = 1200.0,
    z_feed: float = 120.0,
    name: str = "staircase",
) -> GCodeProgram:
    """Alternating X / Y / Z moves, like printing perimeter + layer change.

    Still one motor per move, but with the Z motor appearing at the
    realistic 1-in-k rate of layer changes — good for testing whether a
    detector finds the rare condition.
    """
    if n_layers < 1:
        raise ConfigurationError("n_layers must be >= 1")
    commands = _preamble()
    z = 0.0
    for layer in range(n_layers):
        x = step * (layer + 1)
        y = step * (layer + 1) * 0.6
        commands.append(GCodeCommand("G1", {"X": round(x, 3), "F": feed}))
        commands.append(GCodeCommand("G1", {"Y": round(y, 3), "F": feed}))
        z += layer_height
        commands.append(GCodeCommand("G1", {"Z": round(z, 3), "F": z_feed}))
    return GCodeProgram(commands, name=name)


def layered_object_program(
    n_layers: int = 3,
    *,
    side: float = 25.0,
    layer_height: float = 0.3,
    feed: float = 1500.0,
    z_feed: float = 120.0,
    with_extrusion: bool = False,
    name: str = "layered-object",
) -> GCodeProgram:
    """A small printed "box": diagonal infill moves (X+Y simultaneously),
    perimeters, and layer changes — the multi-motor workload for the
    ``2^3`` combination-encoding extension."""
    if n_layers < 1:
        raise ConfigurationError("n_layers must be >= 1")
    commands = _preamble()
    z = 0.0
    e = 0.0
    for _layer in range(n_layers):
        # Perimeter (single-motor moves).
        for target in (
            {"X": side},
            {"Y": side},
            {"X": 0.0},
            {"Y": 0.0},
        ):
            params = dict(target)
            params["F"] = feed
            if with_extrusion:
                e += 0.5
                params["E"] = round(e, 3)
            commands.append(GCodeCommand("G1", params))
        # Diagonal infill (X and Y simultaneously).
        for frac in (0.25, 0.5, 0.75, 1.0):
            params = {"X": round(side * frac, 3), "Y": round(side * frac, 3), "F": feed}
            if with_extrusion:
                e += 0.7
                params["E"] = round(e, 3)
            commands.append(GCodeCommand("G1", params))
        commands.append(GCodeCommand("G1", {"X": 0.0, "Y": 0.0, "F": feed}))
        # Layer change (Z only).
        z += layer_height
        commands.append(GCodeCommand("G1", {"Z": round(z, 3), "F": z_feed}))
    return GCodeProgram(commands, name=name)


def circle_program(
    radius: float = 15.0,
    *,
    feed: float = 1200.0,
    n_loops: int = 1,
    name: str = "circle",
) -> GCodeProgram:
    """Trace a circle with G2 arcs (a realistic slicer-style perimeter).

    The circle is drawn as two half-turn clockwise arcs per loop,
    starting from ``(2r, 0)`` about the center ``(r, 0)``.
    """
    if radius <= 0:
        raise ConfigurationError("radius must be > 0")
    if n_loops < 1:
        raise ConfigurationError("n_loops must be >= 1")
    commands = _preamble()
    commands.append(
        GCodeCommand("G1", {"X": 2 * radius, "Y": 0.0, "F": feed})
    )
    for _ in range(n_loops):
        commands.append(
            GCodeCommand("G2", {"X": 0.0, "Y": 0.0, "I": -radius, "J": 0.0})
        )
        commands.append(
            GCodeCommand(
                "G2", {"X": 2 * radius, "Y": 0.0, "I": radius, "J": 0.0}
            )
        )
    return GCodeProgram(commands, name=name)


def random_single_motor_sequence(
    n_moves: int,
    *,
    axes=("X", "Y", "Z"),
    seed=None,
    feed_range=(600.0, 2400.0),
    travel_range=(2.0, 20.0),
    name: str = "random-sequence",
) -> GCodeProgram:
    """Random axis per move — the "secret G-code" an attacker wants to
    reconstruct in the confidentiality experiment."""
    if n_moves < 1:
        raise ConfigurationError(f"n_moves must be >= 1, got {n_moves}")
    rng = as_rng(seed)
    commands = _preamble()
    positions = {a: 0.0 for a in axes}
    directions = {a: 1.0 for a in axes}
    lo_f, hi_f = feed_range
    lo_t, hi_t = travel_range
    for _ in range(n_moves):
        axis = str(rng.choice(list(axes)))
        feed_scale = 0.12 if axis == "Z" else 1.0
        travel = float(rng.uniform(lo_t, hi_t))
        feed = float(rng.uniform(lo_f, hi_f)) * feed_scale
        positions[axis] += directions[axis] * travel
        if positions[axis] < 0:
            positions[axis] = abs(positions[axis])
            directions[axis] = 1.0
        directions[axis] *= -1.0
        commands.append(
            GCodeCommand(
                "G1", {axis: round(positions[axis], 4), "F": round(feed, 2)}
            )
        )
    return GCodeProgram(commands, name=name)
