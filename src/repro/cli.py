"""Command-line interface for the GAN-Sec reproduction.

Subcommands mirror the pipeline stages so each step can run (and be
cached on disk) independently:

* ``record``   — simulate the printer and save the labeled dataset;
* ``graph``    — run Algorithm 1 on the printer architecture and print
  the G_CPPS listing / DOT;
* ``train``    — train a CGAN on a recorded dataset and save it;
* ``analyze``  — load a trained CGAN + dataset and print the full
  security report;
* ``table1``   — regenerate the paper's Table I for a trained model;
* ``experiment`` — run the whole staged pipeline into a resumable run
  directory; ``experiment status <dir>`` and
  ``experiment invalidate <dir> <stage>`` inspect and edit its manifest.
* ``stream``   — run the online attack detector over a replayed WAV or
  synthetic printer trace, real-time or max-rate, printing live alarms
  and a throughput summary.

Examples
--------
::

    python -m repro.cli record --out run/dataset.npz --moves 35 --seed 7
    python -m repro.cli train --dataset run/dataset.npz --out run/model --iterations 2500
    python -m repro.cli analyze --dataset run/dataset.npz --model run/model
    python -m repro.cli table1 --dataset run/dataset.npz --model run/model
    python -m repro.cli experiment --out run/exp --moves 8 --iterations 200
    python -m repro.cli experiment status run/exp
    python -m repro.cli stream --synthetic --attack-spans 2 --rate max --progress
    python -m repro.cli stream --wav trace.wav --claims claims.json --rate realtime
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from repro.flows.io import load_dataset, save_dataset
from repro.gan.cgan import ConditionalGAN
from repro.gan.serialization import load_cgan, save_cgan
from repro.graph import adjacency_listing, flow_listing, generate, to_dot
from repro.manufacturing import (
    monitored_flow_names,
    printer_architecture,
    record_case_study_dataset,
)
from repro.security import (
    build_security_report,
    choose_analysis_feature,
    likelihood_h_sweep,
)
from repro.utils.tables import format_grouped_table


def _profiled(args, func, profile_path) -> int:
    """Run *func*; with ``--profile``, wrap it in cProfile and dump pstats.

    The dump is readable with ``python -m pstats <path>`` (or
    ``pstats.Stats(path)``) to find where an experiment or analysis run
    spends its time.
    """
    if not getattr(args, "profile", False):
        return func()
    import cProfile

    profile_path = Path(profile_path)
    profile_path.parent.mkdir(parents=True, exist_ok=True)
    profiler = cProfile.Profile()
    try:
        rc = profiler.runcall(func)
    finally:
        profiler.dump_stats(profile_path)
        print(f"profile (pstats) written -> {profile_path}")
    return rc


def _cmd_record(args) -> int:
    dataset, _extractor, _encoder, runs = record_case_study_dataset(
        n_moves_per_axis=args.moves,
        seed=args.seed,
        n_bins=args.bins,
        sample_rate=args.sample_rate,
        feature_cache=args.feature_cache,
    )
    path = save_dataset(dataset, args.out)
    total = sum(len(r.segments) for r in runs)
    print(f"recorded {dataset} ({total} raw segments) -> {path}")
    return 0


def _cmd_graph(args) -> int:
    result = generate(printer_architecture(), monitored_flow_names())
    print(result.summary())
    print()
    print(flow_listing(result.graph))
    print()
    if args.dot:
        print(to_dot(result.graph))
    else:
        print(adjacency_listing(result.graph))
    return 0


def _cmd_train(args) -> int:
    dataset = load_dataset(args.dataset)
    train, test = dataset.split(args.test_fraction, seed=args.seed)
    cgan = ConditionalGAN(
        dataset.feature_dim, dataset.condition_dim, seed=args.seed
    )
    print(
        f"training CGAN on {len(train)} samples "
        f"({args.iterations} iterations, batch {args.batch_size}) ..."
    )
    progress = None
    trace_writer = None
    if args.trace:
        from repro.runtime.events import EpochProgress
        from repro.runtime.reporters import JsonlTraceWriter

        trace_writer = JsonlTraceWriter(args.trace)

        def progress(iteration, total, d_loss, g_loss):
            trace_writer.handle(
                EpochProgress(
                    pair=dataset.name,
                    iteration=iteration,
                    total_iterations=total,
                    d_loss=d_loss,
                    g_loss=g_loss,
                )
            )

    cgan.train(
        train,
        iterations=args.iterations,
        batch_size=args.batch_size,
        k_disc=args.k_disc,
        progress=progress,
        progress_every=max(1, args.iterations // 20) if args.trace else 0,
    )
    if trace_writer is not None:
        trace_writer.close()
        print(f"training trace ({trace_writer.events_written} events) -> {args.trace}")
    final = cgan.history.final()
    print(
        f"final losses: D={final['d_loss']:.3f} G={final['g_loss']:.3f} "
        f"(D fooled at 2ln2={2 * np.log(2):.3f})"
    )
    save_cgan(cgan, args.out)
    print(f"model saved -> {args.out}")
    return 0


def _cmd_analyze(args) -> int:
    # Profile dump lands next to the model artifacts, the closest thing
    # this read-only command has to an output directory.
    return _profiled(
        args, lambda: _run_analyze(args), Path(args.model) / "analyze_profile.pstats"
    )


def _run_analyze(args) -> int:
    from repro.security import security_analysis

    dataset = load_dataset(args.dataset)
    cgan = load_cgan(args.model)
    _train, test = dataset.split(args.test_fraction, seed=args.seed)
    # The Algorithm 3 table goes through the parallel engine; the rest
    # of the report (attacker, MI) runs serially as before.
    likelihood = security_analysis(
        cgan,
        test,
        h=args.h,
        g_size=args.g_size,
        root_entropy=args.seed,
        pair=dataset.name,
        workers=args.analysis_workers,
        chunk_size=args.chunk_size,
    )
    report = build_security_report(
        cgan,
        test,
        pair_name=dataset.name,
        h=args.h,
        g_size=args.g_size,
        seed=args.seed,
        likelihood=likelihood,
    )
    print(report.to_text())
    return 0


def _cmd_table1(args) -> int:
    dataset = load_dataset(args.dataset)
    cgan = load_cgan(args.model)
    train, test = dataset.split(args.test_fraction, seed=args.seed)
    ft = choose_analysis_feature(
        cgan, train, h=0.2, objective="peak", seed=args.seed
    )
    h_values = (0.2, 0.4, 0.6, 0.8, 1.0)
    sweep = likelihood_h_sweep(
        cgan,
        test,
        h_values=h_values,
        feature_indices=[ft],
        g_size=args.g_size,
        seed=args.seed,
    )
    conds = test.unique_conditions()
    values = [
        [
            [
                float(sweep[h].avg_correct[ci, 0]),
                float(sweep[h].avg_incorrect[ci, 0]),
            ]
            for h in h_values
        ]
        for ci in range(len(conds))
    ]
    print(
        format_grouped_table(
            [f"Cond{i + 1}" for i in range(len(conds))],
            [f"h={h:g}" for h in h_values],
            ["Cor", "Inc"],
            values,
            title=f"Table I (feature #{ft})",
        )
    )
    return 0


def _cmd_detect(args) -> int:
    from repro.security import (
        EmissionAttackDetector,
        axis_swap_attack,
        feature_leakage_profile,
        roc_curve,
    )

    dataset = load_dataset(args.dataset)
    cgan = load_cgan(args.model)
    train, test = dataset.split(args.test_fraction, seed=args.seed)
    top = np.argsort(feature_leakage_profile(train))[::-1][: args.top_features]
    detector = EmissionAttackDetector(
        cgan,
        dataset.unique_conditions(),
        h=args.h,
        g_size=args.g_size,
        feature_indices=top,
        seed=args.seed,
    ).fit()
    detector.calibrate(train, false_positive_rate=args.fpr)
    attack_features, attack_claims = axis_swap_attack(test, seed=args.seed)
    report = detector.evaluate(test, attack_features, attack_claims)
    print(report.summary())
    curve = roc_curve(report.clean_scores, report.attack_scores)
    print()
    print(curve.to_table())
    return 0


def _load_claim_track(path):
    """Read a ClaimTrack from a JSON file.

    Schema::

        {
          "boundaries": [0, 4800, ...],        # span start samples
          "span_conditions": [0, 1, ...],      # index into "conditions"
          "conditions": [[1,0,0], [0,1,0], ...]
        }
    """
    import json

    from repro.streaming import ClaimTrack

    spec = json.loads(Path(path).read_text())
    missing = {"boundaries", "span_conditions", "conditions"} - set(spec)
    if missing:
        raise SystemExit(f"error: claims file {path} missing keys {sorted(missing)}")
    return ClaimTrack(
        np.asarray(spec["boundaries"], dtype=np.int64),
        np.asarray(spec["span_conditions"], dtype=np.int64),
        np.asarray(spec["conditions"], dtype=float),
    )


def _cmd_stream(args) -> int:
    import json

    from repro.runtime.events import EventBus
    from repro.runtime.reporters import ConsoleProgressReporter
    from repro.streaming import (
        StreamSession,
        TraceReplay,
        calibrate_stream_monitor,
        inject_claim_attack,
        synthetic_printer_stream,
    )

    if bool(args.wav) == bool(args.synthetic):
        print("error: exactly one of --wav or --synthetic is required", file=sys.stderr)
        return 2

    sampler = None
    if args.model:
        sampler = load_cgan(args.model)

    if args.synthetic:
        scenario = synthetic_printer_stream(
            n_moves_per_axis=args.moves, seed=args.seed, n_bins=args.bins
        )
        samples, sample_rate = scenario.samples, scenario.sample_rate
        cal_samples, cal_claims = samples, scenario.claims
        claims = scenario.claims
        attacked_spans = []
        if args.attack_spans > 0:
            attacked = inject_claim_attack(
                scenario, n_spans=args.attack_spans, seed=args.seed
            )
            claims = attacked.claims
            attacked_spans = attacked.attacked_spans
    else:
        from repro.manufacturing.wav import read_wav

        trace = read_wav(args.wav)
        samples, sample_rate = trace.samples, trace.sample_rate
        claims = _load_claim_track(args.claims)
        if args.calibration_wav:
            cal = read_wav(args.calibration_wav)
            cal_samples = cal.samples
            cal_claims = _load_claim_track(args.calibration_claims or args.claims)
        else:
            cal_samples, cal_claims = samples, claims
        attacked_spans = []

    calibration = calibrate_stream_monitor(
        cal_samples,
        sample_rate,
        cal_claims,
        window_size=args.window,
        hop_size=args.hop,
        n_bins=args.bins,
        sampler=sampler,
        h=args.h,
        g_size=args.g_size,
        root_entropy=args.seed,
        detector=args.detector,
        drift=args.drift,
        threshold=args.threshold,
    )

    bus = EventBus()
    if args.progress:
        bus.subscribe(ConsoleProgressReporter(show_epochs=False).handle)
    session = StreamSession(
        TraceReplay(
            samples,
            sample_rate,
            chunk_size=args.chunk_size,
            rate=args.rate,
            speedup=args.speedup,
        ),
        extractor=calibration.extractor,
        scorer=calibration.scorer,
        claims=claims,
        detector=calibration.make_detector(),
        window_size=args.window,
        hop_size=args.hop,
        sample_rate=sample_rate,
        batch_windows=args.batch_windows,
        queue_chunks=args.queue_chunks,
        policy=args.policy.replace("-", "_"),
        bus=bus,
        name=args.name,
    )
    metrics = session.run()

    summary = metrics.to_dict()
    summary["window_size"] = args.window
    summary["hop_size"] = args.hop
    summary["rate"] = args.rate
    summary["attacked_spans"] = attacked_spans
    if args.metrics_out:
        out = Path(args.metrics_out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(summary, indent=2) + "\n")
        print(f"stream metrics -> {out}")
    lat = metrics.latency_percentiles()
    print(
        f"stream {metrics.stream}: {metrics.windows_scored} windows scored, "
        f"{len(metrics.alarms)} alarm(s), {metrics.windows_dropped} dropped, "
        f"{metrics.windows_failed} failed"
    )
    print(
        f"  throughput {metrics.windows_per_second:.0f} win/s "
        f"({metrics.realtime_factor:.1f}x real time), scoring latency "
        f"p50={lat['p50_ms']:.1f}ms p95={lat['p95_ms']:.1f}ms"
    )
    if metrics.alarms:
        print(f"  alarm windows: {metrics.alarms}")

    rc = 0
    if metrics.error:
        print("stream producer error:", metrics.error.strip().splitlines()[-1],
              file=sys.stderr)
        rc = 1
    if args.expect_detection and not metrics.alarms:
        print("FAIL: --expect-detection but no alarm fired", file=sys.stderr)
        rc = 1
    if args.max_dropped is not None and metrics.windows_dropped > args.max_dropped:
        print(
            f"FAIL: {metrics.windows_dropped} windows dropped "
            f"(--max-dropped {args.max_dropped})",
            file=sys.stderr,
        )
        rc = 1
    return rc


def _cmd_experiment(args) -> int:
    if not args.out:
        print(
            "error: --out is required to run an experiment "
            "(see also 'experiment status' / 'experiment invalidate')",
            file=sys.stderr,
        )
        return 2
    return _profiled(
        args, lambda: _run_experiment(args), Path(args.out) / "profile.pstats"
    )


def _run_experiment(args) -> int:
    from repro.pipeline.experiment import ExperimentConfig, run_experiment
    from repro.runtime.events import EventBus
    from repro.runtime.reporters import ConsoleProgressReporter

    if args.config:
        config = ExperimentConfig.from_json(args.config)
    else:
        config = ExperimentConfig(
            seed=args.seed,
            n_moves_per_axis=args.moves,
            iterations=args.iterations,
            workers=args.workers,
            executor=args.executor,
            analysis_workers=args.analysis_workers,
            chunk_size=args.chunk_size,
            trace=args.trace,
            feature_cache=args.feature_cache,
            checkpoint_every=args.checkpoint_every,
        )
    bus = EventBus()
    if args.progress:
        bus.subscribe(ConsoleProgressReporter(show_epochs=False).handle)
    result = run_experiment(config, args.out, bus=bus, resume=args.resume)
    print(f"experiment artifacts written to {result.directory}")
    for key, value in result.summary.items():
        print(f"  {key}: {value}")
    return 0


def _cmd_experiment_status(args) -> int:
    from repro.pipeline.experiment import experiment_status

    rows = experiment_status(args.dir)
    if not rows:
        print(f"no completed stages recorded under {args.dir}")
        return 0
    for row in rows:
        state = "ok" if row["verified"] else "STALE"
        print(
            f"{row['stage']:<24} {state:<6} {row['seconds']:8.2f}s  "
            f"fp={row['fingerprint']}  {', '.join(row['outputs'])}"
        )
    return 0


def _cmd_experiment_invalidate(args) -> int:
    from repro.pipeline.experiment import invalidate_stage

    if invalidate_stage(args.dir, args.stage):
        print(
            f"invalidated stage {args.stage!r} in {args.dir}; the next "
            "resumed run re-executes it and everything downstream"
        )
        return 0
    print(f"no stage {args.stage!r} recorded in {args.dir}", file=sys.stderr)
    return 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="gansec",
        description="GAN-Sec: CGAN-based security analysis of CPPS (DATE 2019 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("record", help="simulate the printer and save a dataset")
    p.add_argument("--out", required=True, help="output .npz path")
    p.add_argument("--moves", type=int, default=35, help="moves per axis")
    p.add_argument("--bins", type=int, default=100, help="frequency bins")
    p.add_argument("--sample-rate", type=float, default=12000.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--feature-cache", metavar="DIR",
                   help="on-disk raw-feature cache directory (reruns over "
                        "identical audio skip CWT extraction)")
    p.set_defaults(func=_cmd_record)

    p = sub.add_parser("graph", help="run Algorithm 1 and print G_CPPS")
    p.add_argument("--dot", action="store_true", help="print Graphviz DOT")
    p.set_defaults(func=_cmd_graph)

    p = sub.add_parser("train", help="train a CGAN on a recorded dataset")
    p.add_argument("--dataset", required=True)
    p.add_argument("--out", required=True, help="output model directory")
    p.add_argument("--iterations", type=int, default=2500)
    p.add_argument("--batch-size", type=int, default=32)
    p.add_argument("--k-disc", type=int, default=1)
    p.add_argument("--test-fraction", type=float, default=0.25)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--trace", help="write an EpochProgress JSONL trace here")
    p.set_defaults(func=_cmd_train)

    p = sub.add_parser("analyze", help="print the security report")
    p.add_argument("--dataset", required=True)
    p.add_argument("--model", required=True)
    p.add_argument("--h", type=float, default=0.2, help="Parzen window width")
    p.add_argument("--g-size", type=int, default=200)
    p.add_argument("--test-fraction", type=float, default=0.25)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--analysis-workers", type=int, default=1,
                   help="parallel (pair, condition) analysis workers")
    p.add_argument("--chunk-size", type=int, default=None,
                   help="test rows per Parzen scoring block "
                        "(default: memory-budget derived)")
    p.add_argument("--profile", action="store_true",
                   help="run under cProfile; dump pstats next to the model")
    p.set_defaults(func=_cmd_analyze)

    p = sub.add_parser(
        "experiment",
        help="run a full case-study experiment into an artifact directory",
    )
    p.add_argument("--out", help="artifact directory")
    p.add_argument("--config", help="JSON ExperimentConfig (overrides flags)")
    resume_group = p.add_mutually_exclusive_group()
    resume_group.add_argument(
        "--resume", dest="resume", action="store_true",
        help="skip stages already up to date in --out (default)")
    resume_group.add_argument(
        "--fresh", dest="resume", action="store_false",
        help="ignore any prior state in --out and re-run every stage")
    p.set_defaults(resume=True)
    p.add_argument("--checkpoint-every", type=int, default=500,
                   help="training-checkpoint cadence in iterations "
                        "(0 disables crash-recovery checkpoints)")
    p.add_argument("--moves", type=int, default=30)
    p.add_argument("--iterations", type=int, default=2000)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workers", type=int, default=1,
                   help="parallel pair-training workers")
    p.add_argument("--executor", choices=("serial", "thread", "process"),
                   help="pair-training executor (default: by worker count)")
    p.add_argument("--analysis-workers", type=int, default=1,
                   help="parallel (pair, condition) analysis workers")
    p.add_argument("--chunk-size", type=int, default=None,
                   help="test rows per Parzen scoring block "
                        "(default: memory-budget derived)")
    p.add_argument("--trace", action="store_true",
                   help="write training events to <out>/trace.jsonl")
    p.add_argument("--progress", action="store_true",
                   help="print live training progress to stderr")
    p.add_argument("--feature-cache", metavar="DIR",
                   help="on-disk raw-feature cache directory (reruns over "
                        "identical audio skip CWT extraction)")
    p.add_argument("--profile", action="store_true",
                   help="run under cProfile; dump pstats to <out>/profile.pstats")
    p.set_defaults(func=_cmd_experiment)
    exp_sub = p.add_subparsers(dest="action", metavar="{status,invalidate}")
    ps = exp_sub.add_parser(
        "status", help="show per-stage manifest state of a run directory"
    )
    ps.add_argument("dir", help="experiment run directory")
    ps.set_defaults(func=_cmd_experiment_status)
    pi = exp_sub.add_parser(
        "invalidate",
        help="drop a stage's record so the next resume re-runs it",
    )
    pi.add_argument("dir", help="experiment run directory")
    pi.add_argument("stage", help="stage name (see 'experiment status')")
    pi.set_defaults(func=_cmd_experiment_invalidate)

    p = sub.add_parser(
        "stream",
        help="run the online attack detector over a replayed trace",
    )
    src_group = p.add_mutually_exclusive_group()
    src_group.add_argument("--wav", help="monitor a recorded WAV trace")
    src_group.add_argument("--synthetic", action="store_true",
                           help="monitor a synthetic printer trace")
    p.add_argument("--claims", help="claimed-condition JSON for --wav "
                                    "(boundaries/span_conditions/conditions)")
    p.add_argument("--calibration-wav",
                   help="clean reference WAV for calibration "
                        "(default: the monitored trace itself)")
    p.add_argument("--calibration-claims",
                   help="claims JSON for --calibration-wav")
    p.add_argument("--model", help="trained CGAN directory; omitted = "
                                   "empirical per-condition calibration")
    p.add_argument("--moves", type=int, default=4,
                   help="synthetic mode: calibration moves per axis")
    p.add_argument("--attack-spans", type=int, default=2,
                   help="synthetic mode: G-code spans with forged claims "
                        "(0 = clean run)")
    p.add_argument("--window", type=int, default=600,
                   help="analysis window in samples")
    p.add_argument("--hop", type=int, default=300, help="hop in samples")
    p.add_argument("--bins", type=int, default=100, help="frequency bins")
    p.add_argument("--h", type=float, default=0.2, help="Parzen window width")
    p.add_argument("--g-size", type=int, default=128,
                   help="density samples per condition")
    p.add_argument("--detector", choices=("cusum", "ewma"), default="cusum")
    p.add_argument("--drift", type=float, default=0.5,
                   help="CUSUM per-window allowance (z units)")
    p.add_argument("--threshold", type=float, default=10.0,
                   help="decision-layer alarm threshold")
    p.add_argument("--chunk-size", type=int, default=1024,
                   help="replay chunk size in samples")
    p.add_argument("--rate", choices=("max", "realtime"), default="max",
                   help="replay pacing")
    p.add_argument("--speedup", type=float, default=1.0,
                   help="realtime pacing multiplier")
    p.add_argument("--batch-windows", type=int, default=32,
                   help="windows per scoring batch")
    p.add_argument("--queue-chunks", type=int, default=16,
                   help="bounded chunk-queue capacity")
    p.add_argument("--policy", choices=("block", "drop-oldest"),
                   default="block", help="backpressure policy")
    p.add_argument("--name", default="stream", help="stream label in events")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--progress", action="store_true",
                   help="print live stream events to stderr")
    p.add_argument("--metrics-out", metavar="PATH",
                   help="write the session metrics JSON here")
    p.add_argument("--expect-detection", action="store_true",
                   help="exit 1 unless at least one alarm fired")
    p.add_argument("--max-dropped", type=int, default=None,
                   help="exit 1 if more than this many windows were dropped")
    p.set_defaults(func=_cmd_stream)

    p = sub.add_parser(
        "detect", help="evaluate integrity-attack detection (axis swap)"
    )
    p.add_argument("--dataset", required=True)
    p.add_argument("--model", required=True)
    p.add_argument("--h", type=float, default=0.2)
    p.add_argument("--g-size", type=int, default=200)
    p.add_argument("--top-features", type=int, default=20,
                   help="score on the k most leaky feature bins")
    p.add_argument("--fpr", type=float, default=0.05,
                   help="false-positive budget for threshold calibration")
    p.add_argument("--test-fraction", type=float, default=0.25)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_detect)

    p = sub.add_parser("table1", help="regenerate the paper's Table I")
    p.add_argument("--dataset", required=True)
    p.add_argument("--model", required=True)
    p.add_argument("--g-size", type=int, default=300)
    p.add_argument("--test-fraction", type=float, default=0.25)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_table1)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
