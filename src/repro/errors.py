"""Exception hierarchy for the GAN-Sec reproduction library.

All library-raised exceptions derive from :class:`GanSecError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` from misuse of numpy, etc.)
propagate unchanged.
"""

from __future__ import annotations


class GanSecError(Exception):
    """Base class for every exception raised by this library."""


class ConfigurationError(GanSecError, ValueError):
    """An object was constructed with invalid or inconsistent parameters.

    Also a :class:`ValueError` so that generic callers validating
    parameters (e.g. frequency grids) can catch the standard type.
    """


class ShapeError(GanSecError):
    """An array argument had the wrong shape or dimensionality."""


class NotFittedError(GanSecError):
    """A model-like object was used before being trained/fitted."""


class DataError(GanSecError):
    """Input data is empty, misaligned, or otherwise unusable."""


class GCodeError(GanSecError):
    """A G-code program could not be parsed or executed."""


class ArchitectureError(GanSecError):
    """A CPPS architecture description is malformed (unknown nodes,
    duplicate flows, flows referencing missing components, ...)."""


class SerializationError(GanSecError):
    """A model or dataset could not be saved or loaded."""


class AnalysisError(GanSecError):
    """One or more (pair, condition) security-analysis jobs failed.

    Raised by the Algorithm 3 engine (:mod:`repro.security.engine`)
    *after* every job has been attempted, mirroring
    :class:`PairTrainingError`'s failure isolation for training.

    Attributes
    ----------
    failures:
        Mapping of ``(pair label, condition index)`` -> formatted
        error/traceback string.
    """

    def __init__(self, failures: dict):
        self.failures = dict(failures)
        lines = [f"{len(self.failures)} analysis job(s) failed:"]
        for (pair, cond_index), err in self.failures.items():
            first_line = (
                str(err).strip().splitlines()[-1] if str(err).strip() else str(err)
            )
            lines.append(f"  {pair} condition #{cond_index}: {first_line}")
        super().__init__("\n".join(lines))


class PairTrainingError(GanSecError):
    """One or more flow pairs failed to train in a batch.

    Raised by :meth:`repro.pipeline.gansec.GANSec.train_models` *after*
    every pair has been attempted: failures are isolated per pair, the
    successfully trained models are kept on the pipeline, and this
    exception aggregates what went wrong.

    Attributes
    ----------
    failures:
        Mapping of failed pair key -> formatted error/traceback string.
    completed:
        Keys of the pairs that trained successfully in the same batch.
    """

    def __init__(self, failures: dict, completed=()):
        self.failures = dict(failures)
        self.completed = list(completed)
        lines = [
            f"{len(self.failures)} of "
            f"{len(self.failures) + len(self.completed)} flow pairs failed to train:"
        ]
        for key, err in self.failures.items():
            first_line = str(err).strip().splitlines()[-1] if str(err).strip() else str(err)
            lines.append(f"  {key}: {first_line}")
        super().__init__("\n".join(lines))
