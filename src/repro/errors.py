"""Exception hierarchy for the GAN-Sec reproduction library.

All library-raised exceptions derive from :class:`GanSecError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` from misuse of numpy, etc.)
propagate unchanged.
"""

from __future__ import annotations


class GanSecError(Exception):
    """Base class for every exception raised by this library."""


class ConfigurationError(GanSecError):
    """An object was constructed with invalid or inconsistent parameters."""


class ShapeError(GanSecError):
    """An array argument had the wrong shape or dimensionality."""


class NotFittedError(GanSecError):
    """A model-like object was used before being trained/fitted."""


class DataError(GanSecError):
    """Input data is empty, misaligned, or otherwise unusable."""


class GCodeError(GanSecError):
    """A G-code program could not be parsed or executed."""


class ArchitectureError(GanSecError):
    """A CPPS architecture description is malformed (unknown nodes,
    duplicate flows, flows referencing missing components, ...)."""


class SerializationError(GanSecError):
    """A model or dataset could not be saved or loaded."""
