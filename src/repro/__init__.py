"""GAN-Sec reproduction: CGAN-based security analysis of Cyber-Physical
Production Systems (Chhetri et al., DATE 2019).

Subpackages
-----------
``repro.nn``
    From-scratch numpy neural-network framework (the deep-learning
    substrate Algorithm 2 runs on).
``repro.dsp``
    Signal processing: Morlet CWT, STFT, and the 100-bin 50–5000 Hz
    frequency-feature extraction from Section IV-B.
``repro.manufacturing``
    Simulated additive-manufacturing testbed: G-code, kinematics, stepper
    motors, acoustic-emission synthesis (substitute for the paper's
    physical 3D printer + contact microphone).
``repro.flows``
    Signal/energy-flow abstractions and condition encodings (Section I-B).
``repro.graph``
    CPPS architecture graphs and Algorithm 1 (flow-pair extraction).
``repro.gan``
    Conditional GAN and the Algorithm 2 training loop.
``repro.security``
    Parzen-window likelihood analysis (Algorithm 3), confidentiality /
    integrity / availability analyses, mutual information.
``repro.pipeline``
    The end-to-end GAN-Sec methodology (Figure 4).
"""

__version__ = "1.0.0"

from repro.errors import (
    ArchitectureError,
    ConfigurationError,
    DataError,
    GCodeError,
    GanSecError,
    NotFittedError,
    SerializationError,
    ShapeError,
)

__all__ = [
    "__version__",
    "ArchitectureError",
    "ConfigurationError",
    "DataError",
    "GCodeError",
    "GanSecError",
    "NotFittedError",
    "SerializationError",
    "ShapeError",
]
