"""Saving and loading trained Conditional GANs.

A CGAN is stored as a directory containing the generator and
discriminator weight archives plus a JSON metadata file describing the
model configuration (dims, noise prior, loss, training progress).
Loading rebuilds a :class:`~repro.gan.cgan.ConditionalGAN` with default
layer stacks of the recorded widths and restores both networks —
enough to resume analysis (Algorithm 3, attackers, detectors) without
retraining.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import SerializationError
from repro.gan.cgan import ConditionalGAN
from repro.gan.noise import GaussianNoise, UniformNoise
from repro.nn.layers import Dense
from repro.nn.serialization import load_weights, save_weights

_META_NAME = "cgan.json"
_GEN_NAME = "generator.npz"
_DISC_NAME = "discriminator.npz"
_FORMAT_VERSION = 1


def _layer_widths(network) -> list:
    """Hidden Dense widths of a default-style stack (all but the head)."""
    widths = []
    for layer in network.layers[:-1]:
        if not isinstance(layer, Dense):
            raise SerializationError(
                "only default Dense generator/discriminator stacks are "
                f"serializable; found {layer!r}"
            )
        widths.append(layer.units)
    return widths


def save_cgan(cgan: ConditionalGAN, directory) -> Path:
    """Serialize *cgan* into *directory* (created if needed)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    if isinstance(cgan.noise, GaussianNoise):
        noise_spec = {"kind": "gaussian", "dim": cgan.noise.dim, "std": cgan.noise.std}
    elif isinstance(cgan.noise, UniformNoise):
        noise_spec = {
            "kind": "uniform",
            "dim": cgan.noise.dim,
            "low": cgan.noise.low,
            "high": cgan.noise.high,
        }
    else:
        raise SerializationError(
            f"cannot serialize custom noise prior {cgan.noise!r}"
        )
    meta = {
        "version": _FORMAT_VERSION,
        "feature_dim": cgan.feature_dim,
        "condition_dim": cgan.condition_dim,
        "noise": noise_spec,
        "generator_hidden": _layer_widths(cgan.generator),
        "discriminator_hidden": _layer_widths(cgan.discriminator),
        "generator_loss": cgan.generator_loss_name,
        "trained_iterations": cgan.trained_iterations,
    }
    (directory / _META_NAME).write_text(json.dumps(meta, indent=2))
    save_weights(cgan.generator, directory / _GEN_NAME)
    save_weights(cgan.discriminator, directory / _DISC_NAME)
    return directory


def load_cgan(directory) -> ConditionalGAN:
    """Rebuild a CGAN from a directory written by :func:`save_cgan`."""
    directory = Path(directory)
    meta_path = directory / _META_NAME
    if not meta_path.exists():
        raise SerializationError(f"no CGAN metadata at {meta_path}")
    try:
        meta = json.loads(meta_path.read_text())
    except json.JSONDecodeError as exc:
        raise SerializationError(f"corrupt CGAN metadata: {exc}") from exc
    if meta.get("version") != _FORMAT_VERSION:
        raise SerializationError(
            f"unsupported CGAN format version {meta.get('version')}"
        )
    noise_spec = meta["noise"]
    if noise_spec["kind"] == "gaussian":
        noise = GaussianNoise(noise_spec["dim"], std=noise_spec["std"])
    elif noise_spec["kind"] == "uniform":
        noise = UniformNoise(
            noise_spec["dim"], low=noise_spec["low"], high=noise_spec["high"]
        )
    else:
        raise SerializationError(f"unknown noise kind {noise_spec['kind']!r}")

    from repro.gan.cgan import default_discriminator, default_generator

    cgan = ConditionalGAN(
        meta["feature_dim"],
        meta["condition_dim"],
        noise=noise,
        generator_layers=default_generator(
            meta["feature_dim"], hidden=tuple(meta["generator_hidden"])
        ),
        discriminator_layers=default_discriminator(
            hidden=tuple(meta["discriminator_hidden"])
        ),
        generator_loss=meta["generator_loss"],
        seed=0,
    )
    load_weights(cgan.generator, directory / _GEN_NAME)
    load_weights(cgan.discriminator, directory / _DISC_NAME)
    cgan.trained_iterations = int(meta["trained_iterations"])
    return cgan
