"""Saving and loading trained Conditional GANs.

A CGAN is stored as a directory containing the generator and
discriminator weight archives plus a JSON metadata file describing the
model configuration (dims, noise prior, loss, training progress).
Loading rebuilds a :class:`~repro.gan.cgan.ConditionalGAN` with default
layer stacks of the recorded widths and restores both networks —
enough to resume analysis (Algorithm 3, attackers, detectors) without
retraining.

Training *checkpoints* extend this with everything an interrupted
Algorithm 2 run needs to continue bitwise-identically: both optimizer
states, the loss history so far, and the training RNG stream positions
(see :class:`~repro.gan.cgan.TrainingCheckpointState`).  A checkpoint
directory is valid only when its ``checkpoint.json`` marker is present
and every component file matches the digest recorded in the marker —
the marker is deleted before any component is rewritten and re-created
last, so a crash mid-checkpoint leaves a directory that is *detectably*
incomplete rather than silently mixed.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.artifacts.store import sha256_file
from repro.errors import DataError, SerializationError
from repro.gan.cgan import ConditionalGAN, TrainingCheckpointState
from repro.gan.history import TrainingHistory
from repro.gan.noise import GaussianNoise, UniformNoise
from repro.nn.layers import Dense
from repro.nn.serialization import (
    load_optimizer_state,
    load_weights,
    save_optimizer_state,
    save_weights,
)
from repro.utils.atomic import atomic_write_text

_META_NAME = "cgan.json"
_GEN_NAME = "generator.npz"
_DISC_NAME = "discriminator.npz"
_FORMAT_VERSION = 1

CHECKPOINT_SCHEMA = "gansec-train-checkpoint/v1"
CHECKPOINT_MARKER = "checkpoint.json"
_CKPT_FILES = (
    "generator.npz",
    "discriminator.npz",
    "opt_generator.npz",
    "opt_discriminator.npz",
    "history.csv",
)


def _layer_widths(network) -> list:
    """Hidden Dense widths of a default-style stack (all but the head)."""
    widths = []
    for layer in network.layers[:-1]:
        if not isinstance(layer, Dense):
            raise SerializationError(
                "only default Dense generator/discriminator stacks are "
                f"serializable; found {layer!r}"
            )
        widths.append(layer.units)
    return widths


def save_cgan(cgan: ConditionalGAN, directory) -> Path:
    """Serialize *cgan* into *directory* (created if needed)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    if isinstance(cgan.noise, GaussianNoise):
        noise_spec = {"kind": "gaussian", "dim": cgan.noise.dim, "std": cgan.noise.std}
    elif isinstance(cgan.noise, UniformNoise):
        noise_spec = {
            "kind": "uniform",
            "dim": cgan.noise.dim,
            "low": cgan.noise.low,
            "high": cgan.noise.high,
        }
    else:
        raise SerializationError(
            f"cannot serialize custom noise prior {cgan.noise!r}"
        )
    meta = {
        "version": _FORMAT_VERSION,
        "feature_dim": cgan.feature_dim,
        "condition_dim": cgan.condition_dim,
        "noise": noise_spec,
        "generator_hidden": _layer_widths(cgan.generator),
        "discriminator_hidden": _layer_widths(cgan.discriminator),
        "generator_loss": cgan.generator_loss_name,
        "trained_iterations": cgan.trained_iterations,
    }
    atomic_write_text(directory / _META_NAME, json.dumps(meta, indent=2))
    save_weights(cgan.generator, directory / _GEN_NAME)
    save_weights(cgan.discriminator, directory / _DISC_NAME)
    return directory


def load_cgan(directory) -> ConditionalGAN:
    """Rebuild a CGAN from a directory written by :func:`save_cgan`."""
    directory = Path(directory)
    meta_path = directory / _META_NAME
    if not meta_path.exists():
        raise SerializationError(f"no CGAN metadata at {meta_path}")
    try:
        meta = json.loads(meta_path.read_text())
    except json.JSONDecodeError as exc:
        raise SerializationError(f"corrupt CGAN metadata: {exc}") from exc
    if meta.get("version") != _FORMAT_VERSION:
        raise SerializationError(
            f"unsupported CGAN format version {meta.get('version')}"
        )
    noise_spec = meta["noise"]
    if noise_spec["kind"] == "gaussian":
        noise = GaussianNoise(noise_spec["dim"], std=noise_spec["std"])
    elif noise_spec["kind"] == "uniform":
        noise = UniformNoise(
            noise_spec["dim"], low=noise_spec["low"], high=noise_spec["high"]
        )
    else:
        raise SerializationError(f"unknown noise kind {noise_spec['kind']!r}")

    from repro.gan.cgan import default_discriminator, default_generator

    cgan = ConditionalGAN(
        meta["feature_dim"],
        meta["condition_dim"],
        noise=noise,
        generator_layers=default_generator(
            meta["feature_dim"], hidden=tuple(meta["generator_hidden"])
        ),
        discriminator_layers=default_discriminator(
            hidden=tuple(meta["discriminator_hidden"])
        ),
        generator_loss=meta["generator_loss"],
        seed=0,
    )
    load_weights(cgan.generator, directory / _GEN_NAME)
    load_weights(cgan.discriminator, directory / _DISC_NAME)
    cgan.trained_iterations = int(meta["trained_iterations"])
    return cgan


def save_training_checkpoint(
    cgan: ConditionalGAN,
    state: TrainingCheckpointState,
    directory,
    *,
    fingerprint: str = "",
) -> Path:
    """Persist a mid-training checkpoint of *cgan* into *directory*.

    Crash-safety protocol: the ``checkpoint.json`` marker is deleted
    *first*, every component (weights, optimizer states, history) is
    written atomically, and the marker is re-created *last* carrying a
    SHA-256 digest of each component.  A crash at any point therefore
    leaves either the previous complete checkpoint (marker intact, old
    components still matching it is impossible — the marker is already
    gone) or a marker-less / digest-mismatched directory that
    :func:`restore_training_checkpoint` rejects; never a silently mixed
    state.

    *fingerprint* is an opaque caller token (e.g. the training stage's
    config fingerprint) verified on restore, so a checkpoint from a
    different configuration is never resumed.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    marker = directory / CHECKPOINT_MARKER
    marker.unlink(missing_ok=True)
    save_weights(cgan.generator, directory / "generator.npz")
    save_weights(cgan.discriminator, directory / "discriminator.npz")
    save_optimizer_state(cgan._g_opt, directory / "opt_generator.npz")
    save_optimizer_state(cgan._d_opt, directory / "opt_discriminator.npz")
    cgan.history.to_csv(directory / "history.csv")
    payload = {
        "schema": CHECKPOINT_SCHEMA,
        "iteration": state.iteration,
        "total_iterations": state.total_iterations,
        "trained_iterations": cgan.trained_iterations,
        "rng_state_start": state.rng_state_start,
        "rng_state_now": state.rng_state_now,
        "fingerprint": fingerprint,
        "files": {name: sha256_file(directory / name) for name in _CKPT_FILES},
    }
    atomic_write_text(marker, json.dumps(payload, indent=2))
    return directory


def restore_training_checkpoint(
    cgan: ConditionalGAN,
    directory,
    *,
    expected_fingerprint: str | None = None,
) -> TrainingCheckpointState:
    """Restore *cgan* from a checkpoint directory; returns the resume state.

    Raises :class:`~repro.errors.SerializationError` unless the marker
    is present, parses, matches *expected_fingerprint* (when given), and
    every component file matches its recorded digest — callers treat
    that as "no usable checkpoint" and fall back to training from
    scratch, which still produces the identical final model (the
    checkpoint only saves time, never changes results).

    On success the CGAN's networks, optimizer states, loss history, and
    iteration counter hold exactly what they held when the checkpoint
    was written; pass the returned state as ``resume=`` to
    :meth:`~repro.gan.cgan.ConditionalGAN.train` to continue.
    """
    directory = Path(directory)
    marker = directory / CHECKPOINT_MARKER
    if not marker.is_file():
        raise SerializationError(f"no checkpoint marker at {marker}")
    try:
        payload = json.loads(marker.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise SerializationError(
            f"corrupt checkpoint marker {marker}: {exc}"
        ) from exc
    if payload.get("schema") != CHECKPOINT_SCHEMA:
        raise SerializationError(
            f"unknown checkpoint schema {payload.get('schema')!r} in {marker}"
        )
    if (
        expected_fingerprint is not None
        and payload.get("fingerprint") != expected_fingerprint
    ):
        raise SerializationError(
            f"checkpoint in {directory} was written for a different "
            "configuration; refusing to resume from it"
        )
    digests = payload.get("files", {})
    for name in _CKPT_FILES:
        path = directory / name
        want = digests.get(name)
        if not want or not path.is_file() or sha256_file(path) != want:
            raise SerializationError(
                f"checkpoint component {name} in {directory} is missing or "
                "does not match the digest in the marker"
            )
    try:
        load_weights(cgan.generator, directory / "generator.npz")
        load_weights(cgan.discriminator, directory / "discriminator.npz")
        load_optimizer_state(cgan._g_opt, directory / "opt_generator.npz")
        load_optimizer_state(cgan._d_opt, directory / "opt_discriminator.npz")
        cgan.history = TrainingHistory.from_csv(directory / "history.csv")
        cgan.trained_iterations = int(payload["trained_iterations"])
        return TrainingCheckpointState(
            iteration=int(payload["iteration"]),
            total_iterations=int(payload["total_iterations"]),
            rng_state_start=payload["rng_state_start"],
            rng_state_now=payload["rng_state_now"],
        )
    except (DataError, KeyError, TypeError, ValueError) as exc:
        raise SerializationError(
            f"cannot restore checkpoint from {directory}: {exc}"
        ) from exc
