"""Training history records for GAN runs (drives Figures 7 and 9)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import DataError


@dataclass
class TrainingHistory:
    """Per-iteration loss traces of an Algorithm 2 run.

    Attributes
    ----------
    iterations:
        Global iteration numbers at which metrics were recorded.
    d_loss:
        Discriminator loss ``-(mean log D(real) + mean log(1-D(fake)))``.
        Low = D wins; rises toward ``2 ln 2 ≈ 1.386`` at the ideal
        equilibrium where D cannot tell real from fake.
    g_loss:
        Generator (non-saturating) loss ``-mean log D(G(z|c))``.  High =
        D easily spots fakes; falls toward ``ln 2 ≈ 0.693`` as G learns.
    g_objective:
        The paper's literal Line-10 quantity ``mean log(1 - D(G(z|c)))``.
    n_train:
        Training-set size in effect at each record (Figure 7 grows data
        with iterations).
    """

    iterations: list = field(default_factory=list)
    d_loss: list = field(default_factory=list)
    g_loss: list = field(default_factory=list)
    g_objective: list = field(default_factory=list)
    n_train: list = field(default_factory=list)

    def record(self, iteration, d_loss, g_loss, g_objective, n_train):
        self.iterations.append(int(iteration))
        self.d_loss.append(float(d_loss))
        self.g_loss.append(float(g_loss))
        self.g_objective.append(float(g_objective))
        self.n_train.append(int(n_train))

    def __len__(self):
        return len(self.iterations)

    def extend(self, other: "TrainingHistory") -> "TrainingHistory":
        """Append another history (e.g. from a continued run)."""
        self.iterations.extend(other.iterations)
        self.d_loss.extend(other.d_loss)
        self.g_loss.extend(other.g_loss)
        self.g_objective.extend(other.g_objective)
        self.n_train.extend(other.n_train)
        return self

    def smoothed(self, window: int = 25) -> dict:
        """Moving-average loss curves for plotting (Figure 7 style)."""
        if len(self) == 0:
            raise DataError("history is empty")
        window = max(1, min(window, len(self)))
        kernel = np.ones(window) / window

        def smooth(xs):
            return np.convolve(np.asarray(xs, dtype=float), kernel, mode="valid")

        return {
            "iterations": np.asarray(self.iterations)[window - 1 :],
            "d_loss": smooth(self.d_loss),
            "g_loss": smooth(self.g_loss),
            "g_objective": smooth(self.g_objective),
        }

    def to_csv(self, path) -> "Path":
        """Write the history as CSV (iteration, d_loss, g_loss,
        g_objective, n_train) for external plotting tools."""
        import csv
        from pathlib import Path

        from repro.utils.atomic import atomic_open

        path = Path(path)
        with atomic_open(path, "w") as fh:
            writer = csv.writer(fh)
            writer.writerow(
                ["iteration", "d_loss", "g_loss", "g_objective", "n_train"]
            )
            for row in zip(
                self.iterations,
                self.d_loss,
                self.g_loss,
                self.g_objective,
                self.n_train,
            ):
                writer.writerow(row)
        return path

    @classmethod
    def from_csv(cls, path) -> "TrainingHistory":
        """Read a history previously written by :meth:`to_csv`."""
        import csv
        from pathlib import Path

        path = Path(path)
        if not path.exists():
            raise DataError(f"no such history file: {path}")
        hist = cls()
        with open(path, newline="") as fh:
            reader = csv.DictReader(fh)
            for row in reader:
                hist.record(
                    int(row["iteration"]),
                    float(row["d_loss"]),
                    float(row["g_loss"]),
                    float(row["g_objective"]),
                    int(row["n_train"]),
                )
        return hist

    def final(self) -> dict:
        """Last recorded values."""
        if len(self) == 0:
            raise DataError("history is empty")
        return {
            "iteration": self.iterations[-1],
            "d_loss": self.d_loss[-1],
            "g_loss": self.g_loss[-1],
            "g_objective": self.g_objective[-1],
            "n_train": self.n_train[-1],
        }
