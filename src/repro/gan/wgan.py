"""Wasserstein CGAN variant (weight clipping, Arjovsky et al. 2017).

An extension beyond the paper: the original minimax GAN of Algorithm 2
can saturate or oscillate on small datasets; the Wasserstein objective
with a clipped critic trades the probability-of-real interpretation for
smoother training dynamics.  The class subclasses
:class:`~repro.gan.cgan.ConditionalGAN` so every downstream analysis
(Algorithm 3, attackers, detectors) works unchanged.

Differences vs the standard CGAN:

* the discriminator becomes a *critic* with a linear head (scores, not
  probabilities);
* the critic ascends ``E[D(real)] - E[D(fake)]`` and its weights are
  clipped to ``[-clip, clip]`` after every step (the Lipschitz
  surrogate);
* the generator descends ``-E[D(G(z|c))]``;
* recorded ``d_loss`` is the negative critic objective — an estimate of
  (minus) the Wasserstein distance, so it *rises toward 0* as G
  improves, and ``g_loss`` is ``-E[D(fake)]``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.gan.cgan import ConditionalGAN
from repro.nn.layers import Dense
from repro.nn.optimizers import RMSProp


def default_critic(hidden=(64, 32)) -> list:
    """Critic stack: LeakyReLU hiddens, *linear* scalar head."""
    layers = [Dense(h, "leaky_relu", kernel_init="he_uniform") for h in hidden]
    layers.append(Dense(1))  # Linear: unbounded scores.
    return layers


class WassersteinConditionalGAN(ConditionalGAN):
    """CGAN trained with the WGAN objective and weight clipping.

    Parameters (beyond :class:`ConditionalGAN`)
    -------------------------------------------
    clip:
        Critic weight-clipping bound (default 0.05).
    """

    def __init__(
        self,
        feature_dim: int,
        condition_dim: int,
        *,
        clip: float = 0.05,
        discriminator_layers=None,
        learning_rate: float = 5e-4,
        g_optimizer=None,
        d_optimizer=None,
        **kwargs,
    ):
        if clip <= 0:
            raise ConfigurationError(f"clip must be > 0, got {clip}")
        kwargs.pop("generator_loss", None)  # WGAN fixes its own objectives.
        super().__init__(
            feature_dim,
            condition_dim,
            discriminator_layers=discriminator_layers or default_critic(),
            # RMSProp is the classic WGAN optimizer (momentum hurts with
            # clipping); callers may still override.
            g_optimizer=g_optimizer or RMSProp(learning_rate),
            d_optimizer=d_optimizer or RMSProp(learning_rate),
            learning_rate=learning_rate,
            **kwargs,
        )
        self.clip = float(clip)

    def _clip_critic(self):
        for layer in self.discriminator.layers:
            for param in layer.parameters().values():
                np.clip(param, -self.clip, self.clip, out=param)

    def _d_step(self, real_x, real_c, *, label_smoothing: float):
        """Critic ascent: maximize E[D(real)] - E[D(fake)], then clip."""
        n = real_x.shape[0]
        z = self.sample_noise(n)
        fake_x = self.generator.forward(np.hstack([z, real_c]), training=True)
        d_in = np.vstack(
            [np.hstack([real_x, real_c]), np.hstack([fake_x, real_c])]
        )
        scores = self.discriminator.forward(d_in, training=True)
        # d objective = mean(real) - mean(fake); we *descend* its negative.
        grad = np.empty_like(scores)
        grad[:n] = -1.0 / n
        grad[n:] = 1.0 / n
        self.discriminator.backward(grad)
        self._d_opt.step(self.discriminator.layers)
        self._clip_critic()
        critic_objective = float(scores[:n].mean() - scores[n:].mean())
        return -critic_objective  # Reported as a loss (rises toward 0).

    def _g_step(self, cond_batch):
        """Generator descent on -E[D(G(z|c))]."""
        n = cond_batch.shape[0]
        z = self.sample_noise(n)
        fake_x = self.generator.forward(np.hstack([z, cond_batch]), training=True)
        scores = self.discriminator.forward(
            np.hstack([fake_x, cond_batch]), training=True
        )
        grad_d_in = self.discriminator.backward(
            np.full_like(scores, -1.0 / n)
        )
        self.generator.backward(grad_d_in[:, : self.feature_dim])
        self._g_opt.step(self.generator.layers)
        g_loss = float(-scores.mean())
        # No log(1-D) analogue exists for a critic; report the same value.
        return g_loss, g_loss

    def discriminator_score(self, features, conditions) -> np.ndarray:
        """Critic scores (unbounded; higher = more real-looking)."""
        return super().discriminator_score(features, conditions)

    def __repr__(self):
        return (
            f"WassersteinConditionalGAN(feature_dim={self.feature_dim}, "
            f"condition_dim={self.condition_dim}, clip={self.clip}, "
            f"iterations={self.trained_iterations})"
        )
