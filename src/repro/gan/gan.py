"""Unconditional GAN — the baseline without conditioning.

Used by the ablation benchmarks to quantify what the *conditional*
structure buys: an unconditional GAN learns the marginal ``Pr(F_1)``
only, so its Parzen likelihoods cannot separate conditions.  It is
implemented as a thin wrapper around :class:`ConditionalGAN` with a
constant dummy condition, which keeps one battle-tested training loop.
"""

from __future__ import annotations

import numpy as np

from repro.flows.dataset import FlowPairDataset
from repro.gan.cgan import ConditionalGAN


class GAN:
    """Unconditional GAN over feature vectors.

    Accepts the same constructor options as :class:`ConditionalGAN`
    except ``condition_dim`` (internally 1, fed a constant zero).
    """

    def __init__(self, feature_dim: int, **kwargs):
        kwargs.pop("condition_dim", None)
        self._cgan = ConditionalGAN(feature_dim, 1, **kwargs)

    @property
    def feature_dim(self) -> int:
        return self._cgan.feature_dim

    @property
    def history(self):
        return self._cgan.history

    @property
    def generator(self):
        return self._cgan.generator

    @property
    def discriminator(self):
        return self._cgan.discriminator

    @property
    def is_trained(self) -> bool:
        return self._cgan.is_trained

    @staticmethod
    def _wrap(features: np.ndarray) -> FlowPairDataset:
        features = np.asarray(features, dtype=np.float64)
        dummy = np.zeros((features.shape[0], 1))
        return FlowPairDataset(features, dummy, name="unconditional")

    def train(self, features, **kwargs):
        """Train on a plain feature matrix (no conditions)."""
        if isinstance(features, FlowPairDataset):
            features = features.features
        return self._cgan.train(self._wrap(features), **kwargs)

    def generate(self, n: int, *, seed=None) -> np.ndarray:
        """Draw *n* samples from the learned marginal distribution."""
        return self._cgan.generate_for_condition(np.zeros(1), n, seed=seed)

    def __repr__(self):
        return f"GAN(feature_dim={self.feature_dim}, iterations={self._cgan.trained_iterations})"
