"""Conditional GAN and the paper's Algorithm 2 training loop.

The generator ``G(z | c)`` maps concatenated ``[noise, condition]`` to a
feature vector; the discriminator ``D(x | c)`` maps ``[features,
condition]`` to the probability that *x* came from the data rather than
from G.  Training alternates ``k`` discriminator ascent steps with one
generator descent step per iteration, exactly as Algorithm 2
(Goodfellow et al. 2014 / Mirza & Osindero 2014) prescribes.

Two generator objectives are supported:

* ``"minimax"`` — descend ``mean log(1 - D(G(z|c)))``, the literal
  Line 10 of Algorithm 2;
* ``"non_saturating"`` — descend ``-mean log D(G(z|c))``, Goodfellow's
  practical recommendation with identical fixed points but stronger
  early gradients.  This is the library default; the ablation benchmark
  ``bench_ablation_gloss`` compares the two.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, DataError, NotFittedError
from repro.flows.dataset import FlowPairDataset
from repro.gan.history import TrainingHistory
from repro.gan.noise import get_noise_prior
from repro.nn.layers import Dense
from repro.nn.losses import (
    BinaryCrossEntropy,
    GeneratorLossMinimax,
    GeneratorLossNonSaturating,
    discriminator_loss,
)
from repro.nn.network import Sequential
from repro.nn.optimizers import Adam
from repro.utils.rng import as_rng, spawn_rngs


def default_generator(feature_dim: int, hidden=(64, 64)) -> list:
    """Default generator layer stack: ReLU hiddens, sigmoid output.

    A sigmoid head matches the case study's features, which are min-max
    scaled into [0, 1] (Section IV-C / Figure 8).
    """
    layers = [Dense(h, "relu", kernel_init="he_uniform") for h in hidden]
    layers.append(Dense(feature_dim, "sigmoid"))
    return layers


@dataclass
class TrainingCheckpointState:
    """Position of a paused Algorithm 2 run inside one ``train()`` call.

    Together with the network weights, optimizer state, and loss
    history (serialized by
    :func:`repro.gan.serialization.save_training_checkpoint`), this is
    everything needed to continue training bitwise-identically to a run
    that was never interrupted:

    ``iteration``
        Completed iterations of the current ``train()`` call.
    ``total_iterations``
        The ``iterations`` argument the interrupted call was made with.
    ``rng_state_start``
        Bit-generator state of the training RNG *before* the initial
        dataset shuffle — replayed on resume so the shuffled base
        ordering is reconstructed exactly.
    ``rng_state_now``
        Bit-generator state after ``iteration`` completed iterations —
        the position the noise/mini-batch stream continues from.
    """

    iteration: int
    total_iterations: int
    rng_state_start: dict
    rng_state_now: dict


def default_discriminator(hidden=(64, 32)) -> list:
    """Default discriminator stack: LeakyReLU hiddens, sigmoid head."""
    layers = [
        Dense(h, "leaky_relu", kernel_init="he_uniform") for h in hidden
    ]
    layers.append(Dense(1, "sigmoid"))
    return layers


class ConditionalGAN:
    """A CGAN modeling ``Pr(F_1 | F_2)`` for one flow pair.

    Parameters
    ----------
    feature_dim:
        Dimension of the modeled flow's feature vectors (``F_1``).
    condition_dim:
        Dimension of the conditioning vectors (``F_2``), e.g. 3 for the
        one-hot motor encoding.
    noise_dim:
        Dimension of the noise prior Z.
    generator_layers / discriminator_layers:
        Optional custom layer stacks (uninitialized
        :class:`~repro.nn.layers.Layer` lists); defaults follow
        :func:`default_generator` / :func:`default_discriminator`.
    noise:
        ``"gaussian"`` (default), ``"uniform"``, or a
        :class:`~repro.gan.noise.NoisePrior`.
    generator_loss:
        ``"non_saturating"`` (default) or ``"minimax"`` (paper-literal).
    seed:
        Seed for weight init and training randomness.
    """

    def __init__(
        self,
        feature_dim: int,
        condition_dim: int,
        *,
        noise_dim: int = 16,
        generator_layers=None,
        discriminator_layers=None,
        noise="gaussian",
        generator_loss: str = "non_saturating",
        g_optimizer=None,
        d_optimizer=None,
        learning_rate: float = 2e-3,
        seed=None,
    ):
        if feature_dim <= 0 or condition_dim <= 0:
            raise ConfigurationError("feature_dim and condition_dim must be > 0")
        self.feature_dim = int(feature_dim)
        self.condition_dim = int(condition_dim)
        self.noise = get_noise_prior(noise, noise_dim)
        self.noise_dim = self.noise.dim

        init_rng, self._train_rng = spawn_rngs(seed, 2)
        g_layers = generator_layers or default_generator(feature_dim)
        d_layers = discriminator_layers or default_discriminator()
        self.generator = Sequential(
            g_layers, input_dim=self.noise_dim + condition_dim, seed=init_rng
        )
        if self.generator.output_dim != feature_dim:
            raise ConfigurationError(
                f"generator outputs {self.generator.output_dim} features, "
                f"expected {feature_dim}"
            )
        self.discriminator = Sequential(
            d_layers, input_dim=feature_dim + condition_dim, seed=init_rng
        )
        if self.discriminator.output_dim != 1:
            raise ConfigurationError(
                f"discriminator must output 1 value, got {self.discriminator.output_dim}"
            )

        if generator_loss == "minimax":
            self._g_loss = GeneratorLossMinimax()
        elif generator_loss == "non_saturating":
            self._g_loss = GeneratorLossNonSaturating()
        else:
            raise ConfigurationError(
                f"generator_loss must be 'minimax' or 'non_saturating', "
                f"got {generator_loss!r}"
            )
        self.generator_loss_name = generator_loss
        self._bce = BinaryCrossEntropy()
        self._g_opt = g_optimizer or Adam(learning_rate)
        self._d_opt = d_optimizer or Adam(learning_rate)
        if not hasattr(self._g_opt, "step") or not hasattr(self._d_opt, "step"):
            raise ConfigurationError("optimizers must expose a step(layers) method")

        self.history = TrainingHistory()
        self.snapshots: list = []
        self.trained_iterations = 0
        # Per-batch-size training buffers (noise, network inputs,
        # targets), reused every step so the inner loop allocates
        # nothing; values written through them are identical to the
        # hstack/vstack construction they replace.
        self._train_buffers: dict = {}

    def _step_buffers(self, n: int) -> dict:
        bufs = self._train_buffers.get(n)
        if bufs is None:
            fd, cd, nd = self.feature_dim, self.condition_dim, self.noise_dim
            bufs = {
                "z": np.empty((n, nd), dtype=np.float64),
                "g_in": np.empty((n, nd + cd), dtype=np.float64),
                "d_in_g": np.empty((n, fd + cd), dtype=np.float64),
                "d_in_d": np.empty((2 * n, fd + cd), dtype=np.float64),
                # Bottom half (fake labels) is zero forever; only the
                # real-label top half is refilled per step.
                "targets": np.zeros((2 * n, 1), dtype=np.float64),
                "real_x": np.empty((n, fd), dtype=np.float64),
                "real_c": np.empty((n, cd), dtype=np.float64),
            }
            self._train_buffers[n] = bufs
        return bufs

    # -- sampling ----------------------------------------------------------------
    def sample_noise(self, n: int, *, seed=None) -> np.ndarray:
        rng = as_rng(seed) if seed is not None else self._train_rng
        return self.noise.sample(n, rng)

    def generate(self, conditions, *, seed=None) -> np.ndarray:
        """Generate one sample per condition row: ``G(Z | conditions)``."""
        conditions = np.asarray(conditions, dtype=np.float64)
        if conditions.ndim == 1:
            conditions = conditions[None, :]
        if conditions.shape[1] != self.condition_dim:
            raise ConfigurationError(
                f"conditions must have width {self.condition_dim}, "
                f"got {conditions.shape[1]}"
            )
        z = self.sample_noise(conditions.shape[0], seed=seed)
        return self.generator.predict(np.hstack([z, conditions]))

    def generate_for_condition(self, condition, n: int, *, seed=None) -> np.ndarray:
        """Generate *n* samples under a single fixed condition (Algorithm 3
        Line 6: ``X_G = GSize samples from G(Z|C_i)``)."""
        condition = np.asarray(condition, dtype=np.float64).ravel()
        conds = np.tile(condition, (n, 1))
        return self.generate(conds, seed=seed)

    # -- training -----------------------------------------------------------------
    def _d_step(self, real_x, real_c, *, label_smoothing: float):
        """One discriminator ascent step (Algorithm 2, Lines 5–8).

        Network inputs are assembled in preallocated per-batch-size
        buffers (same values the seed ``hstack``/``vstack`` produced,
        without the per-step allocations); the noise draw consumes the
        training RNG stream exactly as ``sample_noise`` does.
        """
        n = real_x.shape[0]
        bufs = self._step_buffers(n)
        z = self.noise.sample_into(bufs["z"], self._train_rng)
        g_in = bufs["g_in"]
        g_in[:, : self.noise_dim] = z
        g_in[:, self.noise_dim :] = real_c
        fake_x = self.generator.forward(g_in, training=True)
        fd = self.feature_dim
        d_in = bufs["d_in_d"]
        d_in[:n, :fd] = real_x
        d_in[:n, fd:] = real_c
        d_in[n:, :fd] = fake_x
        d_in[n:, fd:] = real_c
        targets = bufs["targets"]
        targets[:n].fill(1.0 - label_smoothing)
        preds = self.discriminator.forward(d_in, training=True)
        self.discriminator.backward(self._bce.gradient(preds, targets))
        self._d_opt.step(self.discriminator.layers)
        return discriminator_loss(preds[:n], preds[n:])

    def _g_step(self, cond_batch):
        """One generator descent step (Algorithm 2, Lines 9–10).

        The generator gradient flows through the (frozen) discriminator:
        we backprop the generator loss to the discriminator's *input*,
        slice off the feature columns, and continue into the generator.
        The discriminator optimizer is simply not stepped.
        """
        n = cond_batch.shape[0]
        bufs = self._step_buffers(n)
        z = self.noise.sample_into(bufs["z"], self._train_rng)
        g_in = bufs["g_in"]
        g_in[:, : self.noise_dim] = z
        g_in[:, self.noise_dim :] = cond_batch
        fake_x = self.generator.forward(g_in, training=True)
        d_in = bufs["d_in_g"]
        d_in[:, : self.feature_dim] = fake_x
        d_in[:, self.feature_dim :] = cond_batch
        d_pred = self.discriminator.forward(d_in, training=True)
        grad_d_in = self.discriminator.backward(self._g_loss.gradient(d_pred))
        grad_fake = grad_d_in[:, : self.feature_dim]
        self.generator.backward(grad_fake)
        self._g_opt.step(self.generator.layers)
        g_objective = GeneratorLossMinimax().value(d_pred)
        g_loss = GeneratorLossNonSaturating().value(d_pred)
        return g_loss, g_objective

    def train(
        self,
        dataset: FlowPairDataset,
        *,
        iterations: int = 500,
        batch_size: int = 32,
        k_disc: int = 1,
        label_smoothing: float = 0.0,
        data_fraction=None,
        snapshot_every: int | None = None,
        seed=None,
        progress=None,
        progress_every: int = 0,
        checkpoint_every: int = 0,
        on_checkpoint=None,
        resume: TrainingCheckpointState | None = None,
    ) -> TrainingHistory:
        """Run Algorithm 2.

        Parameters
        ----------
        dataset:
            Aligned (features, conditions) training data.
        iterations:
            Outer-loop count (``Iter``).
        batch_size:
            Mini-batch size (``n``).
        k_disc:
            Discriminator steps per iteration (``k``).
        label_smoothing:
            One-sided smoothing of real labels (0 = off).
        data_fraction:
            Optional callable ``iteration -> fraction in (0, 1]``
            restricting how much of the dataset is visible — models the
            paper's growing-data training (Figure 7) and
            attacker-capability limits.
        snapshot_every:
            If set, a deep copy of the generator is stored in
            :attr:`snapshots` every that-many iterations (drives the
            Figure 9 likelihood-vs-iteration analysis).
        seed:
            Optional override for the training RNG stream.
        progress:
            Optional callback ``progress(iteration, total, d_loss,
            g_loss)`` invoked every *progress_every* iterations and on
            the final one — the hook the runtime instrumentation layer
            turns into :class:`~repro.runtime.events.EpochProgress`.
        progress_every:
            Callback cadence in iterations; 0 disables the callback.
        checkpoint_every:
            Cadence (in iterations) of the *on_checkpoint* callback;
            0 disables checkpointing.  The final iteration never emits
            a checkpoint (the finished model supersedes it).
        on_checkpoint:
            Optional callback ``on_checkpoint(state)`` receiving a
            :class:`TrainingCheckpointState`; callers persist it (plus
            weights/optimizers/history) to support crash recovery.
        resume:
            A :class:`TrainingCheckpointState` continuing an earlier,
            interrupted call.  The caller must have restored weights,
            optimizer state, and history first (see
            :func:`repro.gan.serialization.restore_training_checkpoint`);
            mutually exclusive with *seed*.  The continued run is
            bitwise identical to one that was never interrupted.
        """
        if dataset.feature_dim != self.feature_dim:
            raise ConfigurationError(
                f"dataset feature_dim {dataset.feature_dim} != model {self.feature_dim}"
            )
        if dataset.condition_dim != self.condition_dim:
            raise ConfigurationError(
                f"dataset condition_dim {dataset.condition_dim} != model "
                f"{self.condition_dim}"
            )
        if iterations <= 0:
            raise ConfigurationError(f"iterations must be > 0, got {iterations}")
        if k_disc <= 0:
            raise ConfigurationError(f"k_disc must be > 0, got {k_disc}")
        if not 0.0 <= label_smoothing < 0.5:
            raise ConfigurationError(
                f"label_smoothing must be in [0, 0.5), got {label_smoothing}"
            )
        if progress_every < 0:
            raise ConfigurationError(
                f"progress_every must be >= 0, got {progress_every}"
            )
        if checkpoint_every < 0:
            raise ConfigurationError(
                f"checkpoint_every must be >= 0, got {checkpoint_every}"
            )
        if resume is not None:
            if seed is not None:
                raise ConfigurationError(
                    "pass either seed or resume to train(), not both"
                )
            if not 0 <= resume.iteration < iterations:
                raise ConfigurationError(
                    f"cannot resume at iteration {resume.iteration} of a "
                    f"{iterations}-iteration run"
                )
            restored = np.random.default_rng()
            restored.bit_generator.state = resume.rng_state_start
            self._train_rng = restored
        elif seed is not None:
            self._train_rng = as_rng(seed)
        rng = self._train_rng
        rng_state_start = rng.bit_generator.state

        base = dataset.shuffled(seed=rng)
        start_iteration = 0
        if resume is not None:
            # The shuffle above replayed the original permutation draw;
            # now jump the stream to where the interrupted run stopped.
            rng.bit_generator.state = resume.rng_state_now
            start_iteration = resume.iteration
        # Mini-batches are gathered into fixed buffers (np.take) instead
        # of fancy-indexed copies — same RNG draw, same rows, no per-step
        # allocation.
        batch_bufs = self._step_buffers(batch_size)
        batch_out = (batch_bufs["real_x"], batch_bufs["real_c"])
        for it in range(start_iteration, iterations):
            if data_fraction is not None:
                frac = float(data_fraction(it))
                if not 0.0 < frac <= 1.0:
                    raise ConfigurationError(
                        f"data_fraction must return values in (0,1], got {frac}"
                    )
                visible = base.take(
                    max(1, int(round(frac * len(base)))), seed=rng
                ) if frac < 1.0 else base
            else:
                visible = base

            d_loss = np.nan
            for _ in range(k_disc):
                real_x, real_c = visible.sample_batch(
                    batch_size, seed=rng, out=batch_out
                )
                d_loss = self._d_step(
                    real_x, real_c, label_smoothing=label_smoothing
                )
            _, cond_batch = visible.sample_batch(
                batch_size, seed=rng, out=batch_out
            )
            g_loss, g_objective = self._g_step(cond_batch)

            self.trained_iterations += 1
            self.history.record(
                self.trained_iterations, d_loss, g_loss, g_objective, len(visible)
            )
            if snapshot_every and (it + 1) % snapshot_every == 0:
                self.snapshots.append(
                    (self.trained_iterations, self.generator.clone())
                )
            if progress is not None and progress_every and (
                (it + 1) % progress_every == 0 or it + 1 == iterations
            ):
                progress(it + 1, iterations, float(d_loss), float(g_loss))
            if (
                on_checkpoint is not None
                and checkpoint_every
                and (it + 1) % checkpoint_every == 0
                and it + 1 < iterations
            ):
                on_checkpoint(
                    TrainingCheckpointState(
                        iteration=it + 1,
                        total_iterations=iterations,
                        rng_state_start=copy.deepcopy(rng_state_start),
                        rng_state_now=rng.bit_generator.state,
                    )
                )
        return self.history

    # -- introspection ---------------------------------------------------------
    @property
    def is_trained(self) -> bool:
        return self.trained_iterations > 0

    def require_trained(self):
        if not self.is_trained:
            raise NotFittedError(
                "ConditionalGAN used before train(); call train(dataset) first"
            )

    def discriminator_score(self, features, conditions) -> np.ndarray:
        """``D(x | c)`` for aligned feature/condition rows."""
        features = np.asarray(features, dtype=np.float64)
        conditions = np.asarray(conditions, dtype=np.float64)
        if features.ndim == 1:
            features = features[None, :]
        if conditions.ndim == 1:
            conditions = np.tile(conditions, (features.shape[0], 1))
        if features.shape[0] != conditions.shape[0]:
            raise DataError("features and conditions row counts differ")
        return self.discriminator.predict(
            np.hstack([features, conditions])
        ).ravel()

    def __repr__(self):
        return (
            f"ConditionalGAN(feature_dim={self.feature_dim}, "
            f"condition_dim={self.condition_dim}, noise_dim={self.noise_dim}, "
            f"loss={self.generator_loss_name!r}, "
            f"iterations={self.trained_iterations})"
        )
