"""GAN sample-quality evaluation utilities.

Beyond the security metrics of Algorithm 3, these helpers quantify how
well the generator matches the data distribution per condition —
useful for debugging training and for the ablation benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DataError
from repro.flows.dataset import FlowPairDataset
from repro.gan.cgan import ConditionalGAN


def feature_moment_gap(
    cgan: ConditionalGAN,
    dataset: FlowPairDataset,
    *,
    n_generated: int = 256,
    seed=None,
) -> dict:
    """Per-condition L2 gap between real and generated feature means/stds.

    Returns a mapping ``condition tuple -> {"mean_gap": .., "std_gap": ..}``.
    Small gaps mean the generator reproduces the first two moments of
    ``Pr(F_1 | F_2)``.
    """
    cgan.require_trained()
    out = {}
    for cond in dataset.unique_conditions():
        real = dataset.subset_for_condition(cond).features
        fake = cgan.generate_for_condition(cond, n_generated, seed=seed)
        out[tuple(cond)] = {
            "mean_gap": float(np.linalg.norm(real.mean(0) - fake.mean(0))),
            "std_gap": float(np.linalg.norm(real.std(0) - fake.std(0))),
        }
    return out


def discriminator_accuracy(
    cgan: ConditionalGAN,
    dataset: FlowPairDataset,
    *,
    n_generated: int | None = None,
    seed=None,
) -> float:
    """Accuracy of D at telling real from generated samples.

    0.5 means D is fooled completely (the GAN equilibrium); values near
    1.0 mean the generator is far from the data distribution.
    """
    cgan.require_trained()
    n = n_generated or len(dataset)
    if n <= 0:
        raise DataError("need at least one sample")
    real_scores = cgan.discriminator_score(dataset.features, dataset.conditions)
    idx = np.random.default_rng(0).integers(0, len(dataset), size=n)
    conds = dataset.conditions[idx]
    fake = cgan.generate(conds, seed=seed)
    fake_scores = cgan.discriminator_score(fake, conds)
    correct = float((real_scores > 0.5).sum() + (fake_scores <= 0.5).sum())
    return correct / (len(real_scores) + len(fake_scores))


def per_condition_sample_spread(
    cgan: ConditionalGAN, conditions, *, n_generated: int = 256, seed=None
) -> dict:
    """Mean pairwise std of generated samples per condition.

    Near-zero spread for every condition indicates mode collapse —
    the classic GAN failure the tests guard against.
    """
    cgan.require_trained()
    out = {}
    for cond in np.atleast_2d(np.asarray(conditions, dtype=float)):
        fake = cgan.generate_for_condition(cond, n_generated, seed=seed)
        out[tuple(cond)] = float(fake.std(axis=0).mean())
    return out
