"""Conditional GAN core (Algorithm 2) plus baselines and evaluation."""

from repro.gan.noise import GaussianNoise, NoisePrior, UniformNoise, get_noise_prior
from repro.gan.history import TrainingHistory
from repro.gan.cgan import ConditionalGAN, default_discriminator, default_generator
from repro.gan.gan import GAN
from repro.gan.serialization import load_cgan, save_cgan
from repro.gan.wgan import WassersteinConditionalGAN, default_critic
from repro.gan.evaluation import (
    discriminator_accuracy,
    feature_moment_gap,
    per_condition_sample_spread,
)

__all__ = [
    "ConditionalGAN",
    "GAN",
    "GaussianNoise",
    "NoisePrior",
    "TrainingHistory",
    "UniformNoise",
    "WassersteinConditionalGAN",
    "default_critic",
    "default_discriminator",
    "default_generator",
    "discriminator_accuracy",
    "feature_moment_gap",
    "get_noise_prior",
    "load_cgan",
    "per_condition_sample_spread",
    "save_cgan",
]
