"""Noise priors ``Pr(Z)`` for GAN generators (Algorithm 2, Line 5)."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.rng import as_rng


class NoisePrior:
    """Base class: a distribution over ``R^dim`` with a ``sample`` method."""

    def __init__(self, dim: int):
        if dim <= 0:
            raise ConfigurationError(f"noise dim must be > 0, got {dim}")
        self.dim = int(dim)

    def sample(self, n: int, rng) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def sample_into(self, out: np.ndarray, rng) -> np.ndarray:
        """Fill the preallocated ``(n, dim)`` buffer *out* with samples.

        Consumes the RNG stream exactly like :meth:`sample` and produces
        bitwise-identical values — the training loop uses this to avoid
        allocating a fresh noise array every step.  The base fallback
        simply copies a :meth:`sample` result.
        """
        out[...] = self.sample(out.shape[0], rng)
        return out

    def __call__(self, n: int, seed=None) -> np.ndarray:
        if n <= 0:
            raise ConfigurationError(f"sample count must be > 0, got {n}")
        return self.sample(n, as_rng(seed))

    def __repr__(self):
        return f"{type(self).__name__}(dim={self.dim})"


class GaussianNoise(NoisePrior):
    """Standard normal prior — the usual GAN choice."""

    def __init__(self, dim: int, std: float = 1.0):
        super().__init__(dim)
        if std <= 0:
            raise ConfigurationError(f"std must be > 0, got {std}")
        self.std = float(std)

    def sample(self, n, rng):
        return rng.normal(0.0, self.std, size=(n, self.dim))

    def sample_into(self, out, rng):
        if self.std == 1.0:
            # ``Generator.normal(0, 1, size)`` and
            # ``standard_normal(out=...)`` draw the same stream and
            # produce identical doubles; only the unit-std case is safe
            # to fill in place without a bitwise-equivalence proof for
            # the scale multiply, and it is the training default.
            rng.standard_normal(out=out)
            return out
        return super().sample_into(out, rng)

    def __repr__(self):
        return f"GaussianNoise(dim={self.dim}, std={self.std})"


class UniformNoise(NoisePrior):
    """Uniform prior on ``[low, high)^dim``."""

    def __init__(self, dim: int, low: float = -1.0, high: float = 1.0):
        super().__init__(dim)
        if not high > low:
            raise ConfigurationError(f"need high > low, got [{low}, {high})")
        self.low = float(low)
        self.high = float(high)

    def sample(self, n, rng):
        return rng.uniform(self.low, self.high, size=(n, self.dim))

    def sample_into(self, out, rng):
        # ``uniform(low, high)`` draws ``low + (high - low) * random()``
        # from the same double stream as ``random(out=...)``; replaying
        # that affine map in place reproduces it bitwise.
        rng.random(out=out)
        if self.high - self.low != 1.0:
            out *= self.high - self.low
        if self.low != 0.0:
            out += self.low
        return out

    def __repr__(self):
        return f"UniformNoise(dim={self.dim}, low={self.low}, high={self.high})"


def get_noise_prior(spec, dim: int) -> NoisePrior:
    """Resolve ``"gaussian"`` / ``"uniform"`` / instance into a prior."""
    if isinstance(spec, NoisePrior):
        return spec
    if spec == "gaussian":
        return GaussianNoise(dim)
    if spec == "uniform":
        return UniformNoise(dim)
    raise ConfigurationError(
        f"unknown noise prior {spec!r}; choose 'gaussian', 'uniform', or pass a NoisePrior"
    )
