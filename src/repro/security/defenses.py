"""Side-channel defenses and their evaluation.

The GAN-Sec methodology is symmetric: the same CGAN that *measures*
leakage can score *defenses* — re-run the attacker against the defended
system and report how much accuracy/mutual information the defense
removes.  Two classic acoustic-side-channel defenses from the authors'
follow-on work (information-leakage-aware CAM, Chhetri et al. 2018) are
implemented against the simulated testbed:

* :class:`AcousticMasking` — an active masking emitter adds band-limited
  noise to what the microphone hears, lowering the emission SNR;
* :class:`FeedRateDithering` — the controller randomizes feed rates per
  move, so the motor step frequencies (and hence the tonal signatures)
  wander run-to-run, blurring ``Pr(emission | motor)``.

Both implement the :class:`Defense` interface (transform the G-code
program and/or the recorded audio), so new defenses drop in without
touching the evaluation harness.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.dsp.features import FrequencyFeatureExtractor
from repro.flows.dataset import FlowPairDataset
from repro.flows.encoding import ConditionEncoder, SingleMotorEncoder
from repro.gan.cgan import ConditionalGAN
from repro.manufacturing.gcode import GCodeProgram
from repro.manufacturing.printer import Printer3D
from repro.manufacturing.programs import calibration_suite
from repro.manufacturing.traces import build_dataset, collect_segments
from repro.security.confidentiality import SideChannelAttacker
from repro.security.mutual_information import feature_leakage_profile
from repro.utils.rng import as_rng


class Defense:
    """Base interface: transform the program and/or the recorded audio."""

    name = "identity"

    def apply_program(self, program: GCodeProgram, rng) -> GCodeProgram:
        """Transform the G-code before execution (controller-side)."""
        return program

    def apply_audio(self, samples: np.ndarray, sample_rate: float, rng) -> np.ndarray:
        """Transform the microphone signal (environment-side)."""
        return samples

    def __repr__(self):
        return f"{type(self).__name__}()"


class AcousticMasking(Defense):
    """Active masking: add band-limited noise over the analysis band.

    Parameters
    ----------
    level:
        Masking-noise RMS relative to a nominal emission level of 1.0.
    f_low, f_high:
        Band covered by the masking emitter (defaults to the paper's
        50–5000 Hz analysis band).
    """

    name = "acoustic-masking"

    def __init__(self, level: float = 0.5, f_low: float = 50.0, f_high: float = 5000.0):
        if level <= 0:
            raise ConfigurationError(f"masking level must be > 0, got {level}")
        if not 0 < f_low < f_high:
            raise ConfigurationError("need 0 < f_low < f_high")
        self.level = float(level)
        self.f_low = float(f_low)
        self.f_high = float(f_high)

    def apply_audio(self, samples, sample_rate, rng):
        n = len(samples)
        if n == 0:
            return samples
        white = rng.normal(0.0, 1.0, size=n)
        spectrum = np.fft.rfft(white)
        freqs = np.fft.rfftfreq(n, d=1.0 / sample_rate)
        band = (freqs >= self.f_low) & (freqs <= self.f_high)
        spectrum[~band] = 0.0
        noise = np.fft.irfft(spectrum, n=n)
        rms = np.sqrt(np.mean(noise**2))
        if rms > 0:
            noise = noise / rms * self.level
        return samples + noise

    def __repr__(self):
        return (
            f"AcousticMasking(level={self.level}, "
            f"band=[{self.f_low}, {self.f_high}]Hz)"
        )


class FeedRateDithering(Defense):
    """Randomize feed rates per move by up to ±``fraction``.

    The part geometry is unchanged (same coordinates), but every move's
    speed — and therefore every motor's step frequency — is jittered, so
    the tonal signature of a condition spreads over a band instead of a
    line.  Print time changes by at most ±fraction.
    """

    name = "feed-dithering"

    def __init__(self, fraction: float = 0.3):
        if not 0.0 < fraction < 1.0:
            raise ConfigurationError(
                f"dithering fraction must be in (0,1), got {fraction}"
            )
        self.fraction = float(fraction)

    def apply_program(self, program, rng):
        commands = []
        for cmd in program:
            if cmd.is_motion and "F" in cmd.params:
                scale = 1.0 + rng.uniform(-self.fraction, self.fraction)
                commands.append(cmd.replace_params(F=cmd.params["F"] * scale))
            else:
                commands.append(cmd)
        return GCodeProgram(commands, name=f"{program.name}+dither")

    def __repr__(self):
        return f"FeedRateDithering(fraction={self.fraction})"


class CombinedDefense(Defense):
    """Apply several defenses in sequence."""

    name = "combined"

    def __init__(self, defenses):
        self.defenses = list(defenses)
        if not self.defenses:
            raise ConfigurationError("CombinedDefense needs at least one defense")

    def apply_program(self, program, rng):
        for defense in self.defenses:
            program = defense.apply_program(program, rng)
        return program

    def apply_audio(self, samples, sample_rate, rng):
        for defense in self.defenses:
            samples = defense.apply_audio(samples, sample_rate, rng)
        return samples

    def __repr__(self):
        inner = ", ".join(repr(d) for d in self.defenses)
        return f"CombinedDefense([{inner}])"


def record_defended_dataset(
    printer: Printer3D,
    programs,
    extractor: FrequencyFeatureExtractor,
    encoder: ConditionEncoder,
    defense: Defense,
    *,
    seed=None,
    fit_extractor: bool = True,
) -> FlowPairDataset:
    """Run *programs* under *defense* and featureize the results.

    The defense's program transform runs before planning (controller-
    side); its audio transform runs on each recorded segment
    (environment-side).  The extractor is refitted by default — a real
    attacker would calibrate on what they can actually hear.
    """
    rng = as_rng(seed)
    runs = []
    for program in programs:
        defended = defense.apply_program(program, rng)
        runs.append(printer.run(defended, seed=rng))
    segments = collect_segments(runs)
    for seg in segments:
        seg.samples = defense.apply_audio(
            seg.samples, printer.sample_rate, rng
        )
    return build_dataset(
        segments, extractor, encoder, fit_extractor=fit_extractor
    )


@dataclass
class DefenseReport:
    """Before/after comparison of one defense.

    Attributes
    ----------
    defense_name:
        Human-readable defense description.
    baseline_accuracy / defended_accuracy:
        Side-channel attacker accuracy without / with the defense.
    baseline_mi / defended_mi:
        Mean per-feature mutual information (bits) with the condition.
    """

    defense_name: str
    baseline_accuracy: float
    defended_accuracy: float
    baseline_mi: float
    defended_mi: float

    @property
    def accuracy_reduction(self) -> float:
        return self.baseline_accuracy - self.defended_accuracy

    @property
    def mi_reduction_bits(self) -> float:
        return self.baseline_mi - self.defended_mi

    def summary(self) -> str:
        return (
            f"{self.defense_name}: attack accuracy "
            f"{self.baseline_accuracy:.3f} -> {self.defended_accuracy:.3f} "
            f"(-{self.accuracy_reduction:.3f}); mean feature MI "
            f"{self.baseline_mi:.3f} -> {self.defended_mi:.3f} bits"
        )


def evaluate_defense(
    defense: Defense,
    *,
    n_moves_per_axis: int = 30,
    iterations: int = 1500,
    h: float = 0.2,
    g_size: int = 200,
    sample_rate: float = 12000.0,
    seed=None,
) -> DefenseReport:
    """Full leakage evaluation of one defense on the case-study workload.

    Records matched baseline and defended datasets (same programs, same
    printer seed stream), trains one CGAN attacker on each, and compares
    attack accuracy and MI leakage.
    """
    rng = as_rng(seed)
    base_seed = int(rng.integers(0, 2**31 - 1))

    def _leakage(active_defense: Defense) -> tuple:
        local_rng = np.random.default_rng(base_seed)
        printer = Printer3D(sample_rate=sample_rate, seed=local_rng)
        programs = calibration_suite(n_moves_per_axis, seed=local_rng)
        extractor = FrequencyFeatureExtractor(sample_rate)
        encoder = SingleMotorEncoder()
        dataset = record_defended_dataset(
            printer, programs, extractor, encoder, active_defense,
            seed=local_rng,
        )
        train, test = dataset.split(0.25, seed=base_seed)
        cgan = ConditionalGAN(
            dataset.feature_dim, dataset.condition_dim, seed=base_seed
        )
        cgan.train(train, iterations=iterations, batch_size=32)
        attacker = SideChannelAttacker(
            cgan, test.unique_conditions(), h=h, g_size=g_size, seed=base_seed
        ).fit()
        accuracy = attacker.evaluate(test).accuracy
        mi = float(feature_leakage_profile(dataset).mean())
        return accuracy, mi

    base_acc, base_mi = _leakage(Defense())
    def_acc, def_mi = _leakage(defense)
    return DefenseReport(
        defense_name=repr(defense),
        baseline_accuracy=base_acc,
        defended_accuracy=def_acc,
        baseline_mi=base_mi,
        defended_mi=def_mi,
    )
