"""Parzen Gaussian-window density estimation (Algorithm 3, Line 8).

The paper evaluates generator quality and security metrics by fitting a
Parzen window (kernel density estimate with Gaussian kernels of width
``h``) to generator samples and scoring test points — the classic GAN
evaluation protocol from Goodfellow et al. 2014.  The ``score`` method
returns log-likelihood, matching the ``FtDistr.score(x)`` call in
Algorithm 3, and the helper :func:`likelihood` applies the paper's
``exp(LogLike) * h`` scaling.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, DataError, NotFittedError, ShapeError
from repro.utils.validation import check_array

_LOG_2PI = float(np.log(2.0 * np.pi))


class ParzenWindow:
    """Gaussian-kernel density estimate over d-dimensional points.

    Parameters
    ----------
    h:
        Kernel bandwidth (the paper's Parzen window width); shared
        across dimensions.
    """

    def __init__(self, h: float):
        if h <= 0:
            raise ConfigurationError(f"Parzen window width h must be > 0, got {h}")
        self.h = float(h)
        self._data = None

    @property
    def fitted(self) -> bool:
        return self._data is not None

    @property
    def n_kernels(self) -> int:
        self._require_fitted()
        return self._data.shape[0]

    @property
    def dim(self) -> int:
        self._require_fitted()
        return self._data.shape[1]

    def _require_fitted(self):
        if not self.fitted:
            raise NotFittedError("ParzenWindow used before fit()")

    def fit(self, samples) -> "ParzenWindow":
        """Center one Gaussian kernel on every row of *samples*."""
        samples = check_array(samples, "samples", ndim=(1, 2))
        if samples.ndim == 1:
            samples = samples[:, None]
        if samples.shape[0] == 0:
            raise DataError("cannot fit ParzenWindow on zero samples")
        self._data = samples
        return self

    def score_samples(self, x) -> np.ndarray:
        """Per-row log density ``log p(x)``.

        Uses the log-sum-exp trick so tiny densities do not underflow to
        ``-inf`` prematurely.
        """
        self._require_fitted()
        x = check_array(x, "x", ndim=(1, 2))
        if x.ndim == 1:
            x = x[:, None] if self.dim == 1 else x[None, :]
        if x.shape[1] != self.dim:
            raise ShapeError(
                f"x has {x.shape[1]} dims, ParzenWindow fitted on {self.dim}"
            )
        # Squared distances: (n_x, n_kernels).
        diffs = x[:, None, :] - self._data[None, :, :]
        sq = np.sum(diffs * diffs, axis=2) / (self.h * self.h)
        log_kernel = -0.5 * sq
        # log p = logsumexp(log_kernel) - log(n) - d*log(h) - d/2*log(2pi)
        m = log_kernel.max(axis=1, keepdims=True)
        lse = m.ravel() + np.log(np.exp(log_kernel - m).sum(axis=1))
        return (
            lse
            - np.log(self.n_kernels)
            - self.dim * np.log(self.h)
            - 0.5 * self.dim * _LOG_2PI
        )

    def score(self, x) -> float:
        """Mean log density of *x* (a single point or a batch)."""
        return float(np.mean(self.score_samples(x)))

    def density(self, x) -> np.ndarray:
        """Per-row density ``p(x)``."""
        return np.exp(self.score_samples(x))

    def likelihood(self, x) -> np.ndarray:
        """The paper's scaled likelihood ``exp(score(x)) * h`` (Line 10).

        Multiplying the density by the window width converts it into a
        dimensionless per-window probability mass, which keeps Table I's
        values comparable across ``h``.
        """
        return self.density(x) * (self.h ** self.dim)

    def sample(self, n: int, *, seed=None) -> np.ndarray:
        """Draw from the fitted mixture (kernel choice + Gaussian jitter)."""
        self._require_fitted()
        if n <= 0:
            raise ConfigurationError(f"n must be > 0, got {n}")
        rng = np.random.default_rng(seed) if not isinstance(seed, np.random.Generator) else seed
        idx = rng.integers(0, self.n_kernels, size=n)
        return self._data[idx] + rng.normal(0.0, self.h, size=(n, self.dim))

    def __repr__(self):
        fitted = f", kernels={self.n_kernels}, dim={self.dim}" if self.fitted else ""
        return f"ParzenWindow(h={self.h}{fitted})"


def silverman_bandwidth(samples) -> float:
    """Silverman's rule-of-thumb bandwidth for 1-D data.

    Offered as an automatic alternative to the paper's fixed ``h``
    sweep; the ablation benchmark compares both.
    """
    samples = check_array(samples, "samples", ndim=1)
    n = len(samples)
    if n < 2:
        raise DataError("need at least 2 samples for a bandwidth estimate")
    std = float(np.std(samples, ddof=1))
    iqr = float(np.subtract(*np.percentile(samples, [75, 25])))
    spread = min(std, iqr / 1.349) if iqr > 0 else std
    if spread == 0:
        spread = 1e-3  # Degenerate data: fall back to a tiny width.
    return 0.9 * spread * n ** (-0.2)
