"""Parzen Gaussian-window density estimation (Algorithm 3, Line 8).

The paper evaluates generator quality and security metrics by fitting a
Parzen window (kernel density estimate with Gaussian kernels of width
``h``) to generator samples and scoring test points — the classic GAN
evaluation protocol from Goodfellow et al. 2014.  The ``score`` method
returns log-likelihood, matching the ``FtDistr.score(x)`` call in
Algorithm 3, and the helper :func:`likelihood` applies the paper's
``exp(LogLike) * h`` scaling.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, DataError, NotFittedError, ShapeError
from repro.utils.validation import check_array

_LOG_2PI = float(np.log(2.0 * np.pi))

#: Default memory budget (MiB) for the blocked score evaluation: the
#: (chunk, n_kernels) distance block plus its temporaries stay within
#: this footprint regardless of how many test points are scored.
DEFAULT_MEMORY_BUDGET_MB = 64.0


def resolve_chunk_size(
    n_kernels: int,
    dim: int,
    *,
    chunk_size: int | None = None,
    memory_budget_mb: float = DEFAULT_MEMORY_BUDGET_MB,
) -> int:
    """Number of test points scored per block of matrix work.

    An explicit *chunk_size* wins; otherwise the chunk is sized so the
    ``(chunk, n_kernels, dim)`` difference tensor and its ``(chunk,
    n_kernels)`` reductions fit inside *memory_budget_mb* MiB of float64
    temporaries.
    """
    if chunk_size is not None:
        if chunk_size < 1:
            raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
        return int(chunk_size)
    if memory_budget_mb <= 0:
        raise ConfigurationError(
            f"memory_budget_mb must be > 0, got {memory_budget_mb}"
        )
    # diffs (chunk*m*d) + squared-distance block and exp workspace
    # (2 * chunk*m) doubles.
    bytes_per_row = 8.0 * n_kernels * (dim + 2)
    return max(1, int(memory_budget_mb * 2**20 / bytes_per_row))


class ParzenWindow:
    """Gaussian-kernel density estimate over d-dimensional points.

    Parameters
    ----------
    h:
        Kernel bandwidth (the paper's Parzen window width); shared
        across dimensions.
    """

    def __init__(self, h: float):
        if h <= 0:
            raise ConfigurationError(f"Parzen window width h must be > 0, got {h}")
        self.h = float(h)
        self._data = None

    @property
    def fitted(self) -> bool:
        return self._data is not None

    @property
    def n_kernels(self) -> int:
        self._require_fitted()
        return self._data.shape[0]

    @property
    def dim(self) -> int:
        self._require_fitted()
        return self._data.shape[1]

    def _require_fitted(self):
        if not self.fitted:
            raise NotFittedError("ParzenWindow used before fit()")

    def fit(self, samples) -> "ParzenWindow":
        """Center one Gaussian kernel on every row of *samples*."""
        samples = check_array(samples, "samples", ndim=(1, 2))
        if samples.ndim == 1:
            samples = samples[:, None]
        if samples.shape[0] == 0:
            raise DataError("cannot fit ParzenWindow on zero samples")
        self._data = samples
        return self

    def _score_block(self, x: np.ndarray) -> np.ndarray:
        """Log density of one pre-validated ``(rows, dim)`` block.

        Uses the log-sum-exp trick so tiny densities do not underflow to
        ``-inf`` prematurely.  Rows so far from every kernel that the
        exponent itself overflows yield an exact ``-inf`` (density 0),
        never ``nan``: the max-subtraction is skipped for rows whose
        running maximum is already ``-inf``.
        """
        # Scaled log kernel weights: (rows, n_kernels).  Overflow to inf
        # is the correct saturation for astronomically distant points
        # (their kernel weight is exactly 0), so the warning is silenced.
        # d == 1 (every per-feature fit in Algorithm 3) broadcasts to the
        # (rows, n_kernels) matrix directly, without the 3-D temporary.
        scale = -0.5 / (self.h * self.h)
        with np.errstate(over="ignore"):
            if self.dim == 1:
                diffs = x - self._data.T
                log_kernel = (diffs * diffs) * scale
            else:
                diffs = x[:, None, :] - self._data[None, :, :]
                log_kernel = np.sum(diffs * diffs, axis=2) * scale
        # log p = logsumexp(log_kernel) - log(n) - d*log(h) - d/2*log(2pi)
        m = log_kernel.max(axis=1, keepdims=True)
        finite = np.isfinite(m)
        if finite.all():
            # Common path: no kernel saturated, plain log-sum-exp.
            lse = m.ravel() + np.log(np.exp(log_kernel - m).sum(axis=1))
        else:
            # Guard: m == -inf means every kernel underflowed (x
            # astronomically far away); -inf - -inf would poison the row
            # with nan, so those rows are pinned to exactly -inf.
            shifted = np.where(
                finite, log_kernel - np.where(finite, m, 0.0), -np.inf
            )
            with np.errstate(divide="ignore"):
                lse = np.where(
                    finite.ravel(),
                    m.ravel() + np.log(np.exp(shifted).sum(axis=1)),
                    -np.inf,
                )
        return (
            lse
            - np.log(self.n_kernels)
            - self.dim * np.log(self.h)
            - 0.5 * self.dim * _LOG_2PI
        )

    def _validate_points(self, x) -> np.ndarray:
        self._require_fitted()
        x = check_array(x, "x", ndim=(1, 2))
        if x.ndim == 1:
            x = x[:, None] if self.dim == 1 else x[None, :]
        if x.shape[1] != self.dim:
            raise ShapeError(
                f"x has {x.shape[1]} dims, ParzenWindow fitted on {self.dim}"
            )
        return x

    def score_batch(
        self,
        x,
        *,
        chunk_size: int | None = None,
        memory_budget_mb: float = DEFAULT_MEMORY_BUDGET_MB,
    ) -> np.ndarray:
        """Per-row log density via blocked matrix operations.

        Evaluates all test points against all kernels, *chunk_size* rows
        at a time (derived from *memory_budget_mb* when not given), so
        arbitrarily large test sets never materialize the full
        ``(n_x, n_kernels, dim)`` tensor.  Each row's reduction runs
        over every kernel regardless of blocking, so the result is
        bitwise-identical for every chunk size.
        """
        x = self._validate_points(x)
        chunk = resolve_chunk_size(
            self.n_kernels,
            self.dim,
            chunk_size=chunk_size,
            memory_budget_mb=memory_budget_mb,
        )
        n = x.shape[0]
        if n <= chunk:
            return self._score_block(x)
        out = np.empty(n)
        for start in range(0, n, chunk):
            stop = min(start + chunk, n)
            out[start:stop] = self._score_block(x[start:stop])
        return out

    def score_samples(self, x, *, chunk_size: int | None = None) -> np.ndarray:
        """Per-row log density ``log p(x)`` (blocked; see :meth:`score_batch`)."""
        return self.score_batch(x, chunk_size=chunk_size)

    def score(self, x) -> float:
        """Mean log density of *x* (a single point or a batch)."""
        return float(np.mean(self.score_samples(x)))

    def density(self, x, *, chunk_size: int | None = None) -> np.ndarray:
        """Per-row density ``p(x)``."""
        return np.exp(self.score_batch(x, chunk_size=chunk_size))

    def likelihood(self, x, *, chunk_size: int | None = None) -> np.ndarray:
        """The paper's scaled likelihood ``exp(score(x)) * h`` (Line 10).

        Multiplying the density by the window width converts it into a
        dimensionless per-window probability mass, which keeps Table I's
        values comparable across ``h``.
        """
        return self.density(x, chunk_size=chunk_size) * (self.h ** self.dim)

    def sample(self, n: int, *, seed=None) -> np.ndarray:
        """Draw from the fitted mixture (kernel choice + Gaussian jitter)."""
        self._require_fitted()
        if n <= 0:
            raise ConfigurationError(f"n must be > 0, got {n}")
        rng = np.random.default_rng(seed) if not isinstance(seed, np.random.Generator) else seed
        idx = rng.integers(0, self.n_kernels, size=n)
        return self._data[idx] + rng.normal(0.0, self.h, size=(n, self.dim))

    def __repr__(self):
        fitted = f", kernels={self.n_kernels}, dim={self.dim}" if self.fitted else ""
        return f"ParzenWindow(h={self.h}{fitted})"


def silverman_bandwidth(samples) -> float:
    """Silverman's rule-of-thumb bandwidth for 1-D data.

    Offered as an automatic alternative to the paper's fixed ``h``
    sweep; the ablation benchmark compares both.
    """
    samples = check_array(samples, "samples", ndim=1)
    n = len(samples)
    if n < 2:
        raise DataError("need at least 2 samples for a bandwidth estimate")
    std = float(np.std(samples, ddof=1))
    iqr = float(np.subtract(*np.percentile(samples, [75, 25])))
    spread = min(std, iqr / 1.349) if iqr > 0 else std
    if spread == 0:
        spread = 1e-3  # Degenerate data: fall back to a tiny width.
    return 0.9 * spread * n ** (-0.2)
