"""Security analyses: Parzen likelihood (Algorithm 3), side-channel
confidentiality attacks, integrity/availability attack detection, and
mutual-information leakage metrics.
"""

from repro.security.parzen import (
    ParzenWindow,
    resolve_chunk_size,
    silverman_bandwidth,
)
from repro.security.engine import (
    AnalysisTarget,
    run_security_analysis,
    security_analysis,
    security_analysis_h_sweep,
)
from repro.security.likelihood import (
    choose_analysis_feature,
    LikelihoodResult,
    likelihood_h_sweep,
    RepeatedLikelihoodResult,
    repeated_likelihood_analysis,
    security_likelihood_analysis,
)
from repro.security.confidentiality import (
    LeakageReport,
    SideChannelAttacker,
    leakage_vs_training_data,
)
from repro.security.detection import (
    DetectionReport,
    EmissionAttackDetector,
    roc_auc,
)
from repro.security.attacks import (
    axis_swap_attack,
    feed_rate_attack,
    motor_stall_attack,
)
from repro.security.mutual_information import (
    condition_entropy_bits,
    feature_leakage_profile,
    generator_leakage_profile,
    histogram_mutual_information,
)
from repro.security.baselines import (
    EmpiricalConditionalSampler,
    GaussianConditionalSampler,
    NearestCentroidAttacker,
)
from repro.security.defenses import (
    AcousticMasking,
    CombinedDefense,
    Defense,
    DefenseReport,
    FeedRateDithering,
    evaluate_defense,
    record_defended_dataset,
)
from repro.security.sequence import (
    SequenceAttacker,
    TransitionModel,
    viterbi_decode,
)
from repro.security.roc import RocCurve, roc_curve
from repro.security.report import SecurityReport, build_security_report

__all__ = [
    "AcousticMasking",
    "AnalysisTarget",
    "CombinedDefense",
    "Defense",
    "DefenseReport",
    "FeedRateDithering",
    "evaluate_defense",
    "record_defended_dataset",
    "repeated_likelihood_analysis",
    "EmpiricalConditionalSampler",
    "GaussianConditionalSampler",
    "NearestCentroidAttacker",
    "DetectionReport",
    "EmissionAttackDetector",
    "LeakageReport",
    "LikelihoodResult",
    "RepeatedLikelihoodResult",
    "ParzenWindow",
    "RocCurve",
    "SecurityReport",
    "SequenceAttacker",
    "TransitionModel",
    "SideChannelAttacker",
    "axis_swap_attack",
    "build_security_report",
    "choose_analysis_feature",
    "condition_entropy_bits",
    "feature_leakage_profile",
    "feed_rate_attack",
    "generator_leakage_profile",
    "histogram_mutual_information",
    "leakage_vs_training_data",
    "likelihood_h_sweep",
    "motor_stall_attack",
    "resolve_chunk_size",
    "roc_auc",
    "roc_curve",
    "run_security_analysis",
    "security_analysis",
    "security_analysis_h_sweep",
    "security_likelihood_analysis",
    "silverman_bandwidth",
    "viterbi_decode",
]
