"""Parallel, batched security-analysis engine (Algorithm 3 at scale).

:func:`repro.security.likelihood.security_likelihood_analysis` is the
paper-faithful serial reference: one Python loop over conditions and
features, one RNG threaded through the whole run.  This module is the
production path: every (pair, condition) cell of the likelihood table
becomes an independent :class:`~repro.runtime.analysis.AnalysisJob`
fanned out over the :mod:`repro.runtime.executors`, with

* **blocked scoring** — all test points are evaluated against all
  Parzen kernels in chunked matrix operations
  (:meth:`~repro.security.parzen.ParzenWindow.score_batch`) under a
  fixed memory budget instead of per-point Python loops;
* **deterministic fan-out** — each job's generator-noise stream is
  derived from ``(root_entropy, pair, condition)`` alone
  (:func:`~repro.runtime.analysis.analysis_rng`), so serial, thread,
  and process schedules produce bitwise-identical likelihood tables;
* **sample caching** — generated condition samples are reused through a
  :class:`~repro.runtime.analysis.ConditionSampleCache` keyed by
  ``(pair, condition, n, seed)``, which makes Table-I-style ``h``
  sweeps pay for generation once;
* **instrumentation** — ``AnalysisStarted`` / ``ConditionScored`` /
  ``AnalysisCompleted`` events on the shared
  :class:`~repro.runtime.events.EventBus` feed the existing console and
  JSONL reporters.

Failures are isolated like training: every job is attempted, completed
cells are assembled, and a single :class:`~repro.errors.AnalysisError`
aggregates whatever went wrong.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError, ConfigurationError, DataError
from repro.flows.dataset import FlowPairDataset
from repro.runtime.analysis import (
    AnalysisJob,
    ConditionSampleCache,
    _SamplerRef,
    run_analysis_job,
)
from repro.runtime.events import (
    AnalysisCompleted,
    AnalysisStarted,
    ConditionScored,
    EventBus,
)
from repro.runtime.executors import get_executor
from repro.security.likelihood import LikelihoodResult
from repro.utils.rng import fresh_entropy


def as_picklable_sampler(generator_sampler):
    """Normalize into a picklable ``(condition, n, rng) -> samples``.

    Unlike :func:`repro.security.likelihood._as_sampler` (which wraps a
    CGAN in a closure), the returned object survives pickling, so jobs
    carrying it can run on the process executor.
    """
    from repro.gan.cgan import ConditionalGAN  # Local import to avoid a cycle.

    if isinstance(generator_sampler, ConditionalGAN):
        generator_sampler.require_trained()
        return _SamplerRef(generator_sampler)
    if callable(generator_sampler):
        return generator_sampler
    raise ConfigurationError(
        "generator_sampler must be a trained ConditionalGAN or a callable "
        "(condition, n, rng) -> samples"
    )


@dataclass
class AnalysisTarget:
    """One flow pair's slice of a security-analysis batch.

    Parameters
    ----------
    key:
        Hashable identity under which the pair's
        :class:`~repro.security.likelihood.LikelihoodResult` is returned
        (typically a :class:`~repro.pipeline.pairs.FlowPairKey`).
    sampler:
        Trained CGAN or picklable callable providing ``G(Z | C_i)``.
    test_set:
        Held-out labeled observations for this pair.
    conditions / feature_indices:
        Per-pair overrides; default to the test set's distinct
        conditions and all feature columns.
    label:
        Event/report label; defaults to ``str(key)``.
    """

    key: object
    sampler: object
    test_set: FlowPairDataset
    conditions: object = None
    feature_indices: object = None
    label: str | None = None


@dataclass
class _PreparedTarget:
    target: AnalysisTarget
    label: str
    sampler: object
    conditions: np.ndarray
    feature_indices: np.ndarray


def _prepare_target(target: AnalysisTarget) -> _PreparedTarget:
    """Validate one target the same way the serial reference does."""
    test_set = target.test_set
    conditions = target.conditions
    if conditions is None:
        conditions = test_set.unique_conditions()
    conditions = np.atleast_2d(np.asarray(conditions, dtype=float))
    feature_indices = target.feature_indices
    if feature_indices is None:
        feature_indices = np.arange(test_set.feature_dim)
    feature_indices = np.asarray(feature_indices, dtype=int)
    if feature_indices.size == 0:
        raise ConfigurationError("feature_indices is empty")
    if np.any(feature_indices < 0) or np.any(
        feature_indices >= test_set.feature_dim
    ):
        raise ConfigurationError(
            f"feature indices out of range [0, {test_set.feature_dim})"
        )
    label = target.label if target.label is not None else str(target.key)
    for cond in conditions:
        if not test_set.mask_for_condition(cond).any():
            raise DataError(
                f"test set for {label} has no samples labeled {cond.tolist()}; "
                "Algorithm 3 needs test data for every analyzed condition"
            )
    return _PreparedTarget(
        target=target,
        label=label,
        sampler=as_picklable_sampler(target.sampler),
        conditions=conditions,
        feature_indices=feature_indices,
    )


def run_security_analysis(
    targets,
    *,
    h: float = 0.2,
    g_size: int = 200,
    root_entropy: int | None = None,
    executor=None,
    workers: int | None = None,
    bus: EventBus | None = None,
    chunk_size: int | None = None,
    cache: ConditionSampleCache | None = None,
) -> dict:
    """Run Algorithm 3 for several flow pairs in one parallel fan-out.

    Parameters
    ----------
    targets:
        Iterable of :class:`AnalysisTarget`.
    h / g_size:
        Parzen window width and generator samples per condition.
    root_entropy:
        Integer seed root for the per-(pair, condition) RNG derivation;
        ``None`` draws fresh entropy (still deterministic *within* the
        run, but not reproducible across runs).
    executor / workers:
        Fan-out selection, as in :meth:`GANSec.train_models`: ``None``
        picks serial for 0/1 workers and the process executor otherwise.
        Results are bitwise-identical for every choice.
    bus:
        Optional :class:`~repro.runtime.events.EventBus` receiving the
        structured analysis events.
    chunk_size:
        Test rows per scoring block (``None`` = derived from the default
        memory budget).  Does not affect results.
    cache:
        Optional :class:`~repro.runtime.analysis.ConditionSampleCache`
        consulted for generated samples and refilled with fresh draws.

    Returns ``{target.key: LikelihoodResult}`` in target order.

    Raises
    ------
    AnalysisError
        If one or more jobs failed.  Raised only after every job was
        attempted.
    """
    if h <= 0:
        raise ConfigurationError(f"h must be > 0, got {h}")
    if g_size <= 0:
        raise ConfigurationError(f"g_size must be > 0, got {g_size}")
    prepared = [_prepare_target(t) for t in targets]
    if not prepared:
        return {}
    if root_entropy is None:
        root_entropy = fresh_entropy()
    root_entropy = int(root_entropy)
    bus = bus if bus is not None else EventBus()

    jobs: list = []
    for prep in prepared:
        features = prep.target.test_set.features
        for ci, cond in enumerate(prep.conditions):
            job = AnalysisJob(
                pair=prep.label,
                condition=cond,
                cond_index=ci,
                job_index=len(jobs),
                total=0,  # patched below once the batch size is known
                test_features=features,
                correct_mask=prep.target.test_set.mask_for_condition(cond),
                feature_indices=prep.feature_indices,
                h=h,
                g_size=g_size,
                root_entropy=root_entropy,
                sampler=prep.sampler,
                chunk_size=chunk_size,
            )
            if cache is not None:
                cached = cache.get(
                    cache.key(prep.label, cond, g_size, root_entropy)
                )
                if cached is not None:
                    job.generated = cached
                    job.sampler = None  # skip pickling the model entirely
            jobs.append(job)
    for job in jobs:
        job.total = len(jobs)

    exec_obj = get_executor(executor, workers)
    start = time.perf_counter()
    bus.emit(
        AnalysisStarted(
            total_pairs=len(prepared),
            total_conditions=len(jobs),
            executor=getattr(exec_obj, "name", type(exec_obj).__name__),
            workers=getattr(exec_obj, "workers", 1),
        )
    )

    def _emit_scored(job, outcome):
        bus.emit(
            ConditionScored(
                pair=job.pair,
                condition=tuple(float(v) for v in job.condition),
                index=job.job_index,
                total=len(jobs),
                n_features=len(job.feature_indices),
                seconds=outcome.seconds,
                cache_hit=outcome.cache_hit,
            )
        )

    if exec_obj.in_process:
        def fn(job):
            outcome = run_analysis_job(job)
            _emit_scored(job, outcome)
            return outcome
        outcomes = exec_obj.map_pairs(fn, jobs)
    else:
        outcomes = exec_obj.map_pairs(run_analysis_job, jobs)
        for job, outcome in zip(jobs, outcomes):
            _emit_scored(job, outcome)

    failures: dict = {}
    cache_hits = 0
    for job, outcome in zip(jobs, outcomes):
        if not outcome.ok:
            failures[(job.pair, job.cond_index)] = outcome.error
            continue
        cache_hits += int(outcome.cache_hit)
        if cache is not None and not outcome.cache_hit:
            cache.put(
                cache.key(job.pair, job.condition, g_size, root_entropy),
                outcome.generated,
            )
    bus.emit(
        AnalysisCompleted(
            pairs=len(prepared),
            conditions=len(jobs),
            seconds=time.perf_counter() - start,
            cache_hits=cache_hits,
        )
    )
    if failures:
        raise AnalysisError(failures)

    results: dict = {}
    cursor = 0
    for prep in prepared:
        n_conds = prep.conditions.shape[0]
        n_feats = prep.feature_indices.size
        avg_cor = np.empty((n_conds, n_feats))
        avg_inc = np.empty((n_conds, n_feats))
        for outcome in outcomes[cursor : cursor + n_conds]:
            avg_cor[outcome.cond_index] = outcome.avg_correct
            avg_inc[outcome.cond_index] = outcome.avg_incorrect
        cursor += n_conds
        results[prep.target.key] = LikelihoodResult(
            conditions=prep.conditions,
            feature_indices=prep.feature_indices,
            avg_correct=avg_cor,
            avg_incorrect=avg_inc,
            h=h,
        )
    return results


def security_analysis(
    generator_sampler,
    test_set: FlowPairDataset,
    *,
    conditions=None,
    feature_indices=None,
    h: float = 0.2,
    g_size: int = 200,
    root_entropy: int | None = None,
    pair: str = "analysis",
    executor=None,
    workers: int | None = None,
    bus: EventBus | None = None,
    chunk_size: int | None = None,
    cache: ConditionSampleCache | None = None,
) -> LikelihoodResult:
    """Single-pair convenience wrapper around :func:`run_security_analysis`.

    The batched, parallel drop-in for
    :func:`~repro.security.likelihood.security_likelihood_analysis`.
    Note the seed contract differs deliberately: *root_entropy* must be
    an integer (or ``None``), never a shared ``Generator`` — schedule
    independence requires each (pair, condition) stream to be derived,
    not consumed in sequence.
    """
    target = AnalysisTarget(
        key=pair,
        sampler=generator_sampler,
        test_set=test_set,
        conditions=conditions,
        feature_indices=feature_indices,
        label=pair,
    )
    results = run_security_analysis(
        [target],
        h=h,
        g_size=g_size,
        root_entropy=root_entropy,
        executor=executor,
        workers=workers,
        bus=bus,
        chunk_size=chunk_size,
        cache=cache,
    )
    return results[pair]


def security_analysis_h_sweep(
    generator_sampler,
    test_set: FlowPairDataset,
    *,
    h_values=(0.2, 0.4, 0.6, 0.8, 1.0),
    cache: ConditionSampleCache | None = None,
    **kwargs,
) -> dict:
    """Engine-backed Table I sweep: ``{h: LikelihoodResult}``.

    A shared sample cache (created automatically when not supplied)
    means the generator runs once per condition for the *whole* sweep —
    the samples do not depend on ``h``, only the Parzen fits do.
    """
    if cache is None:
        cache = ConditionSampleCache(max_entries=max(64, 4 * len(tuple(h_values))))
    out = {}
    for h in h_values:
        out[float(h)] = security_analysis(
            generator_sampler, test_set, h=float(h), cache=cache, **kwargs
        )
    return out
