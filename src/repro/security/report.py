"""Human-readable security reports combining all analyses.

:func:`build_security_report` runs the confidentiality, likelihood, and
mutual-information analyses against one trained CGAN and assembles a
plain-text report a CPPS designer can read — the artifact GAN-Sec's
methodology ultimately produces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.flows.dataset import FlowPairDataset
from repro.security.confidentiality import LeakageReport, SideChannelAttacker
from repro.security.likelihood import LikelihoodResult, security_likelihood_analysis
from repro.security.mutual_information import (
    condition_entropy_bits,
    feature_leakage_profile,
)
from repro.utils.tables import format_table


@dataclass
class SecurityReport:
    """Structured result bundle for one flow pair."""

    pair_name: str
    likelihood: LikelihoodResult
    leakage: LeakageReport
    mi_profile: np.ndarray
    condition_entropy: float
    detection: "DetectionReport | None" = None

    @property
    def leaked_bits_upper_bound(self) -> float:
        """The strongest single-feature MI — a lower bound on what the
        full spectrum leaks, an upper bound for a one-feature attacker."""
        return float(self.mi_profile.max())

    def verdict(self) -> str:
        """Coarse qualitative verdict for the designer."""
        ratio = self.leakage.leakage_ratio
        if ratio >= 2.0:
            return "SEVERE leakage: emissions reveal the cyber signal"
        if ratio >= 1.3:
            return "MODERATE leakage: emissions partially reveal the cyber signal"
        return "LOW leakage: emissions are close to uninformative"

    def to_text(self, *, condition_names=None) -> str:
        lines = [
            f"=== GAN-Sec security report: {self.pair_name} ===",
            "",
            "-- Confidentiality (side-channel attack) --",
            self.leakage.to_table(condition_names=condition_names),
            "",
            "-- Algorithm 3 likelihood analysis --",
            self.likelihood.to_table(condition_names=condition_names),
            "",
            "-- Information leakage --",
            format_table(
                [
                    ["condition entropy (bits)", self.condition_entropy],
                    ["max single-feature MI (bits)", self.leaked_bits_upper_bound],
                    ["mean feature MI (bits)", float(self.mi_profile.mean())],
                ],
                ["metric", "value"],
            ),
        ]
        if self.detection is not None:
            lines += [
                "",
                "-- Integrity/availability detection (axis-swap attack) --",
                self.detection.summary(),
            ]
        lines += [
            "",
            f"VERDICT: {self.verdict()}",
        ]
        return "\n".join(lines)


def build_security_report(
    cgan,
    test_set: FlowPairDataset,
    *,
    pair_name: str = "F_energy | F_signal",
    h: float = 0.2,
    g_size: int = 200,
    feature_indices=None,
    include_detection: bool = False,
    seed=None,
    likelihood: LikelihoodResult | None = None,
) -> SecurityReport:
    """Run the full analysis suite for one trained CGAN + test set.

    With ``include_detection=True`` the report also evaluates the dual
    use: an :class:`~repro.security.detection.EmissionAttackDetector`
    against an axis-swap integrity attack synthesized from the test set
    (needs at least two distinct conditions).

    *likelihood* injects a precomputed Algorithm 3 result — the parallel
    engine (:mod:`repro.security.engine`) computes the likelihood tables
    for a whole batch of pairs in one fan-out and hands each pair's
    table in here, so the report builder does not redo the scoring.
    """
    conditions = test_set.unique_conditions()
    if likelihood is None:
        likelihood = security_likelihood_analysis(
            cgan,
            test_set,
            conditions=conditions,
            feature_indices=feature_indices,
            h=h,
            g_size=g_size,
            seed=seed,
        )
    attacker = SideChannelAttacker(
        cgan,
        conditions,
        h=h,
        feature_indices=feature_indices,
        g_size=g_size,
        seed=seed,
    ).fit()
    leakage = attacker.evaluate(test_set)
    mi_profile = feature_leakage_profile(test_set)
    detection = None
    if include_detection:
        from repro.security.attacks import axis_swap_attack
        from repro.security.detection import EmissionAttackDetector

        detector = EmissionAttackDetector(
            cgan,
            conditions,
            h=h,
            feature_indices=feature_indices,
            g_size=g_size,
            seed=seed,
        ).fit()
        attack_features, attack_claims = axis_swap_attack(test_set, seed=seed)
        detection = detector.evaluate(test_set, attack_features, attack_claims)
    return SecurityReport(
        pair_name=pair_name,
        likelihood=likelihood,
        leakage=leakage,
        mi_profile=mi_profile,
        condition_entropy=condition_entropy_bits(test_set.conditions),
        detection=detection,
    )
