"""Full ROC analysis for emission attack detectors.

:func:`repro.security.detection.roc_auc` gives the scalar AUC; this
module computes the whole curve and operating-point tables so a
designer can pick a detection threshold for a target false-positive
budget — the practical artifact of the paper's "estimate the
performance of such a [detection] model".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, DataError
from repro.utils.ascii_plot import ascii_line_plot
from repro.utils.tables import format_table


@dataclass
class RocCurve:
    """An ROC curve over decision thresholds.

    Scores follow the detector convention: *higher = more normal*, and a
    sample is flagged as an attack when its score falls **below** the
    threshold.

    Attributes
    ----------
    thresholds:
        Decision thresholds, ascending.
    fpr / tpr:
        False/true-positive rates at each threshold.
    """

    thresholds: np.ndarray
    fpr: np.ndarray
    tpr: np.ndarray

    @property
    def auc(self) -> float:
        """Area under the curve via trapezoidal integration over FPR."""
        order = np.argsort(self.fpr, kind="mergesort")
        return float(np.trapezoid(self.tpr[order], self.fpr[order]))

    def threshold_for_fpr(self, max_fpr: float) -> float:
        """Largest threshold whose FPR stays within *max_fpr*.

        (Larger threshold = more sensitive detector, so this is the most
        sensitive operating point inside the false-positive budget.)
        """
        if not 0.0 <= max_fpr <= 1.0:
            raise ConfigurationError(f"max_fpr must be in [0,1], got {max_fpr}")
        ok = self.fpr <= max_fpr
        if not ok.any():
            raise DataError(f"no threshold achieves FPR <= {max_fpr}")
        return float(self.thresholds[ok].max())

    def operating_point(self, threshold: float) -> tuple:
        """(fpr, tpr) at the curve point nearest *threshold*."""
        idx = int(np.argmin(np.abs(self.thresholds - threshold)))
        return float(self.fpr[idx]), float(self.tpr[idx])

    def to_table(self, *, fpr_grid=(0.01, 0.05, 0.1, 0.2)) -> str:
        """Operating points at standard false-positive budgets."""
        rows = []
        for budget in fpr_grid:
            try:
                thr = self.threshold_for_fpr(budget)
            except DataError:
                continue
            fpr, tpr = self.operating_point(thr)
            rows.append([f"{budget:.0%}", thr, fpr, tpr])
        return format_table(
            rows,
            ["FPR budget", "threshold", "achieved FPR", "TPR"],
            title=f"detector operating points (AUC={self.auc:.3f})",
        )

    def to_ascii(self, **kwargs) -> str:
        """Render TPR-vs-FPR as an ASCII plot."""
        order = np.argsort(self.fpr, kind="mergesort")
        return ascii_line_plot(
            {"ROC": self.tpr[order]},
            title=f"ROC curve (AUC={self.auc:.3f})",
            xlabel="FPR 0 .. 1 (uniform in curve points)",
            ylabel="TPR",
            **kwargs,
        )


def roc_curve(clean_scores, attack_scores) -> RocCurve:
    """Compute the ROC curve from detector scores.

    Parameters
    ----------
    clean_scores / attack_scores:
        Per-sample scores (higher = more normal) of benign and attacked
        observations.
    """
    clean = np.asarray(clean_scores, dtype=float).ravel()
    attack = np.asarray(attack_scores, dtype=float).ravel()
    if clean.size == 0 or attack.size == 0:
        raise DataError("need both clean and attack scores")
    # Candidate thresholds: every distinct score, plus sentinels so the
    # curve spans (0,0) .. (1,1).
    all_scores = np.unique(np.concatenate([clean, attack]))
    eps = 1e-12 + (all_scores[-1] - all_scores[0]) * 1e-9
    thresholds = np.concatenate(
        [[all_scores[0] - eps], all_scores, [all_scores[-1] + eps]]
    )
    fpr = np.array([(clean < thr).mean() for thr in thresholds])
    tpr = np.array([(attack < thr).mean() for thr in thresholds])
    return RocCurve(thresholds=thresholds, fpr=fpr, tpr=tpr)
