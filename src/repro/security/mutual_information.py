"""Mutual-information metrics between flows.

The paper notes that "various other metrics may also be created using
the conditional probability values (e.g., mutual information metrics of
side channel attacks)".  This module estimates the mutual information
``I(C; X)`` between the discrete condition ``C`` (cyber signal flow)
and continuous emission features ``X`` (physical energy flow), both
from data and from a trained generator — quantifying side-channel
capacity in bits.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, DataError
from repro.flows.dataset import FlowPairDataset
from repro.security.likelihood import _as_sampler
from repro.utils.rng import as_rng


def histogram_mutual_information(
    values: np.ndarray, labels: np.ndarray, *, bins: int = 16
) -> float:
    """MI (bits) between a 1-D continuous variable and discrete labels.

    Uses equal-width binning of *values*; a simple plug-in estimator
    that is adequate for the [0, 1]-scaled features here.
    """
    values = np.asarray(values, dtype=float).ravel()
    labels = np.asarray(labels)
    if values.shape[0] != labels.shape[0]:
        raise DataError("values and labels are misaligned")
    if values.size == 0:
        raise DataError("no samples")
    if bins < 2:
        raise ConfigurationError(f"bins must be >= 2, got {bins}")
    edges = np.histogram_bin_edges(values, bins=bins)
    v_idx = np.clip(np.digitize(values, edges[1:-1]), 0, bins - 1)
    unique_labels, l_idx = np.unique(labels, return_inverse=True, axis=0)
    joint = np.zeros((bins, len(unique_labels)))
    np.add.at(joint, (v_idx, l_idx), 1.0)
    joint /= joint.sum()
    pv = joint.sum(axis=1, keepdims=True)
    pl = joint.sum(axis=0, keepdims=True)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(joint > 0, joint / (pv @ pl), 1.0)
        terms = np.where(joint > 0, joint * np.log2(ratio), 0.0)
    return float(terms.sum())


def condition_entropy_bits(conditions: np.ndarray) -> float:
    """Entropy (bits) of the empirical condition distribution — the
    maximum information the side channel could possibly leak."""
    conditions = np.atleast_2d(np.asarray(conditions, dtype=float))
    _, counts = np.unique(conditions, axis=0, return_counts=True)
    p = counts / counts.sum()
    return float(-(p * np.log2(p)).sum())


def feature_leakage_profile(
    dataset: FlowPairDataset, *, bins: int = 16
) -> np.ndarray:
    """Per-feature MI (bits) between each feature column and the condition.

    The profile shows *which* frequency bins leak — the analyst's view
    of where in the spectrum the side channel lives.
    """
    labels = [tuple(c) for c in dataset.conditions]
    labels = np.array([hash(t) for t in labels])
    return np.array(
        [
            histogram_mutual_information(dataset.features[:, d], labels, bins=bins)
            for d in range(dataset.feature_dim)
        ]
    )


def generator_leakage_profile(
    generator_sampler,
    conditions,
    *,
    n_per_condition: int = 200,
    bins: int = 16,
    seed=None,
) -> np.ndarray:
    """Per-feature MI computed on *generated* samples.

    Comparing this with :func:`feature_leakage_profile` on real data
    shows how faithfully the CGAN reproduces the leakage structure —
    the property GAN-Sec's design-time analysis relies on.
    """
    sample = _as_sampler(generator_sampler)
    rng = as_rng(seed)
    conditions = np.atleast_2d(np.asarray(conditions, dtype=float))
    features = []
    labels = []
    for ci, cond in enumerate(conditions):
        gen = sample(cond, n_per_condition, rng)
        features.append(gen)
        labels.extend([ci] * n_per_condition)
    features = np.vstack(features)
    labels = np.asarray(labels)
    return np.array(
        [
            histogram_mutual_information(features[:, d], labels, bins=bins)
            for d in range(features.shape[1])
        ]
    )
