"""Attack injection: produce tampered workloads for detector evaluation.

Two cross-domain attack families from the paper's threat model:

* **integrity** (kinetic-cyber): the executed motion differs from the
  claimed G-code — an attacker swapped axes, rescaled feeds, or
  substituted moves (cf. Stuxnet-style sabotage of part geometry);
* **availability**: a motor is stalled/disabled, so a claimed move
  produces (almost) no emission.

Each injector returns ``(attacked_features, claimed_conditions)``:
the *claimed* condition is what the controller believes (from the
original G-code), while the features come from what "really" happened.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, DataError
from repro.dsp.features import FrequencyFeatureExtractor
from repro.flows.dataset import FlowPairDataset
from repro.flows.encoding import ConditionEncoder
from repro.manufacturing.printer import Printer3D
from repro.manufacturing.traces import collect_segments
from repro.manufacturing.programs import single_motor_program
from repro.utils.rng import as_rng


def axis_swap_attack(
    dataset: FlowPairDataset, *, seed=None, n_attacks: int | None = None
):
    """Integrity attack in feature space: the emission of one condition
    is presented under the *claim* of another.

    Models an attacker who rewrote the G-code on its way to the printer
    (the move that ran is not the move the controller logged).  Rows are
    drawn from *dataset*; each keeps its real features but claims a
    different (uniformly chosen) condition.
    """
    rng = as_rng(seed)
    if n_attacks is not None and n_attacks <= 0:
        raise ConfigurationError(f"n_attacks must be > 0, got {n_attacks}")
    n = n_attacks if n_attacks is not None else len(dataset)
    conditions = dataset.unique_conditions()
    if len(conditions) < 2:
        raise DataError("axis swap needs at least two distinct conditions")
    idx = rng.integers(0, len(dataset), size=n)
    features = dataset.features[idx]
    claims = np.empty((n, dataset.condition_dim))
    for row, i in enumerate(idx):
        true_cond = dataset.conditions[i]
        others = [c for c in conditions if not np.allclose(c, true_cond)]
        claims[row] = others[rng.integers(0, len(others))]
    return features, claims


def motor_stall_attack(
    printer: Printer3D,
    extractor: FrequencyFeatureExtractor,
    encoder: ConditionEncoder,
    axis: str,
    *,
    n_moves: int = 20,
    seed=None,
):
    """Availability attack: the *axis* motor is disabled.

    Simulated physically: the claimed program commands *axis* moves, but
    the executed machine has that motor's acoustic amplitude (and
    motion) suppressed — the recorded emission is essentially ambient
    noise.  Features are extracted with the defender's fitted extractor.

    Returns ``(features, claimed_conditions)``.
    """
    rng = as_rng(seed)
    program = single_motor_program(axis, n_moves, seed=rng)
    run = printer.run(program, seed=rng)
    segments = collect_segments([run])
    if not segments:
        raise DataError("stall attack produced no usable segments")
    claims = []
    silent_features = []
    ambient = printer.synthesizer.chamber.ambient_noise_level or 1e-3
    for seg in segments:
        try:
            claims.append(encoder.encode(seg.active_axes))
        except DataError:
            continue
        # The motor never ran: the microphone recorded only noise.
        noise = rng.normal(0.0, ambient, size=len(seg.samples))
        silent_features.append(extractor.scaler.transform(
            extractor.raw_features(noise)
        ))
    if not silent_features:
        raise DataError("no encodable claimed segments in stall attack")
    return np.vstack(silent_features), np.vstack(claims)


def feed_rate_attack(
    printer: Printer3D,
    extractor: FrequencyFeatureExtractor,
    encoder: ConditionEncoder,
    axis: str,
    *,
    scale: float = 2.0,
    n_moves: int = 20,
    seed=None,
):
    """Integrity attack: executed feed rates are rescaled by *scale*.

    The part geometry/quality changes (over/under-extrusion, missed
    steps) while the commanded G-code text — and hence the claimed
    conditions — stays the same.  Detectable because step frequencies
    (and so emission spectra) shift with speed.
    """
    if scale <= 0:
        raise ConfigurationError(f"scale must be > 0, got {scale}")
    if abs(scale - 1.0) < 1e-9:
        raise ConfigurationError("scale=1 is not an attack")
    rng = as_rng(seed)
    claimed_program = single_motor_program(axis, n_moves, seed=rng)
    # The victim executes the same geometry at tampered feed rates.
    tampered_cmds = []
    for cmd in claimed_program:
        if cmd.is_motion and "F" in cmd.params:
            tampered_cmds.append(cmd.replace_params(F=cmd.params["F"] * scale))
        else:
            tampered_cmds.append(cmd)
    from repro.manufacturing.gcode import GCodeProgram

    tampered = GCodeProgram(tampered_cmds, name=f"{claimed_program.name}-feed-attack")
    run = printer.run(tampered, seed=rng)
    segments = collect_segments([run])
    features = []
    claims = []
    for seg in segments:
        try:
            cond = encoder.encode(seg.active_axes)
        except DataError:
            continue
        features.append(
            extractor.scaler.transform(extractor.raw_features(seg.samples))
        )
        claims.append(cond)
    if not features:
        raise DataError("feed-rate attack produced no encodable segments")
    return np.vstack(features), np.vstack(claims)
