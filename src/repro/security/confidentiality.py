"""Confidentiality analysis: can an attacker recover the cyber signal
(G-code conditions) from physical emissions?

The paper's question — "Is data in F1 (cyber domain) being leaked from
F9 (physical domain)?" — becomes a classification task: a
side-channel attacker observes an emission feature vector and infers
which motor ran by maximum Parzen likelihood under the CGAN's
per-condition generative models.  High inference accuracy = high
leakage = confidentiality violation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, DataError, NotFittedError
from repro.flows.dataset import FlowPairDataset
from repro.security.likelihood import _as_sampler
from repro.security.parzen import ParzenWindow
from repro.utils.rng import as_rng
from repro.utils.tables import format_table


@dataclass
class LeakageReport:
    """Result of a confidentiality attack evaluation.

    Attributes
    ----------
    conditions:
        Condition vectors, in classifier-slot order.
    accuracy:
        Fraction of test emissions whose condition the attacker inferred
        correctly (chance = 1 / n_conditions).
    confusion:
        ``confusion[i, j]`` = count of samples with true condition *i*
        classified as *j*.
    per_condition_recall:
        Recall per true condition.
    """

    conditions: np.ndarray
    accuracy: float
    confusion: np.ndarray
    per_condition_recall: np.ndarray

    @property
    def n_conditions(self) -> int:
        return len(self.conditions)

    @property
    def chance_accuracy(self) -> float:
        return 1.0 / self.n_conditions

    @property
    def leakage_ratio(self) -> float:
        """Accuracy relative to random guessing (1.0 = no leakage)."""
        return self.accuracy / self.chance_accuracy

    def to_table(self, *, condition_names=None) -> str:
        names = condition_names or [f"Cond{i+1}" for i in range(self.n_conditions)]
        rows = []
        for i, name in enumerate(names):
            rows.append(
                [name, float(self.per_condition_recall[i])]
                + [int(c) for c in self.confusion[i]]
            )
        headers = ["true\\pred", "recall"] + list(names)
        title = (
            f"Side-channel leakage: accuracy={self.accuracy:.3f} "
            f"(chance {self.chance_accuracy:.3f}, ratio {self.leakage_ratio:.2f}x)"
        )
        return format_table(rows, headers, title=title, float_fmt=".3f")


class SideChannelAttacker:
    """Maximum-likelihood condition inference from emission features.

    The attacker trains per-condition Parzen models on samples drawn
    from the CGAN generator (their learned model of the printer), then
    classifies observed emissions by the highest summed log-likelihood
    over the selected feature indices.

    Parameters
    ----------
    generator_sampler:
        Trained :class:`~repro.gan.cgan.ConditionalGAN` or callable
        ``(condition, n, rng) -> samples``.
    conditions:
        The condition vectors the attacker distinguishes.
    h:
        Parzen window width.
    feature_indices:
        Feature columns used for inference (``None`` = all).
    g_size:
        Generated samples per condition for the attacker's models.
    """

    def __init__(
        self,
        generator_sampler,
        conditions,
        *,
        h: float = 0.2,
        feature_indices=None,
        g_size: int = 200,
        seed=None,
    ):
        if h <= 0:
            raise ConfigurationError(f"h must be > 0, got {h}")
        if g_size <= 0:
            raise ConfigurationError(f"g_size must be > 0, got {g_size}")
        self._sample = _as_sampler(generator_sampler)
        self.conditions = np.atleast_2d(np.asarray(conditions, dtype=float))
        if self.conditions.shape[0] < 2:
            raise ConfigurationError("attacker needs at least 2 conditions")
        self.h = float(h)
        self.feature_indices = (
            None if feature_indices is None else np.asarray(feature_indices, dtype=int)
        )
        self.g_size = int(g_size)
        self._seed = seed
        self._models = None

    @property
    def fitted(self) -> bool:
        return self._models is not None

    def fit(self) -> "SideChannelAttacker":
        """Draw generator samples and fit per-condition, per-feature
        1-D Parzen models (the same factorized structure Algorithm 3
        uses)."""
        rng = as_rng(self._seed)
        self._models = []
        for cond in self.conditions:
            generated = self._sample(cond, self.g_size, rng)
            if self.feature_indices is not None:
                generated = generated[:, self.feature_indices]
            per_feature = [
                ParzenWindow(self.h).fit(generated[:, d])
                for d in range(generated.shape[1])
            ]
            self._models.append(per_feature)
        return self

    def log_likelihoods(self, features) -> np.ndarray:
        """Per-condition log-likelihood matrix ``(n_samples, n_conds)``.

        Feature dimensions are treated independently (the same
        per-feature Parzen structure as Algorithm 3): the log-likelihood
        of a sample is the sum over selected features.
        """
        if not self.fitted:
            raise NotFittedError("SideChannelAttacker.fit() not called")
        features = np.atleast_2d(np.asarray(features, dtype=float))
        if self.feature_indices is not None:
            features = features[:, self.feature_indices]
        out = np.empty((features.shape[0], len(self._models)))
        for ci, per_feature in enumerate(self._models):
            if features.shape[1] != len(per_feature):
                raise DataError(
                    f"features have {features.shape[1]} columns, attacker "
                    f"models expect {len(per_feature)}"
                )
            # Sum of per-dimension log densities == product of marginals.
            total = np.zeros(features.shape[0])
            for d, distr in enumerate(per_feature):
                total += distr.score_samples(features[:, d])
            out[:, ci] = total
        return out

    def infer(self, features) -> np.ndarray:
        """Most likely condition index per sample."""
        return np.argmax(self.log_likelihoods(features), axis=1)

    def evaluate(self, test_set: FlowPairDataset) -> LeakageReport:
        """Attack every test sample and compile a :class:`LeakageReport`."""
        if not self.fitted:
            self.fit()
        cond_index = {tuple(c): i for i, c in enumerate(self.conditions)}
        true_idx = []
        for row in test_set.conditions:
            key = tuple(row)
            if key not in cond_index:
                raise DataError(
                    f"test sample labeled {list(key)} is outside the attacker's "
                    "condition set"
                )
            true_idx.append(cond_index[key])
        true_idx = np.asarray(true_idx)
        pred_idx = self.infer(test_set.features)
        n = len(self.conditions)
        confusion = np.zeros((n, n), dtype=int)
        for t, p in zip(true_idx, pred_idx):
            confusion[t, p] += 1
        with np.errstate(invalid="ignore", divide="ignore"):
            recall = np.where(
                confusion.sum(axis=1) > 0,
                np.diag(confusion) / np.maximum(confusion.sum(axis=1), 1),
                0.0,
            )
        accuracy = float((true_idx == pred_idx).mean())
        return LeakageReport(
            conditions=self.conditions,
            accuracy=accuracy,
            confusion=confusion,
            per_condition_recall=recall,
        )


def leakage_vs_training_data(
    make_cgan,
    dataset: FlowPairDataset,
    fractions=(0.25, 0.5, 0.75, 1.0),
    *,
    test_fraction: float = 0.25,
    iterations: int = 500,
    h: float = 0.2,
    seed=None,
) -> list:
    """Attacker capability study: leakage accuracy vs training-data volume.

    The paper: "The amount of data given for training can also be
    modified according to the attacker capability".  *make_cgan* is a
    zero-argument factory returning a fresh untrained CGAN.

    Returns a list of ``(fraction, n_train, accuracy)`` tuples.
    """
    rng = as_rng(seed)
    train, test = dataset.split(test_fraction, seed=rng)
    results = []
    for frac in fractions:
        if not 0.0 < frac <= 1.0:
            raise ConfigurationError(f"fractions must be in (0,1], got {frac}")
        subset = (
            train
            if frac == 1.0
            else train.take(max(2, int(round(frac * len(train)))), seed=rng)
        )
        cgan = make_cgan()
        cgan.train(subset, iterations=iterations, seed=rng)
        attacker = SideChannelAttacker(
            cgan, test.unique_conditions(), h=h, seed=rng
        ).fit()
        report = attacker.evaluate(test)
        results.append((float(frac), len(subset), report.accuracy))
    return results
