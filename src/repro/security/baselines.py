"""Non-GAN baselines for the security analyses.

The paper argues for estimating ``Pr(F_i | F_j)`` with a CGAN rather
than directly from the (limited) data: the generator "never sees the
real data [and] estimates the distribution without overfitting on the
currently limited data".  These baselines make that claim testable:

* :class:`EmpiricalConditionalSampler` — sample ``Pr(F_i | F_j)``
  directly from the recorded data (resampling + optional jitter), i.e.
  a Parzen window on the *real* samples instead of generated ones;
* :class:`GaussianConditionalSampler` — a per-condition diagonal
  Gaussian fit (the classic parametric density baseline);
* :class:`NearestCentroidAttacker` — a density-free attacker that
  classifies emissions by distance to per-condition feature centroids.

All samplers expose the ``(condition, n, rng) -> samples`` interface of
:func:`repro.security.likelihood.security_likelihood_analysis`, so every
Algorithm 3 analysis and attacker can run unchanged against a baseline —
the comparison the ablation benchmark ``bench_ablation_baselines`` runs.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, DataError
from repro.flows.dataset import FlowPairDataset


class EmpiricalConditionalSampler:
    """Resample the recorded data per condition (with Gaussian jitter).

    With ``jitter=h`` this is exactly sampling from a Parzen window of
    width *h* fitted on the real per-condition samples — the "directly
    estimate from data" alternative to the CGAN.
    """

    def __init__(self, dataset: FlowPairDataset, *, jitter: float = 0.0):
        if jitter < 0:
            raise ConfigurationError(f"jitter must be >= 0, got {jitter}")
        self._subsets = {
            tuple(cond): dataset.subset_for_condition(cond).features
            for cond in dataset.unique_conditions()
        }
        if not self._subsets:
            raise DataError("dataset has no conditions")
        self.jitter = float(jitter)
        self.feature_dim = dataset.feature_dim

    def __call__(self, condition, n: int, rng) -> np.ndarray:
        key = tuple(np.asarray(condition, dtype=float).ravel())
        if key not in self._subsets:
            raise DataError(f"no recorded data for condition {list(key)}")
        pool = self._subsets[key]
        idx = rng.integers(0, pool.shape[0], size=n)
        out = pool[idx].copy()
        if self.jitter > 0:
            out = out + rng.normal(0.0, self.jitter, size=out.shape)
        return out


class GaussianConditionalSampler:
    """Per-condition diagonal Gaussian fit of the feature distribution."""

    def __init__(self, dataset: FlowPairDataset, *, min_std: float = 1e-3):
        if min_std <= 0:
            raise ConfigurationError(f"min_std must be > 0, got {min_std}")
        self._params = {}
        for cond in dataset.unique_conditions():
            feats = dataset.subset_for_condition(cond).features
            self._params[tuple(cond)] = (
                feats.mean(axis=0),
                np.maximum(feats.std(axis=0), min_std),
            )
        self.feature_dim = dataset.feature_dim

    def __call__(self, condition, n: int, rng) -> np.ndarray:
        key = tuple(np.asarray(condition, dtype=float).ravel())
        if key not in self._params:
            raise DataError(f"no fitted Gaussian for condition {list(key)}")
        mean, std = self._params[key]
        return rng.normal(mean[None, :], std[None, :], size=(n, len(mean)))


class NearestCentroidAttacker:
    """Density-free baseline attacker: classify by nearest centroid.

    Bypasses the whole generative machinery — an upper-bound sanity
    check on how much structure the features alone carry.
    """

    def __init__(self, train_set: FlowPairDataset):
        self.conditions = train_set.unique_conditions()
        if len(self.conditions) < 2:
            raise DataError("need at least two conditions")
        self._centroids = np.vstack(
            [
                train_set.subset_for_condition(cond).features.mean(axis=0)
                for cond in self.conditions
            ]
        )

    def infer(self, features) -> np.ndarray:
        features = np.atleast_2d(np.asarray(features, dtype=float))
        dists = np.linalg.norm(
            features[:, None, :] - self._centroids[None, :, :], axis=2
        )
        return np.argmin(dists, axis=1)

    def accuracy(self, test_set: FlowPairDataset) -> float:
        cond_index = {tuple(c): i for i, c in enumerate(self.conditions)}
        true_idx = []
        for row in test_set.conditions:
            key = tuple(row)
            if key not in cond_index:
                raise DataError(f"unseen condition {list(key)} in test set")
            true_idx.append(cond_index[key])
        preds = self.infer(test_set.features)
        return float((preds == np.asarray(true_idx)).mean())
