"""Integrity and availability attack detection from physical emissions.

The dual use of the CGAN model (paper Section IV-D): "if a designer
needs to create an integrity and availability attack detection model to
detect attacks on individual components (X, Y or Z motor) using the
side-channels, he/she will be able to estimate the performance of such
a model using the CGAN model."

The detector knows the *claimed* condition of each segment (from the
G-code the controller believes it is executing) and checks whether the
observed emission is likely under the CGAN's conditional model for that
claim.  Low likelihood ⇒ the physical behaviour does not match the
cyber claim ⇒ integrity attack (motion replaced/modified) or
availability attack (motor stalled/disabled).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, DataError, NotFittedError
from repro.flows.dataset import FlowPairDataset
from repro.security.likelihood import _as_sampler
from repro.security.parzen import ParzenWindow
from repro.utils.rng import as_rng


@dataclass
class DetectionReport:
    """Evaluation of an attack detector on labeled clean/attacked data.

    Attributes
    ----------
    threshold:
        Log-likelihood decision threshold in use.
    true_positive_rate:
        Fraction of attacked samples flagged.
    false_positive_rate:
        Fraction of clean samples flagged.
    auc:
        Area under the ROC curve over all thresholds.
    clean_scores / attack_scores:
        Per-sample log-likelihoods (higher = more normal).
    """

    threshold: float
    true_positive_rate: float
    false_positive_rate: float
    auc: float
    clean_scores: np.ndarray
    attack_scores: np.ndarray

    def summary(self) -> str:
        return (
            f"detection: TPR={self.true_positive_rate:.3f} "
            f"FPR={self.false_positive_rate:.3f} AUC={self.auc:.3f} "
            f"(threshold={self.threshold:.3f})"
        )


def roc_auc(clean_scores: np.ndarray, attack_scores: np.ndarray) -> float:
    """AUC via the Mann–Whitney U statistic.

    *clean_scores* should stochastically exceed *attack_scores* for a
    working detector (higher score = more normal).
    """
    clean = np.asarray(clean_scores, dtype=float)
    attack = np.asarray(attack_scores, dtype=float)
    if clean.size == 0 or attack.size == 0:
        raise DataError("need both clean and attack scores for AUC")
    # P(clean > attack) + 0.5 P(==), computed by rank trick.
    combined = np.concatenate([clean, attack])
    ranks = combined.argsort().argsort().astype(float) + 1.0
    # Average ranks for ties.
    order = np.argsort(combined, kind="mergesort")
    sorted_vals = combined[order]
    avg_ranks = np.empty_like(ranks)
    i = 0
    while i < len(sorted_vals):
        j = i
        while j + 1 < len(sorted_vals) and sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        avg = (i + j) / 2.0 + 1.0
        avg_ranks[order[i : j + 1]] = avg
        i = j + 1
    r_clean = avg_ranks[: clean.size].sum()
    u = r_clean - clean.size * (clean.size + 1) / 2.0
    return float(u / (clean.size * attack.size))


class EmissionAttackDetector:
    """Likelihood-ratio attack detector built on the CGAN generator.

    Parameters
    ----------
    generator_sampler:
        Trained CGAN (or sampler callable) providing ``G(Z | c)``.
    conditions:
        All conditions that can legitimately be claimed.
    h:
        Parzen window width for the per-feature models.
    feature_indices:
        Feature columns used for scoring (``None`` = all).
    g_size:
        Generator samples per condition.
    """

    def __init__(
        self,
        generator_sampler,
        conditions,
        *,
        h: float = 0.2,
        feature_indices=None,
        g_size: int = 200,
        seed=None,
    ):
        if h <= 0:
            raise ConfigurationError(f"h must be > 0, got {h}")
        self._sample = _as_sampler(generator_sampler)
        self.conditions = np.atleast_2d(np.asarray(conditions, dtype=float))
        self.h = float(h)
        self.feature_indices = (
            None if feature_indices is None else np.asarray(feature_indices, dtype=int)
        )
        self.g_size = int(g_size)
        self._seed = seed
        self._models = None
        self.threshold = None

    def fit(self) -> "EmissionAttackDetector":
        """Fit per-condition, per-feature Parzen models from G samples."""
        rng = as_rng(self._seed)
        self._models = {}
        for cond in self.conditions:
            generated = self._sample(cond, self.g_size, rng)
            if self.feature_indices is not None:
                generated = generated[:, self.feature_indices]
            self._models[tuple(cond)] = [
                ParzenWindow(self.h).fit(generated[:, d])
                for d in range(generated.shape[1])
            ]
        return self

    def score(self, features, claimed_conditions) -> np.ndarray:
        """Per-sample mean log-likelihood under the *claimed* condition.

        Higher = emission consistent with the claim (normal); lower =
        suspicious.
        """
        if self._models is None:
            raise NotFittedError("EmissionAttackDetector.fit() not called")
        features = np.atleast_2d(np.asarray(features, dtype=float))
        claimed = np.atleast_2d(np.asarray(claimed_conditions, dtype=float))
        if claimed.shape[0] == 1 and features.shape[0] > 1:
            claimed = np.tile(claimed, (features.shape[0], 1))
        if features.shape[0] != claimed.shape[0]:
            raise DataError("features and claimed_conditions are misaligned")
        if self.feature_indices is not None:
            features = features[:, self.feature_indices]
        scores = np.empty(features.shape[0])
        for i, (x, c) in enumerate(zip(features, claimed)):
            key = tuple(c)
            if key not in self._models:
                raise DataError(f"claimed condition {list(key)} was never fitted")
            per_feature = self._models[key]
            total = 0.0
            for d, distr in enumerate(per_feature):
                total += float(distr.score_samples(np.array([x[d]]))[0])
            scores[i] = total / len(per_feature)
        return scores

    def calibrate(
        self, clean_set: FlowPairDataset, *, false_positive_rate: float = 0.05
    ) -> float:
        """Pick the threshold achieving a target FPR on clean data."""
        if not 0.0 < false_positive_rate < 1.0:
            raise ConfigurationError(
                f"false_positive_rate must be in (0,1), got {false_positive_rate}"
            )
        scores = self.score(clean_set.features, clean_set.conditions)
        self.threshold = float(np.quantile(scores, false_positive_rate))
        return self.threshold

    def detect(self, features, claimed_conditions) -> np.ndarray:
        """Boolean attack flags (True = attack) using the calibrated threshold."""
        if self.threshold is None:
            raise NotFittedError("calibrate() must run before detect()")
        return self.score(features, claimed_conditions) < self.threshold

    def evaluate(
        self,
        clean_set: FlowPairDataset,
        attack_features,
        attack_claims,
    ) -> DetectionReport:
        """Score clean and attacked samples and compile a report."""
        if self.threshold is None:
            self.calibrate(clean_set)
        clean_scores = self.score(clean_set.features, clean_set.conditions)
        attack_scores = self.score(attack_features, attack_claims)
        tpr = float((attack_scores < self.threshold).mean())
        fpr = float((clean_scores < self.threshold).mean())
        return DetectionReport(
            threshold=self.threshold,
            true_positive_rate=tpr,
            false_positive_rate=fpr,
            auc=roc_auc(clean_scores, attack_scores),
            clean_scores=clean_scores,
            attack_scores=attack_scores,
        )
