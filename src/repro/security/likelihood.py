"""Algorithm 3: the paper's security-analysis methodology.

For every condition ``C_i`` and every selected frequency feature
``FtIdx``:

1. generate ``GSize`` samples from ``G(Z | C_i)``;
2. fit a 1-D Parzen Gaussian window of width ``h`` to the generated
   values of feature ``FtIdx`` (``FtDistr``);
3. score every test sample's feature value:
   ``Like = exp(FtDistr.score(x)) * h``;
4. accumulate the likelihood into *CorLike* when the test sample's true
   label equals ``C_i`` and into *IncLike* otherwise;
5. average per feature, producing the matrices ``AvgCorLike`` and
   ``AvgIncLike`` (conditions × features).

High *AvgCorLike* with low *AvgIncLike* means the generator has learned
a sharp, condition-specific emission model — i.e. the physical emission
*leaks* the cyber condition (confidentiality risk), and dually the same
model can *detect* integrity/availability attacks that change the
condition-emission relationship.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, DataError
from repro.flows.dataset import FlowPairDataset
from repro.security.parzen import ParzenWindow
from repro.utils.rng import as_rng, spawn_rngs
from repro.utils.tables import format_table


@dataclass
class LikelihoodResult:
    """Output of Algorithm 3.

    Attributes
    ----------
    conditions:
        The condition vectors analyzed, shape ``(n_conds, c)``.
    feature_indices:
        The analyzed feature columns (``FtIndices``).
    avg_correct:
        ``AvgCorLike`` matrix, shape ``(n_conds, n_features)``.
    avg_incorrect:
        ``AvgIncLike`` matrix, same shape.
    h:
        Parzen window width used.
    """

    conditions: np.ndarray
    feature_indices: np.ndarray
    avg_correct: np.ndarray
    avg_incorrect: np.ndarray
    h: float

    def margin(self) -> np.ndarray:
        """Cor − Inc per (condition, feature): the attacker's edge."""
        return self.avg_correct - self.avg_incorrect

    def per_condition_summary(self) -> list:
        """List of dicts: condition, mean Cor, mean Inc, mean margin."""
        out = []
        for i, cond in enumerate(self.conditions):
            out.append(
                {
                    "condition": cond.tolist(),
                    "avg_correct": float(self.avg_correct[i].mean()),
                    "avg_incorrect": float(self.avg_incorrect[i].mean()),
                    "margin": float(self.margin()[i].mean()),
                }
            )
        return out

    def to_table(self, *, condition_names=None) -> str:
        """Render as an ASCII table (rows = conditions)."""
        names = condition_names or [
            f"Cond{i + 1}" for i in range(len(self.conditions))
        ]
        rows = []
        for name, summary in zip(names, self.per_condition_summary()):
            rows.append(
                [name, summary["avg_correct"], summary["avg_incorrect"], summary["margin"]]
            )
        return format_table(
            rows,
            ["condition", "Cor", "Inc", "margin"],
            title=f"Average likelihoods (h={self.h})",
        )


def security_likelihood_analysis(
    generator_sampler,
    test_set: FlowPairDataset,
    *,
    conditions=None,
    feature_indices=None,
    h: float = 0.2,
    g_size: int = 200,
    seed=None,
) -> LikelihoodResult:
    """Run Algorithm 3.

    Parameters
    ----------
    generator_sampler:
        Either a trained :class:`~repro.gan.cgan.ConditionalGAN` or any
        callable ``(condition_vector, n, seed) -> (n, d) samples`` —
        Algorithm 3 only needs ``G(Z | C_i)``.
    test_set:
        Held-out labeled observations ``X_test``.
    conditions:
        Condition vectors to analyze; defaults to the distinct
        conditions present in *test_set*.
    feature_indices:
        ``FtIndices``; defaults to *all* feature columns.
    h:
        Parzen window width.
    g_size:
        ``GSize`` — generated samples per condition.
    """
    if h <= 0:
        raise ConfigurationError(f"h must be > 0, got {h}")
    if g_size <= 0:
        raise ConfigurationError(f"g_size must be > 0, got {g_size}")
    sample = _as_sampler(generator_sampler)
    rng = as_rng(seed)

    if conditions is None:
        conditions = test_set.unique_conditions()
    conditions = np.atleast_2d(np.asarray(conditions, dtype=float))
    if feature_indices is None:
        feature_indices = np.arange(test_set.feature_dim)
    feature_indices = np.asarray(feature_indices, dtype=int)
    if feature_indices.size == 0:
        raise ConfigurationError("feature_indices is empty")
    if np.any(feature_indices < 0) or np.any(feature_indices >= test_set.feature_dim):
        raise ConfigurationError(
            f"feature indices out of range [0, {test_set.feature_dim})"
        )

    n_conds = conditions.shape[0]
    n_feats = feature_indices.size
    avg_cor = np.zeros((n_conds, n_feats))
    avg_inc = np.zeros((n_conds, n_feats))

    for ci, cond in enumerate(conditions):
        # Line 6: X_G = GSize samples from G(Z | C_i).
        generated = sample(cond, g_size, rng)
        correct_mask = test_set.mask_for_condition(cond)
        if not correct_mask.any():
            raise DataError(
                f"test set has no samples labeled {cond.tolist()}; "
                "Algorithm 3 needs test data for every analyzed condition"
            )
        for fi, ft in enumerate(feature_indices):
            # Line 8: 1-D Parzen window on the generated feature values.
            distr = ParzenWindow(h).fit(generated[:, ft])
            # Lines 9-14: scaled likelihood of every test sample.
            likes = distr.likelihood(test_set.features[:, ft])
            cor = likes[correct_mask]
            inc = likes[~correct_mask]
            avg_cor[ci, fi] = cor.mean()
            avg_inc[ci, fi] = inc.mean() if inc.size else 0.0
    return LikelihoodResult(
        conditions=conditions,
        feature_indices=feature_indices,
        avg_correct=avg_cor,
        avg_incorrect=avg_inc,
        h=h,
    )


def likelihood_h_sweep(
    generator_sampler,
    test_set: FlowPairDataset,
    *,
    h_values=(0.2, 0.4, 0.6, 0.8, 1.0),
    **kwargs,
) -> dict:
    """Run Algorithm 3 for several Parzen widths (the Table I sweep).

    Returns ``{h: LikelihoodResult}``.
    """
    out = {}
    for h in h_values:
        out[float(h)] = security_likelihood_analysis(
            generator_sampler, test_set, h=float(h), **kwargs
        )
    return out


@dataclass
class RepeatedLikelihoodResult:
    """Mean/std of Algorithm 3 outputs over repeated runs.

    Repetition varies the generator's noise draws and the Parzen fits,
    quantifying the Monte-Carlo uncertainty of the Table I numbers.
    """

    conditions: np.ndarray
    feature_indices: np.ndarray
    mean_correct: np.ndarray
    std_correct: np.ndarray
    mean_incorrect: np.ndarray
    std_incorrect: np.ndarray
    h: float
    n_repeats: int

    def margin(self) -> np.ndarray:
        return self.mean_correct - self.mean_incorrect

    def to_table(self, *, condition_names=None) -> str:
        names = condition_names or [
            f"Cond{i + 1}" for i in range(len(self.conditions))
        ]
        rows = []
        for i, name in enumerate(names):
            rows.append(
                [
                    name,
                    f"{self.mean_correct[i].mean():.4f}"
                    f" ± {self.std_correct[i].mean():.4f}",
                    f"{self.mean_incorrect[i].mean():.4f}"
                    f" ± {self.std_incorrect[i].mean():.4f}",
                ]
            )
        return format_table(
            rows,
            ["condition", "Cor (mean ± std)", "Inc (mean ± std)"],
            title=f"Algorithm 3 over {self.n_repeats} repeats (h={self.h})",
        )


def repeated_likelihood_analysis(
    generator_sampler,
    test_set: FlowPairDataset,
    *,
    n_repeats: int = 5,
    seed=None,
    **kwargs,
) -> RepeatedLikelihoodResult:
    """Run Algorithm 3 *n_repeats* times with fresh generator noise.

    Accepts the same keyword arguments as
    :func:`security_likelihood_analysis`; each repeat derives its own
    seed from *seed*, so results carry honest Monte-Carlo error bars.
    """
    if n_repeats < 2:
        raise ConfigurationError(f"n_repeats must be >= 2, got {n_repeats}")
    child_rngs = spawn_rngs(seed, n_repeats)
    cors, incs = [], []
    last = None
    for rng in child_rngs:
        last = security_likelihood_analysis(
            generator_sampler, test_set, seed=rng, **kwargs
        )
        cors.append(last.avg_correct)
        incs.append(last.avg_incorrect)
    cors = np.stack(cors)
    incs = np.stack(incs)
    return RepeatedLikelihoodResult(
        conditions=last.conditions,
        feature_indices=last.feature_indices,
        mean_correct=cors.mean(axis=0),
        std_correct=cors.std(axis=0),
        mean_incorrect=incs.mean(axis=0),
        std_incorrect=incs.std(axis=0),
        h=last.h,
        n_repeats=n_repeats,
    )


def choose_analysis_feature(
    generator_sampler,
    calibration_set: FlowPairDataset,
    *,
    candidates=None,
    h: float = 0.2,
    g_size: int = 150,
    objective: str = "balanced",
    seed=None,
) -> int:
    """Pick the single feature for a Table-I-style analysis.

    Implements the paper's (implicit) feature extraction/selection
    ``f_Y`` on the *calibration* (training) data.

    Parameters
    ----------
    objective:
        ``"balanced"`` — maximize mean-plus-minimum per-condition margin
        (a robust feature that identifies every condition reasonably);
        ``"peak"`` — among features whose margin is positive for *every*
        condition, maximize the strongest single-condition margin (the
        feature on which some condition is most identifiable — the
        paper's Table I highlights exactly such a feature, with Cond3
        standing out).  Falls back to ``"balanced"`` scoring when no
        candidate has all-positive margins.
    candidates:
        Feature indices to score; defaults to the 10 highest-MI columns
        for ``"balanced"`` and to all columns for ``"peak"``.

    Returns the chosen feature index.
    """
    from repro.security.mutual_information import feature_leakage_profile

    if objective not in ("balanced", "peak"):
        raise ConfigurationError(
            f"objective must be 'balanced' or 'peak', got {objective!r}"
        )
    if candidates is None:
        if objective == "peak":
            candidates = np.arange(calibration_set.feature_dim)
        else:
            mi = feature_leakage_profile(calibration_set)
            candidates = np.argsort(mi)[::-1][:10]
    candidates = np.asarray(candidates, dtype=int)
    if candidates.size == 0:
        raise ConfigurationError("no candidate features given")
    result = security_likelihood_analysis(
        generator_sampler,
        calibration_set,
        feature_indices=candidates,
        h=h,
        g_size=g_size,
        seed=seed,
    )
    margins = result.margin()  # (n_conds, n_candidates)
    if objective == "peak":
        all_positive = np.all(margins > 0, axis=0)
        if all_positive.any():
            score = np.where(all_positive, margins.max(axis=0), -np.inf)
            return int(candidates[int(np.argmax(score))])
    # Mean margin plus the minimum (so one hopeless condition penalizes).
    score = margins.mean(axis=0) + margins.min(axis=0)
    return int(candidates[int(np.argmax(score))])


def _as_sampler(generator_sampler):
    """Normalize the generator argument into ``(cond, n, rng) -> samples``."""
    from repro.gan.cgan import ConditionalGAN  # Local import to avoid a cycle.

    if isinstance(generator_sampler, ConditionalGAN):
        generator_sampler.require_trained()

        def sample(cond, n, rng):
            return generator_sampler.generate_for_condition(cond, n, seed=rng)

        return sample
    if callable(generator_sampler):
        return generator_sampler
    raise ConfigurationError(
        "generator_sampler must be a trained ConditionalGAN or a callable "
        "(condition, n, rng) -> samples"
    )
