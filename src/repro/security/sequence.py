"""Sequence-aware side-channel inference.

The basic :class:`~repro.security.confidentiality.SideChannelAttacker`
classifies each emission segment independently.  Real G-code is not
i.i.d. — motor usage has strong sequential structure (perimeter moves
alternate X/Y, layer changes are rare Z events).  A stronger attacker
exploits this with a first-order Markov model over conditions:

* :class:`TransitionModel` — estimate the condition-transition matrix
  (with Laplace smoothing) from observed or assumed G-code statistics,
  e.g. via :class:`~repro.flows.signal.SignalFlowData` of condition
  sequences;
* :func:`viterbi_decode` — maximum a-posteriori condition *sequence*
  given per-segment log-likelihoods and the transition model;
* :class:`SequenceAttacker` — glue: per-segment log-likelihoods from any
  fitted :class:`SideChannelAttacker` + Viterbi smoothing.

This is the "more complex signal flow analysis [that] can still use the
same CGAN" the paper alludes to under Algorithm 3.

The module also hosts the *sequential decision layer* of the streaming
attack detector (:mod:`repro.streaming`): :class:`CusumDetector` and
:class:`EwmaDetector` accumulate per-window log-likelihood evidence
over time, so a sustained drop in likelihood (integrity/availability
attack) raises an alarm even when no single window is damning.  Both
are strictly sequential and deterministic: feeding scores one at a
time or in batches of any size yields identical alarm times, which is
what lets every offline golden fixture double as a streaming oracle.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, DataError, ShapeError
from repro.flows.signal import SignalFlowData
from repro.security.confidentiality import SideChannelAttacker

_LOG_FLOOR = -700.0  # exp() underflow boundary; safe log of "never".


class TransitionModel:
    """First-order Markov model over a finite condition set.

    Parameters
    ----------
    n_states:
        Number of conditions.
    smoothing:
        Laplace pseudo-count added to every transition (keeps unseen
        transitions possible; 1.0 by default).
    """

    def __init__(self, n_states: int, *, smoothing: float = 1.0):
        if n_states < 2:
            raise ConfigurationError(f"need >= 2 states, got {n_states}")
        if smoothing < 0:
            raise ConfigurationError(f"smoothing must be >= 0, got {smoothing}")
        self.n_states = int(n_states)
        self.smoothing = float(smoothing)
        self._counts = np.full((n_states, n_states), smoothing, dtype=float)
        self._initial = np.full(n_states, smoothing, dtype=float)

    @classmethod
    def from_sequences(
        cls, sequences, n_states: int, *, smoothing: float = 1.0
    ) -> "TransitionModel":
        """Fit from iterables of state-index sequences."""
        model = cls(n_states, smoothing=smoothing)
        for seq in sequences:
            model.update(seq)
        return model

    @classmethod
    def from_signal_flow(
        cls, data: SignalFlowData, state_index: dict, *, smoothing: float = 1.0
    ) -> "TransitionModel":
        """Fit from a :class:`SignalFlowData` of condition symbols.

        *state_index* maps each symbol to its state index.
        """
        seq = []
        for symbol in data.values:
            if symbol not in state_index:
                raise DataError(f"symbol {symbol!r} missing from state_index")
            seq.append(state_index[symbol])
        return cls.from_sequences([seq], len(state_index), smoothing=smoothing)

    def update(self, sequence) -> "TransitionModel":
        """Accumulate transition counts from one state-index sequence."""
        seq = [int(s) for s in sequence]
        if any(not 0 <= s < self.n_states for s in seq):
            raise DataError(
                f"state indices must be in [0, {self.n_states}): {seq}"
            )
        if seq:
            self._initial[seq[0]] += 1.0
        for a, b in zip(seq, seq[1:]):
            self._counts[a, b] += 1.0
        return self

    @property
    def transition_matrix(self) -> np.ndarray:
        """Row-normalized transition probabilities ``P(next | current)``."""
        return self._counts / self._counts.sum(axis=1, keepdims=True)

    @property
    def initial_probabilities(self) -> np.ndarray:
        return self._initial / self._initial.sum()

    def log_transition(self) -> np.ndarray:
        return np.log(np.maximum(self.transition_matrix, np.exp(_LOG_FLOOR)))

    def log_initial(self) -> np.ndarray:
        return np.log(np.maximum(self.initial_probabilities, np.exp(_LOG_FLOOR)))

    def __repr__(self):
        return f"TransitionModel(n_states={self.n_states})"


def viterbi_decode(
    log_likelihoods: np.ndarray,
    transition: TransitionModel,
) -> np.ndarray:
    """MAP state sequence for per-step emission log-likelihoods.

    Parameters
    ----------
    log_likelihoods:
        Array ``(n_steps, n_states)`` of per-segment, per-condition
        emission log-likelihoods (e.g. from
        :meth:`SideChannelAttacker.log_likelihoods`).
    transition:
        The fitted :class:`TransitionModel`.

    Returns the most likely state-index sequence, shape ``(n_steps,)``.
    """
    ll = np.asarray(log_likelihoods, dtype=float)
    if ll.ndim != 2:
        raise ShapeError("log_likelihoods must be 2-D (steps, states)")
    n_steps, n_states = ll.shape
    if n_states != transition.n_states:
        raise ShapeError(
            f"log_likelihoods has {n_states} states, transition model "
            f"{transition.n_states}"
        )
    if n_steps == 0:
        raise DataError("empty sequence")
    log_a = transition.log_transition()
    score = transition.log_initial() + ll[0]
    back = np.zeros((n_steps, n_states), dtype=int)
    for t in range(1, n_steps):
        cand = score[:, None] + log_a  # (from, to)
        back[t] = np.argmax(cand, axis=0)
        score = cand[back[t], np.arange(n_states)] + ll[t]
    path = np.empty(n_steps, dtype=int)
    path[-1] = int(np.argmax(score))
    for t in range(n_steps - 1, 0, -1):
        path[t - 1] = back[t, path[t]]
    return path


class _SequentialDetector:
    """Shared plumbing for the sequential change detectors.

    Scores follow the detection convention (higher = more normal), and
    *reference* / *scale* normalize them into z-like deviations:
    ``z = (reference - score) / scale`` is positive when the emission
    looks less likely than calibration predicted.
    """

    def __init__(self, *, reference: float, scale: float, threshold: float):
        if scale <= 0:
            raise ConfigurationError(f"scale must be > 0, got {scale}")
        if threshold <= 0:
            raise ConfigurationError(f"threshold must be > 0, got {threshold}")
        self.reference = float(reference)
        self.scale = float(scale)
        self.threshold = float(threshold)
        self.windows_seen = 0
        self.alarms: list = []

    @staticmethod
    def _calibration_stats(clean_scores) -> tuple:
        scores = np.asarray(clean_scores, dtype=float).ravel()
        if scores.size < 2:
            raise DataError("need >= 2 calibration scores")
        std = float(scores.std())
        return float(scores.mean()), (std if std > 0 else 1e-12)

    def _deviation(self, score: float) -> float:
        return (self.reference - float(score)) / self.scale

    def update(self, score: float) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def update_many(self, scores) -> np.ndarray:
        """Feed scores in order; boolean alarm flag per score.

        Strictly equivalent to calling :meth:`update` one score at a
        time — batching never changes alarm times.
        """
        scores = np.asarray(scores, dtype=float).ravel()
        return np.array([self.update(s) for s in scores], dtype=bool)


class CusumDetector(_SequentialDetector):
    """One-sided CUSUM over per-window log-likelihood scores.

    The statistic ``S`` accumulates normalized likelihood deficits:
    ``S = max(0, S + z - drift)`` with ``z = (reference - score)/scale``;
    an alarm fires when ``S > threshold``.  *drift* is the allowance
    (in z units) subtracted every step so calibration-level noise never
    accumulates; *threshold* trades detection delay for false alarms.

    Parameters
    ----------
    reference / scale:
        Mean and standard deviation of clean-window scores (use
        :meth:`from_calibration`).
    drift:
        Per-step allowance in z units (default 0.5).
    threshold:
        Alarm level on the accumulated statistic (default 5.0).
    reset_on_alarm:
        Restart the accumulation after each alarm (default), so a
        session reports distinct attack episodes instead of one
        saturated alarm.
    """

    def __init__(
        self,
        *,
        reference: float = 0.0,
        scale: float = 1.0,
        drift: float = 0.5,
        threshold: float = 5.0,
        reset_on_alarm: bool = True,
    ):
        super().__init__(reference=reference, scale=scale, threshold=threshold)
        if drift < 0:
            raise ConfigurationError(f"drift must be >= 0, got {drift}")
        self.drift = float(drift)
        self.reset_on_alarm = bool(reset_on_alarm)
        self.statistic = 0.0

    @classmethod
    def from_calibration(
        cls,
        clean_scores,
        *,
        drift: float = 0.5,
        threshold: float = 5.0,
        reset_on_alarm: bool = True,
    ) -> "CusumDetector":
        """Build a detector normalized to clean-window score statistics."""
        mean, std = cls._calibration_stats(clean_scores)
        return cls(
            reference=mean,
            scale=std,
            drift=drift,
            threshold=threshold,
            reset_on_alarm=reset_on_alarm,
        )

    def update(self, score: float) -> bool:
        """Consume one window score; True when the alarm fires."""
        self.statistic = max(0.0, self.statistic + self._deviation(score) - self.drift)
        alarm = self.statistic > self.threshold
        if alarm:
            self.alarms.append(self.windows_seen)
            if self.reset_on_alarm:
                self.statistic = 0.0
        self.windows_seen += 1
        return alarm

    def reset(self) -> None:
        self.statistic = 0.0

    def __repr__(self):
        return (
            f"CusumDetector(drift={self.drift}, threshold={self.threshold}, "
            f"S={self.statistic:.3f}, alarms={len(self.alarms)})"
        )


class EwmaDetector(_SequentialDetector):
    """Exponentially-weighted moving average alternative to CUSUM.

    Tracks ``E = (1 - alpha) * E + alpha * z`` and alarms when ``E``
    exceeds *threshold* (in z units).  Responds faster than CUSUM to
    large shifts; CUSUM accumulates small sustained ones better.
    """

    def __init__(
        self,
        *,
        reference: float = 0.0,
        scale: float = 1.0,
        alpha: float = 0.2,
        threshold: float = 2.5,
        reset_on_alarm: bool = True,
    ):
        super().__init__(reference=reference, scale=scale, threshold=threshold)
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = float(alpha)
        self.reset_on_alarm = bool(reset_on_alarm)
        self.statistic = 0.0

    @classmethod
    def from_calibration(
        cls,
        clean_scores,
        *,
        alpha: float = 0.2,
        threshold: float = 2.5,
        reset_on_alarm: bool = True,
    ) -> "EwmaDetector":
        mean, std = cls._calibration_stats(clean_scores)
        return cls(
            reference=mean,
            scale=std,
            alpha=alpha,
            threshold=threshold,
            reset_on_alarm=reset_on_alarm,
        )

    def update(self, score: float) -> bool:
        self.statistic = (1.0 - self.alpha) * self.statistic + self.alpha * self._deviation(score)
        alarm = self.statistic > self.threshold
        if alarm:
            self.alarms.append(self.windows_seen)
            if self.reset_on_alarm:
                self.statistic = 0.0
        self.windows_seen += 1
        return alarm

    def reset(self) -> None:
        self.statistic = 0.0

    def __repr__(self):
        return (
            f"EwmaDetector(alpha={self.alpha}, threshold={self.threshold}, "
            f"E={self.statistic:.3f}, alarms={len(self.alarms)})"
        )


class SequenceAttacker:
    """Viterbi-smoothed side-channel attacker.

    Wraps a fitted :class:`SideChannelAttacker` (the per-segment CGAN
    likelihood model) with a :class:`TransitionModel` fitted on known or
    assumed G-code statistics.
    """

    def __init__(
        self,
        base_attacker: SideChannelAttacker,
        transition: TransitionModel,
    ):
        if transition.n_states != len(base_attacker.conditions):
            raise ConfigurationError(
                "transition model and attacker disagree on condition count"
            )
        self.base = base_attacker
        self.transition = transition

    def infer_sequence(self, features) -> np.ndarray:
        """MAP condition-index sequence for temporally ordered segments."""
        if not self.base.fitted:
            self.base.fit()
        ll = self.base.log_likelihoods(features)
        return viterbi_decode(ll, self.transition)

    def sequence_accuracy(self, features, true_indices) -> float:
        """Per-step accuracy of the smoothed reconstruction."""
        true_indices = np.asarray(true_indices, dtype=int)
        pred = self.infer_sequence(features)
        if pred.shape != true_indices.shape:
            raise ShapeError("features and true_indices are misaligned")
        return float((pred == true_indices).mean())
