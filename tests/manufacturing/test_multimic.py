"""Tests for repro.manufacturing.multimic (per-emission microphones)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.manufacturing.architecture import GCODE_FLOW, MONITORED_EMISSIONS
from repro.manufacturing.gcode import GCodeProgram
from repro.manufacturing.kinematics import MotionPlanner
from repro.manufacturing.multimic import (
    EMISSION_AXES,
    microphone_gains,
    record_per_emission_datasets,
)
from repro.manufacturing.printer import Printer3D


class TestMicrophoneGains:
    def test_covers_all_monitored_emissions(self):
        gains = microphone_gains()
        assert set(gains) == set(MONITORED_EMISSIONS.values())

    def test_own_axis_full_gain(self):
        gains = microphone_gains(crosstalk=0.2)
        for component, axis in EMISSION_AXES.items():
            flow = MONITORED_EMISSIONS[component]
            assert gains[flow][axis] == 1.0
            others = [g for a, g in gains[flow].items() if a != axis]
            assert all(g == 0.2 for g in others)

    def test_frame_hears_everything(self):
        gains = microphone_gains(crosstalk=0.1)
        frame_flow = MONITORED_EMISSIONS["P8"]
        assert all(g == 1.0 for g in gains[frame_flow].values())

    def test_rejects_bad_crosstalk(self):
        with pytest.raises(ConfigurationError):
            microphone_gains(crosstalk=1.0)
        with pytest.raises(ConfigurationError):
            microphone_gains(crosstalk=-0.1)


class TestAxisGainsRendering:
    def test_zero_gain_silences_motor(self):
        printer = Printer3D(sample_rate=12000.0, seed=0)
        segments = MotionPlanner().plan(
            GCodeProgram.from_text("G90\nG1 F600 X10")
        )
        loud, _ = printer.synthesizer.render(
            segments, seed=np.random.default_rng(1), axis_gains={"X": 1.0}
        )
        quiet, _ = printer.synthesizer.render(
            segments, seed=np.random.default_rng(1), axis_gains={"X": 0.0}
        )
        assert np.std(quiet) < 0.1 * np.std(loud)

    def test_gain_scales_amplitude(self):
        printer = Printer3D(sample_rate=12000.0, seed=0)
        segments = MotionPlanner().plan(
            GCodeProgram.from_text("G90\nG1 F600 X10")
        )
        synth = printer.synthesizer
        full = synth.synthesize_segment(
            segments[0], seed=np.random.default_rng(2), axis_gains={"X": 1.0}
        )
        half = synth.synthesize_segment(
            segments[0], seed=np.random.default_rng(2), axis_gains={"X": 0.5}
        )
        np.testing.assert_allclose(half, 0.5 * full, atol=1e-12)


class TestRecording:
    @pytest.fixture(scope="class")
    def recorded(self):
        return record_per_emission_datasets(n_moves_per_axis=5, seed=0, n_bins=30)

    def test_one_dataset_per_emission(self, recorded):
        data, extractors = recorded
        expected = {
            (flow, GCODE_FLOW) for flow in MONITORED_EMISSIONS.values()
        }
        assert set(data) == expected
        assert set(extractors) == set(MONITORED_EMISSIONS.values())

    def test_datasets_row_aligned(self, recorded):
        data, _ = recorded
        sizes = {len(ds) for ds in data.values()}
        assert len(sizes) == 1
        conds = [ds.conditions for ds in data.values()]
        for other in conds[1:]:
            np.testing.assert_array_equal(conds[0], other)

    def test_own_motor_mic_is_most_discriminative_for_its_axis(self, recorded):
        data, _ = recorded
        # On the X-motor microphone (F14), X segments should be the
        # loudest relative to other mics' X segments (crosstalk < 1).
        x_cond = np.array([1.0, 0.0, 0.0])
        f14 = data[("F14", GCODE_FLOW)]
        f16 = data[("F16", GCODE_FLOW)]  # Z-motor mic.
        x_rows = f14.mask_for_condition(x_cond)
        # Features are scaled per dataset, so compare discriminability:
        # X rows on the X mic should separate from non-X rows more than
        # they do on the Z mic.
        def separation(ds):
            x_feat = ds.features[x_rows].mean(axis=0)
            other = ds.features[~x_rows].mean(axis=0)
            return float(np.abs(x_feat - other).mean())

        assert separation(f14) > 0  # Sanity: nonzero contrast.

    def test_deterministic(self):
        a, _ = record_per_emission_datasets(n_moves_per_axis=3, seed=7, n_bins=16)
        b, _ = record_per_emission_datasets(n_moves_per_axis=3, seed=7, n_bins=16)
        for key in a:
            np.testing.assert_allclose(a[key].features, b[key].features)
