"""Tests for repro.manufacturing.gcode (incl. hypothesis round-trip)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GCodeError
from repro.manufacturing.gcode import (
    GCodeCommand,
    GCodeProgram,
    parse_line,
)


class TestParseLine:
    def test_basic_move(self):
        cmd = parse_line("G1 F1200 X5 Y5 Z5")
        assert cmd.code == "G1"
        assert cmd.params == {"F": 1200.0, "X": 5.0, "Y": 5.0, "Z": 5.0}

    def test_blank_and_comment_lines(self):
        assert parse_line("") is None
        assert parse_line("   ") is None
        assert parse_line("; pure comment") is None
        assert parse_line("(parenthesized)") is None

    def test_semicolon_comment_preserved(self):
        cmd = parse_line("G28 ; home all")
        assert cmd.code == "G28"
        assert cmd.comment == "home all"

    def test_paren_comment_stripped(self):
        cmd = parse_line("G1 (move fast) X10")
        assert cmd.params == {"X": 10.0}

    def test_line_number(self):
        cmd = parse_line("N42 G1 X1")
        assert cmd.line_number == 42

    def test_checksum_stripped(self):
        cmd = parse_line("G1 X1*71")
        assert cmd.params == {"X": 1.0}

    def test_m_code(self):
        cmd = parse_line("M104 S200")
        assert cmd.code == "M104"
        assert cmd.params["S"] == 200.0

    def test_lowercase_accepted(self):
        cmd = parse_line("g1 x5.5 f600")
        assert cmd.code == "G1"
        assert cmd.params == {"X": 5.5, "F": 600.0}

    def test_negative_and_decimal_values(self):
        cmd = parse_line("G1 X-12.75 Y+3.5")
        assert cmd.params["X"] == -12.75
        assert cmd.params["Y"] == 3.5

    def test_params_without_command_raise(self):
        with pytest.raises(GCodeError, match="no G/M command"):
            parse_line("X10 Y10")

    def test_duplicate_param_raises(self):
        with pytest.raises(GCodeError, match="duplicate"):
            parse_line("G1 X1 X2")

    def test_two_commands_raise(self):
        with pytest.raises(GCodeError, match="multiple command"):
            parse_line("G1 G28 X1")

    def test_junk_raises(self):
        with pytest.raises(GCodeError):
            parse_line("G1 X1 !!!")

    def test_unknown_letter_raises(self):
        with pytest.raises(GCodeError):
            parse_line("G1 Q5")


class TestGCodeCommand:
    def test_invalid_code_rejected(self):
        with pytest.raises(GCodeError):
            GCodeCommand("X1")

    def test_is_motion(self):
        assert GCodeCommand("G0", {"X": 1.0}).is_motion
        assert GCodeCommand("G1", {"X": 1.0}).is_motion
        assert not GCodeCommand("G28").is_motion

    def test_axes_present_ordered(self):
        cmd = GCodeCommand("G1", {"Z": 1.0, "X": 2.0})
        assert cmd.axes_present() == ("X", "Z")

    def test_to_line_canonical(self):
        cmd = GCodeCommand("G1", {"X": 5.0, "F": 1200.0})
        assert cmd.to_line() == "G1 F1200 X5"

    def test_replace_params(self):
        cmd = GCodeCommand("G1", {"X": 5.0, "F": 1200.0})
        fast = cmd.replace_params(F=2400.0)
        assert fast.params["F"] == 2400.0
        assert cmd.params["F"] == 1200.0  # Original untouched.

    def test_replace_params_remove(self):
        cmd = GCodeCommand("G1", {"X": 5.0, "F": 1200.0})
        no_feed = cmd.replace_params(F=None)
        assert "F" not in no_feed.params


class TestProgram:
    SAMPLE = """
    G21 ; mm
    G90
    G28
    G1 F1200 X5 Y5 Z5
    G1 F1200 X10 Y5 Z5
    """

    def test_from_text(self):
        prog = GCodeProgram.from_text(self.SAMPLE, name="sample")
        assert len(prog) == 5
        assert prog[3].params["X"] == 5.0

    def test_round_trip(self):
        prog = GCodeProgram.from_text(self.SAMPLE)
        again = GCodeProgram.from_text(prog.to_text())
        assert len(again) == len(prog)
        for a, b in zip(prog, again):
            assert a.code == b.code
            assert a.params == b.params

    def test_error_reports_line_number(self):
        with pytest.raises(GCodeError, match="line 2"):
            GCodeProgram.from_text("G28\nG1 X1 X2")

    def test_motion_commands(self):
        prog = GCodeProgram.from_text(self.SAMPLE)
        assert len(prog.motion_commands()) == 2

    def test_append_extend(self):
        prog = GCodeProgram()
        prog.append(GCodeCommand("G28"))
        prog.extend([GCodeCommand("G1", {"X": 1.0})])
        assert len(prog) == 2

    def test_rejects_non_command(self):
        with pytest.raises(GCodeError):
            GCodeProgram(["G1 X1"])


@st.composite
def commands(draw):
    code = draw(st.sampled_from(["G0", "G1", "G4", "G28", "M104", "M106"]))
    letters = draw(
        st.sets(st.sampled_from(["X", "Y", "Z", "E", "F", "S", "P"]), max_size=4)
    )
    params = {}
    for letter in letters:
        value = draw(
            st.floats(
                min_value=-1000,
                max_value=1000,
                allow_nan=False,
                allow_infinity=False,
            )
        )
        params[letter] = round(value, 6)
    return GCodeCommand(code, params)


class TestPropertyRoundTrip:
    @given(commands())
    @settings(max_examples=60, deadline=None)
    def test_serialize_parse_roundtrip(self, cmd):
        parsed = parse_line(cmd.to_line())
        assert parsed.code == cmd.code
        assert set(parsed.params) == set(cmd.params)
        for letter, value in cmd.params.items():
            assert parsed.params[letter] == pytest.approx(value, abs=1e-6)
