"""Tests for repro.manufacturing.power and multichannel recording."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.dsp.stft import power_spectrum
from repro.manufacturing.gcode import GCodeProgram
from repro.manufacturing.kinematics import MotionPlanner
from repro.manufacturing.multichannel import record_multichannel_dataset
from repro.manufacturing.power import (
    PowerSignature,
    PowerTraceSynthesizer,
    default_power_signatures,
)


def segments_for(text):
    return MotionPlanner().plan(GCodeProgram.from_text(text))


class TestPowerSignature:
    def test_defaults_valid(self):
        PowerSignature()

    def test_rejects_bad_values(self):
        with pytest.raises(ConfigurationError):
            PowerSignature(running_current=0.0)
        with pytest.raises(ConfigurationError):
            PowerSignature(ripple_gain=-0.1)
        with pytest.raises(ConfigurationError):
            PowerSignature(harmonic_gains=())

    def test_default_set_covers_axes(self):
        sigs = default_power_signatures()
        assert set(sigs) == {"X", "Y", "Z", "E"}
        # Z lead screw draws the most current.
        assert sigs["Z"].running_current > sigs["X"].running_current


class TestSynthesizer:
    def test_rejects_bad_config(self):
        with pytest.raises(ConfigurationError):
            PowerTraceSynthesizer(sample_rate=0)
        with pytest.raises(ConfigurationError):
            PowerTraceSynthesizer(heater_period=0)

    def test_running_motor_raises_mean_current(self):
        synth = PowerTraceSynthesizer(noise_level=0.0)
        (move,) = segments_for("G90\nG1 F600 X10")
        (dwell,) = segments_for("G4 S1")
        moving = synth.synthesize_segment(move, seed=0)
        idle = synth.synthesize_segment(dwell, seed=0)
        assert moving.mean() > idle.mean() + 0.5

    def test_z_draws_more_than_x(self):
        synth = PowerTraceSynthesizer(noise_level=0.0)
        (x_move,) = segments_for("G90\nG1 F600 X10")
        (z_move,) = segments_for("G90\nG1 F72 Z2")
        x_mean = synth.synthesize_segment(x_move, seed=0).mean()
        z_mean = synth.synthesize_segment(z_move, seed=0).mean()
        assert z_mean > x_mean

    def test_ripple_at_step_frequency(self):
        synth = PowerTraceSynthesizer(
            sample_rate=5000.0, noise_level=0.0, heater_current=0.0
        )
        (move,) = segments_for("G90\nG1 F600 X10")  # X at 800 Hz.
        trace = synth.synthesize_segment(move, seed=0)
        freqs, power = power_spectrum(trace - trace.mean(), 5000.0)
        peak = freqs[power.argmax()]
        assert abs(peak - 800.0) < 20.0

    def test_ripple_above_nyquist_vanishes(self):
        synth = PowerTraceSynthesizer(
            sample_rate=1000.0, noise_level=0.0, heater_current=0.0
        )
        (move,) = segments_for("G90\nG1 F600 X10")  # 800 Hz > 500 Hz Nyquist.
        trace = synth.synthesize_segment(move, seed=0)
        assert trace.std() < 1e-9  # Pure DC: no visible ripple.

    def test_render_boundaries(self):
        synth = PowerTraceSynthesizer()
        segs = segments_for("G90\nG1 F600 X10\nG1 Y5")
        trace, bounds = synth.render(segs, seed=0)
        assert len(bounds) == len(segs) + 1
        assert bounds[-1] == pytest.approx(len(trace) / synth.sample_rate)

    def test_heater_phase_continuous(self):
        synth = PowerTraceSynthesizer(noise_level=0.0)
        segs = segments_for("G90\nG1 F600 X10\nG1 X0")
        trace, _ = synth.render(segs, seed=0)
        # No jump larger than the per-sample heater slew at boundaries.
        jumps = np.abs(np.diff(trace))
        assert jumps.max() < 0.5  # Motor ripple amplitude bound, no steps.

    def test_deterministic(self):
        synth = PowerTraceSynthesizer()
        segs = segments_for("G90\nG1 F600 X10")
        a, _ = synth.render(segs, seed=9)
        b, _ = synth.render(segs, seed=9)
        np.testing.assert_array_equal(a, b)


class TestMultichannel:
    @pytest.fixture(scope="class")
    def recording(self):
        return record_multichannel_dataset(n_moves_per_axis=6, seed=0)

    def test_row_alignment(self, recording):
        n = len(recording.acoustic)
        assert len(recording.power) == n
        assert len(recording.fused) == n
        np.testing.assert_array_equal(
            recording.acoustic.conditions, recording.power.conditions
        )

    def test_fused_is_concatenation(self, recording):
        assert (
            recording.fused.feature_dim
            == recording.acoustic.feature_dim + recording.power.feature_dim
        )
        np.testing.assert_array_equal(
            recording.fused.features[:, : recording.acoustic.feature_dim],
            recording.acoustic.features,
        )

    def test_power_features_include_stats(self, recording):
        # 50 bins + 3 stats.
        assert recording.power.feature_dim == 53
        assert recording.extractors["power"].include_stats

    def test_all_conditions_present(self, recording):
        assert len(recording.acoustic.unique_conditions()) == 3

    def test_deterministic(self):
        a = record_multichannel_dataset(n_moves_per_axis=4, seed=5)
        b = record_multichannel_dataset(n_moves_per_axis=4, seed=5)
        np.testing.assert_allclose(a.fused.features, b.fused.features)
