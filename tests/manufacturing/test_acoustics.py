"""Tests for repro.manufacturing.acoustics."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.dsp.stft import power_spectrum
from repro.manufacturing.acoustics import (
    AcousticSynthesizer,
    AnechoicChamber,
    ContactMicrophone,
)
from repro.manufacturing.gcode import GCodeProgram
from repro.manufacturing.kinematics import MotionPlanner
from repro.manufacturing.steppers import default_motors


def segments_for(text):
    return MotionPlanner().plan(GCodeProgram.from_text(text))


def make_synth(**kwargs):
    return AcousticSynthesizer(default_motors(), **kwargs)


class TestModels:
    def test_chamber_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            AnechoicChamber(ambient_noise_level=-1.0)

    def test_microphone_rejects_bad_band(self):
        with pytest.raises(ConfigurationError):
            ContactMicrophone(low_cut_hz=5000, high_cut_hz=100)

    def test_microphone_bandpass_attenuates_extremes(self):
        mic = ContactMicrophone(noise_level=0.0, low_cut_hz=100, high_cut_hz=2000)
        sr = 12000.0
        t = np.arange(int(sr)) / sr
        rng = np.random.default_rng(0)
        low_tone = np.sin(2 * np.pi * 10 * t)
        mid_tone = np.sin(2 * np.pi * 500 * t)
        high_tone = np.sin(2 * np.pi * 5500 * t)
        low_out = mic.apply(low_tone, sr, rng)
        mid_out = mic.apply(mid_tone, sr, rng)
        high_out = mic.apply(high_tone, sr, rng)
        assert np.std(low_out) < 0.2 * np.std(mid_out)
        assert np.std(high_out) < 0.9 * np.std(mid_out)

    def test_synth_rejects_bad_sample_rate(self):
        with pytest.raises(ConfigurationError):
            make_synth(sample_rate=0)


class TestSegmentSynthesis:
    def test_length_matches_duration(self):
        synth = make_synth(sample_rate=12000.0)
        (seg,) = segments_for("G90\nG1 F600 X10")  # 1 s
        wave = synth.synthesize_segment(seg, seed=0)
        assert len(wave) == 12000

    def test_tone_at_step_frequency(self):
        synth = make_synth(sample_rate=12000.0)
        (seg,) = segments_for("G90\nG1 F600 X10")  # X at 800 Hz
        wave = synth.synthesize_segment(seg, seed=0)
        freqs, power = power_spectrum(wave, 12000.0)
        band = power[(freqs > 700) & (freqs < 900)].sum()
        total = power.sum()
        assert band / total > 0.2  # Fundamental carries substantial energy.

    def test_dwell_is_quiet(self):
        synth = make_synth(sample_rate=12000.0)
        (dwell,) = segments_for("G4 P200")
        (move,) = segments_for("G90\nG1 F600 X10")
        quiet = synth.synthesize_segment(dwell, seed=0)
        loud = synth.synthesize_segment(move, seed=0)
        assert np.std(quiet) < 0.05 * np.std(loud)

    def test_deterministic_with_seed(self):
        synth = make_synth()
        (seg,) = segments_for("G90\nG1 F600 X10")
        a = synth.synthesize_segment(seg, seed=42)
        b = synth.synthesize_segment(seg, seed=42)
        np.testing.assert_array_equal(a, b)

    def test_different_motors_different_spectra(self):
        synth = make_synth(sample_rate=12000.0)
        (seg_x,) = segments_for("G90\nG1 F600 X10")
        (seg_z,) = segments_for("G90\nG1 F72 Z2")
        wx = synth.synthesize_segment(seg_x, seed=0)
        wz = synth.synthesize_segment(seg_z, seed=0)
        n = min(len(wx), len(wz))
        fx, px = power_spectrum(wx[:n], 12000.0)
        _, pz = power_spectrum(wz[:n], 12000.0)
        # Correlation of normalized spectra should be far from 1.
        corr = np.corrcoef(px / px.sum(), pz / pz.sum())[0, 1]
        assert corr < 0.8


class TestRender:
    def test_boundaries_align(self):
        synth = make_synth(sample_rate=12000.0)
        segs = segments_for("G90\nG1 F600 X10\nG1 Y5")
        audio, bounds = synth.render(segs, seed=0)
        assert len(bounds) == len(segs) + 1
        assert bounds[0] == 0.0
        assert bounds[-1] == pytest.approx(len(audio) / 12000.0)

    def test_empty_plan(self):
        synth = make_synth()
        audio, bounds = synth.render([], seed=0)
        assert len(audio) == 0
        assert bounds == [0.0]

    def test_ambient_noise_present(self):
        synth = make_synth(chamber=AnechoicChamber(ambient_noise_level=0.01))
        segs = segments_for("G4 P100")
        audio, _ = synth.render(segs, seed=0)
        assert np.std(audio) > 0.0
