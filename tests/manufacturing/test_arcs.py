"""Tests for G2/G3 arc planning."""

import numpy as np
import pytest

from repro.errors import GCodeError
from repro.manufacturing.gcode import GCodeProgram
from repro.manufacturing.kinematics import MotionPlanner
from repro.manufacturing.quality import path_length, toolpath_points


def plan(text):
    return MotionPlanner().plan(GCodeProgram.from_text(text))


class TestArcGeometry:
    def test_quarter_circle_endpoint(self):
        # Start (10,0), center (0,0), CCW to (0,10).
        segs = plan("G90\nG1 F1200 X10 Y0\nG3 X0 Y10 I-10 J0")
        end = segs[-1].end
        assert end["X"] == pytest.approx(0.0, abs=1e-6)
        assert end["Y"] == pytest.approx(10.0, abs=1e-6)

    def test_points_stay_on_circle(self):
        segs = plan("G90\nG1 F1200 X10 Y0\nG3 X0 Y10 I-10 J0")
        arc_segs = [s for s in segs if s.command.code == "G3"]
        for seg in arc_segs:
            r = np.hypot(seg.end["X"], seg.end["Y"])
            assert r == pytest.approx(10.0, abs=1e-6)

    def test_chord_length_approximates_arc(self):
        segs = plan("G90\nG1 F1200 X10 Y0\nG3 X0 Y10 I-10 J0")
        arc_segs = [s for s in segs if s.command.code == "G3"]
        pts = toolpath_points(arc_segs)
        quarter = np.pi * 10.0 / 2.0
        assert path_length(pts) == pytest.approx(quarter, rel=0.01)
        # Tolerance-driven tessellation: a 10 mm quarter arc needs many chords.
        assert len(arc_segs) >= 5

    def test_clockwise_direction(self):
        # G2 from (10,0) about (0,0) to (0,-10) is a quarter turn CW.
        segs = plan("G90\nG1 F1200 X10 Y0\nG2 X0 Y-10 I-10 J0")
        arc_segs = [s for s in segs if s.command.code == "G2"]
        pts = toolpath_points(arc_segs)
        assert path_length(pts) == pytest.approx(np.pi * 5.0, rel=0.01)
        # Midpoint should be in the fourth quadrant (x>0, y<0).
        mid = pts[len(pts) // 2]
        assert mid[0] > 0 and mid[1] < 0

    def test_full_circle(self):
        # Same start and end: a G3 full circle.
        segs = plan("G90\nG1 F1200 X10 Y0\nG3 X10 Y0 I-10 J0")
        arc_segs = [s for s in segs if s.command.code == "G3"]
        pts = toolpath_points(arc_segs)
        assert path_length(pts) == pytest.approx(2 * np.pi * 10.0, rel=0.01)

    def test_both_axes_active(self):
        segs = plan("G90\nG1 F1200 X10 Y0\nG3 X0 Y10 I-10 J0")
        arc_segs = [s for s in segs if s.command.code == "G3"]
        # Mid-arc chords move X and Y together.
        assert any(s.active_axes == {"X", "Y"} for s in arc_segs)


class TestArcErrors:
    def test_missing_center(self):
        with pytest.raises(GCodeError, match="without I/J"):
            plan("G90\nG1 F1200 X10\nG3 X0 Y10")

    def test_r_form_unsupported(self):
        with pytest.raises(GCodeError, match="R-form"):
            plan("G90\nG1 F1200 X10\nG3 X0 Y10 R10")

    def test_zero_radius(self):
        with pytest.raises(GCodeError, match="zero-radius"):
            plan("G90\nG1 F1200 X10\nG3 X0 Y10 I0 J0")

    def test_endpoint_off_circle(self):
        with pytest.raises(GCodeError, match="off the circle"):
            plan("G90\nG1 F1200 X10 Y0\nG3 X0 Y20 I-10 J0")


class TestArcAcoustics:
    def test_arc_renders_audio(self):
        from repro.manufacturing import Printer3D

        printer = Printer3D(sample_rate=12000.0, seed=0)
        prog = GCodeProgram.from_text(
            "G90\nG1 F1200 X10 Y0\nG3 X0 Y10 I-10 J0"
        )
        run = printer.run(prog, seed=1)
        assert run.audio.duration > 0.5  # Quarter arc at 20 mm/s.
