"""Tests for repro.manufacturing.architecture (Figure 5/6 description)."""

from repro.flows.base import EnergyForm
from repro.manufacturing.architecture import (
    GCODE_FLOW,
    MONITORED_EMISSIONS,
    monitored_flow_names,
    printer_architecture,
)


class TestPrinterArchitecture:
    def test_validates(self):
        printer_architecture().validate()

    def test_paper_node_roster(self):
        arch = printer_architecture()
        names = arch.component_names()
        assert {f"C{i}" for i in range(1, 5)} <= names
        assert {f"P{i}" for i in range(1, 10)} <= names
        assert len(names) == 13

    def test_external_nodes(self):
        arch = printer_architecture()
        assert arch.component("C4").external
        assert arch.component("P9").external
        assert not arch.component("C1").external

    def test_gcode_flow_is_signal_from_c4(self):
        arch = printer_architecture()
        flow = arch.flow(GCODE_FLOW)
        assert flow.is_signal
        assert flow.source == "C4"
        assert flow.target == "C1"

    def test_monitored_emissions_match_paper(self):
        # The paper monitors energy flows from P2, P3, P4, P5, P8 to P9.
        assert set(MONITORED_EMISSIONS) == {"P2", "P3", "P4", "P5", "P8"}
        arch = printer_architecture()
        for src, flow_name in MONITORED_EMISSIONS.items():
            flow = arch.flow(flow_name)
            assert flow.source == src
            assert flow.target == "P9"
            assert flow.is_energy
            assert not flow.intentional
            assert flow.energy_form is EnergyForm.ACOUSTIC

    def test_monitored_flow_names(self):
        names = monitored_flow_names()
        assert names[0] == GCODE_FLOW
        assert len(names) == 6

    def test_environment_receives_thermal_too(self):
        arch = printer_architecture()
        into_env = [f for f in arch.flows.values() if f.target == "P9"]
        forms = {f.energy_form for f in into_env}
        assert EnergyForm.THERMAL in forms
        assert EnergyForm.ACOUSTIC in forms
