"""Tests for repro.manufacturing.printer."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.manufacturing.printer import Printer3D
from repro.manufacturing.programs import single_motor_program


@pytest.fixture(scope="module")
def printer():
    return Printer3D(sample_rate=12000.0, seed=0)


class TestRun:
    def test_run_produces_aligned_trace(self, printer):
        prog = single_motor_program("X", 5, seed=0)
        run = printer.run(prog, seed=1)
        assert len(run.boundaries) == len(run.segments) + 1
        assert run.audio.sample_rate == 12000.0
        total = sum(
            b2 - b1 for b1, b2 in zip(run.boundaries, run.boundaries[1:])
        )
        assert run.audio.duration == pytest.approx(total, abs=1e-6)

    def test_segment_audio_lengths(self, printer):
        prog = single_motor_program("Y", 4, seed=2)
        run = printer.run(prog, seed=3)
        for i, seg in enumerate(run.segments):
            audio = run.segment_audio(i)
            assert len(audio) == pytest.approx(
                seg.duration * printer.sample_rate, abs=2
            )

    def test_segment_audio_bounds(self, printer):
        prog = single_motor_program("X", 3, seed=4)
        run = printer.run(prog, seed=5)
        with pytest.raises(ConfigurationError):
            run.segment_audio(len(run.segments))

    def test_deterministic_given_seed(self):
        prog = single_motor_program("X", 3, seed=0)
        p1 = Printer3D(sample_rate=12000.0)
        p2 = Printer3D(sample_rate=12000.0)
        r1 = p1.run(prog, seed=77)
        r2 = p2.run(prog, seed=77)
        np.testing.assert_array_equal(r1.audio.samples, r2.audio.samples)

    def test_plan_only(self, printer):
        prog = single_motor_program("Z", 4, seed=6)
        segs = printer.plan(prog)
        assert all(s.active_axes <= {"Z"} for s in segs)

    def test_repr(self, printer):
        run = printer.run(single_motor_program("X", 2, seed=7), seed=8)
        assert "PrintRun" in repr(run)
