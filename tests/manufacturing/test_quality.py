"""Tests for repro.manufacturing.quality."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, DataError
from repro.manufacturing.gcode import GCodeProgram
from repro.manufacturing.kinematics import MotionPlanner
from repro.manufacturing.quality import (
    bounding_box,
    geometric_damage_report,
    hausdorff_distance,
    mean_deviation,
    path_length,
    resample_polyline,
    toolpath_points,
)


def plan(text):
    return MotionPlanner().plan(GCodeProgram.from_text(text))


SQUARE = "G90\nG1 F1200 X10\nG1 Y10\nG1 X0\nG1 Y0"


class TestToolpath:
    def test_square_waypoints(self):
        pts = toolpath_points(plan(SQUARE))
        assert pts.shape == (5, 3)
        np.testing.assert_allclose(pts[1], [10, 0, 0])
        np.testing.assert_allclose(pts[-1], [0, 0, 0])

    def test_dwell_skipped(self):
        pts = toolpath_points(plan("G90\nG1 F1200 X5\nG4 P100\nG1 X10"))
        assert pts.shape == (3, 3)

    def test_empty_plan_raises(self):
        with pytest.raises(DataError):
            toolpath_points([])

    def test_path_length_square(self):
        assert path_length(toolpath_points(plan(SQUARE))) == pytest.approx(40.0)

    def test_bounding_box(self):
        lo, hi = bounding_box(toolpath_points(plan(SQUARE)))
        np.testing.assert_allclose(lo, [0, 0, 0])
        np.testing.assert_allclose(hi, [10, 10, 0])


class TestResample:
    def test_count_and_endpoints(self):
        pts = np.array([[0.0, 0.0], [10.0, 0.0]])
        out = resample_polyline(pts, 11)
        assert out.shape == (11, 2)
        np.testing.assert_allclose(out[0], [0, 0])
        np.testing.assert_allclose(out[-1], [10, 0])
        np.testing.assert_allclose(out[5], [5, 0])

    def test_single_point(self):
        out = resample_polyline(np.array([[1.0, 2.0]]), 4)
        assert out.shape == (4, 2)
        assert np.all(out == [1.0, 2.0])

    def test_rejects_bad_count(self):
        with pytest.raises(ConfigurationError):
            resample_polyline(np.zeros((3, 2)), 1)


class TestDeviation:
    def test_identical_paths_zero(self):
        pts = toolpath_points(plan(SQUARE))
        assert hausdorff_distance(pts, pts) == pytest.approx(0.0, abs=1e-9)
        assert mean_deviation(pts, pts) == pytest.approx(0.0, abs=1e-9)

    def test_translated_line(self):
        a = np.array([[0.0, 0.0], [10.0, 0.0]])
        b = a + np.array([0.0, 3.0])
        assert hausdorff_distance(a, b) == pytest.approx(3.0, abs=1e-6)
        assert mean_deviation(a, b) == pytest.approx(3.0, abs=1e-6)

    def test_symmetric(self):
        a = np.array([[0.0, 0.0], [10.0, 0.0]])
        b = np.array([[0.0, 0.0], [10.0, 5.0]])
        assert hausdorff_distance(a, b) == pytest.approx(
            hausdorff_distance(b, a)
        )

    def test_axis_swap_attack_causes_damage(self):
        claimed = plan("G90\nG1 F1200 X20")
        executed = plan("G90\nG1 F1200 Y20")  # Attacker swapped the axis.
        report = geometric_damage_report(claimed, executed)
        assert report["hausdorff_mm"] > 10.0
        assert report["claimed_length_mm"] == pytest.approx(
            report["executed_length_mm"]
        )

    def test_feed_rate_attack_no_geometric_damage(self):
        # Feed tampering changes speed, not geometry: the toolpath
        # deviation is zero even though the emission spectrum shifts.
        claimed = plan("G90\nG1 F1200 X20\nG1 Y10")
        executed = plan("G90\nG1 F2400 X20\nG1 Y10")
        report = geometric_damage_report(claimed, executed)
        assert report["hausdorff_mm"] == pytest.approx(0.0, abs=1e-9)

    def test_scale_attack_bbox_growth(self):
        claimed = plan("G90\nG1 F1200 X10\nG1 Y10")
        executed = plan("G90\nG1 F1200 X12\nG1 Y12")  # 20% oversize part.
        report = geometric_damage_report(claimed, executed)
        assert report["bbox_growth_mm"] >= 2.0
