"""Tests for repro.manufacturing.wav."""

import numpy as np
import pytest

from repro.errors import DataError
from repro.flows.energy import EnergyFlowData
from repro.manufacturing.wav import read_wav, write_wav


def tone_trace(freq=440.0, sr=12000.0, duration=0.1):
    t = np.arange(int(sr * duration)) / sr
    return EnergyFlowData(np.sin(2 * np.pi * freq * t), sr, name="tone")


class TestRoundTrip:
    def test_waveform_preserved(self, tmp_path):
        trace = tone_trace()
        path = write_wav(trace, tmp_path / "tone.wav", normalize=False)
        back = read_wav(path)
        assert back.sample_rate == trace.sample_rate
        assert len(back) == len(trace)
        # 16-bit quantization error bound.
        assert np.max(np.abs(back.samples - trace.samples)) < 1e-3

    def test_normalization(self, tmp_path):
        quiet = EnergyFlowData(0.01 * tone_trace().samples, 12000.0)
        path = write_wav(quiet, tmp_path / "q.wav", normalize=True)
        back = read_wav(path)
        assert np.max(np.abs(back.samples)) == pytest.approx(0.9, abs=0.01)

    def test_clipping_without_normalization(self, tmp_path):
        loud = EnergyFlowData(3.0 * tone_trace().samples, 12000.0)
        path = write_wav(loud, tmp_path / "l.wav", normalize=False)
        back = read_wav(path)
        assert np.max(np.abs(back.samples)) <= 1.0

    def test_creates_dirs(self, tmp_path):
        path = write_wav(tone_trace(), tmp_path / "a" / "b" / "c.wav")
        assert path.exists()


class TestFailures:
    def test_missing_file(self, tmp_path):
        with pytest.raises(DataError):
            read_wav(tmp_path / "nope.wav")

    def test_printer_trace_roundtrips(self, tmp_path):
        from repro.manufacturing import Printer3D, single_motor_program

        printer = Printer3D(sample_rate=12000.0, seed=0)
        run = printer.run(single_motor_program("X", 2, seed=1), seed=2)
        path = write_wav(run.audio, tmp_path / "print.wav")
        back = read_wav(path)
        assert back.duration == pytest.approx(run.audio.duration, abs=1e-3)
