"""Tests for repro.manufacturing.steppers."""

import pytest

from repro.errors import ConfigurationError
from repro.manufacturing.steppers import (
    AcousticSignature,
    StepperMotor,
    default_motors,
)


class TestAcousticSignature:
    def test_defaults_valid(self):
        AcousticSignature()

    def test_rejects_empty_harmonics(self):
        with pytest.raises(ConfigurationError):
            AcousticSignature(harmonic_gains=())

    def test_rejects_negative_harmonic(self):
        with pytest.raises(ConfigurationError):
            AcousticSignature(harmonic_gains=(1.0, -0.5))

    def test_rejects_nonpositive_resonance(self):
        with pytest.raises(ConfigurationError):
            AcousticSignature(resonance_hz=0.0)

    def test_rejects_negative_gains(self):
        with pytest.raises(ConfigurationError):
            AcousticSignature(broadband_gain=-0.1)


class TestStepperMotor:
    def test_step_frequency_linear(self):
        motor = StepperMotor(axis="X", steps_per_mm=80, max_speed=200)
        assert motor.step_frequency(10.0) == pytest.approx(800.0)
        assert motor.step_frequency(0.0) == 0.0

    def test_step_frequency_rejects_negative(self):
        motor = StepperMotor(axis="X", steps_per_mm=80, max_speed=200)
        with pytest.raises(ConfigurationError):
            motor.step_frequency(-1.0)

    def test_clamp_speed(self):
        motor = StepperMotor(axis="X", steps_per_mm=80, max_speed=50)
        assert motor.clamp_speed(100.0) == 50.0
        assert motor.clamp_speed(20.0) == 20.0

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigurationError):
            StepperMotor(axis="X", steps_per_mm=0, max_speed=10)
        with pytest.raises(ConfigurationError):
            StepperMotor(axis="X", steps_per_mm=80, max_speed=0)


class TestDefaultMotors:
    def test_covers_xyze(self):
        motors = default_motors()
        assert set(motors) == {"X", "Y", "Z", "E"}
        for axis, motor in motors.items():
            assert motor.axis == axis

    def test_z_is_lead_screw(self):
        motors = default_motors()
        # Z: much higher steps/mm, much lower max speed than X.
        assert motors["Z"].steps_per_mm > 4 * motors["X"].steps_per_mm
        assert motors["Z"].max_speed < motors["X"].max_speed / 4

    def test_distinct_resonances(self):
        motors = default_motors()
        resonances = {m.signature.resonance_hz for m in motors.values()}
        assert len(resonances) == 4

    def test_z_resonance_above_xy(self):
        # Z's sharp high resonance is what makes Cond3 most identifiable.
        motors = default_motors()
        assert motors["Z"].signature.resonance_hz > 2 * motors["X"].signature.resonance_hz
        assert motors["Z"].signature.resonance_hz > 1.8 * motors["Y"].signature.resonance_hz
