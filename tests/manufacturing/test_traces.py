"""Tests for repro.manufacturing.traces."""

import numpy as np
import pytest

from repro.errors import DataError
from repro.dsp.features import FrequencyFeatureExtractor
from repro.flows.encoding import CombinationEncoder, SingleMotorEncoder
from repro.manufacturing.printer import Printer3D
from repro.manufacturing.programs import layered_object_program, single_motor_program
from repro.manufacturing.traces import (
    build_dataset,
    collect_segments,
    record_case_study_dataset,
)


@pytest.fixture(scope="module")
def printer():
    return Printer3D(sample_rate=12000.0, seed=0)


@pytest.fixture(scope="module")
def xyz_runs(printer):
    return [
        printer.run(single_motor_program(axis, 6, seed=i), seed=10 + i)
        for i, axis in enumerate("XYZ")
    ]


class TestCollectSegments:
    def test_labels_match_axes(self, xyz_runs):
        segs = collect_segments(xyz_runs)
        labels = {tuple(sorted(s.active_axes)) for s in segs}
        assert labels <= {("X",), ("Y",), ("Z",)}
        assert len(labels) == 3

    def test_max_duration_crop(self, xyz_runs):
        segs = collect_segments(xyz_runs, max_duration=0.1)
        for seg in segs:
            assert len(seg.samples) <= int(0.1 * 12000) + 1

    def test_min_duration_filter(self, xyz_runs):
        segs_all = collect_segments(xyz_runs, min_duration=0.0)
        segs_strict = collect_segments(xyz_runs, min_duration=0.3)
        assert len(segs_strict) <= len(segs_all)

    def test_no_runs_raises(self):
        with pytest.raises(DataError):
            collect_segments([])

    def test_metadata(self, xyz_runs):
        segs = collect_segments(xyz_runs)
        assert all(seg.program_name for seg in segs)


class TestBuildDataset:
    def test_dimensions(self, xyz_runs):
        segs = collect_segments(xyz_runs)
        ex = FrequencyFeatureExtractor(12000.0, n_bins=40)
        ds = build_dataset(segs, ex)
        assert ds.feature_dim == 40
        assert ds.condition_dim == 3
        assert len(ds) == len(segs)

    def test_multi_axis_dropped_by_single_encoder(self, printer):
        run = printer.run(layered_object_program(1), seed=4)
        segs = collect_segments([run])
        ex = FrequencyFeatureExtractor(12000.0, n_bins=20)
        ds = build_dataset(segs, ex, SingleMotorEncoder())
        # Diagonal X+Y moves are not representable and must be dropped.
        assert len(ds) < len(segs)

    def test_combination_encoder_keeps_diagonals(self, printer):
        run = printer.run(layered_object_program(1), seed=4)
        segs = collect_segments([run])
        ex = FrequencyFeatureExtractor(12000.0, n_bins=20)
        ds = build_dataset(segs, ex, CombinationEncoder())
        assert ds.condition_dim == 8
        assert len(ds) == len(segs)

    def test_features_scaled(self, xyz_runs):
        segs = collect_segments(xyz_runs)
        ex = FrequencyFeatureExtractor(12000.0, n_bins=20)
        ds = build_dataset(segs, ex)
        assert ds.features.min() >= 0.0
        assert ds.features.max() <= 1.0


class TestRecordCaseStudy:
    def test_full_recording(self, case_study_small=None):
        ds, ex, enc, runs = record_case_study_dataset(
            n_moves_per_axis=5, seed=0, n_bins=30
        )
        assert ds.feature_dim == 30
        assert ds.condition_dim == 3
        assert len(runs) == 3
        assert ex.scaler.fitted
        # Every condition observed.
        assert len(ds.unique_conditions()) == 3

    def test_deterministic(self):
        a, *_ = record_case_study_dataset(n_moves_per_axis=4, seed=5, n_bins=16)
        b, *_ = record_case_study_dataset(n_moves_per_axis=4, seed=5, n_bins=16)
        np.testing.assert_allclose(a.features, b.features)
        np.testing.assert_array_equal(a.conditions, b.conditions)
