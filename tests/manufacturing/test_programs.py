"""Tests for repro.manufacturing.programs."""

import pytest

from repro.errors import ConfigurationError
from repro.manufacturing.kinematics import MotionPlanner
from repro.manufacturing.programs import (
    calibration_suite,
    layered_object_program,
    random_single_motor_sequence,
    rectangle_program,
    single_motor_program,
    staircase_program,
)


def active_sets(program):
    return [seg.active_axes for seg in MotionPlanner().plan(program)]


class TestSingleMotor:
    @pytest.mark.parametrize("axis", ["X", "Y", "Z"])
    def test_only_one_motor_moves(self, axis):
        prog = single_motor_program(axis, 10, seed=0)
        for active in active_sets(prog):
            assert active <= {axis}, f"unexpected axes {active}"

    def test_move_count(self):
        prog = single_motor_program("X", 12, seed=1)
        motion = [s for s in active_sets(prog) if s]
        assert len(motion) == 12

    def test_deterministic(self):
        a = single_motor_program("Y", 5, seed=3).to_text()
        b = single_motor_program("Y", 5, seed=3).to_text()
        assert a == b

    def test_varied_feeds(self):
        prog = single_motor_program("X", 20, seed=0)
        feeds = {c.params.get("F") for c in prog.motion_commands()}
        assert len(feeds) > 5

    def test_rejects_bad_axis(self):
        with pytest.raises(ConfigurationError):
            single_motor_program("Q", 5)

    def test_rejects_zero_moves(self):
        with pytest.raises(ConfigurationError):
            single_motor_program("X", 0)


class TestCalibrationSuite:
    def test_one_program_per_axis(self):
        progs = calibration_suite(5, seed=0)
        assert len(progs) == 3
        assert {p.name for p in progs} == {"calib-x", "calib-y", "calib-z"}

    def test_reproducible(self):
        a = [p.to_text() for p in calibration_suite(5, seed=9)]
        b = [p.to_text() for p in calibration_suite(5, seed=9)]
        assert a == b


class TestShapes:
    def test_rectangle_single_axis_property(self):
        prog = rectangle_program(20, 10, n_loops=2)
        for active in active_sets(prog):
            assert len(active) <= 1

    def test_rectangle_rejects_bad_dims(self):
        with pytest.raises(ConfigurationError):
            rectangle_program(0, 10)

    def test_staircase_z_appears_once_per_layer(self):
        prog = staircase_program(4)
        z_moves = [a for a in active_sets(prog) if a == {"Z"}]
        assert len(z_moves) == 4

    def test_layered_object_has_multi_axis_moves(self):
        prog = layered_object_program(2)
        sets = active_sets(prog)
        assert any(a == {"X", "Y"} for a in sets)
        assert any(a == {"Z"} for a in sets)

    def test_layered_object_with_extrusion(self):
        prog = layered_object_program(1, with_extrusion=True)
        sets = active_sets(prog)
        assert any("E" in a for a in sets)


class TestRandomSequence:
    def test_single_axis_per_move(self):
        prog = random_single_motor_sequence(15, seed=0)
        for active in active_sets(prog):
            assert len(active) <= 1

    def test_covers_multiple_axes(self):
        prog = random_single_motor_sequence(30, seed=1)
        axes = set().union(*active_sets(prog))
        assert len(axes) >= 2

    def test_deterministic(self):
        a = random_single_motor_sequence(8, seed=5).to_text()
        b = random_single_motor_sequence(8, seed=5).to_text()
        assert a == b


class TestCircleProgram:
    def test_closes_loop(self):
        from repro.manufacturing.programs import circle_program

        prog = circle_program(10.0)
        segs = MotionPlanner().plan(prog)
        end = segs[-1].end
        assert abs(end["X"] - 20.0) < 1e-6
        assert abs(end["Y"]) < 1e-6

    def test_arc_length(self):
        import numpy as np

        from repro.manufacturing.programs import circle_program
        from repro.manufacturing.quality import path_length, toolpath_points

        segs = MotionPlanner().plan(circle_program(10.0))
        arc_segs = [s for s in segs if s.command.code == "G2"]
        length = path_length(toolpath_points(arc_segs))
        assert abs(length - 2 * np.pi * 10.0) / (2 * np.pi * 10.0) < 0.01

    def test_rejects_bad_params(self):
        from repro.manufacturing.programs import circle_program

        with pytest.raises(ConfigurationError):
            circle_program(0.0)
        with pytest.raises(ConfigurationError):
            circle_program(5.0, n_loops=0)
