"""Tests for repro.manufacturing.kinematics."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, GCodeError
from repro.manufacturing.gcode import GCodeProgram
from repro.manufacturing.kinematics import MachineConfig, MotionPlanner
from repro.manufacturing.steppers import StepperMotor


def plan(text):
    return MotionPlanner().plan(GCodeProgram.from_text(text))


class TestBasicMoves:
    def test_single_axis_move(self):
        segs = plan("G90\nG1 F600 X10")
        assert len(segs) == 1
        seg = segs[0]
        assert seg.active_axes == frozenset({"X"})
        # 10 mm at 600 mm/min = 10 mm/s -> 1 s.
        assert seg.duration == pytest.approx(1.0)
        assert seg.axis_speeds["X"] == pytest.approx(10.0)

    def test_step_frequency(self):
        segs = plan("G90\nG1 F600 X10")
        # X motor: 80 steps/mm * 10 mm/s = 800 Hz.
        assert segs[0].step_frequencies["X"] == pytest.approx(800.0)

    def test_diagonal_move_two_axes(self):
        segs = plan("G90\nG1 F600 X3 Y4")
        seg = segs[0]
        assert seg.active_axes == frozenset({"X", "Y"})
        # Path length 5 mm at 10 mm/s -> 0.5 s.
        assert seg.duration == pytest.approx(0.5)
        assert seg.axis_speeds["X"] == pytest.approx(6.0)
        assert seg.axis_speeds["Y"] == pytest.approx(8.0)

    def test_modal_feed_rate_persists(self):
        segs = plan("G90\nG1 F600 X10\nG1 X0")
        assert segs[1].feed_rate == 600.0

    def test_rapid_uses_rapid_feed(self):
        segs = plan("G90\nG0 X10")
        assert segs[0].feed_rate == MachineConfig().rapid_feed_rate

    def test_no_motion_no_segment(self):
        segs = plan("G90\nG1 F600\nG1 X0")  # X already at 0.
        assert segs == []


class TestModes:
    def test_relative_mode(self):
        segs = plan("G91\nG1 F600 X5\nG1 X5")
        assert segs[0].end["X"] == pytest.approx(5.0)
        assert segs[1].end["X"] == pytest.approx(10.0)

    def test_absolute_after_relative(self):
        segs = plan("G91\nG1 F600 X5\nG90\nG1 X20")
        assert segs[1].end["X"] == pytest.approx(20.0)

    def test_home_returns_to_origin(self):
        segs = plan("G90\nG1 F600 X10 Y10\nG28")
        home = segs[-1]
        assert home.end["X"] == 0.0
        assert home.end["Y"] == 0.0
        assert home.active_axes >= {"X", "Y"}

    def test_home_specific_axis(self):
        segs = plan("G90\nG1 F600 X10 Y10\nG28 X0")
        home = segs[-1]
        assert home.active_axes == frozenset({"X"})
        assert home.end["Y"] == pytest.approx(10.0)

    def test_home_at_origin_no_segment(self):
        segs = plan("G28")
        assert segs == []


class TestDwell:
    def test_dwell_p_milliseconds(self):
        segs = plan("G4 P500")
        assert segs[0].is_dwell
        assert segs[0].duration == pytest.approx(0.5)

    def test_dwell_s_seconds(self):
        segs = plan("G4 S2")
        assert segs[0].duration == pytest.approx(2.0)

    def test_dwell_without_time_raises(self):
        with pytest.raises(GCodeError):
            plan("G4")

    def test_nonpositive_dwell_raises(self):
        with pytest.raises(GCodeError):
            plan("G4 P0")


class TestLimits:
    def test_speed_clamped_to_motor_max(self):
        # Z motor max 25 mm/s; request 6000 mm/min = 100 mm/s.
        segs = plan("G90\nG1 F6000 Z10")
        assert segs[0].axis_speeds["Z"] <= 25.0 + 1e-9

    def test_nonpositive_feed_raises(self):
        with pytest.raises(GCodeError):
            plan("G90\nG1 F0 X5")

    def test_inert_codes_ignored(self):
        segs = plan("G21\nM104 S200\nM106 S255\nG90\nG1 F600 X1")
        assert len(segs) == 1


class TestConfigValidation:
    def test_motor_axis_mismatch(self):
        bad = {"X": StepperMotor(axis="Y", steps_per_mm=80, max_speed=100)}
        with pytest.raises(ConfigurationError):
            MachineConfig(motors=bad)

    def test_bad_feed_rates(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(default_feed_rate=0)

    def test_missing_motor_lookup(self):
        cfg = MachineConfig()
        with pytest.raises(ConfigurationError):
            cfg.motor("Q")


class TestSegmentMetadata:
    def test_travel(self):
        segs = plan("G90\nG1 F600 X10")
        assert segs[0].travel["X"] == pytest.approx(10.0)
        assert segs[0].travel["Y"] == pytest.approx(0.0)

    def test_command_reference_and_index(self):
        segs = plan("G90\nG1 F600 X10\nG1 Y5")
        assert segs[0].index == 1
        assert segs[1].command.params["Y"] == 5.0

    def test_str(self):
        segs = plan("G90\nG1 F600 X10")
        assert "X" in str(segs[0])
