"""Tests for repro.dsp.cache (on-disk feature cache)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.dsp.cache import CACHE_SCHEMA, FeatureCache


@pytest.fixture
def cache(tmp_path):
    return FeatureCache(tmp_path / "features")


SEGS = [np.arange(8.0), np.arange(8.0) * 2.0]


class TestKeying:
    def test_deterministic(self):
        assert FeatureCache.key("cfg", SEGS) == FeatureCache.key("cfg", SEGS)

    def test_config_changes_key(self):
        assert FeatureCache.key("cfg-a", SEGS) != FeatureCache.key("cfg-b", SEGS)

    def test_data_changes_key(self):
        perturbed = [SEGS[0].copy(), SEGS[1].copy()]
        perturbed[1][3] += 1e-9
        assert FeatureCache.key("cfg", SEGS) != FeatureCache.key("cfg", perturbed)

    def test_segment_order_changes_key(self):
        assert FeatureCache.key("cfg", SEGS) != FeatureCache.key("cfg", SEGS[::-1])

    def test_segment_boundaries_matter(self):
        # [8 samples, 8 samples] must not collide with [16 samples] even
        # though the concatenated bytes are identical.
        joined = [np.concatenate(SEGS)]
        assert FeatureCache.key("cfg", SEGS) != FeatureCache.key("cfg", joined)

    def test_schema_in_key(self):
        h = FeatureCache.key("cfg", SEGS)
        assert len(h) == 64  # sha256 hex
        assert "v1" in CACHE_SCHEMA


class TestStorage:
    def test_miss_then_hit_roundtrip(self, cache):
        key = FeatureCache.key("cfg", SEGS)
        assert cache.get(key) is None
        matrix = np.arange(12.0).reshape(2, 6)
        cache.put(key, matrix)
        out = cache.get(key)
        np.testing.assert_array_equal(out, matrix)
        assert cache.stats() == {"hits": 1, "misses": 1}
        assert len(cache) == 1

    def test_put_overwrites(self, cache):
        key = FeatureCache.key("cfg", SEGS)
        cache.put(key, np.zeros((2, 3)))
        cache.put(key, np.ones((2, 3)))
        np.testing.assert_array_equal(cache.get(key), np.ones((2, 3)))
        assert len(cache) == 1

    def test_corrupt_entry_is_miss(self, cache):
        key = FeatureCache.key("cfg", SEGS)
        path = cache.put(key, np.ones((2, 3)))
        path.write_bytes(b"not a npy file")
        assert cache.get(key) is None

    def test_truncated_entry_is_miss(self, cache):
        key = FeatureCache.key("cfg", SEGS)
        path = cache.put(key, np.ones((4, 100)))
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        assert cache.get(key) is None

    def test_no_temp_files_left_behind(self, cache):
        cache.put(FeatureCache.key("cfg", SEGS), np.ones((2, 3)))
        leftovers = [
            p for p in cache.directory.iterdir() if p.name.startswith(".tmp-")
        ]
        assert leftovers == []

    def test_empty_directory_len_zero(self, cache):
        assert len(cache) == 0

    def test_rejects_empty_directory(self):
        with pytest.raises(ConfigurationError):
            FeatureCache("")

    def test_repr_mentions_stats(self, cache):
        cache.get("0" * 64)
        assert "misses=1" in repr(cache)
