"""Tests for repro.dsp.wavelet (Morlet CWT)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.dsp.wavelet import (
    average_band_energy,
    cwt_morlet,
    frequency_to_scale,
    morlet_center_frequency,
    morlet_wavelet,
    scalogram,
)


class TestMotherWavelet:
    def test_peak_at_zero(self):
        t = np.linspace(-5, 5, 1001)
        psi = morlet_wavelet(t)
        assert np.argmax(np.abs(psi)) == 500

    def test_decays(self):
        psi = morlet_wavelet(np.array([0.0, 5.0]))
        assert abs(psi[1]) < abs(psi[0]) * 1e-4

    def test_center_frequency_near_omega0_over_2pi(self):
        cf = morlet_center_frequency(6.0)
        assert abs(cf - 6.0 / (2 * np.pi)) < 0.02


class TestScaleMapping:
    def test_inverse_relation(self):
        s100 = frequency_to_scale(100.0, 8000.0)
        s200 = frequency_to_scale(200.0, 8000.0)
        assert s100 == pytest.approx(2 * s200)

    def test_rejects_nonpositive_freq(self):
        with pytest.raises(ConfigurationError):
            frequency_to_scale(0.0, 8000.0)

    def test_rejects_bad_sample_rate(self):
        with pytest.raises(ConfigurationError):
            frequency_to_scale(100.0, -1.0)


class TestCWT:
    def test_localizes_tone_in_frequency(self):
        sr = 8000.0
        t = np.arange(int(sr * 0.3)) / sr
        x = np.sin(2 * np.pi * 500 * t)
        freqs = np.geomspace(100, 2000, 40)
        mags = scalogram(x, sr, freqs)
        peak = freqs[mags.mean(axis=1).argmax()]
        assert abs(peak - 500) / 500 < 0.1

    def test_localizes_chirp_in_time(self):
        sr = 8000.0
        n = int(sr * 0.4)
        t = np.arange(n) / sr
        # First half 300 Hz, second half 1200 Hz.
        x = np.where(
            t < 0.2, np.sin(2 * np.pi * 300 * t), np.sin(2 * np.pi * 1200 * t)
        )
        freqs = np.array([300.0, 1200.0])
        mags = scalogram(x, sr, freqs)
        half = n // 2
        # 300 Hz row dominates early, 1200 Hz row dominates late.
        assert mags[0, : half - 400].mean() > mags[1, : half - 400].mean()
        assert mags[1, half + 400 :].mean() > mags[0, half + 400 :].mean()

    def test_output_shape(self):
        x = np.random.default_rng(0).normal(size=1024)
        freqs = np.geomspace(50, 400, 7)
        out = cwt_morlet(x, 2000.0, freqs)
        assert out.shape == (7, 1024)
        assert np.iscomplexobj(out)

    def test_rejects_freq_above_nyquist(self):
        with pytest.raises(ConfigurationError, match="Nyquist"):
            cwt_morlet(np.ones(128), 1000.0, np.array([600.0]))

    def test_rejects_nonpositive_freq(self):
        with pytest.raises(ConfigurationError):
            cwt_morlet(np.ones(128), 1000.0, np.array([-5.0]))

    def test_linear_in_amplitude(self):
        sr = 4000.0
        t = np.arange(1024) / sr
        x = np.sin(2 * np.pi * 200 * t)
        freqs = np.array([200.0])
        a = average_band_energy(x, sr, freqs)
        b = average_band_energy(3.0 * x, sr, freqs)
        assert b[0] == pytest.approx(3.0 * a[0], rel=1e-6)
