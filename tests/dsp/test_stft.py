"""Tests for repro.dsp.stft."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.dsp.stft import frame_signal, power_spectrum, stft


class TestFraming:
    def test_exact_division(self):
        x = np.arange(10.0)
        frames = frame_signal(x, frame_len=4, hop=2)
        np.testing.assert_array_equal(frames[0], [0, 1, 2, 3])
        np.testing.assert_array_equal(frames[1], [2, 3, 4, 5])

    def test_tail_zero_padded(self):
        x = np.ones(5)
        frames = frame_signal(x, frame_len=4, hop=4)
        assert frames.shape == (2, 4)
        np.testing.assert_array_equal(frames[1], [1, 0, 0, 0])

    def test_short_signal_single_frame(self):
        frames = frame_signal(np.ones(3), frame_len=8, hop=4)
        assert frames.shape == (1, 8)

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigurationError):
            frame_signal(np.ones(8), 0, 1)
        with pytest.raises(ConfigurationError):
            frame_signal(np.ones(8), 4, 0)


class TestFramingEdges:
    def test_signal_exactly_one_frame(self):
        x = np.arange(8.0)
        frames = frame_signal(x, frame_len=8, hop=4)
        assert frames.shape == (1, 8)
        np.testing.assert_array_equal(frames[0], x)

    def test_hop_larger_than_frame_skips_samples(self):
        x = np.arange(10.0)
        frames = frame_signal(x, frame_len=2, hop=4)
        np.testing.assert_array_equal(frames[:, 0], [0, 4, 8])

    def test_single_sample_signal(self):
        frames = frame_signal(np.array([3.0]), frame_len=4, hop=2)
        assert frames.shape == (1, 4)
        np.testing.assert_array_equal(frames[0], [3, 0, 0, 0])

    def test_hop_one_dense_overlap(self):
        x = np.arange(6.0)
        frames = frame_signal(x, frame_len=3, hop=1)
        assert frames.shape == (4, 3)
        np.testing.assert_array_equal(frames[3], [3, 4, 5])

    def test_no_samples_dropped(self):
        # Every input sample appears in at least one frame.
        x = np.arange(11.0) + 1.0
        frames = frame_signal(x, frame_len=4, hop=3)
        recovered = set(frames.ravel().tolist()) - {0.0}
        assert recovered == set(x.tolist())


class TestSTFT:
    def test_pure_tone_peak(self):
        sr = 8000.0
        t = np.arange(8000) / sr
        x = np.sin(2 * np.pi * 1000 * t)
        freqs, times, mags = stft(x, sr, frame_len=1024)
        peak_bin = mags.mean(axis=0).argmax()
        assert abs(freqs[peak_bin] - 1000) < 10

    def test_output_shapes_consistent(self):
        freqs, times, mags = stft(np.random.default_rng(0).normal(size=4096), 8000.0)
        assert mags.shape == (len(times), len(freqs))

    def test_rejects_bad_sample_rate(self):
        with pytest.raises(ConfigurationError):
            stft(np.ones(128), 0.0)

    def test_custom_hop_changes_frame_count(self):
        x = np.random.default_rng(0).normal(size=4096)
        _, t_half, _ = stft(x, 8000.0, frame_len=512)
        _, t_quarter, _ = stft(x, 8000.0, frame_len=512, hop=128)
        assert len(t_quarter) > len(t_half)

    def test_rectangular_window(self):
        x = np.ones(1024)
        freqs, _, mags = stft(x, 1000.0, frame_len=256, window="rectangular")
        # DC-only input: all energy in bin 0.
        assert mags[0].argmax() == 0

    def test_unknown_window_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown window"):
            stft(np.ones(512), 1000.0, window="kaiser")

    def test_input_shorter_than_frame(self):
        freqs, times, mags = stft(np.ones(100), 1000.0, frame_len=256)
        assert mags.shape == (1, len(freqs))


class TestPowerSpectrum:
    def test_tone_location(self):
        sr = 4000.0
        t = np.arange(4000) / sr
        x = np.sin(2 * np.pi * 440 * t)
        freqs, power = power_spectrum(x, sr)
        assert abs(freqs[power.argmax()] - 440) < 2

    def test_parseval_scale(self):
        # Power spectrum of white noise should be positive everywhere.
        x = np.random.default_rng(0).normal(size=2048)
        _freqs, power = power_spectrum(x, 1000.0)
        assert np.all(power >= 0)
