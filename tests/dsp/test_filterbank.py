"""Tests for repro.dsp.filterbank (cached Morlet filter banks)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.dsp.filterbank import (
    DEFAULT_OMEGA0,
    MORLET_NORM,
    MorletFilterBank,
    clear_filter_bank_cache,
    filter_bank_cache_info,
    get_filter_bank,
    morlet_kernel_ft,
    validate_frequencies,
)
from repro.dsp.wavelet import cwt_morlet, frequency_to_scale


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_filter_bank_cache()
    yield
    clear_filter_bank_cache()


FREQS = np.geomspace(50.0, 5000.0, 16)
SR = 12000.0


def _reference_cwt(x, sample_rate, frequencies, omega0=DEFAULT_OMEGA0):
    """Inline transcription of the seed per-scale loop (full complex FFT)."""
    x = np.asarray(x, dtype=np.float64)
    n = len(x)
    scales = frequency_to_scale(frequencies, sample_rate, omega0)
    w = 2.0 * np.pi * np.fft.fftfreq(n)
    xf = np.fft.fft(x)
    out = np.empty((len(frequencies), n), dtype=np.complex128)
    for i, s in enumerate(scales):
        psi_hat = np.zeros(n)
        pos = w > 0
        psi_hat[pos] = np.pi ** (-0.25) * np.exp(-0.5 * (s * w[pos] - omega0) ** 2)
        psi_hat *= np.sqrt(2.0 * np.pi * s)
        out[i] = np.fft.ifft(xf * psi_hat)
    return out


class TestValidateFrequencies:
    def test_accepts_valid_grid(self):
        out = validate_frequencies(FREQS, SR)
        np.testing.assert_array_equal(out, FREQS)

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError, match="strictly positive"):
            validate_frequencies([0.0, 100.0], SR)
        with pytest.raises(ConfigurationError, match="strictly positive"):
            validate_frequencies([-5.0, 100.0], SR)

    def test_rejects_unsorted(self):
        with pytest.raises(ConfigurationError, match="sorted"):
            validate_frequencies([200.0, 100.0], SR)

    def test_rejects_duplicates(self):
        with pytest.raises(ConfigurationError, match="duplicates"):
            validate_frequencies([100.0, 100.0, 200.0], SR)

    def test_rejects_above_nyquist(self):
        with pytest.raises(ConfigurationError, match="Nyquist"):
            validate_frequencies([100.0, 7000.0], SR)

    def test_rejects_bad_sample_rate(self):
        with pytest.raises(ConfigurationError, match="sample_rate"):
            validate_frequencies([100.0], 0.0)

    def test_error_is_valueerror(self):
        # Callers using plain try/except ValueError must catch config
        # errors from the DSP layer.
        with pytest.raises(ValueError):
            validate_frequencies([100.0, 100.0], SR)

    def test_custom_name_in_message(self):
        with pytest.raises(ConfigurationError, match="grid"):
            validate_frequencies([-1.0], SR, name="grid")


class TestKernelHelper:
    def test_norm_constant(self):
        assert MORLET_NORM == pytest.approx(np.pi ** (-0.25))

    def test_peak_at_omega0(self):
        w = np.linspace(0.0, 12.0, 2001)
        k = morlet_kernel_ft(w, 6.0)
        assert w[k.argmax()] == pytest.approx(6.0, abs=0.01)
        assert k.max() == pytest.approx(MORLET_NORM)


class TestBankConstruction:
    def test_kernel_shape_and_readonly(self):
        bank = MorletFilterBank(256, SR, FREQS)
        assert bank.kernels.shape == (len(FREQS), 256 // 2 + 1)
        assert not bank.kernels.flags.writeable
        assert not bank.frequencies.flags.writeable

    def test_dc_bin_zero(self):
        bank = MorletFilterBank(256, SR, FREQS)
        np.testing.assert_array_equal(bank.kernels[:, 0], 0.0)

    def test_even_n_nyquist_bin_zero(self):
        # fftfreq labels the even-n Nyquist bin negative, so the seed
        # loop left it zero; the bank must agree.
        bank = MorletFilterBank(256, SR, FREQS)
        np.testing.assert_array_equal(bank.kernels[:, -1], 0.0)

    def test_odd_n_last_bin_nonzero_support(self):
        bank = MorletFilterBank(255, SR, FREQS)
        assert bank.kernels.shape[1] == 128
        # Highest positive bin participates for odd n.
        assert np.any(bank.kernels[:, -1] != 0.0)

    def test_rejects_bad_length(self):
        with pytest.raises(ConfigurationError):
            MorletFilterBank(0, SR, FREQS)

    def test_rejects_invalid_frequencies(self):
        with pytest.raises(ConfigurationError):
            MorletFilterBank(256, SR, [300.0, 100.0])


class TestNumericalContract:
    @pytest.mark.parametrize("n", [255, 256])
    def test_matches_seed_reference(self, n):
        # rfft vs full complex fft: same math, few-ULP agreement.
        rng = np.random.default_rng(0)
        x = rng.normal(size=n)
        bank = MorletFilterBank(n, SR, FREQS)
        got = bank.transform(x[None, :])[0]
        want = _reference_cwt(x, SR, FREQS)
        np.testing.assert_allclose(got, want, rtol=0, atol=1e-12 * np.abs(want).max())

    @pytest.mark.parametrize("n", [255, 256])
    def test_batched_equals_single_bitwise(self, n):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(7, n))
        bank = MorletFilterBank(n, SR, FREQS)
        batched = bank.transform(x)
        for i in range(x.shape[0]):
            single = bank.transform(x[i][None, :])[0]
            np.testing.assert_array_equal(batched[i], single)

    def test_band_energy_equals_transform_reduction_bitwise(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(5, 300))
        bank = MorletFilterBank(300, SR, FREQS)
        want = np.abs(bank.transform(x)).mean(axis=-1)
        np.testing.assert_array_equal(bank.band_energy(x), want)

    def test_band_energy_bitwise_across_block_boundaries(self, monkeypatch):
        # Force tiny blocks so a small batch spans several of them.
        import repro.dsp.filterbank as fb

        rng = np.random.default_rng(3)
        x = rng.normal(size=(9, 256))
        bank = MorletFilterBank(256, SR, FREQS)
        whole = bank.band_energy(x)
        monkeypatch.setattr(fb, "_BLOCK_BYTES", 1)
        blocked = bank.band_energy(x)
        assert bank._block_rows(9) == 1
        np.testing.assert_array_equal(blocked, whole)

    def test_cwt_morlet_routes_through_bank(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=512)
        bank = get_filter_bank(512, SR, FREQS)
        np.testing.assert_array_equal(
            cwt_morlet(x, SR, FREQS), bank.transform(x[None, :])[0]
        )

    def test_rejects_wrong_length(self):
        bank = MorletFilterBank(256, SR, FREQS)
        with pytest.raises(ConfigurationError, match="length 256"):
            bank.transform(np.ones((2, 128)))


class TestBankCache:
    def test_same_key_returns_same_object(self):
        a = get_filter_bank(256, SR, FREQS)
        b = get_filter_bank(256, SR, FREQS)
        assert a is b
        assert filter_bank_cache_info()["size"] == 1

    def test_distinct_keys_distinct_banks(self):
        a = get_filter_bank(256, SR, FREQS)
        b = get_filter_bank(300, SR, FREQS)
        c = get_filter_bank(256, SR, FREQS * 0.5)
        assert a is not b and a is not c
        assert filter_bank_cache_info()["size"] == 3

    def test_clear_drops_entries(self):
        get_filter_bank(256, SR, FREQS)
        clear_filter_bank_cache()
        assert filter_bank_cache_info()["size"] == 0

    def test_lru_eviction(self, monkeypatch):
        import repro.dsp.filterbank as fb

        monkeypatch.setattr(fb, "_BANK_CACHE_SIZE", 2)
        first = get_filter_bank(128, SR, FREQS)
        get_filter_bank(129, SR, FREQS)
        get_filter_bank(130, SR, FREQS)  # evicts 128
        assert filter_bank_cache_info()["size"] == 2
        assert get_filter_bank(128, SR, FREQS) is not first
