"""Tests for repro.dsp.windows."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.dsp.windows import (
    blackman,
    gaussian,
    get_window,
    hamming,
    hann,
    rectangular,
)

ALL = [rectangular, hann, hamming, blackman, gaussian]


class TestBasics:
    @pytest.mark.parametrize("fn", ALL, ids=lambda f: f.__name__)
    def test_length(self, fn):
        assert len(fn(64)) == 64

    @pytest.mark.parametrize("fn", ALL, ids=lambda f: f.__name__)
    def test_length_one(self, fn):
        w = fn(1)
        assert w.shape == (1,)

    @pytest.mark.parametrize("fn", ALL, ids=lambda f: f.__name__)
    def test_nonnegative_and_bounded(self, fn):
        w = fn(128)
        assert np.all(w >= -1e-12)
        assert np.all(w <= 1.0 + 1e-12)

    @pytest.mark.parametrize("fn", ALL, ids=lambda f: f.__name__)
    def test_rejects_zero_length(self, fn):
        with pytest.raises(ConfigurationError):
            fn(0)


class TestShapes:
    def test_hann_endpoints_zero(self):
        w = hann(64)
        assert w[0] == pytest.approx(0.0)

    def test_hann_periodic_matches_numpy(self):
        # Periodic Hann = numpy.hanning(n+1)[:-1].
        np.testing.assert_allclose(hann(32), np.hanning(33)[:-1], atol=1e-12)

    def test_hamming_offset(self):
        w = hamming(64)
        assert w[0] == pytest.approx(0.08)

    def test_gaussian_peak_center(self):
        w = gaussian(65)
        assert np.argmax(w) == 32
        assert w[32] == pytest.approx(1.0)

    def test_gaussian_rejects_bad_sigma(self):
        with pytest.raises(ConfigurationError):
            gaussian(16, sigma=0.0)


class TestEdgeCases:
    @pytest.mark.parametrize("fn", ALL, ids=lambda f: f.__name__)
    def test_rejects_negative_length(self, fn):
        with pytest.raises(ConfigurationError):
            fn(-3)

    @pytest.mark.parametrize("fn", [hann, hamming, blackman], ids=lambda f: f.__name__)
    def test_periodic_symmetry(self, fn):
        # Periodic windows satisfy w[k] == w[n-k] for k in 1..n-1.
        w = fn(17)
        np.testing.assert_allclose(w[1:], w[1:][::-1], atol=1e-12)

    def test_length_two(self):
        np.testing.assert_allclose(hann(2), [0.0, 1.0], atol=1e-12)
        np.testing.assert_array_equal(rectangular(2), [1.0, 1.0])

    def test_even_gaussian_peak_split(self):
        # Even length has no center sample; the two middle samples tie.
        w = gaussian(64)
        assert w[31] == pytest.approx(w[32])
        assert w.max() < 1.0

    def test_gaussian_length_one(self):
        np.testing.assert_array_equal(gaussian(1), [1.0])

    def test_narrow_sigma_concentrates(self):
        wide = gaussian(65, sigma=0.8)
        narrow = gaussian(65, sigma=0.1)
        assert narrow.sum() < wide.sum()


class TestRegistry:
    def test_lookup(self):
        np.testing.assert_array_equal(get_window("hann", 16), hann(16))

    def test_unknown(self):
        with pytest.raises(ConfigurationError, match="unknown window"):
            get_window("kaiser", 16)
