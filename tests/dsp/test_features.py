"""Tests for repro.dsp.features."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import ConfigurationError, NotFittedError, ShapeError
from repro.dsp.features import (
    FrequencyFeatureExtractor,
    MinMaxScaler,
    log_spaced_frequencies,
    select_features,
    top_variance_features,
)


class TestFrequencyGrid:
    def test_paper_defaults(self):
        freqs = log_spaced_frequencies()
        assert len(freqs) == 100
        assert freqs[0] == pytest.approx(50.0)
        assert freqs[-1] == pytest.approx(5000.0)

    def test_non_uniform(self):
        freqs = log_spaced_frequencies(10, 50, 5000)
        gaps = np.diff(freqs)
        assert gaps[-1] > gaps[0] * 5  # Spacing grows with frequency.

    def test_monotonic(self):
        freqs = log_spaced_frequencies(100)
        assert np.all(np.diff(freqs) > 0)

    def test_rejects_bad_ranges(self):
        with pytest.raises(ConfigurationError):
            log_spaced_frequencies(1)
        with pytest.raises(ConfigurationError):
            log_spaced_frequencies(10, 100, 50)


class TestMinMaxScaler:
    def test_transform_range(self):
        rng = np.random.default_rng(0)
        x = rng.normal(5, 3, size=(50, 4))
        scaler = MinMaxScaler().fit(x)
        y = scaler.transform(x)
        np.testing.assert_allclose(y.min(axis=0), 0.0, atol=1e-12)
        np.testing.assert_allclose(y.max(axis=0), 1.0, atol=1e-12)

    def test_unseen_data_clipped(self):
        scaler = MinMaxScaler().fit(np.array([[0.0], [1.0]]))
        y = scaler.transform(np.array([[5.0], [-5.0]]))
        assert y.max() <= 1.0 and y.min() >= 0.0

    def test_constant_feature_maps_to_half(self):
        x = np.column_stack([np.ones(10), np.arange(10.0)])
        y = MinMaxScaler().fit(x).transform(x)
        np.testing.assert_allclose(y[:, 0], 0.5)

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            MinMaxScaler().transform(np.ones((2, 2)))

    def test_wrong_width_raises(self):
        scaler = MinMaxScaler().fit(np.ones((3, 4)))
        with pytest.raises(ShapeError):
            scaler.transform(np.ones((2, 5)))

    def test_1d_transform(self):
        scaler = MinMaxScaler().fit(np.array([[0.0, 0.0], [2.0, 4.0]]))
        y = scaler.transform(np.array([1.0, 2.0]))
        np.testing.assert_allclose(y, [0.5, 0.5])

    def test_inverse_roundtrip(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(20, 3))
        scaler = MinMaxScaler().fit(x)
        np.testing.assert_allclose(
            scaler.inverse_transform(scaler.transform(x)), x, atol=1e-12
        )

    @given(
        arrays(
            np.float64,
            (6, 3),
            elements=st.floats(min_value=-100, max_value=100),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_output_always_in_unit_interval(self, x):
        y = MinMaxScaler().fit(x).transform(x)
        assert np.all(y >= 0.0) and np.all(y <= 1.0)


class TestExtractor:
    def test_separates_two_tones(self):
        sr = 12000.0
        t = np.arange(int(sr * 0.2)) / sr
        low = np.sin(2 * np.pi * 200 * t)
        high = np.sin(2 * np.pi * 3000 * t)
        ex = FrequencyFeatureExtractor(sr, n_bins=50)
        f_low = ex.raw_features(low)
        f_high = ex.raw_features(high)
        assert ex.frequencies[f_low.argmax()] < 400
        assert ex.frequencies[f_high.argmax()] > 2000

    def test_fit_transform_scaled(self):
        sr = 12000.0
        rng = np.random.default_rng(0)
        segs = [rng.normal(size=1200) for _ in range(5)]
        ex = FrequencyFeatureExtractor(sr, n_bins=20)
        feats = ex.fit_transform(segs)
        assert feats.shape == (5, 20)
        assert feats.min() >= 0.0 and feats.max() <= 1.0

    def test_stft_method(self):
        sr = 12000.0
        t = np.arange(2400) / sr
        x = np.sin(2 * np.pi * 1000 * t)
        ex = FrequencyFeatureExtractor(sr, n_bins=30, method="stft")
        f = ex.raw_features(x)
        assert abs(ex.frequencies[f.argmax()] - 1000) / 1000 < 0.25

    def test_rejects_fmax_above_nyquist(self):
        with pytest.raises(ConfigurationError, match="Nyquist"):
            FrequencyFeatureExtractor(8000.0, f_max=5000.0)

    def test_rejects_unknown_method(self):
        with pytest.raises(ConfigurationError):
            FrequencyFeatureExtractor(12000.0, method="mel")

    def test_transform_before_fit_raises(self):
        ex = FrequencyFeatureExtractor(12000.0, n_bins=10)
        with pytest.raises(NotFittedError):
            ex.transform([np.ones(600)])

    def test_include_stats_appends_three_features(self):
        ex = FrequencyFeatureExtractor(12000.0, n_bins=10, include_stats=True)
        assert ex.feature_dim == 13
        f = ex.raw_features(np.full(600, 2.0) + 0.0)
        # Constant signal: mean 2, std 0, rms 2.
        assert f.shape == (13,)
        assert f[-3] == pytest.approx(2.0)
        assert f[-2] == pytest.approx(0.0)
        assert f[-1] == pytest.approx(2.0)

    def test_stats_capture_dc_level(self):
        # Two signals identical in spectrum-above-DC but different offsets
        # are indistinguishable without stats and separable with them.
        sr = 12000.0
        t = np.arange(1200) / sr
        tone = np.sin(2 * np.pi * 500 * t)
        low = tone + 1.0
        high = tone + 3.0
        plain = FrequencyFeatureExtractor(sr, n_bins=10)
        stats = FrequencyFeatureExtractor(sr, n_bins=10, include_stats=True)
        f_low, f_high = plain.raw_features(low), plain.raw_features(high)
        # Spectral magnitudes are (numerically) blind to the DC shift.
        np.testing.assert_allclose(f_low, f_high, atol=1e-3 * f_low.max())
        assert (
            abs(stats.raw_features(high)[-3] - stats.raw_features(low)[-3])
            > 1.9
        )

    def test_default_no_stats(self):
        ex = FrequencyFeatureExtractor(12000.0, n_bins=10)
        assert ex.feature_dim == 10
        assert not ex.include_stats


class TestBatchedExtraction:
    SR = 12000.0

    def _extractor(self, **kw):
        return FrequencyFeatureExtractor(self.SR, n_bins=12, **kw)

    def test_stacked_matrix_input(self):
        rng = np.random.default_rng(0)
        segs = rng.normal(size=(6, 720))
        ex = self._extractor()
        feats = ex.fit_transform(segs)
        assert feats.shape == (6, 12)

    def test_batched_equals_looped_bitwise(self):
        rng = np.random.default_rng(1)
        segs = rng.normal(size=(5, 600))
        ex = self._extractor()
        batched = ex.raw_feature_matrix(segs)
        looped = np.vstack([ex.raw_features(segs[i]) for i in range(5)])
        np.testing.assert_array_equal(batched, looped)

    def test_batched_equals_looped_with_stats(self):
        rng = np.random.default_rng(2)
        segs = rng.normal(size=(4, 600)) + 2.5
        ex = self._extractor(include_stats=True)
        batched = ex.raw_feature_matrix(segs)
        looped = np.vstack([ex.raw_features(segs[i]) for i in range(4)])
        np.testing.assert_array_equal(batched, looped)

    def test_ragged_segments_preserve_row_order(self):
        rng = np.random.default_rng(3)
        lengths = [600, 720, 600, 840, 720]
        segs = [rng.normal(size=n) for n in lengths]
        ex = self._extractor()
        batched = ex.raw_feature_matrix(segs)
        looped = np.vstack([ex.raw_features(s) for s in segs])
        np.testing.assert_array_equal(batched, looped)

    def test_empty_input_raises(self):
        with pytest.raises(ConfigurationError, match="no segments"):
            self._extractor().raw_feature_matrix([])

    def test_fit_transform_extracts_once(self, monkeypatch):
        rng = np.random.default_rng(4)
        segs = rng.normal(size=(3, 600))
        ex = self._extractor()
        calls = {"n": 0}
        orig = FrequencyFeatureExtractor.raw_feature_matrix

        def counting(self, segments):
            calls["n"] += 1
            return orig(self, segments)

        monkeypatch.setattr(
            FrequencyFeatureExtractor, "raw_feature_matrix", counting
        )
        ex.fit_transform(segs)
        assert calls["n"] == 1

    def test_config_fingerprint_sensitivity(self):
        base = self._extractor().config_fingerprint()
        assert self._extractor().config_fingerprint() == base
        assert self._extractor(include_stats=True).config_fingerprint() != base
        assert self._extractor(f_max=4000.0).config_fingerprint() != base
        assert (
            FrequencyFeatureExtractor(11025.0, n_bins=12).config_fingerprint()
            != base
        )


class TestFeatureCacheWiring:
    SR = 12000.0

    def test_hit_returns_identical_matrix(self, tmp_path):
        from repro.dsp.cache import FeatureCache

        rng = np.random.default_rng(0)
        segs = rng.normal(size=(4, 600))
        cache = FeatureCache(tmp_path)
        ex = FrequencyFeatureExtractor(self.SR, n_bins=10, feature_cache=cache)
        first = ex.raw_feature_matrix(segs)
        assert cache.stats() == {"hits": 0, "misses": 1}
        second = ex.raw_feature_matrix(segs)
        assert cache.stats() == {"hits": 1, "misses": 1}
        np.testing.assert_array_equal(first, second)

    def test_path_accepted_directly(self, tmp_path):
        ex = FrequencyFeatureExtractor(
            self.SR, n_bins=10, feature_cache=tmp_path / "fc"
        )
        segs = np.random.default_rng(1).normal(size=(3, 600))
        ex.raw_feature_matrix(segs)
        assert len(ex.feature_cache) == 1

    def test_data_change_misses(self, tmp_path):
        rng = np.random.default_rng(2)
        segs = rng.normal(size=(3, 600))
        ex = FrequencyFeatureExtractor(
            self.SR, n_bins=10, feature_cache=tmp_path
        )
        ex.raw_feature_matrix(segs)
        other = segs.copy()
        other[0, 0] += 1e-12
        ex.raw_feature_matrix(other)
        assert ex.feature_cache.stats()["misses"] == 2
        assert len(ex.feature_cache) == 2

    def test_config_change_misses(self, tmp_path):
        rng = np.random.default_rng(3)
        segs = rng.normal(size=(3, 600))
        a = FrequencyFeatureExtractor(self.SR, n_bins=10, feature_cache=tmp_path)
        b = FrequencyFeatureExtractor(
            self.SR, n_bins=10, include_stats=True, feature_cache=tmp_path
        )
        a.raw_feature_matrix(segs)
        b.raw_feature_matrix(segs)
        assert b.feature_cache.stats()["misses"] == 1
        assert len(a.feature_cache) == 2

    def test_cached_matches_uncached(self, tmp_path):
        rng = np.random.default_rng(4)
        segs = rng.normal(size=(4, 600))
        plain = FrequencyFeatureExtractor(self.SR, n_bins=10)
        cached = FrequencyFeatureExtractor(
            self.SR, n_bins=10, feature_cache=tmp_path
        )
        cached.raw_feature_matrix(segs)  # warm
        np.testing.assert_array_equal(
            cached.fit_transform(segs), plain.fit_transform(segs)
        )


class TestSelection:
    def test_select_features(self):
        x = np.arange(12.0).reshape(3, 4)
        out = select_features(x, [0, 2])
        np.testing.assert_array_equal(out, x[:, [0, 2]])

    def test_select_out_of_range(self):
        with pytest.raises(ConfigurationError):
            select_features(np.ones((2, 3)), [3])

    def test_top_variance(self):
        rng = np.random.default_rng(0)
        x = np.column_stack(
            [np.ones(50), rng.normal(0, 5, 50), rng.normal(0, 1, 50)]
        )
        idx = top_variance_features(x, 2)
        assert list(idx) == [1, 2]

    def test_top_variance_k_bounds(self):
        with pytest.raises(ConfigurationError):
            top_variance_features(np.ones((4, 3)), 0)
        with pytest.raises(ConfigurationError):
            top_variance_features(np.ones((4, 3)), 4)
