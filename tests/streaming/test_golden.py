"""Golden regression: the streaming detector must reproduce the fixture.

The fixture pins actual per-window scores and CUSUM alarm windows for a
fixed-seed printer trace (clean and with two forged-claim spans), so
silent numerical drift anywhere in the online path — windowing, CWT
extraction, Parzen scoring, RNG derivation, decision layer — fails
loudly.  Intentional changes regenerate it with
``PYTHONPATH=src python -m tests.streaming.golden --regen``.

The second half replays the *streamed* path against the same pinned
numbers: because streaming is bitwise-equal to offline, the one fixture
regresses both.
"""

import numpy as np
import pytest

from repro.streaming import StreamSession
from tests.streaming.golden import (
    FIXTURE_PATH,
    GOLDEN_HOP,
    GOLDEN_ROOT_ENTROPY,
    GOLDEN_THRESHOLD,
    GOLDEN_WINDOW,
    compare,
    compute_golden,
    golden_calibration,
    golden_scenario,
    load_fixture,
)


@pytest.fixture(scope="module")
def scenarios():
    return golden_scenario()


@pytest.fixture(scope="module")
def calibration(scenarios):
    return golden_calibration(scenarios[0])


@pytest.fixture(scope="module")
def fresh(scenarios, calibration):
    # compute_golden() rebuilds everything; reuse the module-scoped
    # artifacts instead to keep the suite fast.
    from repro.streaming import offline_stream_scores

    clean, attacked = scenarios
    out = {"traces": {}}
    for name, scenario in (("clean", clean), ("attacked", attacked)):
        scores, starts, alarms = offline_stream_scores(
            scenario.samples,
            scenario.claims,
            calibration,
            window_size=GOLDEN_WINDOW,
            hop_size=GOLDEN_HOP,
        )
        out["traces"][name] = {
            "scores": [float(s) for s in scores],
            "window_starts": [int(s) for s in starts],
            "alarm_windows": [int(a) for a in alarms],
        }
    return out


@pytest.fixture(scope="module")
def pinned():
    assert FIXTURE_PATH.exists(), (
        "missing streaming golden fixture; run "
        "PYTHONPATH=src python -m tests.streaming.golden --regen"
    )
    return load_fixture()


class TestGoldenFixture:
    def test_metadata_matches(self, pinned):
        assert pinned["root_entropy"] == GOLDEN_ROOT_ENTROPY
        assert pinned["threshold"] == GOLDEN_THRESHOLD
        assert pinned["window_size"] == GOLDEN_WINDOW
        assert pinned["hop_size"] == GOLDEN_HOP

    def test_offline_scores_match(self, fresh, pinned):
        assert compare(fresh, pinned) == []

    def test_attack_is_detected_and_clean_is_quiet(self, pinned):
        assert pinned["traces"]["attacked"]["alarm_windows"], (
            "golden attack run must raise at least one alarm"
        )
        assert pinned["traces"]["clean"]["alarm_windows"] == [], (
            "golden clean run must be alarm-free"
        )

    def test_alarms_start_inside_attacked_spans(self, scenarios, pinned):
        _, attacked = scenarios
        alarm_windows = pinned["traces"]["attacked"]["alarm_windows"]
        starts = np.asarray(pinned["traces"]["attacked"]["window_starts"])
        first_alarm_start = starts[alarm_windows[0]]
        span = np.searchsorted(
            attacked.claims.boundaries, first_alarm_start, side="right"
        ) - 1
        assert span in attacked.attacked_spans


class TestStreamedAgainstFixture:
    """The pinned offline numbers double as a streaming oracle."""

    @pytest.mark.parametrize("chunk_size,batch_windows", [(997, 7), (4096, 32)])
    def test_streamed_run_matches_pinned(
        self, scenarios, calibration, pinned, chunk_size, batch_windows
    ):
        _, attacked = scenarios
        session = StreamSession(
            attacked.replay(chunk_size=chunk_size, rate="max"),
            extractor=calibration.extractor,
            scorer=calibration.scorer,
            claims=attacked.claims,
            detector=calibration.make_detector(),
            window_size=GOLDEN_WINDOW,
            hop_size=GOLDEN_HOP,
            sample_rate=attacked.sample_rate,
            batch_windows=batch_windows,
        )
        metrics = session.run()
        want = pinned["traces"]["attacked"]
        assert metrics.ok and metrics.windows_dropped == 0
        np.testing.assert_allclose(
            metrics.scores, want["scores"], rtol=1e-9, atol=1e-12
        )
        assert metrics.alarms == want["alarm_windows"]


def test_compute_golden_is_self_consistent():
    # The maintenance CLI's full recompute agrees with itself and with
    # the committed fixture (same check `python -m tests.streaming.golden`
    # performs).
    fresh = compute_golden()
    assert compare(fresh, load_fixture()) == []
