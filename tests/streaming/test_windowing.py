"""Tests for repro.streaming.windowing (ring buffer + incremental framing)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError, DataError
from repro.streaming.windowing import (
    RingBuffer,
    StreamWindower,
    frame_signal,
)


class TestFrameSignal:
    def test_abutting_windows(self):
        x = np.arange(10.0)
        windows, starts = frame_signal(x, 4, 4)
        assert windows.shape == (2, 4)
        np.testing.assert_array_equal(starts, [0, 4])
        np.testing.assert_array_equal(windows[1], [4, 5, 6, 7])

    def test_overlapping_windows(self):
        x = np.arange(10.0)
        windows, starts = frame_signal(x, 4, 2)
        np.testing.assert_array_equal(starts, [0, 2, 4, 6])
        np.testing.assert_array_equal(windows[2], [4, 5, 6, 7])

    def test_trailing_partial_never_emitted(self):
        windows, _ = frame_signal(np.arange(11.0), 4, 4)
        assert windows.shape[0] == 2  # samples 8..10 are a partial window

    def test_short_trace_yields_nothing(self):
        windows, starts = frame_signal(np.arange(3.0), 4, 2)
        assert windows.shape == (0, 4)
        assert starts.size == 0

    def test_rejects_bad_geometry(self):
        with pytest.raises(ConfigurationError):
            frame_signal(np.arange(10.0), 0, 1)
        with pytest.raises(ConfigurationError):
            frame_signal(np.arange(10.0), 4, 0)
        with pytest.raises(ConfigurationError):
            frame_signal(np.arange(10.0), 4, 5)  # gaps would skip samples

    def test_rejects_2d(self):
        with pytest.raises(DataError):
            frame_signal(np.zeros((3, 3)), 2, 1)


class TestRingBuffer:
    def test_append_read_roundtrip(self):
        ring = RingBuffer(8)
        ring.append(np.arange(5.0))
        np.testing.assert_array_equal(ring.read(1, 3), [1, 2, 3])

    def test_wraparound_preserves_absolute_indexing(self):
        ring = RingBuffer(6)
        ring.append(np.arange(5.0))
        ring.discard_before(4)
        ring.append(np.arange(5.0, 10.0))  # wraps the physical buffer
        np.testing.assert_array_equal(ring.read(4, 6), [4, 5, 6, 7, 8, 9])

    def test_overflow_is_loud(self):
        ring = RingBuffer(4)
        ring.append(np.arange(3.0))
        with pytest.raises(DataError):
            ring.append(np.arange(2.0))

    def test_read_outside_range_is_loud(self):
        ring = RingBuffer(8)
        ring.append(np.arange(4.0))
        ring.discard_before(2)
        with pytest.raises(DataError):
            ring.read(1, 2)  # sample 1 was discarded
        with pytest.raises(DataError):
            ring.read(3, 4)  # past the end

    def test_clear_to_skips_ahead(self):
        ring = RingBuffer(4)
        ring.append(np.arange(3.0))
        ring.clear_to(10)
        assert len(ring) == 0
        assert ring.start_index == 10
        with pytest.raises(DataError):
            ring.clear_to(5)  # rewinding the stream is impossible

    def test_rejects_zero_capacity(self):
        with pytest.raises(ConfigurationError):
            RingBuffer(0)


class TestStreamWindower:
    def test_single_push_matches_offline(self):
        x = np.random.default_rng(0).normal(size=50)
        offline, starts = frame_signal(x, 8, 4)
        out = StreamWindower(8, 4).push(x)
        assert len(out) == offline.shape[0]
        for i, w in enumerate(out):
            assert w.index == i
            assert w.start == starts[i]
            np.testing.assert_array_equal(w.samples, offline[i])

    def test_one_sample_at_a_time_matches_offline(self):
        x = np.random.default_rng(1).normal(size=40)
        offline, _ = frame_signal(x, 8, 4)
        windower = StreamWindower(8, 4)
        out = []
        for s in x:
            out.extend(windower.push([s]))
        np.testing.assert_array_equal(np.stack([w.samples for w in out]), offline)

    def test_chunk_larger_than_ring_capacity(self):
        # A chunk bigger than the ring is consumed in slices, windows
        # emitted as they complete; output must still match offline.
        x = np.random.default_rng(2).normal(size=500)
        offline, _ = frame_signal(x, 16, 8)
        out = StreamWindower(16, 8).push(x)
        np.testing.assert_array_equal(np.stack([w.samples for w in out]), offline)

    def test_memory_stays_bounded(self):
        windower = StreamWindower(16, 4)
        for _ in range(100):
            windower.push(np.zeros(7))
        assert len(windower._ring) <= windower._ring.capacity
        assert windower.pending_samples < 16 + 4

    def test_skip_gap_realigns_and_counts_losses(self):
        x = np.arange(100.0)
        windower = StreamWindower(10, 5)
        emitted = windower.push(x[:32])  # windows at 0,5,...,20 emitted
        n_before = len(emitted)
        lost = windower.skip_gap(40)  # samples 32..71 never arrive
        assert lost > 0
        # Resume with the tail; new windows must start at/after sample 72
        # and contain only post-gap data.
        tail = windower.push(x[72:])
        assert all(w.start >= 72 for w in tail)
        for w in tail:
            np.testing.assert_array_equal(w.samples, x[w.start : w.start + 10])
        # Window indices stay globally consistent: emitted + lost + new.
        assert tail[0].index == n_before + lost

    def test_skip_gap_zero_is_noop(self):
        windower = StreamWindower(10, 5)
        windower.push(np.zeros(7))
        assert windower.skip_gap(0) == 0
        assert windower.pending_samples == 7

    def test_skip_gap_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            StreamWindower(10, 5).skip_gap(-1)

    def test_rejects_2d_chunk(self):
        with pytest.raises(DataError):
            StreamWindower(4, 2).push(np.zeros((2, 2)))

    @settings(max_examples=50, deadline=None)
    @given(
        data=st.data(),
        window=st.integers(2, 24),
        n=st.integers(0, 200),
        seed=st.integers(0, 2**16),
    )
    def test_any_chunking_matches_offline(self, data, window, n, seed):
        """Core invariant: windows are chunking-independent, bitwise."""
        hop = data.draw(st.integers(1, window), label="hop")
        x = np.random.default_rng(seed).normal(size=n)
        offline, starts = frame_signal(x, window, hop)
        windower = StreamWindower(window, hop)
        out = []
        pos = 0
        while pos < n:
            size = data.draw(st.integers(1, n - pos), label="chunk")
            out.extend(windower.push(x[pos : pos + size]))
            pos += size
        assert len(out) == offline.shape[0]
        if out:
            np.testing.assert_array_equal(
                np.stack([w.samples for w in out]), offline
            )
            np.testing.assert_array_equal([w.start for w in out], starts)
