"""Shared streaming fixtures.

The equivalence and fault-injection tests need a fitted monitor but not
a realistic printer: a two-condition noise trace calibrates in well
under a second, so the hypothesis property tests can afford many
examples.  The golden tests build the full synthetic printer scenario
themselves (see ``tests/streaming/golden``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.streaming import ClaimTrack, calibrate_stream_monitor

SAMPLE_RATE = 12000.0
WINDOW = 256
HOP = 128


def make_noise_trace(n_samples: int = 6400, seed: int = 7):
    """Two alternating noise regimes with a matching claim track."""
    rng = np.random.default_rng(seed)
    quarter = n_samples // 4
    spans = []
    boundaries = []
    span_conditions = []
    cursor = 0
    for i in range(4):
        n = quarter if i < 3 else n_samples - 3 * quarter
        cond = i % 2
        scale = 1.0 if cond == 0 else 2.5
        spans.append(rng.normal(0.0, scale, size=n))
        boundaries.append(cursor)
        span_conditions.append(cond)
        cursor += n
    samples = np.concatenate(spans)
    claims = ClaimTrack(
        np.array(boundaries), np.array(span_conditions), np.eye(2)
    )
    return samples, claims


@pytest.fixture(scope="session")
def noise_monitor():
    """``(samples, claims, calibration)`` for a cheap fitted monitor."""
    samples, claims = make_noise_trace()
    calibration = calibrate_stream_monitor(
        samples,
        SAMPLE_RATE,
        claims,
        window_size=WINDOW,
        hop_size=HOP,
        n_bins=12,
        g_size=32,
        root_entropy=11,
        drift=0.5,
        threshold=8.0,
    )
    return samples, claims, calibration
