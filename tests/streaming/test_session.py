"""Fault injection for StreamSession: the service must degrade loudly.

Three failure families from the issue: a producer that dies
mid-stream, a scorer that raises on one batch, and a full queue under
both backpressure policies.  In every case the session must come back
with a complete :class:`StreamMetrics` (no hang, no exception
escaping ``run()``) and any lost window must be visible — either in
``windows_failed``/``WindowBatchFailed`` or in
``windows_dropped``/``WindowsDropped`` — never silently missing.
"""

import threading

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.runtime.events import (
    EventBus,
    StreamFinished,
    WindowBatchFailed,
    WindowsDropped,
)
from repro.streaming import StreamSession, frame_signal
from repro.streaming.session import _ChunkQueue
from tests.streaming.conftest import HOP, SAMPLE_RATE, WINDOW

RUN_TIMEOUT = 30.0  # generous; a hang fails the test instead of CI


def collect(bus, cls):
    seen = []
    bus.subscribe(lambda e: seen.append(e) if isinstance(e, cls) else None)
    return seen


def run_with_timeout(session):
    """Run the session on a thread so a deadlock fails fast and loud."""
    result = {}
    thread = threading.Thread(target=lambda: result.update(m=session.run()))
    thread.start()
    thread.join(timeout=RUN_TIMEOUT)
    assert not thread.is_alive(), "StreamSession.run() hung"
    return result["m"]


def make_session(source, calibration, claims, bus=None, **kwargs):
    kwargs.setdefault("detector", calibration.make_detector())
    return StreamSession(
        source,
        extractor=calibration.extractor,
        scorer=calibration.scorer,
        claims=claims,
        window_size=WINDOW,
        hop_size=HOP,
        sample_rate=SAMPLE_RATE,
        bus=bus,
        **kwargs,
    )


class TestProducerDeath:
    def test_partial_stream_is_scored_and_error_recorded(self, noise_monitor):
        samples, claims, calibration = noise_monitor
        delivered = 3 * 1024

        def dying_source():
            for start in range(0, delivered, 1024):
                yield samples[start : start + 1024]
            raise RuntimeError("microphone unplugged")

        bus = EventBus()
        finished = collect(bus, StreamFinished)
        metrics = run_with_timeout(
            make_session(dying_source(), calibration, claims, bus=bus)
        )
        # Everything delivered before death is still scored...
        expected, _ = frame_signal(samples[:delivered], WINDOW, HOP)
        assert metrics.windows_scored == expected.shape[0]
        assert metrics.samples_consumed == delivered
        # ...and the death is loud, not swallowed.
        assert not metrics.ok
        assert "microphone unplugged" in metrics.error
        assert len(finished) == 1 and finished[0].error is not None

    def test_immediate_death_still_finishes(self, noise_monitor):
        _, claims, calibration = noise_monitor

        def broken_source():
            raise OSError("no device")
            yield  # pragma: no cover

        metrics = run_with_timeout(
            make_session(broken_source(), calibration, claims)
        )
        assert metrics.windows_scored == 0
        assert "no device" in metrics.error


class FlakyScorer:
    """Delegates to the real scorer but raises on chosen call numbers."""

    def __init__(self, inner, fail_on=frozenset({1})):
        self.inner = inner
        self.fail_on = fail_on
        self.calls = 0

    def score_windows(self, features, claim_indices, *, chunk_size=None):
        self.calls += 1
        if self.calls in self.fail_on:
            raise FloatingPointError("scoring blew up")
        return self.inner.score_windows(
            features, claim_indices, chunk_size=chunk_size
        )


class TestScorerFailure:
    def test_failed_batch_is_isolated(self, noise_monitor):
        samples, claims, calibration = noise_monitor
        offline, _ = frame_signal(samples, WINDOW, HOP)
        bus = EventBus()
        failures = collect(bus, WindowBatchFailed)
        session = make_session(
            [samples], calibration, claims, bus=bus, batch_windows=8
        )
        session.scorer = FlakyScorer(calibration.scorer, fail_on={2})
        metrics = run_with_timeout(session)
        # One batch of 8 lost, loudly; every other window scored.
        assert metrics.windows_failed == 8
        assert metrics.windows_scored == offline.shape[0] - 8
        assert len(failures) == 1
        assert failures[0].first_window == 8
        assert "scoring blew up" in failures[0].error
        # The session itself is healthy: the producer finished cleanly.
        assert metrics.ok

    def test_all_batches_failing_never_hangs(self, noise_monitor):
        samples, claims, calibration = noise_monitor
        session = make_session([samples], calibration, claims, batch_windows=4)
        session.scorer = FlakyScorer(calibration.scorer, fail_on=range(1, 10_000))
        metrics = run_with_timeout(session)
        offline, _ = frame_signal(samples, WINDOW, HOP)
        assert metrics.windows_scored == 0
        assert metrics.windows_failed == offline.shape[0]


class GatedScorer:
    """Blocks the consumer until the producer has flooded the queue."""

    def __init__(self, inner, gate):
        self.inner = inner
        self.gate = gate

    def score_windows(self, features, claim_indices, *, chunk_size=None):
        assert self.gate.wait(timeout=RUN_TIMEOUT), "producer never finished"
        return self.inner.score_windows(
            features, claim_indices, chunk_size=chunk_size
        )


class TestBackpressure:
    def test_block_policy_loses_nothing(self, noise_monitor):
        """A tiny queue with a fast producer: block must deliver 100%."""
        samples, claims, calibration = noise_monitor
        offline, _ = frame_signal(samples, WINDOW, HOP)
        chunks = [samples[i : i + 256] for i in range(0, len(samples), 256)]
        metrics = run_with_timeout(
            make_session(
                chunks, calibration, claims, queue_chunks=1, policy="block"
            )
        )
        assert metrics.windows_dropped == 0
        assert metrics.dropped_samples == 0
        assert metrics.windows_scored == offline.shape[0]

    def test_drop_oldest_drops_loudly_and_recovers(self, noise_monitor):
        """Stalled consumer + flooding producer: drops must be reported.

        The scorer is gated on the producer finishing, so the producer
        deterministically overruns the 2-chunk queue while the first
        batch is being scored — no timing races.
        """
        samples, claims, calibration = noise_monitor
        producer_done = threading.Event()

        def flooding_source():
            try:
                for start in range(0, len(samples), 256):
                    yield samples[start : start + 256]
            finally:
                producer_done.set()

        bus = EventBus()
        drops = collect(bus, WindowsDropped)
        session = make_session(
            flooding_source(),
            calibration,
            claims,
            bus=bus,
            queue_chunks=2,
            policy="drop_oldest",
            batch_windows=1,
        )
        session.scorer = GatedScorer(calibration.scorer, producer_done)
        metrics = run_with_timeout(session)
        offline, _ = frame_signal(samples, WINDOW, HOP)
        # The flood forced drops; every one is accounted for.
        assert metrics.dropped_samples > 0
        assert metrics.windows_dropped > 0
        assert drops, "drops happened but no WindowsDropped event"
        assert sum(e.samples for e in drops) == metrics.dropped_samples
        assert sum(e.est_windows for e in drops) == metrics.windows_dropped
        # No silent loss: every offline window is either scored, failed,
        # or counted dropped (skip_gap is a lower bound, so <=).
        accounted = (
            metrics.windows_scored
            + metrics.windows_failed
            + metrics.windows_dropped
        )
        assert metrics.windows_scored < offline.shape[0]
        assert accounted <= offline.shape[0]
        # The session recovered after the stall: post-drop windows scored.
        assert metrics.windows_scored > 0
        assert metrics.ok

    def test_scored_windows_after_drop_are_genuine(self, noise_monitor):
        """Windows scored after a gap contain only post-gap samples."""
        samples, claims, calibration = noise_monitor
        producer_done = threading.Event()

        def flooding_source():
            try:
                for start in range(0, len(samples), 256):
                    yield samples[start : start + 256]
            finally:
                producer_done.set()

        session = make_session(
            flooding_source(),
            calibration,
            claims,
            queue_chunks=2,
            policy="drop_oldest",
            batch_windows=1,
        )
        captured = []
        inner = calibration.scorer

        class CapturingScorer:
            def score_windows(self, features, claim_indices, *, chunk_size=None):
                assert producer_done.wait(timeout=RUN_TIMEOUT)
                captured.append(np.asarray(features).copy())
                return inner.score_windows(
                    features, claim_indices, chunk_size=chunk_size
                )

        session.scorer = CapturingScorer()
        metrics = run_with_timeout(session)
        assert metrics.windows_dropped > 0
        # Recompute what each scored window *should* look like from the
        # original trace; a corrupt ring would feed stale samples.
        offline_windows, starts = frame_signal(samples, WINDOW, HOP)
        offline_feats = calibration.extractor.transform(offline_windows)
        start_to_row = {int(s): i for i, s in enumerate(starts)}
        scored_rows = np.vstack(captured)
        assert scored_rows.shape[0] == metrics.windows_scored
        # Every scored row must equal the offline row of *some* window.
        for row in scored_rows:
            assert any(
                np.array_equal(row, offline_feats[i])
                for i in start_to_row.values()
            )


class TestChunkQueue:
    def test_rejects_bad_config(self):
        with pytest.raises(ConfigurationError):
            _ChunkQueue(0, "block")
        with pytest.raises(ConfigurationError):
            _ChunkQueue(4, "drop_newest")

    def test_drop_oldest_never_drops_control_items(self):
        q = _ChunkQueue(1, "drop_oldest")
        sentinel = object()
        q.put(sentinel)  # control item fills the queue
        q.put(np.zeros(4))  # must not evict the sentinel
        assert q.get() is sentinel
        assert q.dropped_chunks == 0

    def test_drop_oldest_counts_samples(self):
        q = _ChunkQueue(2, "drop_oldest")
        q.put(np.zeros(10))
        q.put(np.zeros(20))
        q.put(np.zeros(30))  # evicts the 10-sample chunk
        assert q.dropped_chunks == 1
        assert q.dropped_samples == 10

    def test_closed_queue_unblocks_blocked_producer(self):
        q = _ChunkQueue(1, "block")
        q.put(np.zeros(4))
        unblocked = threading.Event()

        def producer():
            q.put(np.zeros(4))  # blocks: queue is full
            unblocked.set()

        t = threading.Thread(target=producer, daemon=True)
        t.start()
        assert not unblocked.wait(timeout=0.2)
        q.close()
        assert unblocked.wait(timeout=RUN_TIMEOUT)
        t.join(timeout=RUN_TIMEOUT)


class TestGracefulStop:
    def test_stop_drains_and_finishes_on_infinite_source(self, noise_monitor):
        _, claims, calibration = noise_monitor
        rng = np.random.default_rng(3)

        def endless_source():
            while True:
                yield rng.normal(size=256)

        bus = EventBus()
        finished = collect(bus, StreamFinished)
        session = make_session(
            endless_source(), calibration, claims, bus=bus, queue_chunks=2
        )
        result = {}
        thread = threading.Thread(target=lambda: result.update(m=session.run()))
        thread.start()
        # Let it score something, then ask for shutdown.
        deadline = threading.Event()
        while session.metrics.windows_scored == 0 and thread.is_alive():
            deadline.wait(0.01)
        session.stop()
        thread.join(timeout=RUN_TIMEOUT)
        assert not thread.is_alive(), "stop() did not shut the session down"
        metrics = result["m"]
        assert metrics.windows_scored > 0
        assert len(finished) == 1
