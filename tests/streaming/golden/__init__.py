"""Golden regression fixtures for the streaming attack detector.

``fixture.json`` pins the per-window scores and CUSUM alarm times of a
fixed-seed synthetic printer trace with two forged-claim spans, scored
through the streaming monitor calibration.  Because streaming output is
bitwise identical to the offline oracle, this one fixture regresses the
whole online path: windowing, batched CWT extraction, Parzen scoring,
and the sequential decision layer.

Regenerate (only after an intentional numerical change) with::

    PYTHONPATH=src python -m tests.streaming.golden --regen
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.streaming import (
    calibrate_stream_monitor,
    inject_claim_attack,
    offline_stream_scores,
    synthetic_printer_stream,
)

FIXTURE_PATH = Path(__file__).parent / "fixture.json"

#: Everything that pins the scenario.  Changing any of these requires
#: regenerating the fixture.
GOLDEN_ROOT_ENTROPY = 20190325
GOLDEN_SCENARIO_SEED = 20190325
GOLDEN_ATTACK_SEED = 7
GOLDEN_MOVES = 2
GOLDEN_WINDOW = 600
GOLDEN_HOP = 300
GOLDEN_G_SIZE = 64
GOLDEN_N_SPANS = 2
GOLDEN_DRIFT = 0.5
GOLDEN_THRESHOLD = 10.0


def golden_scenario():
    """``(clean_scenario, attacked_scenario)`` — seed-pinned printer run."""
    clean = synthetic_printer_stream(
        n_moves_per_axis=GOLDEN_MOVES, seed=GOLDEN_SCENARIO_SEED
    )
    attacked = inject_claim_attack(
        clean, n_spans=GOLDEN_N_SPANS, seed=GOLDEN_ATTACK_SEED
    )
    return clean, attacked


def golden_calibration(scenario):
    """The monitor fitted on the clean trace with true claims."""
    return calibrate_stream_monitor(
        scenario.samples,
        scenario.sample_rate,
        scenario.claims,
        window_size=GOLDEN_WINDOW,
        hop_size=GOLDEN_HOP,
        g_size=GOLDEN_G_SIZE,
        root_entropy=GOLDEN_ROOT_ENTROPY,
        drift=GOLDEN_DRIFT,
        threshold=GOLDEN_THRESHOLD,
    )


def compute_golden() -> dict:
    """Recompute the pinned scores/alarms with the offline oracle."""
    clean, attacked = golden_scenario()
    calibration = golden_calibration(clean)
    out = {
        "root_entropy": GOLDEN_ROOT_ENTROPY,
        "scenario_seed": GOLDEN_SCENARIO_SEED,
        "attack_seed": GOLDEN_ATTACK_SEED,
        "moves": GOLDEN_MOVES,
        "window_size": GOLDEN_WINDOW,
        "hop_size": GOLDEN_HOP,
        "g_size": GOLDEN_G_SIZE,
        "drift": GOLDEN_DRIFT,
        "threshold": GOLDEN_THRESHOLD,
        "n_samples": int(len(clean.samples)),
        "attacked_spans": [int(i) for i in attacked.attacked_spans],
        "traces": {},
    }
    for name, scenario in (("clean", clean), ("attacked", attacked)):
        scores, starts, alarms = offline_stream_scores(
            scenario.samples,
            scenario.claims,
            calibration,
            window_size=GOLDEN_WINDOW,
            hop_size=GOLDEN_HOP,
        )
        out["traces"][name] = {
            "scores": [float(s) for s in scores],
            "window_starts": [int(s) for s in starts],
            "alarm_windows": [int(a) for a in alarms],
        }
    return out


def load_fixture() -> dict:
    return json.loads(FIXTURE_PATH.read_text(encoding="utf-8"))


def write_fixture() -> Path:
    data = compute_golden()
    FIXTURE_PATH.write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return FIXTURE_PATH


def compare(fresh: dict, pinned: dict) -> list:
    """Mismatch descriptions between a fresh run and the pinned fixture."""
    failures = []
    for name, tables in pinned["traces"].items():
        got = fresh["traces"][name]
        want_scores = np.asarray(tables["scores"])
        got_scores = np.asarray(got["scores"])
        if got_scores.shape != want_scores.shape:
            failures.append(
                f"{name}: {got_scores.shape[0]} windows, "
                f"expected {want_scores.shape[0]}"
            )
            continue
        if not np.allclose(got_scores, want_scores, rtol=1e-9, atol=1e-12):
            failures.append(
                f"{name} scores: max abs diff "
                f"{np.abs(got_scores - want_scores).max():g}"
            )
        if got["alarm_windows"] != tables["alarm_windows"]:
            failures.append(
                f"{name} alarms: {got['alarm_windows']} != "
                f"{tables['alarm_windows']}"
            )
        if got["window_starts"] != tables["window_starts"]:
            failures.append(f"{name}: window starts changed")
    return failures
