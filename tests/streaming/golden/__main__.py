"""Streaming golden-fixture maintenance CLI.

Check the committed fixture against a fresh run::

    PYTHONPATH=src python -m tests.streaming.golden

Regenerate after an intentional numerical change::

    PYTHONPATH=src python -m tests.streaming.golden --regen
"""

from __future__ import annotations

import argparse
import sys

from tests.streaming.golden import (
    FIXTURE_PATH,
    compare,
    compute_golden,
    load_fixture,
    write_fixture,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m tests.streaming.golden")
    parser.add_argument(
        "--regen",
        action="store_true",
        help="overwrite the committed fixture with freshly computed scores",
    )
    args = parser.parse_args(argv)

    if args.regen:
        path = write_fixture()
        print(f"streaming golden fixture regenerated -> {path}")
        return 0

    if not FIXTURE_PATH.exists():
        print(f"no fixture at {FIXTURE_PATH}; run with --regen to create it")
        return 1
    failures = compare(compute_golden(), load_fixture())
    if failures:
        print("streaming golden fixture MISMATCH:")
        for line in failures:
            print(f"  {line}")
        return 1
    print(f"streaming golden fixture OK ({FIXTURE_PATH})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
