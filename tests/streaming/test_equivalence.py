"""Streaming == offline, bitwise — the load-bearing guarantee.

For *any* partition of a trace into chunks and *any* window batching,
the streamed features, scores, and alarm times must be exactly
(``==``, not allclose) what one offline batch pass produces.  These
tests drive the real components end to end: hypothesis picks the
chunking, :func:`repro.streaming.calibration.offline_stream_scores` is
the oracle.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.runtime.events import EventBus, WindowBatchScored
from repro.streaming import (
    StreamSession,
    TraceReplay,
    frame_signal,
    offline_stream_scores,
)
from tests.streaming.conftest import HOP, SAMPLE_RATE, WINDOW


def cut_points(n, *, max_cuts=24):
    """Strategy: sorted interior cut positions partitioning ``range(n)``."""
    if n < 2:
        return st.just([])
    return st.lists(
        st.integers(1, n - 1), max_size=max_cuts, unique=True
    ).map(sorted)


def split_at(values, cuts):
    """Split an array (or row range) at the given sorted cut positions."""
    edges = [0, *cuts, len(values)]
    return [values[a:b] for a, b in zip(edges, edges[1:])]


def run_streamed(samples, claims, calibration, chunks, *, batch_windows=32):
    session = StreamSession(
        chunks,
        extractor=calibration.extractor,
        scorer=calibration.scorer,
        claims=claims,
        detector=calibration.make_detector(),
        window_size=WINDOW,
        hop_size=HOP,
        sample_rate=SAMPLE_RATE,
        batch_windows=batch_windows,
    )
    return session.run()


class TestStreamedScoresMatchOffline:
    @settings(max_examples=15, deadline=None)
    @given(data=st.data(), batch_windows=st.integers(1, 64))
    def test_arbitrary_chunking_bitwise(self, noise_monitor, data, batch_windows):
        samples, claims, calibration = noise_monitor
        offline_scores, _, offline_alarms = offline_stream_scores(
            samples, claims, calibration, window_size=WINDOW, hop_size=HOP
        )
        cuts = data.draw(cut_points(len(samples)), label="cuts")
        metrics = run_streamed(
            samples,
            claims,
            calibration,
            split_at(samples, cuts),
            batch_windows=batch_windows,
        )
        assert metrics.ok
        assert metrics.windows_dropped == 0
        np.testing.assert_array_equal(metrics.scores, offline_scores)
        assert metrics.alarms == offline_alarms

    def test_whole_trace_as_one_chunk(self, noise_monitor):
        samples, claims, calibration = noise_monitor
        offline_scores, _, offline_alarms = offline_stream_scores(
            samples, claims, calibration, window_size=WINDOW, hop_size=HOP
        )
        metrics = run_streamed(samples, claims, calibration, [samples])
        np.testing.assert_array_equal(metrics.scores, offline_scores)
        assert metrics.alarms == offline_alarms

    def test_one_sample_chunks(self, noise_monitor):
        """Degenerate chunking: the stream arrives one sample at a time."""
        samples, claims, calibration = noise_monitor
        short = samples[: WINDOW + 3 * HOP + 5]
        offline_scores, _, _ = offline_stream_scores(
            short, claims, calibration, window_size=WINDOW, hop_size=HOP
        )
        metrics = run_streamed(
            short, claims, calibration, [np.array([s]) for s in short]
        )
        np.testing.assert_array_equal(metrics.scores, offline_scores)

    def test_trailing_partial_window_is_never_scored(self, noise_monitor):
        samples, claims, calibration = noise_monitor
        # Cut mid-window: the tail past the last full hop must vanish
        # identically from both paths.
        short = samples[: 5 * HOP + WINDOW + HOP // 2]
        offline_scores, starts, _ = offline_stream_scores(
            short, claims, calibration, window_size=WINDOW, hop_size=HOP
        )
        assert starts[-1] + WINDOW <= len(short)
        metrics = run_streamed(short, claims, calibration, [short[:301], short[301:]])
        assert metrics.windows_scored == len(offline_scores)
        np.testing.assert_array_equal(metrics.scores, offline_scores)

    def test_trace_replay_source_matches_offline(self, noise_monitor):
        """The real replay source (max rate) is just another chunking."""
        samples, claims, calibration = noise_monitor
        offline_scores, _, offline_alarms = offline_stream_scores(
            samples, claims, calibration, window_size=WINDOW, hop_size=HOP
        )
        replay = TraceReplay(samples, SAMPLE_RATE, chunk_size=997, rate="max")
        metrics = run_streamed(samples, claims, calibration, replay)
        np.testing.assert_array_equal(metrics.scores, offline_scores)
        assert metrics.alarms == offline_alarms


class TestStreamedFeaturesMatchOffline:
    @settings(max_examples=15, deadline=None)
    @given(data=st.data())
    def test_batched_extraction_bitwise(self, noise_monitor, data):
        """Feature rows are independent of how windows are batched."""
        samples, _, calibration = noise_monitor
        windows, _ = frame_signal(samples, WINDOW, HOP)
        offline = calibration.extractor.transform(windows)
        cuts = data.draw(cut_points(windows.shape[0]), label="cuts")
        pieces = [
            calibration.extractor.transform(part)
            for part in split_at(windows, cuts)
            if len(part)
        ]
        np.testing.assert_array_equal(np.vstack(pieces), offline)

    @settings(max_examples=15, deadline=None)
    @given(data=st.data())
    def test_batched_scoring_bitwise(self, noise_monitor, data):
        """Parzen scores are independent of batch composition."""
        samples, claims, calibration = noise_monitor
        windows, starts = frame_signal(samples, WINDOW, HOP)
        features = calibration.extractor.transform(windows)
        claim_idx = claims.window_claims(starts)
        offline = calibration.scorer.score_windows(features, claim_idx)
        cuts = data.draw(cut_points(features.shape[0]), label="cuts")
        edges = [0, *cuts, features.shape[0]]
        pieces = [
            calibration.scorer.score_windows(features[a:b], claim_idx[a:b])
            for a, b in zip(edges, edges[1:])
            if b > a
        ]
        np.testing.assert_array_equal(np.concatenate(pieces), offline)

    def test_parzen_chunk_size_does_not_change_scores(self, noise_monitor):
        samples, claims, calibration = noise_monitor
        windows, starts = frame_signal(samples, WINDOW, HOP)
        features = calibration.extractor.transform(windows)
        claim_idx = claims.window_claims(starts)
        base = calibration.scorer.score_windows(features, claim_idx)
        for chunk in (1, 7, 1000):
            got = calibration.scorer.score_windows(
                features, claim_idx, chunk_size=chunk
            )
            np.testing.assert_array_equal(got, base)


class TestDecisionLayerIsSequential:
    def test_alarm_indices_independent_of_batching(self, noise_monitor):
        samples, claims, calibration = noise_monitor
        scores, _, _ = offline_stream_scores(
            samples, claims, calibration, window_size=WINDOW, hop_size=HOP
        )
        one = calibration.make_detector()
        for s in scores:
            one.update(float(s))
        many = calibration.make_detector()
        many.update_many(scores)
        assert one.alarms == many.alarms
        assert one.statistic == many.statistic

    def test_batch_events_cover_every_window_once(self, noise_monitor):
        samples, claims, calibration = noise_monitor
        bus = EventBus()
        seen = []
        bus.subscribe(
            lambda e: seen.append(e) if isinstance(e, WindowBatchScored) else None
        )
        session = StreamSession(
            TraceReplay(samples, SAMPLE_RATE, chunk_size=512),
            extractor=calibration.extractor,
            scorer=calibration.scorer,
            claims=claims,
            window_size=WINDOW,
            hop_size=HOP,
            sample_rate=SAMPLE_RATE,
            batch_windows=5,
            bus=bus,
        )
        metrics = session.run()
        covered = sorted(
            i for e in seen for i in range(e.first_window, e.first_window + e.n_windows)
        )
        assert covered == list(range(metrics.windows_scored))
