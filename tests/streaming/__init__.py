"""Tests for the streaming attack-detection service (repro.streaming)."""
