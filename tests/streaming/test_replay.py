"""Tests for repro.streaming.replay (claim tracks, replay, scenarios)."""

import time

import numpy as np
import pytest

from repro.errors import ConfigurationError, DataError
from repro.streaming import (
    ClaimTrack,
    TraceReplay,
    inject_claim_attack,
    synthetic_printer_stream,
)


def two_span_track():
    return ClaimTrack(
        np.array([0, 100]), np.array([0, 1]), np.eye(2)
    )


class TestClaimTrack:
    def test_window_claims_follow_span_of_start(self):
        track = two_span_track()
        # Claims switch exactly at sample 100; the *start* sample decides.
        np.testing.assert_array_equal(
            track.window_claims([0, 99, 100, 150]), [0, 0, 1, 1]
        )

    def test_rejects_nonzero_first_boundary(self):
        with pytest.raises(DataError):
            ClaimTrack(np.array([5]), np.array([0]), np.eye(2))

    def test_rejects_unsorted_boundaries(self):
        with pytest.raises(DataError):
            ClaimTrack(np.array([0, 50, 50]), np.array([0, 1, 0]), np.eye(2))

    def test_rejects_out_of_range_condition(self):
        with pytest.raises(DataError):
            ClaimTrack(np.array([0]), np.array([2]), np.eye(2))

    def test_rejects_negative_window_start(self):
        with pytest.raises(DataError):
            two_span_track().window_claims([-1])

    def test_with_span_conditions_forges_claims_only(self):
        track = two_span_track()
        forged = track.with_span_conditions([1, 0])
        np.testing.assert_array_equal(forged.window_claims([0, 150]), [1, 0])
        np.testing.assert_array_equal(track.window_claims([0, 150]), [0, 1])
        np.testing.assert_array_equal(forged.boundaries, track.boundaries)


class TestTraceReplay:
    def test_chunks_reassemble_to_trace(self):
        x = np.arange(10.0)
        chunks = list(TraceReplay(x, 100.0, chunk_size=3))
        assert [len(c) for c in chunks] == [3, 3, 3, 1]
        np.testing.assert_array_equal(np.concatenate(chunks), x)

    def test_realtime_pacing_takes_wall_time(self):
        x = np.zeros(500)
        replay = TraceReplay(x, 1000.0, chunk_size=100, rate="realtime")
        t0 = time.perf_counter()
        list(replay)
        elapsed = time.perf_counter() - t0
        assert elapsed >= 0.4  # 500 samples at 1 kHz = 0.5 s of audio

    def test_speedup_shortens_wall_time(self):
        x = np.zeros(500)
        replay = TraceReplay(
            x, 1000.0, chunk_size=100, rate="realtime", speedup=10.0
        )
        t0 = time.perf_counter()
        list(replay)
        assert time.perf_counter() - t0 < 0.4

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigurationError):
            TraceReplay(np.zeros(4), 0.0)
        with pytest.raises(ConfigurationError):
            TraceReplay(np.zeros(4), 100.0, chunk_size=0)
        with pytest.raises(ConfigurationError):
            TraceReplay(np.zeros(4), 100.0, rate="warp")
        with pytest.raises(ConfigurationError):
            TraceReplay(np.zeros(4), 100.0, speedup=0.0)
        with pytest.raises(DataError):
            TraceReplay(np.zeros((2, 2)), 100.0)


@pytest.fixture(scope="module")
def scenario():
    return synthetic_printer_stream(n_moves_per_axis=2, seed=123)


class TestSyntheticScenario:
    def test_trace_covers_every_span(self, scenario):
        # The last span starts inside the trace; no span is empty.
        assert scenario.claims.boundaries[-1] < len(scenario.samples)
        assert scenario.claims.n_spans >= 3  # one per encodable segment
        assert scenario.duration > 0

    def test_claims_match_calibration_conditions(self, scenario):
        # Every condition a span claims exists in the calibration set.
        cal_conditions = {tuple(c) for c in scenario.calibration.unique_conditions()}
        for idx in scenario.claims.span_conditions:
            assert tuple(scenario.claims.conditions[idx]) in cal_conditions

    def test_seeded_scenarios_are_reproducible(self):
        a = synthetic_printer_stream(n_moves_per_axis=2, seed=5)
        b = synthetic_printer_stream(n_moves_per_axis=2, seed=5)
        np.testing.assert_array_equal(a.samples, b.samples)
        np.testing.assert_array_equal(
            a.claims.span_conditions, b.claims.span_conditions
        )


class TestInjectClaimAttack:
    def test_attack_forges_claims_but_not_audio(self, scenario):
        attacked = inject_claim_attack(scenario, n_spans=2, seed=1)
        assert attacked.samples is scenario.samples
        assert len(attacked.attacked_spans) == 2
        for span in attacked.attacked_spans:
            assert (
                attacked.claims.span_conditions[span]
                != scenario.claims.span_conditions[span]
            )
        # Untouched spans keep their claims.
        untouched = set(range(scenario.claims.n_spans)) - set(
            attacked.attacked_spans
        )
        for span in untouched:
            assert (
                attacked.claims.span_conditions[span]
                == scenario.claims.span_conditions[span]
            )

    def test_attack_is_seeded(self, scenario):
        a = inject_claim_attack(scenario, n_spans=2, seed=9)
        b = inject_claim_attack(scenario, n_spans=2, seed=9)
        assert a.attacked_spans == b.attacked_spans
        np.testing.assert_array_equal(
            a.claims.span_conditions, b.claims.span_conditions
        )

    def test_rejects_zero_spans(self, scenario):
        with pytest.raises(ConfigurationError):
            inject_claim_attack(scenario, n_spans=0)
