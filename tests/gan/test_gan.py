"""Tests for repro.gan.gan (unconditional baseline)."""

import numpy as np

from repro.gan.gan import GAN


class TestUnconditionalGAN:
    def test_train_and_generate(self):
        rng = np.random.default_rng(0)
        features = np.clip(rng.normal(0.5, 0.1, size=(200, 3)), 0, 1)
        gan = GAN(3, noise_dim=4, seed=0)
        gan.train(features, iterations=300)
        samples = gan.generate(100, seed=1)
        assert samples.shape == (100, 3)
        # Learned marginal should land near the data mean.
        assert abs(samples.mean() - 0.5) < 0.2

    def test_accepts_flow_pair_dataset(self, toy_dataset):
        gan = GAN(toy_dataset.feature_dim, noise_dim=4, seed=0)
        gan.train(toy_dataset, iterations=50)
        assert gan.is_trained

    def test_history_exposed(self, toy_dataset):
        gan = GAN(toy_dataset.feature_dim, noise_dim=4, seed=0)
        hist = gan.train(toy_dataset, iterations=20)
        assert len(hist) == 20
        assert gan.history is hist

    def test_repr(self):
        assert "GAN" in repr(GAN(3, noise_dim=2, seed=0))
