"""Tests for repro.gan.cgan (Algorithm 2)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, NotFittedError
from repro.flows.dataset import FlowPairDataset
from repro.gan.cgan import ConditionalGAN
from repro.nn.layers import Dense


def small_cgan(**kwargs):
    defaults = dict(noise_dim=4, seed=0)
    defaults.update(kwargs)
    return ConditionalGAN(4, 2, **defaults)


class TestConstruction:
    def test_dims(self):
        cgan = small_cgan()
        assert cgan.generator.input_dim == 4 + 2
        assert cgan.generator.output_dim == 4
        assert cgan.discriminator.input_dim == 4 + 2
        assert cgan.discriminator.output_dim == 1

    def test_rejects_bad_dims(self):
        with pytest.raises(ConfigurationError):
            ConditionalGAN(0, 2)
        with pytest.raises(ConfigurationError):
            ConditionalGAN(4, 0)

    def test_rejects_wrong_generator_output(self):
        with pytest.raises(ConfigurationError, match="generator outputs"):
            ConditionalGAN(4, 2, generator_layers=[Dense(3, "sigmoid")])

    def test_rejects_wrong_discriminator_output(self):
        with pytest.raises(ConfigurationError, match="discriminator"):
            ConditionalGAN(
                4, 2, discriminator_layers=[Dense(2, "sigmoid")]
            )

    def test_rejects_unknown_loss(self):
        with pytest.raises(ConfigurationError):
            small_cgan(generator_loss="wasserstein")


class TestGenerate:
    def test_shapes(self):
        cgan = small_cgan()
        out = cgan.generate(np.array([[1.0, 0.0], [0.0, 1.0]]), seed=0)
        assert out.shape == (2, 4)

    def test_generate_for_condition(self):
        cgan = small_cgan()
        out = cgan.generate_for_condition([1.0, 0.0], 7, seed=0)
        assert out.shape == (7, 4)

    def test_sigmoid_output_range(self):
        cgan = small_cgan()
        out = cgan.generate_for_condition([1.0, 0.0], 32, seed=0)
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_rejects_wrong_condition_width(self):
        with pytest.raises(ConfigurationError):
            small_cgan().generate(np.ones((2, 3)))

    def test_deterministic_with_seed(self):
        cgan = small_cgan()
        a = cgan.generate_for_condition([1.0, 0.0], 5, seed=3)
        b = cgan.generate_for_condition([1.0, 0.0], 5, seed=3)
        np.testing.assert_array_equal(a, b)


class TestTraining:
    def test_learns_conditional_means(self, toy_dataset):
        cgan = ConditionalGAN(4, 2, noise_dim=4, seed=1)
        cgan.train(toy_dataset, iterations=800, batch_size=32)
        low = cgan.generate_for_condition([1.0, 0.0], 200, seed=0).mean()
        high = cgan.generate_for_condition([0.0, 1.0], 200, seed=0).mean()
        # Conditions map to well-separated clusters at 0.2 and 0.8.
        assert low < 0.45
        assert high > 0.55
        assert high - low > 0.25

    def test_history_recorded(self, toy_dataset):
        cgan = small_cgan()
        hist = cgan.train(toy_dataset, iterations=50)
        assert len(hist) == 50
        assert np.all(np.isfinite(hist.d_loss))
        assert np.all(np.isfinite(hist.g_loss))

    def test_training_accumulates(self, toy_dataset):
        cgan = small_cgan()
        cgan.train(toy_dataset, iterations=10)
        cgan.train(toy_dataset, iterations=10)
        assert cgan.trained_iterations == 20
        assert len(cgan.history) == 20

    def test_snapshots(self, toy_dataset):
        cgan = small_cgan()
        cgan.train(toy_dataset, iterations=30, snapshot_every=10)
        assert [it for it, _g in cgan.snapshots] == [10, 20, 30]
        # Snapshots are independent copies.
        _, g10 = cgan.snapshots[0]
        assert g10 is not cgan.generator

    def test_data_fraction_schedule(self, toy_dataset):
        cgan = small_cgan()
        hist = cgan.train(
            toy_dataset,
            iterations=20,
            data_fraction=lambda it: min(1.0, (it + 1) / 20),
        )
        assert hist.n_train[0] < hist.n_train[-1]
        assert hist.n_train[-1] == len(toy_dataset)

    def test_bad_data_fraction_raises(self, toy_dataset):
        cgan = small_cgan()
        with pytest.raises(ConfigurationError):
            cgan.train(toy_dataset, iterations=5, data_fraction=lambda it: 0.0)

    def test_k_disc_steps(self, toy_dataset):
        cgan = small_cgan()
        cgan.train(toy_dataset, iterations=10, k_disc=3)
        assert cgan.trained_iterations == 10

    def test_minimax_loss_variant_trains(self, toy_dataset):
        cgan = small_cgan(generator_loss="minimax")
        hist = cgan.train(toy_dataset, iterations=100)
        assert np.all(np.isfinite(hist.g_objective))

    def test_label_smoothing(self, toy_dataset):
        cgan = small_cgan()
        cgan.train(toy_dataset, iterations=20, label_smoothing=0.1)
        assert cgan.is_trained

    def test_rejects_dim_mismatch(self):
        cgan = small_cgan()
        wrong = FlowPairDataset(np.ones((10, 5)), np.ones((10, 2)))
        with pytest.raises(ConfigurationError, match="feature_dim"):
            cgan.train(wrong, iterations=5)

    def test_rejects_bad_hyperparams(self, toy_dataset):
        cgan = small_cgan()
        with pytest.raises(ConfigurationError):
            cgan.train(toy_dataset, iterations=0)
        with pytest.raises(ConfigurationError):
            cgan.train(toy_dataset, iterations=5, k_disc=0)
        with pytest.raises(ConfigurationError):
            cgan.train(toy_dataset, iterations=5, label_smoothing=0.7)


class TestStateChecks:
    def test_require_trained(self):
        with pytest.raises(NotFittedError):
            small_cgan().require_trained()

    def test_discriminator_score_shapes(self, toy_dataset):
        cgan = small_cgan()
        cgan.train(toy_dataset, iterations=10)
        scores = cgan.discriminator_score(
            toy_dataset.features[:5], toy_dataset.conditions[:5]
        )
        assert scores.shape == (5,)
        assert np.all((scores >= 0) & (scores <= 1))

    def test_discriminator_score_broadcast_condition(self, toy_dataset):
        cgan = small_cgan()
        cgan.train(toy_dataset, iterations=10)
        scores = cgan.discriminator_score(
            toy_dataset.features[:5], np.array([1.0, 0.0])
        )
        assert scores.shape == (5,)

    def test_reproducible_training(self, toy_dataset):
        a = ConditionalGAN(4, 2, noise_dim=4, seed=11)
        b = ConditionalGAN(4, 2, noise_dim=4, seed=11)
        ha = a.train(toy_dataset, iterations=25)
        hb = b.train(toy_dataset, iterations=25)
        np.testing.assert_allclose(ha.d_loss, hb.d_loss)
        np.testing.assert_allclose(
            a.generate_for_condition([1, 0], 4, seed=0),
            b.generate_for_condition([1, 0], 4, seed=0),
        )
