"""Tests for repro.gan.serialization."""

import numpy as np
import pytest

from repro.errors import SerializationError
from repro.gan.cgan import ConditionalGAN
from repro.gan.noise import UniformNoise
from repro.gan.serialization import load_cgan, save_cgan


def trained(toy_dataset, **kwargs):
    cgan = ConditionalGAN(4, 2, noise_dim=4, seed=0, **kwargs)
    cgan.train(toy_dataset, iterations=40)
    return cgan


class TestRoundTrip:
    def test_generator_outputs_preserved(self, toy_dataset, tmp_path):
        cgan = trained(toy_dataset)
        save_cgan(cgan, tmp_path / "model")
        loaded = load_cgan(tmp_path / "model")
        cond = np.array([1.0, 0.0])
        a = cgan.generate_for_condition(cond, 8, seed=5)
        b = loaded.generate_for_condition(cond, 8, seed=5)
        np.testing.assert_allclose(a, b)

    def test_discriminator_preserved(self, toy_dataset, tmp_path):
        cgan = trained(toy_dataset)
        save_cgan(cgan, tmp_path / "model")
        loaded = load_cgan(tmp_path / "model")
        scores_a = cgan.discriminator_score(
            toy_dataset.features[:5], toy_dataset.conditions[:5]
        )
        scores_b = loaded.discriminator_score(
            toy_dataset.features[:5], toy_dataset.conditions[:5]
        )
        np.testing.assert_allclose(scores_a, scores_b)

    def test_metadata_restored(self, toy_dataset, tmp_path):
        cgan = trained(toy_dataset, generator_loss="minimax")
        save_cgan(cgan, tmp_path / "model")
        loaded = load_cgan(tmp_path / "model")
        assert loaded.generator_loss_name == "minimax"
        assert loaded.trained_iterations == 40
        assert loaded.is_trained

    def test_uniform_noise_preserved(self, toy_dataset, tmp_path):
        cgan = ConditionalGAN(4, 2, noise=UniformNoise(6, -0.5, 0.5), seed=0)
        cgan.train(toy_dataset, iterations=10)
        save_cgan(cgan, tmp_path / "model")
        loaded = load_cgan(tmp_path / "model")
        assert isinstance(loaded.noise, UniformNoise)
        assert loaded.noise.dim == 6
        assert loaded.noise.low == -0.5


class TestFailures:
    def test_missing_directory(self, tmp_path):
        with pytest.raises(SerializationError, match="no CGAN metadata"):
            load_cgan(tmp_path / "absent")

    def test_corrupt_metadata(self, toy_dataset, tmp_path):
        cgan = trained(toy_dataset)
        save_cgan(cgan, tmp_path / "model")
        (tmp_path / "model" / "cgan.json").write_text("{broken")
        with pytest.raises(SerializationError, match="corrupt"):
            load_cgan(tmp_path / "model")
