"""Tests for mid-training checkpoints (save/restore + bitwise resume)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SerializationError
from repro.gan.cgan import ConditionalGAN, TrainingCheckpointState
from repro.gan.serialization import (
    CHECKPOINT_MARKER,
    restore_training_checkpoint,
    save_training_checkpoint,
)

ITERATIONS = 40
CHECKPOINT_EVERY = 15  # fires at 15 and 30; never on the final iteration


def _fresh_cgan(dataset):
    return ConditionalGAN(dataset.feature_dim, dataset.condition_dim, seed=7)


def assert_same_model(a, b):
    for net_a, net_b in (
        (a.generator, b.generator),
        (a.discriminator, b.discriminator),
    ):
        wa, wb = net_a.get_weights(), net_b.get_weights()
        assert wa.keys() == wb.keys()
        for name in wa:
            np.testing.assert_array_equal(wa[name], wb[name], err_msg=name)
    assert a.history.d_loss == b.history.d_loss
    assert a.history.g_loss == b.history.g_loss
    assert a.history.iterations == b.history.iterations
    assert a.trained_iterations == b.trained_iterations


class TestBitwiseResume:
    def test_resumed_training_matches_uninterrupted(self, toy_dataset, tmp_path):
        # Reference: one uninterrupted run.
        reference = _fresh_cgan(toy_dataset)
        reference.train(
            toy_dataset, iterations=ITERATIONS, batch_size=16, seed=11
        )

        # Checkpointing run: same seeds, writing periodic checkpoints.
        ckpt_dir = tmp_path / "ckpt"
        checkpointed = _fresh_cgan(toy_dataset)
        checkpointed.train(
            toy_dataset,
            iterations=ITERATIONS,
            batch_size=16,
            seed=11,
            checkpoint_every=CHECKPOINT_EVERY,
            on_checkpoint=lambda s: save_training_checkpoint(
                checkpointed, s, ckpt_dir, fingerprint="fp"
            ),
        )
        # Checkpoint callbacks never perturb the training stream.
        assert_same_model(checkpointed, reference)

        # "Crashed" run: a fresh model restores the last checkpoint
        # (iteration 30) and finishes the remaining iterations.
        resumed = _fresh_cgan(toy_dataset)
        state = restore_training_checkpoint(
            resumed, ckpt_dir, expected_fingerprint="fp"
        )
        assert state.iteration == 30
        assert state.total_iterations == ITERATIONS
        assert resumed.trained_iterations == 30
        resumed.train(
            toy_dataset, iterations=ITERATIONS, batch_size=16, resume=state
        )
        assert_same_model(resumed, reference)

    def test_final_iteration_never_checkpoints(self, toy_dataset, tmp_path):
        ckpt_dir = tmp_path / "ckpt"
        iterations_seen = []
        cgan = _fresh_cgan(toy_dataset)
        cgan.train(
            toy_dataset,
            iterations=30,
            batch_size=16,
            seed=1,
            checkpoint_every=15,
            on_checkpoint=lambda s: iterations_seen.append(s.iteration),
        )
        assert iterations_seen == [15]  # 30 is the final iteration


class TestRestoreRejection:
    """A defective checkpoint is 'no checkpoint', never a wrong resume."""

    def _checkpointed_dir(self, toy_dataset, tmp_path):
        ckpt_dir = tmp_path / "ckpt"
        cgan = _fresh_cgan(toy_dataset)
        cgan.train(
            toy_dataset,
            iterations=ITERATIONS,
            batch_size=16,
            seed=11,
            checkpoint_every=CHECKPOINT_EVERY,
            on_checkpoint=lambda s: save_training_checkpoint(
                cgan, s, ckpt_dir, fingerprint="fp"
            ),
        )
        return ckpt_dir

    def test_missing_marker(self, toy_dataset, tmp_path):
        with pytest.raises(SerializationError, match="marker"):
            restore_training_checkpoint(_fresh_cgan(toy_dataset), tmp_path / "none")

    def test_fingerprint_mismatch(self, toy_dataset, tmp_path):
        ckpt_dir = self._checkpointed_dir(toy_dataset, tmp_path)
        with pytest.raises(SerializationError, match="different"):
            restore_training_checkpoint(
                _fresh_cgan(toy_dataset), ckpt_dir, expected_fingerprint="other"
            )

    def test_tampered_component(self, toy_dataset, tmp_path):
        ckpt_dir = self._checkpointed_dir(toy_dataset, tmp_path)
        with open(ckpt_dir / "generator.npz", "ab") as fh:
            fh.write(b"junk")
        with pytest.raises(SerializationError, match="generator.npz"):
            restore_training_checkpoint(
                _fresh_cgan(toy_dataset), ckpt_dir, expected_fingerprint="fp"
            )

    def test_corrupt_marker(self, toy_dataset, tmp_path):
        ckpt_dir = self._checkpointed_dir(toy_dataset, tmp_path)
        (ckpt_dir / CHECKPOINT_MARKER).write_text("{broken")
        with pytest.raises(SerializationError, match="corrupt"):
            restore_training_checkpoint(_fresh_cgan(toy_dataset), ckpt_dir)

    def test_missing_component(self, toy_dataset, tmp_path):
        ckpt_dir = self._checkpointed_dir(toy_dataset, tmp_path)
        (ckpt_dir / "history.csv").unlink()
        with pytest.raises(SerializationError, match="history.csv"):
            restore_training_checkpoint(
                _fresh_cgan(toy_dataset), ckpt_dir, expected_fingerprint="fp"
            )


class TestTrainValidation:
    def test_resume_and_seed_mutually_exclusive(self, toy_dataset):
        cgan = _fresh_cgan(toy_dataset)
        state = TrainingCheckpointState(
            iteration=1,
            total_iterations=10,
            rng_state_start={},
            rng_state_now={},
        )
        with pytest.raises(ConfigurationError, match="not both"):
            cgan.train(toy_dataset, iterations=10, seed=3, resume=state)

    def test_resume_iteration_out_of_range(self, toy_dataset):
        cgan = _fresh_cgan(toy_dataset)
        state = TrainingCheckpointState(
            iteration=50,
            total_iterations=10,
            rng_state_start={},
            rng_state_now={},
        )
        with pytest.raises(ConfigurationError, match="resume"):
            cgan.train(toy_dataset, iterations=10, resume=state)

    def test_negative_checkpoint_every_rejected(self, toy_dataset):
        cgan = _fresh_cgan(toy_dataset)
        with pytest.raises(ConfigurationError, match="checkpoint_every"):
            cgan.train(toy_dataset, iterations=5, checkpoint_every=-1)
