"""Tests for repro.gan.wgan (Wasserstein CGAN variant)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.gan.wgan import WassersteinConditionalGAN, default_critic
from repro.nn.layers import Dense
from repro.security.confidentiality import SideChannelAttacker


def small_wgan(**kwargs):
    defaults = dict(noise_dim=4, seed=0)
    defaults.update(kwargs)
    return WassersteinConditionalGAN(4, 2, **defaults)


class TestConstruction:
    def test_linear_critic_head(self):
        layers = default_critic()
        assert isinstance(layers[-1], Dense)
        assert layers[-1].activation is None

    def test_rejects_bad_clip(self):
        with pytest.raises(ConfigurationError):
            small_wgan(clip=0.0)

    def test_generator_loss_kwarg_ignored(self):
        # WGAN fixes its own objectives; the kwarg must not break it.
        wgan = WassersteinConditionalGAN(
            4, 2, noise_dim=4, seed=0, generator_loss="minimax"
        )
        assert wgan.clip == 0.05


class TestTraining:
    def test_learns_conditional_means(self, toy_dataset):
        wgan = small_wgan(seed=1)
        wgan.train(toy_dataset, iterations=1200, k_disc=5, batch_size=32)
        low = wgan.generate_for_condition([1.0, 0.0], 200, seed=0).mean()
        high = wgan.generate_for_condition([0.0, 1.0], 200, seed=0).mean()
        assert low < 0.45
        assert high > 0.55

    def test_weights_stay_clipped(self, toy_dataset):
        wgan = small_wgan(clip=0.03)
        wgan.train(toy_dataset, iterations=50, k_disc=2)
        for layer in wgan.discriminator.layers:
            for param in layer.parameters().values():
                assert np.all(np.abs(param) <= 0.03 + 1e-12)

    def test_history_finite(self, toy_dataset):
        wgan = small_wgan()
        hist = wgan.train(toy_dataset, iterations=40)
        assert np.all(np.isfinite(hist.d_loss))
        assert np.all(np.isfinite(hist.g_loss))

    def test_critic_scores_unbounded(self, toy_dataset):
        # Linear head: scores are not squashed into [0, 1].
        wgan = small_wgan()
        wgan.train(toy_dataset, iterations=30)
        scores = wgan.discriminator_score(
            toy_dataset.features[:8], toy_dataset.conditions[:8]
        )
        assert scores.shape == (8,)

    def test_reproducible(self, toy_dataset):
        a = small_wgan(seed=5)
        b = small_wgan(seed=5)
        ha = a.train(toy_dataset, iterations=30)
        hb = b.train(toy_dataset, iterations=30)
        np.testing.assert_allclose(ha.d_loss, hb.d_loss)


class TestDownstreamCompatibility:
    def test_works_with_side_channel_attacker(self, toy_dataset):
        wgan = small_wgan(seed=2)
        wgan.train(toy_dataset, iterations=1200, k_disc=5)
        attacker = SideChannelAttacker(
            wgan, toy_dataset.unique_conditions(), h=0.1, seed=0
        ).fit()
        report = attacker.evaluate(toy_dataset)
        assert report.accuracy > 0.8
