"""Tests for repro.gan.history."""

import numpy as np
import pytest

from repro.errors import DataError
from repro.gan.history import TrainingHistory


def filled(n=50):
    hist = TrainingHistory()
    for i in range(n):
        hist.record(i + 1, 1.0 + i * 0.01, 2.0 - i * 0.01, -0.5, 100)
    return hist


class TestRecord:
    def test_lengths(self):
        hist = filled(10)
        assert len(hist) == 10
        assert hist.iterations == list(range(1, 11))

    def test_final(self):
        final = filled(5).final()
        assert final["iteration"] == 5
        assert final["n_train"] == 100

    def test_final_empty_raises(self):
        with pytest.raises(DataError):
            TrainingHistory().final()


class TestSmoothing:
    def test_window_shrinks_series(self):
        out = filled(50).smoothed(window=10)
        assert len(out["d_loss"]) == 41
        assert len(out["iterations"]) == 41

    def test_window_larger_than_series_clamped(self):
        out = filled(5).smoothed(window=100)
        assert len(out["d_loss"]) == 1

    def test_preserves_trend(self):
        out = filled(50).smoothed(window=5)
        assert out["d_loss"][-1] > out["d_loss"][0]
        assert out["g_loss"][-1] < out["g_loss"][0]

    def test_empty_raises(self):
        with pytest.raises(DataError):
            TrainingHistory().smoothed()


class TestExtend:
    def test_concatenates(self):
        a, b = filled(5), filled(3)
        a.extend(b)
        assert len(a) == 8


class TestCsvRoundTrip:
    def test_roundtrip(self, tmp_path):
        hist = filled(12)
        path = hist.to_csv(tmp_path / "hist.csv")
        back = TrainingHistory.from_csv(path)
        assert back.iterations == hist.iterations
        np.testing.assert_allclose(back.d_loss, hist.d_loss)
        np.testing.assert_allclose(back.g_loss, hist.g_loss)
        assert back.n_train == hist.n_train

    def test_missing_file(self, tmp_path):
        with pytest.raises(DataError):
            TrainingHistory.from_csv(tmp_path / "absent.csv")

    def test_creates_parent_dirs(self, tmp_path):
        path = filled(3).to_csv(tmp_path / "deep" / "hist.csv")
        assert path.exists()
