"""Tests for repro.gan.evaluation."""

import numpy as np
import pytest

from repro.errors import NotFittedError
from repro.gan.cgan import ConditionalGAN
from repro.gan.evaluation import (
    discriminator_accuracy,
    feature_moment_gap,
    per_condition_sample_spread,
)


@pytest.fixture(scope="module")
def trained_toy():
    rng = np.random.default_rng(0)
    from repro.flows.dataset import FlowPairDataset

    n = 120
    half = n // 2
    f1 = np.clip(rng.normal(0.2, 0.05, size=(half, 4)), 0, 1)
    f2 = np.clip(rng.normal(0.8, 0.05, size=(half, 4)), 0, 1)
    conds = np.vstack([np.tile([1.0, 0.0], (half, 1)), np.tile([0.0, 1.0], (half, 1))])
    ds = FlowPairDataset(np.vstack([f1, f2]), conds)
    cgan = ConditionalGAN(4, 2, noise_dim=4, seed=2)
    cgan.train(ds, iterations=600)
    return cgan, ds


class TestMomentGap:
    def test_small_after_training(self, trained_toy):
        cgan, ds = trained_toy
        gaps = feature_moment_gap(cgan, ds, seed=0)
        assert len(gaps) == 2
        for stats in gaps.values():
            assert stats["mean_gap"] < 0.6  # 4-dim L2; ~0.3/dim.

    def test_untrained_raises(self, toy_dataset):
        cgan = ConditionalGAN(4, 2, noise_dim=4, seed=0)
        with pytest.raises(NotFittedError):
            feature_moment_gap(cgan, toy_dataset)


class TestDiscriminatorAccuracy:
    def test_range(self, trained_toy):
        cgan, ds = trained_toy
        acc = discriminator_accuracy(cgan, ds, seed=0)
        assert 0.0 <= acc <= 1.0


class TestSpread:
    def test_nonzero_spread(self, trained_toy):
        cgan, _ds = trained_toy
        spread = per_condition_sample_spread(
            cgan, [[1.0, 0.0], [0.0, 1.0]], seed=0
        )
        # No mode collapse: every condition keeps some diversity.
        assert all(v > 1e-4 for v in spread.values())
