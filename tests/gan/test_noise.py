"""Tests for repro.gan.noise."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.gan.noise import GaussianNoise, UniformNoise, get_noise_prior


class TestGaussian:
    def test_shape(self):
        z = GaussianNoise(8)(16, seed=0)
        assert z.shape == (16, 8)

    def test_statistics(self):
        z = GaussianNoise(4, std=2.0)(5000, seed=0)
        assert abs(z.mean()) < 0.1
        assert abs(z.std() - 2.0) < 0.1

    def test_deterministic(self):
        np.testing.assert_array_equal(
            GaussianNoise(3)(5, seed=7), GaussianNoise(3)(5, seed=7)
        )

    def test_rejects_bad_dim(self):
        with pytest.raises(ConfigurationError):
            GaussianNoise(0)

    def test_rejects_bad_std(self):
        with pytest.raises(ConfigurationError):
            GaussianNoise(2, std=0.0)

    def test_rejects_bad_count(self):
        with pytest.raises(ConfigurationError):
            GaussianNoise(2)(0)


class TestUniform:
    def test_bounds(self):
        z = UniformNoise(4, -2.0, 3.0)(1000, seed=0)
        assert z.min() >= -2.0
        assert z.max() < 3.0

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ConfigurationError):
            UniformNoise(2, 1.0, -1.0)


class TestRegistry:
    def test_names(self):
        assert isinstance(get_noise_prior("gaussian", 5), GaussianNoise)
        assert isinstance(get_noise_prior("uniform", 5), UniformNoise)

    def test_instance_passthrough(self):
        prior = GaussianNoise(9)
        assert get_noise_prior(prior, 4) is prior
        assert prior.dim == 9  # dim argument ignored for instances

    def test_unknown(self):
        with pytest.raises(ConfigurationError):
            get_noise_prior("cauchy", 4)
