"""Tests for repro.artifacts.store (content-addressed artifact writes)."""

import json

import pytest

from repro.artifacts.store import (
    ArtifactRecord,
    ArtifactStore,
    sha256_bytes,
    sha256_file,
    tree_digest,
)
from repro.errors import ConfigurationError, SerializationError


@pytest.fixture()
def store(tmp_path):
    return ArtifactStore(tmp_path)


class TestDigests:
    def test_sha256_bytes_matches_file(self, tmp_path):
        payload = b"gan-sec artifact bytes"
        path = tmp_path / "blob.bin"
        path.write_bytes(payload)
        assert sha256_file(path) == sha256_bytes(payload)

    def test_tree_digest_order_independent_of_creation(self, tmp_path):
        a = tmp_path / "a"
        b = tmp_path / "b"
        for root, order in ((a, ("x.txt", "sub/y.txt")), (b, ("sub/y.txt", "x.txt"))):
            for rel in order:
                path = root / rel
                path.parent.mkdir(parents=True, exist_ok=True)
                path.write_text(rel)
        assert tree_digest(a) == tree_digest(b)

    def test_tree_digest_sensitive_to_content_and_path(self, tmp_path):
        root = tmp_path / "t"
        root.mkdir()
        (root / "x.txt").write_text("one")
        base, _size = tree_digest(root)
        (root / "x.txt").write_text("two")
        assert tree_digest(root)[0] != base
        (root / "x.txt").write_text("one")
        (root / "x.txt").rename(root / "y.txt")
        assert tree_digest(root)[0] != base


class TestWrites:
    def test_put_bytes_roundtrip_and_verify(self, store):
        record = store.put_bytes("report.txt", b"hello")
        assert record.path == "report.txt"
        assert record.kind == "file"
        assert record.size == 5
        assert store.read_bytes("report.txt") == b"hello"
        assert store.verify(record)

    def test_put_json_matches_historical_format(self, store):
        store.put_json("summary.json", {"a": 1})
        # Same bytes json.dumps(indent=2) produced before the store existed.
        assert store.read_text("summary.json") == json.dumps({"a": 1}, indent=2)

    def test_put_file_publishes_only_on_success(self, store, tmp_path):
        with pytest.raises(RuntimeError):
            store.put_file("data.npz", lambda p: (_ for _ in ()).throw(RuntimeError()))
        assert not store.exists("data.npz")
        assert not list(tmp_path.glob(".tmp-*"))

    def test_put_tree_replaces_previous_version(self, store):
        def build_v1(d):
            (d / "w.txt").write_text("v1")
            (d / "old.txt").write_text("stale")

        def build_v2(d):
            (d / "w.txt").write_text("v2")

        store.put_tree("model", build_v1)
        record = store.put_tree("model", build_v2)
        assert store.read_text("model/w.txt") == "v2"
        assert not store.exists("model/old.txt")
        assert store.verify(record)

    def test_snapshot_file_and_tree(self, store):
        store.put_bytes("f.bin", b"xy")
        snap = store.snapshot("f.bin")
        assert snap.kind == "file" and snap.size == 2
        store.put_tree("d", lambda p: (p / "a").write_text("a"))
        assert store.snapshot("d").kind == "tree"
        with pytest.raises(SerializationError):
            store.snapshot("missing")


class TestVerify:
    def test_tampered_file_fails_verify(self, store):
        record = store.put_bytes("x.txt", b"abcd")
        store.path("x.txt").write_bytes(b"abcX")  # same size, new bytes
        assert not store.verify(record)

    def test_missing_file_fails_verify(self, store):
        record = store.put_bytes("x.txt", b"abcd")
        store.path("x.txt").unlink()
        assert not store.verify(record)

    def test_tampered_tree_fails_verify(self, store):
        record = store.put_tree("m", lambda d: (d / "w").write_text("w"))
        (store.path("m") / "w").write_text("W")
        assert not store.verify(record)


class TestPathSafety:
    def test_rejects_absolute_paths(self, store):
        with pytest.raises(ConfigurationError):
            store.path("/etc/passwd")

    def test_rejects_traversal(self, store):
        with pytest.raises(ConfigurationError):
            store.path("../outside.txt")


class TestRecordSerialization:
    def test_roundtrip(self):
        record = ArtifactRecord(path="a", digest="sha256:ff", size=1, kind="file")
        assert ArtifactRecord.from_dict(record.to_dict()) == record

    def test_malformed_raises(self):
        with pytest.raises(SerializationError):
            ArtifactRecord.from_dict({"path": "a"})

    def test_read_json_corrupt_raises(self, store):
        store.put_bytes("bad.json", b"{not json")
        with pytest.raises(SerializationError):
            store.read_json("bad.json")
