"""Tests for repro.artifacts.manifest (per-stage provenance records)."""

import json

import pytest

from repro.artifacts.manifest import (
    MANIFEST_NAME,
    MANIFEST_SCHEMA,
    RunManifest,
    StageRecord,
)
from repro.artifacts.store import ArtifactRecord
from repro.errors import SerializationError


def _record(name="record", fingerprint="f" * 64):
    return StageRecord(
        name=name,
        fingerprint=fingerprint,
        seconds=1.5,
        started_at=10.0,
        finished_at=11.5,
        outputs={
            "dataset": ArtifactRecord(
                path="dataset.npz", digest="sha256:aa", size=3, kind="file"
            )
        },
        meta={"n_samples": 42},
    )


class TestRoundTrip:
    def test_save_load_preserves_records(self, tmp_path):
        manifest = RunManifest(tmp_path / MANIFEST_NAME)
        manifest.set(_record())
        manifest.save()

        loaded = RunManifest.load(tmp_path)
        assert not loaded.recovered
        assert loaded.names() == ["record"]
        got = loaded.get("record")
        assert got.fingerprint == "f" * 64
        assert got.meta == {"n_samples": 42}
        assert got.outputs["dataset"].digest == "sha256:aa"

    def test_missing_manifest_loads_empty(self, tmp_path):
        loaded = RunManifest.load(tmp_path)
        assert len(loaded) == 0
        assert not loaded.recovered

    def test_remove_and_contains(self, tmp_path):
        manifest = RunManifest(tmp_path / MANIFEST_NAME)
        manifest.set(_record())
        assert "record" in manifest
        assert manifest.remove("record")
        assert not manifest.remove("record")
        assert "record" not in manifest


class TestCorruption:
    """A defective manifest always degrades to 'nothing proved ran'."""

    def test_truncated_json_recovers_empty(self, tmp_path):
        manifest = RunManifest(tmp_path / MANIFEST_NAME)
        manifest.set(_record())
        manifest.save()
        text = (tmp_path / MANIFEST_NAME).read_text()
        (tmp_path / MANIFEST_NAME).write_text(text[: len(text) // 2])

        loaded = RunManifest.load(tmp_path)
        assert len(loaded) == 0
        assert loaded.recovered

    def test_wrong_schema_recovers_empty(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text(
            json.dumps({"schema": "someone-elses/v9", "stages": []})
        )
        loaded = RunManifest.load(tmp_path)
        assert len(loaded) == 0
        assert loaded.recovered

    def test_malformed_stage_record_recovers_empty(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text(
            json.dumps({"schema": MANIFEST_SCHEMA, "stages": [{"name": "x"}]})
        )
        loaded = RunManifest.load(tmp_path)
        assert len(loaded) == 0
        assert loaded.recovered

    def test_non_object_json_recovers_empty(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text("[1, 2, 3]")
        loaded = RunManifest.load(tmp_path)
        assert len(loaded) == 0
        assert loaded.recovered


class TestStageRecordSerialization:
    def test_roundtrip(self):
        record = _record()
        again = StageRecord.from_dict(record.to_dict())
        assert again == record

    def test_malformed_raises(self):
        with pytest.raises(SerializationError):
            StageRecord.from_dict({"fingerprint": "x"})
