"""Shared fixtures.

Expensive artifacts (the simulated case-study dataset and a trained
CGAN) are session-scoped: the printer simulation and GAN training run
once and are reused by every test that needs realistic data.

The trained CGAN is additionally cached on disk (under pytest's cache
directory) behind a key derived from the training data, the
hyperparameters, and the training source code — so repeated local runs
and CI re-runs skip the ~20 s of GAN training entirely.  Any change to
the dataset, the trainer, or the numeric kernels changes the key and
forces a retrain; stale weights are never reused.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

import numpy as np
import pytest

from repro.flows.dataset import FlowPairDataset
from repro.gan import ConditionalGAN
from repro.manufacturing import record_case_study_dataset

_CGAN_TRAIN_PARAMS = {"seed": 7, "iterations": 600, "batch_size": 32}

#: Source files whose behavior the trained weights depend on.  Hashing
#: them into the cache key invalidates cached weights whenever the
#: trainer or its numeric kernels change.
_CGAN_SOURCE_DEPS = ("gan", "nn")


@pytest.fixture(scope="session")
def case_study():
    """(dataset, extractor, encoder, runs) from a small simulated recording."""
    return record_case_study_dataset(n_moves_per_axis=15, seed=1234)


@pytest.fixture(scope="session")
def case_dataset(case_study):
    return case_study[0]


@pytest.fixture(scope="session")
def case_split(case_dataset):
    return case_dataset.split(0.3, seed=99)


def _trained_cgan_cache_key(train: FlowPairDataset) -> str:
    digest = hashlib.sha256()
    digest.update(np.ascontiguousarray(train.features).tobytes())
    digest.update(np.ascontiguousarray(train.conditions).tobytes())
    digest.update(repr(sorted(_CGAN_TRAIN_PARAMS.items())).encode())
    src_root = Path(__file__).resolve().parent.parent / "src" / "repro"
    for package in _CGAN_SOURCE_DEPS:
        for path in sorted((src_root / package).rglob("*.py")):
            digest.update(path.read_bytes())
    return digest.hexdigest()[:32]


@pytest.fixture(scope="session")
def trained_cgan(case_split, request):
    """A CGAN trained on the case-study split, cached on disk by key.

    Weights round-trip exactly through ``save_cgan``/``load_cgan``
    (float64 ``.npz``), and every test that samples from the fixture
    passes an explicit seed, so a cache hit is observationally
    identical to a fresh training run.
    """
    from repro.gan.serialization import load_cgan, save_cgan

    train, _test = case_split
    cache_root = request.config.cache.mkdir("gansec-trained-cgan")
    model_dir = Path(cache_root) / _trained_cgan_cache_key(train)
    if (model_dir / "cgan.json").exists():
        try:
            return load_cgan(model_dir)
        except Exception:
            pass  # corrupt cache entry: retrain below and overwrite
    cgan = ConditionalGAN(train.feature_dim, train.condition_dim,
                          seed=_CGAN_TRAIN_PARAMS["seed"])
    cgan.train(
        train,
        iterations=_CGAN_TRAIN_PARAMS["iterations"],
        batch_size=_CGAN_TRAIN_PARAMS["batch_size"],
    )
    save_cgan(cgan, model_dir)
    return cgan


@pytest.fixture()
def toy_dataset():
    """Small synthetic 2-condition dataset with well-separated features.

    Condition [1,0] puts mass near 0.2, condition [0,1] near 0.8 — easy
    enough that even briefly-trained models behave predictably.
    """
    rng = np.random.default_rng(0)
    n = 120
    half = n // 2
    f1 = np.clip(rng.normal(0.2, 0.05, size=(half, 4)), 0, 1)
    f2 = np.clip(rng.normal(0.8, 0.05, size=(half, 4)), 0, 1)
    c1 = np.tile([1.0, 0.0], (half, 1))
    c2 = np.tile([0.0, 1.0], (half, 1))
    return FlowPairDataset(
        np.vstack([f1, f2]), np.vstack([c1, c2]), name="toy"
    )
