"""Shared fixtures.

Expensive artifacts (the simulated case-study dataset and a trained
CGAN) are session-scoped: the printer simulation and GAN training run
once and are reused by every test that needs realistic data.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.flows.dataset import FlowPairDataset
from repro.gan import ConditionalGAN
from repro.manufacturing import record_case_study_dataset


@pytest.fixture(scope="session")
def case_study():
    """(dataset, extractor, encoder, runs) from a small simulated recording."""
    return record_case_study_dataset(n_moves_per_axis=15, seed=1234)


@pytest.fixture(scope="session")
def case_dataset(case_study):
    return case_study[0]


@pytest.fixture(scope="session")
def case_split(case_dataset):
    return case_dataset.split(0.3, seed=99)


@pytest.fixture(scope="session")
def trained_cgan(case_split):
    train, _test = case_split
    cgan = ConditionalGAN(train.feature_dim, train.condition_dim, seed=7)
    cgan.train(train, iterations=600, batch_size=32)
    return cgan


@pytest.fixture()
def toy_dataset():
    """Small synthetic 2-condition dataset with well-separated features.

    Condition [1,0] puts mass near 0.2, condition [0,1] near 0.8 — easy
    enough that even briefly-trained models behave predictably.
    """
    rng = np.random.default_rng(0)
    n = 120
    half = n // 2
    f1 = np.clip(rng.normal(0.2, 0.05, size=(half, 4)), 0, 1)
    f2 = np.clip(rng.normal(0.8, 0.05, size=(half, 4)), 0, 1)
    c1 = np.tile([1.0, 0.0], (half, 1))
    c2 = np.tile([0.0, 1.0], (half, 1))
    return FlowPairDataset(
        np.vstack([f1, f2]), np.vstack([c1, c2]), name="toy"
    )
