"""Cross-module property-based tests on physical and statistical
invariants of the simulation and analysis stack.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.dsp.wavelet import average_band_energy
from repro.manufacturing.gcode import GCodeCommand, GCodeProgram
from repro.manufacturing.kinematics import MachineConfig, MotionPlanner
from repro.manufacturing.quality import (
    hausdorff_distance,
    path_length,
    resample_polyline,
    toolpath_points,
)
from repro.security.parzen import ParzenWindow

feeds = st.floats(min_value=60.0, max_value=6000.0)
coords = st.floats(min_value=-50.0, max_value=50.0)


def single_axis_program(axis, positions, feed):
    commands = [GCodeCommand("G90")]
    for pos in positions:
        commands.append(
            GCodeCommand("G1", {axis: round(pos, 4), "F": round(feed, 2)})
        )
    return GCodeProgram(commands)


class TestKinematicInvariants:
    @given(
        positions=st.lists(coords, min_size=1, max_size=8),
        feed=feeds,
        axis=st.sampled_from(["X", "Y"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_durations_and_speeds_consistent(self, positions, feed, axis):
        """Every planned segment satisfies distance = speed * duration and
        never exceeds its motor's speed limit."""
        program = single_axis_program(axis, positions, feed)
        config = MachineConfig()
        segments = MotionPlanner(config).plan(program)
        for seg in segments:
            assert seg.duration > 0
            for a in seg.active_axes:
                speed = seg.axis_speeds[a]
                travel = abs(seg.end[a] - seg.start[a])
                assert travel == pytest.approx(speed * seg.duration, rel=1e-9)
                assert speed <= config.motor(a).max_speed + 1e-9

    @given(
        positions=st.lists(coords, min_size=1, max_size=8),
        feed=feeds,
    )
    @settings(max_examples=30, deadline=None)
    def test_positions_chain(self, positions, feed):
        """Segment end positions chain: each start equals the previous end."""
        program = single_axis_program("X", positions, feed)
        segments = MotionPlanner().plan(program)
        for prev, nxt in zip(segments, segments[1:]):
            assert prev.end == nxt.start

    @given(
        positions=st.lists(coords, min_size=2, max_size=6),
        feed=feeds,
    )
    @settings(max_examples=30, deadline=None)
    def test_toolpath_length_vs_travel(self, positions, feed):
        """Polyline length equals the summed per-segment travel."""
        program = single_axis_program("X", positions, feed)
        segments = MotionPlanner().plan(program)
        assume(segments)
        total_travel = sum(
            abs(seg.end["X"] - seg.start["X"]) for seg in segments
        )
        pts = toolpath_points(segments)
        assert path_length(pts) == pytest.approx(total_travel, rel=1e-9)


class TestGeometryInvariants:
    @given(
        pts=st.lists(
            st.tuples(coords, coords), min_size=2, max_size=6
        ),
        dx=coords,
        dy=coords,
    )
    @settings(max_examples=40, deadline=None)
    def test_hausdorff_translation(self, pts, dx, dy):
        """Hausdorff distance of a path and its translate is the shift norm."""
        a = np.asarray(pts, dtype=float)
        assume(path_length(a) > 1e-6)
        b = a + np.array([dx, dy])
        expected = float(np.hypot(dx, dy))
        assert hausdorff_distance(a, b) == pytest.approx(expected, abs=1e-6)

    @given(
        pts=st.lists(st.tuples(coords, coords), min_size=2, max_size=6),
        n=st.integers(min_value=2, max_value=64),
    )
    @settings(max_examples=40, deadline=None)
    def test_resample_preserves_endpoints_and_length(self, pts, n):
        a = np.asarray(pts, dtype=float)
        out = resample_polyline(a, n)
        np.testing.assert_allclose(out[0], a[0], atol=1e-9)
        np.testing.assert_allclose(out[-1], a[-1], atol=1e-9)
        # Resampling a polyline can only shorten it (chord <= arc).
        assert path_length(out) <= path_length(a) + 1e-6


class TestSpectralInvariants:
    @given(
        freq=st.floats(min_value=100.0, max_value=2000.0),
        gain=st.floats(min_value=0.1, max_value=5.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_cwt_scales_linearly(self, freq, gain):
        sr = 8000.0
        t = np.arange(1024) / sr
        x = np.sin(2 * np.pi * freq * t)
        bands = np.array([freq])
        base = average_band_energy(x, sr, bands)[0]
        scaled = average_band_energy(gain * x, sr, bands)[0]
        assert scaled == pytest.approx(gain * base, rel=1e-9)


class TestParzenInvariants:
    @given(
        centers=st.lists(
            st.floats(min_value=-3, max_value=3), min_size=1, max_size=6
        ),
        h=st.floats(min_value=0.05, max_value=1.0),
        shift=st.floats(min_value=-2, max_value=2),
    )
    @settings(max_examples=30, deadline=None)
    def test_translation_invariance(self, centers, h, shift):
        """KDE density is translation-equivariant."""
        a = ParzenWindow(h).fit(centers)
        b = ParzenWindow(h).fit([c + shift for c in centers])
        x = np.linspace(-4, 4, 9)
        np.testing.assert_allclose(
            a.density(x), b.density(x + shift), rtol=1e-9, atol=1e-300
        )

    @given(
        centers=st.lists(
            st.floats(min_value=0, max_value=1), min_size=2, max_size=8
        ),
        h_small=st.floats(min_value=0.01, max_value=0.1),
    )
    @settings(max_examples=30, deadline=None)
    def test_peak_density_decreases_with_h(self, centers, h_small):
        """Wider windows never sharpen the density at a kernel center."""
        h_large = h_small * 10
        x = np.array([centers[0]])
        small = ParzenWindow(h_small).fit(centers).density(x)[0]
        large = ParzenWindow(h_large).fit(centers).density(x)[0]
        assert large <= small + 1e-12
