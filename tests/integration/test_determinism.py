"""Determinism: identical seeds must reproduce every stage bit-for-bit."""

import numpy as np

from repro.gan import ConditionalGAN
from repro.manufacturing import record_case_study_dataset
from repro.security import SideChannelAttacker, security_likelihood_analysis


def run_once(seed=2024):
    ds, _ex, _enc, _runs = record_case_study_dataset(
        n_moves_per_axis=6, seed=seed, n_bins=24
    )
    train, test = ds.split(0.3, seed=seed)
    cgan = ConditionalGAN(ds.feature_dim, ds.condition_dim, seed=seed)
    cgan.train(train, iterations=120, batch_size=16)
    res = security_likelihood_analysis(
        cgan, test, feature_indices=[5], h=0.3, g_size=40, seed=seed
    )
    attacker = SideChannelAttacker(
        cgan, test.unique_conditions(), h=0.3, g_size=40, seed=seed
    ).fit()
    report = attacker.evaluate(test)
    return ds, cgan, res, report


class TestDeterminism:
    def test_entire_pipeline_reproducible(self):
        ds1, cgan1, res1, rep1 = run_once()
        ds2, cgan2, res2, rep2 = run_once()
        np.testing.assert_allclose(ds1.features, ds2.features)
        np.testing.assert_allclose(
            cgan1.history.d_loss, cgan2.history.d_loss
        )
        np.testing.assert_allclose(res1.avg_correct, res2.avg_correct)
        np.testing.assert_allclose(res1.avg_incorrect, res2.avg_incorrect)
        assert rep1.accuracy == rep2.accuracy

    def test_different_seeds_differ(self):
        ds1, *_ = record_case_study_dataset(n_moves_per_axis=4, seed=1, n_bins=16)
        ds2, *_ = record_case_study_dataset(n_moves_per_axis=4, seed=2, n_bins=16)
        differs = ds1.features.shape != ds2.features.shape or not np.allclose(
            ds1.features, ds2.features
        )
        assert differs
