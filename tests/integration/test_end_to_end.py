"""Integration tests: the whole GAN-Sec story on the simulated printer.

These tests exercise the exact flow a user of the library follows:
simulate → featureize → Algorithm 1 → Algorithm 2 → Algorithm 3 →
attack/detection analyses — asserting the *qualitative* results the
paper reports (leakage above chance, Cor > Inc, detectable attacks).
"""

from repro.graph import generate
from repro.manufacturing import (
    Printer3D,
    build_dataset,
    collect_segments,
    monitored_flow_names,
    printer_architecture,
    random_single_motor_sequence,
)
from repro.security import (
    EmissionAttackDetector,
    SideChannelAttacker,
    axis_swap_attack,
    security_likelihood_analysis,
)


class TestPaperStory:
    def test_algorithm1_selects_case_study_pairs(self):
        res = generate(printer_architecture(), monitored_flow_names())
        cross = res.cross_domain_pairs()
        assert len(cross) == 5
        assert all(fp.second.name in monitored_flow_names() for fp in cross)

    def test_confidentiality_leakage_above_chance(self, trained_cgan, case_split):
        _train, test = case_split
        attacker = SideChannelAttacker(
            trained_cgan, test.unique_conditions(), h=0.2, seed=0
        ).fit()
        report = attacker.evaluate(test)
        assert report.accuracy > 0.5  # Chance is 1/3.

    def test_algorithm3_margin_positive_on_average(self, trained_cgan, case_split):
        _train, test = case_split
        res = security_likelihood_analysis(
            trained_cgan, test, h=0.2, g_size=100, seed=0
        )
        # Averaged over all features and conditions, correct likelihood
        # exceeds incorrect likelihood: the generator learned the
        # conditional structure (Table I's qualitative claim).
        assert res.margin().mean() > 0.0

    def test_integrity_attack_detected(self, trained_cgan, case_split):
        train, test = case_split
        detector = EmissionAttackDetector(
            trained_cgan, train.unique_conditions(), h=0.2, seed=0
        ).fit()
        detector.calibrate(train, false_positive_rate=0.1)
        attack_features, attack_claims = axis_swap_attack(test, seed=1)
        report = detector.evaluate(test, attack_features, attack_claims)
        assert report.auc > 0.5


class TestSecretObjectAttack:
    """Attacker reconstructs the motor sequence of an unseen program."""

    def test_reconstruction_beats_chance(self, case_study, trained_cgan):
        _ds, extractor, encoder, _runs = case_study
        printer = Printer3D(sample_rate=12000.0, seed=321)
        secret = random_single_motor_sequence(12, seed=77)
        run = printer.run(secret, seed=78)
        segments = collect_segments([run])
        secret_ds = build_dataset(
            segments, extractor, encoder, fit_extractor=False
        )
        attacker = SideChannelAttacker(
            trained_cgan, secret_ds.unique_conditions(), h=0.2, seed=0
        ).fit()
        report = attacker.evaluate(secret_ds)
        assert report.accuracy > report.chance_accuracy


class TestFullPipelineConsistency:
    def test_feature_dims_consistent_everywhere(self, case_study):
        ds, extractor, _encoder, _runs = case_study
        assert ds.feature_dim == extractor.n_bins
        assert extractor.frequencies[0] >= 50.0
        assert extractor.frequencies[-1] <= 5000.0

    def test_generated_samples_in_feature_range(self, trained_cgan, case_split):
        _train, test = case_split
        for cond in test.unique_conditions():
            samples = trained_cgan.generate_for_condition(cond, 50, seed=0)
            assert samples.min() >= 0.0
            assert samples.max() <= 1.0
