"""Failure injection: the pipeline must fail loudly on degenerate input."""

import numpy as np
import pytest

from repro.errors import (
    ArchitectureError,
    DataError,
    GCodeError,
)
from repro.dsp.features import FrequencyFeatureExtractor
from repro.flows.dataset import FlowPairDataset
from repro.flows.encoding import SingleMotorEncoder
from repro.gan import ConditionalGAN
from repro.graph import CPPSArchitecture, SubSystem, cyber, generate
from repro.manufacturing import GCodeProgram, Printer3D, build_dataset
from repro.manufacturing.traces import RecordedSegment
from repro.security import security_likelihood_analysis


class TestCorruptedPrograms:
    def test_corrupted_gcode_rejected_at_parse(self):
        with pytest.raises(GCodeError):
            GCodeProgram.from_text("G1 X10\nG1 <garbage>")

    def test_empty_program_produces_no_audio(self):
        printer = Printer3D(sample_rate=12000.0, seed=0)
        prog = GCodeProgram.from_text("G21\nG90")
        with pytest.raises(DataError):
            # No motion -> empty trace -> EnergyFlowData refuses it.
            printer.run(prog, seed=0)


class TestDegenerateDatasets:
    def test_single_condition_dataset_unsplittable_if_tiny(self):
        ds = FlowPairDataset(np.random.rand(1, 4), np.array([[1.0, 0.0]]))
        with pytest.raises(DataError):
            ds.split(0.5)

    def test_unencodable_segments_rejected(self):
        seg = RecordedSegment(
            samples=np.random.default_rng(0).normal(size=1200),
            active_axes=frozenset({"X", "Y"}),  # Not single-motor.
            program_name="p",
            segment_index=0,
        )
        ex = FrequencyFeatureExtractor(12000.0, n_bins=10)
        with pytest.raises(DataError, match="representable"):
            build_dataset([seg], ex, SingleMotorEncoder())

    def test_nan_features_rejected(self):
        with pytest.raises(DataError, match="non-finite"):
            FlowPairDataset(
                np.array([[np.nan, 1.0]]), np.array([[1.0, 0.0]])
            )


class TestDegenerateArchitectures:
    def test_empty_architecture(self):
        with pytest.raises(ArchitectureError):
            generate(CPPSArchitecture("empty"), set())

    def test_flowless_architecture(self):
        arch = CPPSArchitecture("x")
        arch.add_subsystem(SubSystem("s", [cyber("C1"), cyber("C2")]))
        with pytest.raises(ArchitectureError):
            generate(arch, set())


class TestModelMisuse:
    def test_untrained_generator_in_algorithm3(self, toy_dataset):
        cgan = ConditionalGAN(4, 2, noise_dim=4, seed=0)
        from repro.errors import NotFittedError

        with pytest.raises(NotFittedError):
            security_likelihood_analysis(cgan, toy_dataset, h=0.2)

    def test_training_on_empty_features_impossible(self):
        with pytest.raises(DataError):
            FlowPairDataset(np.zeros((0, 4)), np.zeros((0, 2)))
