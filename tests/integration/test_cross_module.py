"""Gap-filling integration tests across module boundaries."""

import numpy as np
import pytest

from repro.flows.signal import SignalFlowData
from repro.flows.encoding import SingleMotorEncoder, condition_label
from repro.manufacturing import (
    MotionPlanner,
    Printer3D,
    circle_program,
    collect_segments,
    rectangle_program,
)
from repro.security import (
    EmissionAttackDetector,
    TransitionModel,
    roc_curve,
)


class TestSignalFlowFromPlans:
    """The cyber-side SignalFlowData view of planned programs."""

    def test_rectangle_condition_statistics(self):
        segs = MotionPlanner().plan(rectangle_program(20, 10, n_loops=3))
        labels = [condition_label(s.active_axes) for s in segs if s.active_axes]
        flow = SignalFlowData(labels, name="gcode-conditions")
        # A rectangle alternates X and Y equally.
        assert flow.event_probability("X") == pytest.approx(0.5, abs=0.1)
        assert flow.event_probability("Y") == pytest.approx(0.5, abs=0.1)
        assert flow.entropy() > 0.9

    def test_transition_model_from_rectangle(self):
        segs = MotionPlanner().plan(rectangle_program(20, 10, n_loops=4))
        enc = SingleMotorEncoder(axes=("X", "Y"))
        idx = {frozenset({"X"}): 0, frozenset({"Y"}): 1}
        seq = [idx[s.active_axes] for s in segs if s.active_axes in idx]
        model = TransitionModel.from_sequences([seq], 2, smoothing=0.1)
        tm = model.transition_matrix
        # Perimeter structure: X is always followed by Y and vice versa.
        assert tm[0, 1] > 0.9
        assert tm[1, 0] > 0.9


class TestArcsThroughFullStack:
    def test_circle_produces_xy_emissions(self):
        printer = Printer3D(sample_rate=12000.0, seed=0)
        run = printer.run(circle_program(12.0, feed=1500.0), seed=1)
        segs = collect_segments([run], min_duration=0.0)
        # Arc chords activate both X and Y most of the time.
        xy = [s for s in segs if s.active_axes == frozenset({"X", "Y"})]
        assert len(xy) > len(segs) / 2


class TestDetectorRocIntegration:
    def test_detector_scores_feed_roc_curve(self, toy_dataset):
        conds = toy_dataset.unique_conditions()

        def oracle(cond, n, rng):
            center = 0.2 if cond[0] == 1.0 else 0.8
            return np.clip(rng.normal(center, 0.05, size=(n, 4)), 0, 1)

        detector = EmissionAttackDetector(oracle, conds, h=0.1, seed=0).fit()
        clean = detector.score(toy_dataset.features, toy_dataset.conditions)
        attacked = detector.score(
            toy_dataset.features, toy_dataset.conditions[:, ::-1]
        )
        curve = roc_curve(clean, attacked)
        assert curve.auc > 0.95
        thr = curve.threshold_for_fpr(0.05)
        fpr, tpr = curve.operating_point(thr)
        assert fpr <= 0.05
        assert tpr > 0.8
