"""Smoke checks on the example scripts.

Each example guards its work behind ``if __name__ == "__main__"``, so
importing the module executes only definitions — verifying that every
example's imports and top-level code stay in sync with the library API
without paying for full runs in the unit-test suite.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
def test_example_imports_cleanly(path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(spec.name, None)
    assert hasattr(module, "main"), f"{path.name} must define main()"


def test_expected_examples_present():
    names = {p.stem for p in EXAMPLE_FILES}
    assert {
        "quickstart",
        "side_channel_attack",
        "attack_detection",
        "defense_evaluation",
        "attack_surface_audit",
        "cross_subsystem_analysis",
        "gcode_playground",
        "multi_emission_analysis",
    } <= names
