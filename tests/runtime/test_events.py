"""Tests for the event bus, events, and reporters (repro.runtime)."""

import io
import json

import pytest

from repro.runtime import (
    ConsoleProgressReporter,
    EpochProgress,
    EventBus,
    JsonlTraceWriter,
    PairFailed,
    PairTrained,
    TrainingFinished,
    TrainingStarted,
    read_trace,
)


def _sample_events():
    return [
        TrainingStarted(total_pairs=2, executor="thread", workers=2),
        EpochProgress(
            pair="F18|F1", iteration=50, total_iterations=100,
            d_loss=1.2, g_loss=0.8,
        ),
        PairTrained(
            pair="F18|F1", index=0, total_pairs=2, seconds=1.5,
            train_size=40, test_size=12, final_d_loss=1.3, final_g_loss=0.7,
        ),
        PairFailed(
            pair="F2|F3", index=1, total_pairs=2, seconds=0.1,
            error="Traceback ...\nDataError: not enough rows",
        ),
        TrainingFinished(trained=1, failed=1, seconds=1.7),
    ]


class TestEventBus:
    def test_emit_reaches_all_subscribers(self):
        bus = EventBus()
        seen_a, seen_b = [], []
        bus.subscribe(seen_a.append)
        bus.subscribe(seen_b.append)
        event = TrainingStarted(total_pairs=1, executor="serial", workers=1)
        bus.emit(event)
        assert seen_a == [event]
        assert seen_b == [event]

    def test_unsubscribe_stops_delivery(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        bus.unsubscribe(seen.append)
        bus.emit(TrainingFinished(trained=0, failed=0, seconds=0.0))
        assert seen == []
        assert len(bus) == 0

    def test_handler_errors_are_isolated(self):
        bus = EventBus()
        seen = []

        def broken(event):
            raise RuntimeError("reporter bug")

        bus.subscribe(broken)
        bus.subscribe(seen.append)
        event = TrainingFinished(trained=1, failed=0, seconds=0.5)
        bus.emit(event)
        assert seen == [event]
        assert len(bus.handler_errors) == 1

    def test_non_callable_handler_rejected(self):
        with pytest.raises(TypeError):
            EventBus().subscribe("not-a-function")


class TestEvents:
    def test_kind_and_to_dict(self):
        event = EpochProgress(
            pair="A|B", iteration=10, total_iterations=20,
            d_loss=1.0, g_loss=2.0,
        )
        data = event.to_dict()
        assert data["kind"] == "EpochProgress"
        assert data["pair"] == "A|B"
        assert data["iteration"] == 10
        assert "timestamp" in data

    def test_events_are_frozen(self):
        event = TrainingStarted(total_pairs=1, executor="serial", workers=1)
        with pytest.raises(AttributeError):
            event.total_pairs = 5


class TestJsonlTraceWriter:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "deep" / "trace.jsonl"
        with JsonlTraceWriter(path) as writer:
            for event in _sample_events():
                writer.handle(event)
            assert writer.events_written == 5
        rows = read_trace(path)
        assert [r["kind"] for r in rows] == [
            "TrainingStarted", "EpochProgress", "PairTrained",
            "PairFailed", "TrainingFinished",
        ]
        # Every line is standalone JSON.
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_lazy_open(self, tmp_path):
        path = tmp_path / "never.jsonl"
        writer = JsonlTraceWriter(path)
        writer.close()
        assert not path.exists()

    def test_as_bus_subscriber(self, tmp_path):
        bus = EventBus()
        with JsonlTraceWriter(tmp_path / "t.jsonl") as writer:
            bus.subscribe(writer.handle)
            bus.emit(TrainingFinished(trained=3, failed=0, seconds=9.0))
        rows = read_trace(tmp_path / "t.jsonl")
        assert rows[0]["trained"] == 3


class TestConsoleProgressReporter:
    def test_renders_all_event_kinds(self):
        stream = io.StringIO()
        reporter = ConsoleProgressReporter(stream)
        for event in _sample_events():
            reporter.handle(event)
        text = stream.getvalue()
        assert "training 2 flow pair(s)" in text
        assert "iter 50/100" in text
        assert "trained F18|F1" in text
        assert "FAILED F2|F3" in text
        assert "DataError: not enough rows" in text
        assert "1 trained, 1 failed" in text

    def test_epoch_lines_suppressible(self):
        stream = io.StringIO()
        reporter = ConsoleProgressReporter(stream, show_epochs=False)
        for event in _sample_events():
            reporter.handle(event)
        assert "iter 50/100" not in stream.getvalue()
