"""Tests for the executor abstraction (repro.runtime.executors)."""

import pytest

from repro.errors import ConfigurationError
from repro.runtime import (
    EXECUTORS,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    get_executor,
)


def _double(x):
    # Module-level so the process executor can pickle it.
    return x * 2


def _explode(x):
    raise ValueError(f"boom on {x}")


JOBS = [1, 2, 3, 4, 5]


class TestMapPairs:
    @pytest.mark.parametrize("executor_name", sorted(EXECUTORS))
    def test_results_in_job_order(self, executor_name):
        executor = get_executor(executor_name, workers=2)
        assert executor.map_pairs(_double, JOBS) == [2, 4, 6, 8, 10]

    @pytest.mark.parametrize("executor_name", sorted(EXECUTORS))
    def test_empty_jobs(self, executor_name):
        executor = get_executor(executor_name, workers=2)
        assert executor.map_pairs(_double, []) == []

    def test_serial_propagates_exceptions(self):
        with pytest.raises(ValueError, match="boom"):
            SerialExecutor().map_pairs(_explode, JOBS)

    def test_thread_propagates_exceptions(self):
        with pytest.raises(ValueError, match="boom"):
            ThreadExecutor(2).map_pairs(_explode, JOBS)


class TestResolution:
    def test_instance_passthrough(self):
        executor = ThreadExecutor(3)
        assert get_executor(executor) is executor

    def test_default_is_serial_for_one_worker(self):
        assert isinstance(get_executor(None, workers=1), SerialExecutor)
        assert isinstance(get_executor(None, workers=None), SerialExecutor)

    def test_default_is_process_for_many_workers(self):
        executor = get_executor(None, workers=4)
        assert isinstance(executor, ProcessExecutor)
        assert executor.workers == 4

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown executor"):
            get_executor("quantum")

    def test_bad_worker_counts_rejected(self):
        with pytest.raises(ConfigurationError):
            ThreadExecutor(0)
        with pytest.raises(ConfigurationError):
            ProcessExecutor(-1)

    def test_bad_start_method_rejected(self):
        with pytest.raises(ConfigurationError, match="start_method"):
            ProcessExecutor(1, start_method="telepathy")

    def test_duck_typed_executor_accepted(self):
        class Custom:
            def map_pairs(self, fn, jobs):
                return [fn(j) for j in jobs]

        custom = Custom()
        assert get_executor(custom) is custom

    def test_non_executor_rejected(self):
        with pytest.raises(ConfigurationError, match="map_pairs"):
            get_executor(42)

    def test_in_process_flags(self):
        assert SerialExecutor().in_process
        assert ThreadExecutor(2).in_process
        assert not ProcessExecutor(2).in_process
