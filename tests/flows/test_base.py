"""Tests for repro.flows.base."""

import pytest

from repro.errors import ConfigurationError
from repro.flows.base import EnergyForm, FlowKind, FlowPair, FlowSpec


def signal(name="F1", src="C1", dst="C2"):
    return FlowSpec(name, FlowKind.SIGNAL, src, dst)


def energy(name="F2", src="P1", dst="P2", form=EnergyForm.ACOUSTIC):
    return FlowSpec(name, FlowKind.ENERGY, src, dst, energy_form=form)


class TestFlowSpec:
    def test_signal_properties(self):
        f = signal()
        assert f.is_signal and not f.is_energy
        assert f.energy_form is None

    def test_energy_gets_default_form(self):
        f = FlowSpec("F9", FlowKind.ENERGY, "P1", "P2")
        assert f.energy_form is EnergyForm.MECHANICAL

    def test_signal_rejects_energy_form(self):
        with pytest.raises(ConfigurationError):
            FlowSpec("F1", FlowKind.SIGNAL, "a", "b", energy_form=EnergyForm.THERMAL)

    def test_rejects_self_loop(self):
        with pytest.raises(ConfigurationError, match="self-loop"):
            FlowSpec("F1", FlowKind.SIGNAL, "C1", "C1")

    def test_rejects_empty_name(self):
        with pytest.raises(ConfigurationError):
            FlowSpec("", FlowKind.SIGNAL, "a", "b")

    def test_str_contains_endpoints(self):
        text = str(energy())
        assert "P1" in text and "P2" in text

    def test_frozen(self):
        f = signal()
        with pytest.raises(AttributeError):
            f.name = "other"


class TestFlowPair:
    def test_cross_domain(self):
        pair = FlowPair(first=energy(), second=signal())
        assert pair.is_cross_domain

    def test_same_domain_not_cross(self):
        pair = FlowPair(first=signal("F1"), second=signal("F3", "C3", "C4"))
        assert not pair.is_cross_domain

    def test_names(self):
        pair = FlowPair(first=signal("Fa"), second=energy("Fb"))
        assert pair.names == ("Fa", "Fb")

    def test_rejects_identical_flows(self):
        f = signal()
        with pytest.raises(ConfigurationError):
            FlowPair(first=f, second=f)
