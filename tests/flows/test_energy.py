"""Tests for repro.flows.energy."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, DataError
from repro.flows.energy import EnergyFlowData


def make(n=1000, sr=1000.0):
    return EnergyFlowData(np.ones(n), sr, name="test")


class TestBasics:
    def test_duration(self):
        assert make(500, 1000.0).duration == pytest.approx(0.5)

    def test_rejects_bad_sample_rate(self):
        with pytest.raises(ConfigurationError):
            EnergyFlowData(np.ones(10), 0.0)

    def test_rejects_empty(self):
        with pytest.raises(DataError):
            EnergyFlowData(np.array([]), 100.0)

    def test_rms_energy(self):
        data = EnergyFlowData(np.full(100, 2.0), 100.0)
        assert data.rms() == pytest.approx(2.0)
        assert data.energy() == pytest.approx(4.0)


class TestSlicing:
    def test_slice_time(self):
        data = make(1000, 1000.0)
        part = data.slice_time(0.2, 0.5)
        assert len(part) == 300

    def test_slice_rejects_inverted(self):
        with pytest.raises(ConfigurationError):
            make().slice_time(0.5, 0.2)

    def test_slice_outside_raises(self):
        with pytest.raises(DataError):
            make(100, 1000.0).slice_time(5.0, 6.0)

    def test_segments(self):
        data = make(1000, 1000.0)
        parts = data.segments([0.0, 0.25, 0.5, 1.0])
        assert [len(p) for p in parts] == [250, 250, 500]

    def test_segments_requires_increasing(self):
        with pytest.raises(ConfigurationError):
            make().segments([0.0, 0.5, 0.3])

    def test_segments_minimum_two(self):
        with pytest.raises(ConfigurationError):
            make().segments([0.0])


class TestFeatures:
    def test_fx_only(self):
        data = make(100, 100.0)
        out = data.features(lambda s: np.array([s.sum(), s.mean()]))
        np.testing.assert_allclose(out, [100.0, 1.0])

    def test_fx_fy_chain(self):
        data = make(100, 100.0)
        out = data.features(
            lambda s: np.array([1.0, 2.0, 3.0]), f_y=lambda x: x[:2]
        )
        np.testing.assert_allclose(out, [1.0, 2.0])
