"""Tests for repro.flows.signal."""

import numpy as np
import pytest

from repro.errors import DataError
from repro.flows.signal import SignalFlowData


class TestSignalFlowData:
    def test_rejects_empty(self):
        with pytest.raises(DataError):
            SignalFlowData([])

    def test_alphabet_and_counts(self):
        data = SignalFlowData(["a", "b", "a", "c", "a"])
        assert data.n_symbols == 3
        assert data.event_probability("a") == pytest.approx(0.6)
        assert data.event_probability("z") == 0.0

    def test_pmf_sums_to_one(self):
        data = SignalFlowData(list("aabbbcc"))
        assert sum(data.pmf().values()) == pytest.approx(1.0)

    def test_entropy_uniform(self):
        data = SignalFlowData(["x", "y", "x", "y"])
        assert data.entropy() == pytest.approx(1.0)

    def test_entropy_degenerate_zero(self):
        assert SignalFlowData(["k"] * 10).entropy() == pytest.approx(0.0)

    def test_sample_distribution(self):
        data = SignalFlowData(["a"] * 90 + ["b"] * 10)
        draws = data.sample(2000, seed=0)
        frac_a = draws.count("a") / len(draws)
        assert 0.85 < frac_a < 0.95

    def test_sample_deterministic(self):
        data = SignalFlowData(list("abc") * 5)
        assert data.sample(10, seed=3) == data.sample(10, seed=3)

    def test_indices(self):
        data = SignalFlowData(["a", "b", "a"])
        np.testing.assert_array_equal(data.indices("a"), [0, 2])

    def test_hashable_tuple_symbols(self):
        data = SignalFlowData([(1, 0, 0), (0, 1, 0), (1, 0, 0)])
        assert data.event_probability((1, 0, 0)) == pytest.approx(2 / 3)
