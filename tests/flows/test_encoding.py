"""Tests for repro.flows.encoding (incl. hypothesis round-trips)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError, DataError
from repro.flows.encoding import (
    CombinationEncoder,
    SingleMotorEncoder,
    condition_label,
)


class TestSingleMotor:
    def test_paper_encodings(self):
        enc = SingleMotorEncoder()
        np.testing.assert_array_equal(enc.encode({"X"}), [1, 0, 0])
        np.testing.assert_array_equal(enc.encode({"Y"}), [0, 1, 0])
        np.testing.assert_array_equal(enc.encode({"Z"}), [0, 0, 1])

    def test_decode_roundtrip(self):
        enc = SingleMotorEncoder()
        for axis in "XYZ":
            assert enc.decode(enc.encode({axis})) == frozenset({axis})

    def test_rejects_multi_axis(self):
        with pytest.raises(DataError):
            SingleMotorEncoder().encode({"X", "Y"})

    def test_rejects_empty(self):
        with pytest.raises(DataError):
            SingleMotorEncoder().encode(set())

    def test_rejects_unknown_axis(self):
        with pytest.raises(DataError):
            SingleMotorEncoder().encode({"Q"})

    def test_decode_rejects_invalid_vector(self):
        enc = SingleMotorEncoder()
        with pytest.raises(DataError):
            enc.decode([1.0, 1.0, 0.0])
        with pytest.raises(DataError):
            enc.decode([0.5, 0.5, 0.0])

    def test_condition_names(self):
        enc = SingleMotorEncoder()
        assert enc.condition_name({"X"}) == "Cond1"
        assert enc.condition_name({"Z"}) == "Cond3"

    def test_labels_order(self):
        enc = SingleMotorEncoder()
        assert enc.labels() == [frozenset("X"), frozenset("Y"), frozenset("Z")]

    def test_encode_many(self):
        enc = SingleMotorEncoder()
        out = enc.encode_many([{"X"}, {"Z"}])
        assert out.shape == (2, 3)

    def test_rejects_duplicate_axes(self):
        with pytest.raises(ConfigurationError):
            SingleMotorEncoder(axes=("X", "X"))


class TestCombination:
    def test_size_is_2_pow_n(self):
        assert CombinationEncoder().size == 8
        assert CombinationEncoder(axes=("A", "B")).size == 4

    def test_idle_slot(self):
        enc = CombinationEncoder()
        vec = enc.encode(set())
        assert vec[0] == 1.0 and vec.sum() == 1.0

    def test_multi_axis_encodable(self):
        enc = CombinationEncoder()
        vec = enc.encode({"X", "Y"})
        assert vec.sum() == 1.0
        assert enc.decode(vec) == frozenset({"X", "Y"})

    def test_rejects_unknown(self):
        with pytest.raises(DataError):
            CombinationEncoder().encode({"W"})

    @given(
        st.sets(st.sampled_from(["X", "Y", "Z"]), max_size=3)
    )
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, active):
        enc = CombinationEncoder()
        assert enc.decode(enc.encode(active)) == frozenset(active)

    def test_all_labels_distinct_encodings(self):
        enc = CombinationEncoder()
        encoded = [tuple(enc.encode(lbl)) for lbl in enc.labels()]
        assert len(set(encoded)) == enc.size


class TestConditionLabel:
    def test_idle(self):
        assert condition_label(set()) == "idle"

    def test_sorted_join(self):
        assert condition_label({"Y", "X"}) == "X+Y"
