"""Tests for repro.flows.io."""

import numpy as np
import pytest

from repro.errors import SerializationError
from repro.flows.io import load_dataset, save_dataset


class TestRoundTrip:
    def test_preserves_everything(self, toy_dataset, tmp_path):
        path = save_dataset(toy_dataset, tmp_path / "ds.npz")
        back = load_dataset(path)
        np.testing.assert_array_equal(back.features, toy_dataset.features)
        np.testing.assert_array_equal(back.conditions, toy_dataset.conditions)
        assert back.name == toy_dataset.name

    def test_creates_dirs(self, toy_dataset, tmp_path):
        path = save_dataset(toy_dataset, tmp_path / "x" / "y" / "ds.npz")
        assert path.exists()


class TestFailures:
    def test_missing_file(self, tmp_path):
        with pytest.raises(SerializationError, match="no such"):
            load_dataset(tmp_path / "absent.npz")

    def test_garbage_file(self, tmp_path):
        path = tmp_path / "bad.npz"
        path.write_bytes(b"not an npz")
        with pytest.raises(SerializationError):
            load_dataset(path)
