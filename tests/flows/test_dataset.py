"""Tests for repro.flows.dataset."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DataError, ShapeError
from repro.flows.dataset import FlowPairDataset


def make(n=30, d=5, c=2, seed=0):
    rng = np.random.default_rng(seed)
    features = rng.random((n, d))
    conds = np.zeros((n, c))
    conds[np.arange(n), rng.integers(0, c, n)] = 1.0
    return FlowPairDataset(features, conds)


class TestConstruction:
    def test_dims(self):
        ds = make(20, 7, 3)
        assert len(ds) == 20
        assert ds.feature_dim == 7
        assert ds.condition_dim == 3

    def test_misaligned_raises(self):
        with pytest.raises(ShapeError, match="misaligned"):
            FlowPairDataset(np.ones((5, 2)), np.ones((4, 2)))


class TestConditions:
    def test_unique_conditions(self):
        ds = make(50, 4, 3, seed=1)
        uniq = ds.unique_conditions()
        assert uniq.shape[1] == 3
        assert 1 <= uniq.shape[0] <= 3

    def test_mask_and_subset(self):
        ds = make(40, 3, 2, seed=2)
        cond = ds.unique_conditions()[0]
        sub = ds.subset_for_condition(cond)
        assert np.all(np.isclose(sub.conditions, cond[None, :]))
        assert len(sub) == ds.mask_for_condition(cond).sum()

    def test_subset_missing_condition_raises(self):
        ds = make(10, 3, 2)
        with pytest.raises(DataError):
            ds.subset_for_condition(np.array([0.5, 0.5]))

    def test_mask_wrong_width_raises(self):
        with pytest.raises(ShapeError):
            make().mask_for_condition([1.0])

    def test_condition_counts_total(self):
        ds = make(25, 3, 2, seed=3)
        total = sum(cnt for _c, cnt in ds.condition_counts())
        assert total == 25


class TestSampling:
    def test_batch_shapes(self):
        ds = make()
        x, c = ds.sample_batch(8, seed=0)
        assert x.shape == (8, ds.feature_dim)
        assert c.shape == (8, ds.condition_dim)

    def test_batch_alignment_preserved(self):
        # Features encode their condition: feature[0] = argmax(cond).
        n = 50
        conds = np.zeros((n, 2))
        conds[: n // 2, 0] = 1.0
        conds[n // 2 :, 1] = 1.0
        feats = conds.argmax(axis=1).astype(float)[:, None]
        ds = FlowPairDataset(feats, conds)
        x, c = ds.sample_batch(20, seed=1)
        np.testing.assert_array_equal(x.ravel(), c.argmax(axis=1))

    def test_batch_deterministic(self):
        ds = make()
        x1, _ = ds.sample_batch(5, seed=9)
        x2, _ = ds.sample_batch(5, seed=9)
        np.testing.assert_array_equal(x1, x2)

    def test_rejects_nonpositive_batch(self):
        with pytest.raises(DataError):
            make().sample_batch(0)


class TestSplit:
    def test_sizes(self):
        ds = make(40, 3, 2, seed=5)
        train, test = ds.split(0.25, seed=0)
        assert len(train) + len(test) == 40
        assert len(test) >= 2  # At least one per condition.

    def test_stratified_covers_all_conditions(self):
        ds = make(60, 3, 3, seed=6)
        train, test = ds.split(0.3, seed=1)
        assert len(test.unique_conditions()) == len(ds.unique_conditions())
        assert len(train.unique_conditions()) == len(ds.unique_conditions())

    def test_split_rejects_bad_fraction(self):
        with pytest.raises(DataError):
            make().split(0.0)

    def test_tiny_condition_raises(self):
        feats = np.random.default_rng(0).random((3, 2))
        conds = np.array([[1.0, 0.0]] * 3)
        ds = FlowPairDataset(feats, conds)
        # One condition with 3 rows and test_fraction 0.5 -> test=2, train=1: fine.
        # With only 1 row it must fail:
        ds1 = FlowPairDataset(feats[:1], conds[:1])
        with pytest.raises(DataError):
            ds1.split(0.5)

    @given(st.integers(min_value=8, max_value=64), st.floats(min_value=0.1, max_value=0.5))
    @settings(max_examples=20, deadline=None)
    def test_split_partition_property(self, n, frac):
        ds = make(n, 3, 2, seed=n)
        train, test = ds.split(frac, seed=0)
        assert len(train) + len(test) == n
        # No sample duplicated across the split: counts per unique row match.
        merged = np.vstack([train.features, test.features])
        assert merged.shape == ds.features.shape


class TestTakeMerge:
    def test_take_size(self):
        sub = make(30).take(10, seed=0)
        assert len(sub) == 10

    def test_take_without_replacement(self):
        ds = make(15, 2, 2, seed=8)
        sub = ds.take(15, seed=0)
        # Taking everything returns a permutation of the rows.
        assert sorted(map(tuple, sub.features)) == sorted(map(tuple, ds.features))

    def test_take_bounds(self):
        with pytest.raises(DataError):
            make(10).take(11)

    def test_merge(self):
        a, b = make(10, 3, 2, seed=1), make(6, 3, 2, seed=2)
        merged = a.merge(b)
        assert len(merged) == 16

    def test_merge_dim_mismatch(self):
        with pytest.raises(ShapeError):
            make(5, 3, 2).merge(make(5, 4, 2))

    def test_shuffled_preserves_rows(self):
        ds = make(12, 2, 2, seed=3)
        sh = ds.shuffled(seed=1)
        assert sorted(map(tuple, sh.features)) == sorted(map(tuple, ds.features))
