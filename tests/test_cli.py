"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_record_args(self):
        args = build_parser().parse_args(
            ["record", "--out", "x.npz", "--moves", "10", "--seed", "3"]
        )
        assert args.moves == 10
        assert args.seed == 3

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestGraphCommand:
    def test_prints_summary(self, capsys):
        assert main(["graph"]) == 0
        out = capsys.readouterr().out
        assert "13 nodes" in out
        assert "F1:" in out

    def test_dot_flag(self, capsys):
        assert main(["graph", "--dot"]) == 0
        assert "digraph" in capsys.readouterr().out


class TestPipelineCommands:
    @pytest.fixture(scope="class")
    def workdir(self, tmp_path_factory):
        return tmp_path_factory.mktemp("cli")

    def test_record_train_analyze_table1(self, workdir, capsys):
        ds = workdir / "ds.npz"
        model = workdir / "model"
        assert main(
            ["record", "--out", str(ds), "--moves", "8", "--seed", "1",
             "--bins", "40"]
        ) == 0
        assert ds.exists()

        assert main(
            ["train", "--dataset", str(ds), "--out", str(model),
             "--iterations", "120", "--seed", "1"]
        ) == 0
        assert (model / "cgan.json").exists()
        out = capsys.readouterr().out
        assert "final losses" in out

        assert main(
            ["analyze", "--dataset", str(ds), "--model", str(model),
             "--g-size", "60", "--seed", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "VERDICT" in out

        assert main(
            ["table1", "--dataset", str(ds), "--model", str(model),
             "--g-size", "60", "--seed", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "h=0.2 Cor" in out


class TestDetectCommand:
    def test_detect_reports_roc(self, tmp_path, capsys):
        ds = tmp_path / "ds.npz"
        model = tmp_path / "model"
        assert main(
            ["record", "--out", str(ds), "--moves", "8", "--seed", "2",
             "--bins", "40"]
        ) == 0
        assert main(
            ["train", "--dataset", str(ds), "--out", str(model),
             "--iterations", "150", "--seed", "2"]
        ) == 0
        capsys.readouterr()
        assert main(
            ["detect", "--dataset", str(ds), "--model", str(model),
             "--g-size", "60", "--seed", "2", "--top-features", "10"]
        ) == 0
        out = capsys.readouterr().out
        assert "AUC" in out
        assert "FPR budget" in out


class TestExperimentCommand:
    def test_experiment_writes_artifacts(self, tmp_path, capsys):
        out = tmp_path / "exp"
        assert main(
            ["experiment", "--out", str(out), "--moves", "6",
             "--iterations", "80", "--seed", "4"]
        ) == 0
        text = capsys.readouterr().out
        assert "attack_accuracy" in text
        assert (out / "summary.json").exists()
        assert (out / "report.txt").exists()
        assert (out / "manifest.json").exists()

    def test_missing_out_is_an_error(self, capsys):
        assert main(["experiment"]) == 2
        assert "--out is required" in capsys.readouterr().err

    def test_resume_and_fresh_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["experiment", "--out", "x", "--resume", "--fresh"]
            )

    def test_resume_defaults_on(self):
        args = build_parser().parse_args(["experiment", "--out", "x"])
        assert args.resume is True
        args = build_parser().parse_args(["experiment", "--out", "x", "--fresh"])
        assert args.resume is False


class TestExperimentStatusAndInvalidate:
    @pytest.fixture(scope="class")
    def rundir(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("exp-status") / "run"
        assert main(
            ["experiment", "--out", str(out), "--moves", "6",
             "--iterations", "60", "--seed", "4"]
        ) == 0
        return out

    def test_status_lists_stages(self, rundir, capsys):
        assert main(["experiment", "status", str(rundir)]) == 0
        out = capsys.readouterr().out
        for stage in ("record", "graph", "train[F18|F1]",
                      "analyze[F18|F1]", "report"):
            assert stage in out
        assert "STALE" not in out

    def test_status_empty_dir(self, tmp_path, capsys):
        assert main(["experiment", "status", str(tmp_path)]) == 0
        assert "no completed stages" in capsys.readouterr().out

    def test_invalidate_then_resume_reruns_stage(self, rundir, capsys):
        assert main(["experiment", "invalidate", str(rundir), "report"]) == 0
        assert "invalidated" in capsys.readouterr().out
        assert main(["experiment", "status", str(rundir)]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert not any(line.startswith("report ") for line in lines)

        assert main(
            ["experiment", "--out", str(rundir), "--moves", "6",
             "--iterations", "60", "--seed", "4"]
        ) == 0
        capsys.readouterr()
        assert main(["experiment", "status", str(rundir)]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert any(line.startswith("report ") for line in lines)

    def test_invalidate_unknown_stage_fails(self, rundir, capsys):
        assert main(["experiment", "invalidate", str(rundir), "bogus"]) == 1
        assert "bogus" in capsys.readouterr().err


class TestFeatureCacheFlag:
    def test_record_populates_and_reuses_cache(self, tmp_path, capsys):
        from repro.dsp.cache import FeatureCache

        cache_dir = tmp_path / "fc"
        for name in ("a.npz", "b.npz"):
            assert main(
                ["record", "--out", str(tmp_path / name), "--moves", "6",
                 "--seed", "5", "--bins", "30",
                 "--feature-cache", str(cache_dir)]
            ) == 0
        # Identical seed/config => second run hits the cache entry the
        # first run wrote.
        assert len(FeatureCache(cache_dir)) == 1

        import numpy as np

        a = np.load(tmp_path / "a.npz")
        b = np.load(tmp_path / "b.npz")
        np.testing.assert_array_equal(a["features"], b["features"])


class TestProfileFlag:
    def test_experiment_profile_dump(self, tmp_path, capsys):
        import pstats

        out = tmp_path / "exp"
        assert main(
            ["experiment", "--out", str(out), "--moves", "6",
             "--iterations", "60", "--seed", "4", "--profile"]
        ) == 0
        text = capsys.readouterr().out
        assert "profile (pstats) written" in text
        stats = pstats.Stats(str(out / "profile.pstats"))
        assert stats.total_calls > 0

    def test_analyze_profile_dump(self, tmp_path, capsys):
        import pstats

        ds = tmp_path / "ds.npz"
        model = tmp_path / "model"
        assert main(
            ["record", "--out", str(ds), "--moves", "8", "--seed", "1",
             "--bins", "40"]
        ) == 0
        assert main(
            ["train", "--dataset", str(ds), "--out", str(model),
             "--iterations", "100", "--seed", "1"]
        ) == 0
        capsys.readouterr()
        assert main(
            ["analyze", "--dataset", str(ds), "--model", str(model),
             "--g-size", "60", "--seed", "1", "--profile"]
        ) == 0
        out = capsys.readouterr().out
        assert "VERDICT" in out
        stats = pstats.Stats(str(model / "analyze_profile.pstats"))
        assert stats.total_calls > 0


class TestStreamCommand:
    COMMON = [
        "stream", "--synthetic", "--moves", "2", "--seed", "20190325",
        "--g-size", "32", "--rate", "max",
    ]

    def test_requires_exactly_one_source(self, capsys):
        assert main(["stream"]) == 2
        assert "exactly one of --wav or --synthetic" in capsys.readouterr().err

    def test_synthetic_attack_run_detects(self, tmp_path, capsys):
        metrics_path = tmp_path / "metrics.json"
        rc = main(
            [*self.COMMON, "--attack-spans", "2", "--expect-detection",
             "--max-dropped", "0", "--metrics-out", str(metrics_path)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "windows scored" in out
        assert "alarm windows" in out

        import json

        summary = json.loads(metrics_path.read_text())
        assert summary["n_alarms"] >= 1
        assert summary["windows_dropped"] == 0
        assert summary["attacked_spans"]
        assert summary["windows_per_second"] > 0
        assert "p95_ms" in summary["scoring_latency"]

    def test_clean_run_is_quiet(self, capsys):
        rc = main([*self.COMMON, "--attack-spans", "0"])
        assert rc == 0
        assert "0 alarm(s)" in capsys.readouterr().out

    def test_expect_detection_fails_on_clean_run(self, capsys):
        rc = main([*self.COMMON, "--attack-spans", "0", "--expect-detection"])
        assert rc == 1
        assert "no alarm fired" in capsys.readouterr().err

    def test_wav_roundtrip(self, tmp_path, capsys):
        import json

        import numpy as np

        from repro.flows.energy import EnergyFlowData
        from repro.manufacturing.wav import write_wav
        from repro.streaming import synthetic_printer_stream

        scenario = synthetic_printer_stream(n_moves_per_axis=2, seed=20190325)
        wav_path = tmp_path / "trace.wav"
        write_wav(
            EnergyFlowData(scenario.samples, scenario.sample_rate),
            wav_path,
        )
        claims_path = tmp_path / "claims.json"
        claims_path.write_text(json.dumps({
            "boundaries": [int(b) for b in scenario.claims.boundaries],
            "span_conditions": [int(s) for s in scenario.claims.span_conditions],
            "conditions": np.asarray(scenario.claims.conditions).tolist(),
        }))
        rc = main(
            ["stream", "--wav", str(wav_path), "--claims", str(claims_path),
             "--g-size", "32", "--seed", "20190325", "--max-dropped", "0"]
        )
        assert rc == 0
        assert "windows scored" in capsys.readouterr().out

    def test_wav_claims_missing_key_is_loud(self, tmp_path):
        import json

        wav_path = tmp_path / "missing.wav"
        wav_path.write_bytes(b"")
        claims_path = tmp_path / "claims.json"
        claims_path.write_text(json.dumps({"boundaries": [0]}))
        with pytest.raises(SystemExit):
            from repro.cli import _load_claim_track

            _load_claim_track(claims_path)
