"""Capacity of the generated-sample cache is config, never semantics.

Satellite of the staged-pipeline work: ``GANSecConfig.sample_cache_entries``
bounds the LRU of generated condition samples that repeated ``analyze()``
calls share.  An over-capacity sweep (capacity 1, three conditions —
every access evicts) must produce bitwise-identical likelihood tables to
a sweep that fits entirely in cache.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.manufacturing import GCODE_FLOW, printer_architecture
from repro.pipeline import CGANConfig, GANSec, GANSecConfig
from repro.runtime.events import AnalysisCompleted, EventBus

H_SWEEP = (0.2, 0.4, 0.8)


def _make_pipeline(entries):
    return GANSec(
        printer_architecture(),
        GANSecConfig(
            cgan=CGANConfig(iterations=150), seed=0, sample_cache_entries=entries
        ),
    )


def _sweep(pipe, case_dataset):
    """Train once, then analyze across H_SWEEP; returns tables + hits."""
    pipe.train_models({("F18", GCODE_FLOW): case_dataset})
    tables = []
    hits = 0
    for h in H_SWEEP:
        pipe.config.analysis.h = h
        bus = EventBus()
        events = []
        bus.subscribe(events.append)
        (report,) = pipe.analyze(bus=bus).values()
        tables.append(
            (report.likelihood.avg_correct.copy(),
             report.likelihood.avg_incorrect.copy())
        )
        hits += sum(
            e.cache_hits for e in events if isinstance(e, AnalysisCompleted)
        )
    return tables, hits


class TestCapacityConfig:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="sample_cache_entries"):
            GANSecConfig(sample_cache_entries=0)

    def test_over_capacity_sweep_is_bitwise_identical(self, case_dataset):
        cached, cached_hits = _sweep(_make_pipeline(64), case_dataset)
        thrashed, thrashed_hits = _sweep(_make_pipeline(1), case_dataset)

        # Ample capacity reuses every condition's draw after the first
        # h (3 conditions x 2 later sweeps); capacity 1 with 3
        # conditions keeps evicting, so most accesses miss.
        assert cached_hits == 6
        assert thrashed_hits < cached_hits

        for (c_cor, c_inc), (t_cor, t_inc) in zip(cached, thrashed):
            np.testing.assert_array_equal(c_cor, t_cor)
            np.testing.assert_array_equal(c_inc, t_inc)
