"""Tests for repro.pipeline.gansec (the Figure 4 end-to-end driver)."""

import pytest

from repro.errors import ConfigurationError, DataError, NotFittedError
from repro.manufacturing import GCODE_FLOW, printer_architecture
from repro.pipeline import CGANConfig, GANSec, GANSecConfig


@pytest.fixture(scope="module")
def fast_config():
    return GANSecConfig(cgan=CGANConfig(iterations=150), seed=0)


@pytest.fixture(scope="module")
def pipeline_run(case_dataset, fast_config):
    pipe = GANSec(printer_architecture(), fast_config)
    data = {("F18", GCODE_FLOW): case_dataset}
    reports = pipe.run(data)
    return pipe, reports


class TestGraphStep:
    def test_graph_generated_from_data_keys(self, case_dataset, fast_config):
        pipe = GANSec(printer_architecture(), fast_config)
        res = pipe.generate_graph({("F18", GCODE_FLOW): case_dataset})
        assert res.graph.number_of_nodes() == 13
        trainable = {fp.names for fp in res.trainable_pairs}
        assert (GCODE_FLOW, "F18") in trainable


class TestTrainStep:
    def test_rejects_unknown_pair_dataset(self, case_dataset, fast_config):
        pipe = GANSec(printer_architecture(), fast_config)
        with pytest.raises(DataError):
            pipe.train_models(
                {("F18", GCODE_FLOW): case_dataset},
                pairs=[("F2", "F3")],
            )

    def test_rejects_pruned_pair(self, case_dataset, fast_config):
        pipe = GANSec(printer_architecture(), fast_config)
        # Graph generated when only F18/F1 have data: the thermal pair
        # (F19, F20) is pruned, so a later attempt to train it must fail.
        pipe.generate_graph({("F18", GCODE_FLOW): case_dataset})
        with pytest.raises(ConfigurationError, match="pruned"):
            pipe.train_models({("F19", "F20"): case_dataset})

    def test_split_sizes(self, pipeline_run, case_dataset):
        pipe, _ = pipeline_run
        model = pipe.models[("F18", GCODE_FLOW)]
        assert len(model.train_set) + len(model.test_set) == len(case_dataset)
        assert model.cgan.is_trained


class TestRunStageEvents:
    def test_run_emits_stage_lifecycle(self, case_dataset, fast_config):
        from repro.runtime.events import EventBus, StageCompleted, StageStarted

        bus = EventBus()
        events = []
        bus.subscribe(events.append)
        pipe = GANSec(printer_architecture(), fast_config)
        reports = pipe.run({("F18", GCODE_FLOW): case_dataset}, bus=bus)
        started = [e.stage for e in events if isinstance(e, StageStarted)]
        completed = [e.stage for e in events if isinstance(e, StageCompleted)]
        assert started == ["graph", "train", "analyze"]
        assert completed == started
        assert ("F18", GCODE_FLOW) in reports


class TestAnalyzeStep:
    def test_reports_produced(self, pipeline_run):
        _pipe, reports = pipeline_run
        report = reports[("F18", GCODE_FLOW)]
        assert report.leakage.accuracy >= 0.0
        assert "VERDICT" in report.to_text()

    def test_analyze_before_train_raises(self, fast_config):
        pipe = GANSec(printer_architecture(), fast_config)
        with pytest.raises(NotFittedError):
            pipe.analyze()

    def test_analyze_unknown_pair_raises(self, pipeline_run):
        pipe, _ = pipeline_run
        with pytest.raises(DataError):
            pipe.analyze(("F14", GCODE_FLOW))

    def test_summary_text(self, pipeline_run):
        pipe, _ = pipeline_run
        text = pipe.summary()
        assert "trainable" in text
        assert "analyzed" in text
