"""Tests for GANSec pipeline save/load."""

import numpy as np
import pytest

from repro.errors import NotFittedError, SerializationError
from repro.manufacturing import GCODE_FLOW, printer_architecture
from repro.pipeline import CGANConfig, GANSec, GANSecConfig


@pytest.fixture(scope="module")
def trained_pipeline(case_dataset):
    pipe = GANSec(
        printer_architecture(),
        GANSecConfig(cgan=CGANConfig(iterations=100), seed=1),
    )
    pipe.run({("F18", GCODE_FLOW): case_dataset})
    return pipe


class TestSaveLoad:
    def test_roundtrip_generator_outputs(self, trained_pipeline, tmp_path):
        trained_pipeline.save(tmp_path / "models")

        fresh = GANSec(printer_architecture(), GANSecConfig(seed=2))
        loaded = fresh.load(tmp_path / "models")
        assert ("F18", GCODE_FLOW) in loaded

        original = trained_pipeline.models[("F18", GCODE_FLOW)]
        restored = fresh.models[("F18", GCODE_FLOW)]
        cond = original.test_set.unique_conditions()[0]
        np.testing.assert_allclose(
            original.cgan.generate_for_condition(cond, 4, seed=9),
            restored.cgan.generate_for_condition(cond, 4, seed=9),
        )
        np.testing.assert_array_equal(
            original.test_set.features, restored.test_set.features
        )

    def test_loaded_pipeline_can_analyze(self, trained_pipeline, tmp_path):
        trained_pipeline.save(tmp_path / "m2")
        fresh = GANSec(printer_architecture(), GANSecConfig(seed=3))
        fresh.load(tmp_path / "m2")
        reports = fresh.analyze()
        assert ("F18", GCODE_FLOW) in reports

    def test_save_without_models_raises(self, tmp_path):
        pipe = GANSec(printer_architecture(), GANSecConfig(seed=0))
        with pytest.raises(NotFittedError):
            pipe.save(tmp_path / "empty")

    def test_load_missing_directory(self, tmp_path):
        pipe = GANSec(printer_architecture(), GANSecConfig(seed=0))
        with pytest.raises(SerializationError):
            pipe.load(tmp_path / "absent")

    def test_load_empty_directory(self, tmp_path):
        (tmp_path / "hollow").mkdir()
        pipe = GANSec(printer_architecture(), GANSecConfig(seed=0))
        with pytest.raises(SerializationError, match="no pair models"):
            pipe.load(tmp_path / "hollow")
