"""Tests for GANSec pipeline save/load."""

import numpy as np
import pytest

from repro.errors import NotFittedError, SerializationError
from repro.flows.dataset import FlowPairDataset
from repro.gan.cgan import ConditionalGAN
from repro.manufacturing import GCODE_FLOW, printer_architecture
from repro.pipeline import CGANConfig, FlowPairKey, GANSec, GANSecConfig
from repro.pipeline.gansec import PairModel


@pytest.fixture(scope="module")
def trained_pipeline(case_dataset):
    pipe = GANSec(
        printer_architecture(),
        GANSecConfig(cgan=CGANConfig(iterations=100), seed=1),
    )
    pipe.run({("F18", GCODE_FLOW): case_dataset})
    return pipe


class TestSaveLoad:
    def test_roundtrip_generator_outputs(self, trained_pipeline, tmp_path):
        trained_pipeline.save(tmp_path / "models")

        fresh = GANSec(printer_architecture(), GANSecConfig(seed=2))
        loaded = fresh.load(tmp_path / "models")
        assert ("F18", GCODE_FLOW) in loaded

        original = trained_pipeline.models[("F18", GCODE_FLOW)]
        restored = fresh.models[("F18", GCODE_FLOW)]
        cond = original.test_set.unique_conditions()[0]
        np.testing.assert_allclose(
            original.cgan.generate_for_condition(cond, 4, seed=9),
            restored.cgan.generate_for_condition(cond, 4, seed=9),
        )
        np.testing.assert_array_equal(
            original.test_set.features, restored.test_set.features
        )

    def test_loaded_pipeline_can_analyze(self, trained_pipeline, tmp_path):
        trained_pipeline.save(tmp_path / "m2")
        fresh = GANSec(printer_architecture(), GANSecConfig(seed=3))
        fresh.load(tmp_path / "m2")
        reports = fresh.analyze()
        assert ("F18", GCODE_FLOW) in reports

    def test_save_without_models_raises(self, tmp_path):
        pipe = GANSec(printer_architecture(), GANSecConfig(seed=0))
        with pytest.raises(NotFittedError):
            pipe.save(tmp_path / "empty")

    def test_load_missing_directory(self, tmp_path):
        pipe = GANSec(printer_architecture(), GANSecConfig(seed=0))
        with pytest.raises(SerializationError):
            pipe.load(tmp_path / "absent")

    def test_load_empty_directory(self, tmp_path):
        (tmp_path / "hollow").mkdir()
        pipe = GANSec(printer_architecture(), GANSecConfig(seed=0))
        with pytest.raises(SerializationError, match="no pair models"):
            pipe.load(tmp_path / "hollow")


def _tiny_pair_model(key) -> PairModel:
    rng = np.random.default_rng(0)
    dataset = FlowPairDataset(
        rng.uniform(size=(24, 3)), np.tile(np.eye(2), (12, 1)), name=str(key)
    )
    train, test = dataset.split(0.25, seed=0)
    cgan = ConditionalGAN(3, 2, noise_dim=4, seed=0)
    cgan.train(train, iterations=10, batch_size=8)
    return PairModel(pair_names=key, cgan=cgan, train_set=train, test_set=test)


class TestHostilePairNames:
    """Pair identity must survive names the directory layout can't encode.

    The legacy layout encoded names as ``<first>__<second>`` and split
    on the first ``__`` at load time — any flow name containing ``__``
    (or path metacharacters) came back corrupted.  Identity now lives
    in a per-pair manifest.json.
    """

    HOSTILE_KEYS = [
        FlowPairKey("A__B", "C"),          # legacy separator inside a name
        FlowPairKey("left__", "__right"),  # separator at the edges
        FlowPairKey("with/slash", "dot..dot"),
        FlowPairKey("F18", "F1"),          # plain names keep working too
    ]

    def _pipeline_with_models(self):
        pipe = GANSec(printer_architecture(), GANSecConfig(seed=0))
        for key in self.HOSTILE_KEYS:
            pipe.models[key] = _tiny_pair_model(key)
        return pipe

    def test_roundtrip_preserves_exact_names(self, tmp_path):
        pipe = self._pipeline_with_models()
        pipe.save(tmp_path / "models")

        fresh = GANSec(printer_architecture(), GANSecConfig(seed=1))
        loaded = fresh.load(tmp_path / "models")
        assert set(loaded) == set(self.HOSTILE_KEYS)
        for key in self.HOSTILE_KEYS:
            original = pipe.models[key]
            restored = fresh.models[key]
            assert restored.pair_names == key
            cond = original.test_set.unique_conditions()[0]
            np.testing.assert_allclose(
                original.cgan.generate_for_condition(cond, 3, seed=5),
                restored.cgan.generate_for_condition(cond, 3, seed=5),
            )

    def test_manifest_written_per_pair(self, tmp_path):
        pipe = self._pipeline_with_models()
        pipe.save(tmp_path / "models")
        pair_dirs = [p for p in (tmp_path / "models").iterdir() if p.is_dir()]
        assert len(pair_dirs) == len(self.HOSTILE_KEYS)
        for pair_dir in pair_dirs:
            assert (pair_dir / "manifest.json").exists()

    def test_hostile_names_never_leak_into_paths(self, tmp_path):
        pipe = self._pipeline_with_models()
        pipe.save(tmp_path / "models")
        for pair_dir in (tmp_path / "models").iterdir():
            assert "/" not in pair_dir.name
            assert ".." not in pair_dir.name

    def test_legacy_layout_still_loads(self, tmp_path):
        """Directories written before manifests (name-encoded) load fine."""
        model = _tiny_pair_model(FlowPairKey("F18", "F1"))
        legacy_dir = tmp_path / "models" / "F18__F1"

        from repro.flows.io import save_dataset
        from repro.gan.serialization import save_cgan

        save_cgan(model.cgan, legacy_dir / "cgan")
        save_dataset(model.train_set, legacy_dir / "train.npz")
        save_dataset(model.test_set, legacy_dir / "test.npz")

        pipe = GANSec(printer_architecture(), GANSecConfig(seed=0))
        loaded = pipe.load(tmp_path / "models")
        assert FlowPairKey("F18", "F1") in loaded

    def test_corrupt_manifest_rejected(self, tmp_path):
        pipe = self._pipeline_with_models()
        pipe.save(tmp_path / "models")
        victim = next(
            p for p in (tmp_path / "models").iterdir() if p.is_dir()
        )
        (victim / "manifest.json").write_text("{not json")
        fresh = GANSec(printer_architecture(), GANSecConfig(seed=0))
        with pytest.raises(SerializationError, match="manifest"):
            fresh.load(tmp_path / "models")
