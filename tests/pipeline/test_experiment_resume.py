"""Resume / interruption / corruption tests for the staged experiment.

The contract under test: whatever happens to a run directory —
interrupted training, truncated manifest, deleted or tampered artifacts
— a re-run never crashes, never silently reuses bad state, and always
converges to artifacts byte-identical to a single uninterrupted run.
"""

import json
import shutil

import pytest

import repro.gan.serialization as gan_serialization
from repro.pipeline.experiment import (
    ExperimentConfig,
    experiment_status,
    invalidate_stage,
    run_experiment,
)
from repro.runtime.events import EventBus, StageSkipped, StageStarted

# End-to-end interrupt/resume runs the full staged pipeline repeatedly;
# excluded from the default tier (see pyproject addopts), CI runs them
# in a dedicated `-m slow` job.
pytestmark = pytest.mark.slow

CFG_KWARGS = dict(
    name="resume-test",
    seed=5,
    n_moves_per_axis=6,
    n_bins=30,
    iterations=60,
    checkpoint_every=20,
)

ALL_STAGES = {"record", "graph", "train[F18|F1]", "analyze[F18|F1]", "report"}


def make_config(**overrides):
    return ExperimentConfig(**{**CFG_KWARGS, **overrides})


def run_with_events(config, out_dir, **kwargs):
    bus = EventBus()
    events = []
    bus.subscribe(events.append)
    result = run_experiment(config, out_dir, bus=bus, **kwargs)
    started = {e.stage for e in events if isinstance(e, StageStarted)}
    skipped = {e.stage for e in events if isinstance(e, StageSkipped)}
    return result, started, skipped


@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    """One uninterrupted reference run; tests copy it, never mutate it."""
    out = tmp_path_factory.mktemp("baseline")
    result = run_experiment(make_config(), out)
    return out, result


def clone(baseline_dir, tmp_path):
    target = tmp_path / "run"
    shutil.copytree(baseline_dir, target)
    return target


class TestInterruptedTraining:
    def test_resume_is_byte_identical(self, baseline, tmp_path, monkeypatch):
        baseline_dir, _ = baseline
        out = tmp_path / "interrupted"
        config = make_config()

        # Interrupt training right after the first periodic checkpoint
        # (iteration 20 of 60) — the in-process stand-in for SIGTERM.
        real_save = gan_serialization.save_training_checkpoint

        def save_then_die(*args, **kwargs):
            result = real_save(*args, **kwargs)
            raise KeyboardInterrupt("simulated kill mid-training")

        monkeypatch.setattr(
            gan_serialization, "save_training_checkpoint", save_then_die
        )
        with pytest.raises(KeyboardInterrupt):
            run_experiment(config, out)
        monkeypatch.setattr(
            gan_serialization, "save_training_checkpoint", real_save
        )

        # The interrupted run kept its completed provenance and the
        # transient checkpoint, but no trained model.
        assert {r["stage"] for r in experiment_status(out)} == {"record", "graph"}
        ckpt_dir = out / "checkpoints" / "F18__F1"
        assert (ckpt_dir / "checkpoint.json").is_file()
        assert not (out / "summary.json").exists()

        # Resume: record/graph skip, training restores the checkpoint.
        restored = []
        real_restore = gan_serialization.restore_training_checkpoint

        def spy_restore(*args, **kwargs):
            state = real_restore(*args, **kwargs)
            restored.append(state.iteration)
            return state

        monkeypatch.setattr(
            gan_serialization, "restore_training_checkpoint", spy_restore
        )
        result, started, skipped = run_with_events(config, out)
        assert restored == [20]
        assert skipped == {"record", "graph"}
        assert started == ALL_STAGES - skipped

        # Byte-for-byte what the uninterrupted baseline produced.
        for artifact in ("summary.json", "history.csv", "report.txt",
                        "analysis.json", "graph.dot"):
            assert (out / artifact).read_bytes() == (
                baseline_dir / artifact
            ).read_bytes(), artifact
        # The final model supersedes its checkpoints.
        assert not ckpt_dir.exists()


class TestWarmResume:
    def test_unchanged_rerun_skips_every_stage(self, baseline, tmp_path):
        baseline_dir, first = baseline
        out = clone(baseline_dir, tmp_path)
        result, started, skipped = run_with_events(make_config(), out)
        assert started == set()
        assert skipped == ALL_STAGES
        assert result.summary == first.summary

    def test_fresh_reruns_every_stage(self, baseline, tmp_path):
        baseline_dir, _ = baseline
        out = clone(baseline_dir, tmp_path)
        before = (out / "summary.json").read_bytes()
        result, started, skipped = run_with_events(
            make_config(), out, resume=False
        )
        assert skipped == set()
        assert started == ALL_STAGES
        assert (out / "summary.json").read_bytes() == before

    def test_scheduling_knobs_do_not_invalidate(self, baseline, tmp_path):
        baseline_dir, _ = baseline
        out = clone(baseline_dir, tmp_path)
        config = make_config(
            workers=2, analysis_workers=2, checkpoint_every=7, trace=True
        )
        _result, started, skipped = run_with_events(config, out)
        assert started == set()
        assert skipped == ALL_STAGES

    def test_semantic_change_cascades_from_analyze(self, baseline, tmp_path):
        baseline_dir, _ = baseline
        out = clone(baseline_dir, tmp_path)
        _result, started, skipped = run_with_events(make_config(h=0.4), out)
        # h only enters the analyze slice: training survives, analysis
        # and the report re-run.
        assert skipped == {"record", "graph", "train[F18|F1]"}
        assert started == {"analyze[F18|F1]", "report"}


class TestCorruptRunDirs:
    def test_truncated_manifest_reruns_everything(self, baseline, tmp_path):
        baseline_dir, _ = baseline
        out = clone(baseline_dir, tmp_path)
        text = (out / "manifest.json").read_text()
        (out / "manifest.json").write_text(text[: len(text) // 3])

        result, started, skipped = run_with_events(make_config(), out)
        assert skipped == set()
        assert started == ALL_STAGES
        assert (out / "summary.json").read_bytes() == (
            baseline_dir / "summary.json"
        ).read_bytes()

    def test_missing_output_reruns_stage_and_downstream(
        self, baseline, tmp_path
    ):
        baseline_dir, _ = baseline
        out = clone(baseline_dir, tmp_path)
        (out / "dataset.npz").unlink()

        _result, started, skipped = run_with_events(make_config(), out)
        assert "record" in started
        # Everything downstream of the dataset re-runs too.
        assert {"train[F18|F1]", "analyze[F18|F1]", "report"} <= started
        assert skipped == {"graph"}

    def test_tampered_output_is_never_silently_reused(self, baseline, tmp_path):
        baseline_dir, _ = baseline
        out = clone(baseline_dir, tmp_path)
        # Same size, different bytes: only the digest can catch this.
        original = (out / "analysis.json").read_bytes()
        (out / "analysis.json").write_bytes(
            original.replace(b":", b";", 1)
        )

        _result, started, skipped = run_with_events(make_config(), out)
        assert started == {"analyze[F18|F1]", "report"}
        assert skipped == {"record", "graph", "train[F18|F1]"}
        assert (out / "analysis.json").read_bytes() == original

    def test_stale_checkpoint_from_other_config_is_ignored(
        self, baseline, tmp_path
    ):
        baseline_dir, _ = baseline
        out = clone(baseline_dir, tmp_path)
        # Invalidate training, then plant a checkpoint written under a
        # different fingerprint: training must ignore it and still
        # reproduce the baseline exactly.
        invalidate_stage(out, "train[F18|F1]")
        ckpt = out / "checkpoints" / "F18__F1"
        ckpt.mkdir(parents=True)
        (ckpt / "checkpoint.json").write_text(
            json.dumps({"schema": "gansec-train-checkpoint/v1",
                        "fingerprint": "someone-else", "files": {}})
        )
        _result, started, _skipped = run_with_events(make_config(), out)
        assert "train[F18|F1]" in started
        assert (out / "history.csv").read_bytes() == (
            baseline_dir / "history.csv"
        ).read_bytes()


class TestStatusAndInvalidate:
    def test_status_lists_all_verified_stages(self, baseline):
        baseline_dir, _ = baseline
        rows = experiment_status(baseline_dir)
        assert {r["stage"] for r in rows} == ALL_STAGES
        assert all(r["verified"] for r in rows)
        assert all(len(r["fingerprint"]) == 12 for r in rows)

    def test_status_flags_tampered_outputs(self, baseline, tmp_path):
        baseline_dir, _ = baseline
        out = clone(baseline_dir, tmp_path)
        (out / "report.txt").write_text("not the report")
        rows = {r["stage"]: r for r in experiment_status(out)}
        assert not rows["analyze[F18|F1]"]["verified"]
        assert rows["record"]["verified"]

    def test_invalidate_forces_rerun(self, baseline, tmp_path):
        baseline_dir, _ = baseline
        out = clone(baseline_dir, tmp_path)
        assert invalidate_stage(out, "analyze[F18|F1]")
        assert not invalidate_stage(out, "analyze[F18|F1]")
        assert not invalidate_stage(out, "no-such-stage")

        _result, started, skipped = run_with_events(make_config(), out)
        assert started == {"analyze[F18|F1]", "report"}
        assert skipped == {"record", "graph", "train[F18|F1]"}


class TestConfigRoundTrip:
    def test_written_config_reloads_identically(self, baseline):
        baseline_dir, result = baseline
        from dataclasses import asdict

        loaded = ExperimentConfig.from_json(baseline_dir / "config.json")
        assert asdict(loaded) == asdict(result.config)

    def test_unknown_keys_rejected_by_name(self, tmp_path):
        from repro.errors import ConfigurationError

        path = tmp_path / "cfg.json"
        path.write_text(
            json.dumps({"seed": 1, "iterationz": 5, "wokers": 2})
        )
        with pytest.raises(ConfigurationError) as excinfo:
            ExperimentConfig.from_json(path)
        message = str(excinfo.value)
        assert "iterationz" in message
        assert "wokers" in message

    def test_non_object_json_rejected(self, tmp_path):
        from repro.errors import ConfigurationError

        path = tmp_path / "cfg.json"
        path.write_text("[1, 2]")
        with pytest.raises(ConfigurationError, match="JSON object"):
            ExperimentConfig.from_json(path)

    def test_negative_checkpoint_every_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="checkpoint_every"):
            make_config(checkpoint_every=-1)
